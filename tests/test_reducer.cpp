// Tests for the reference reducer: the paper's own examples (cell, RPC,
// applet server in both mobility styles, SETI) plus the reduction-rule
// counters and failure modes.
#include <gtest/gtest.h>

#include "calculus/reducer.hpp"
#include "compiler/parser.hpp"

namespace dityco::calc {
namespace {

using dityco::comp::parse_network;
using dityco::comp::parse_program;

Reducer::Result run_net(Reducer& red, std::string_view src) {
  for (auto& [site, prog] : parse_network(src)) red.add_program(site, prog);
  return red.run();
}

TEST(Reducer, PrintOnly) {
  Reducer red;
  auto res = run_net(red, "print[1, true, \"hi\", 2.5]");
  EXPECT_TRUE(res.quiescent);
  ASSERT_EQ(red.output("main").size(), 1u);
  EXPECT_EQ(red.output("main")[0], "1 true hi 2.5");
}

TEST(Reducer, PrintContinuationOrder) {
  Reducer red;
  run_net(red, "print[1]; print[2]; print[3]");
  EXPECT_EQ(red.output("main"),
            (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Reducer, BasicCommunication) {
  Reducer red;
  auto res = run_net(red, "new x (x!greet[41] | x?{ greet(v) = print[v + 1] })");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(res.counters.comm, 1u);
  EXPECT_EQ(red.output("main"), std::vector<std::string>{"42"});
}

TEST(Reducer, MessageBeforeObjectAndAfter) {
  // Order of arrival at the channel must not matter.
  Reducer r1, r2;
  run_net(r1, "new x (x![7] | x?(v) = print[v])");
  run_net(r2, "new x (x?(v) = print[v] | x![7])");
  EXPECT_EQ(r1.output("main"), r2.output("main"));
}

TEST(Reducer, PaperCellExample) {
  // Section 2: polymorphic cell, read method.
  Reducer red;
  auto res = run_net(red,
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
      "write(u) = Cell[self, u] } in "
      "new x (Cell[x, 9] | new z (x!read[z] | z?(w) = print[w]))");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("main"), std::vector<std::string>{"9"});
  EXPECT_EQ(res.counters.comm, 2u);  // read + reply
  EXPECT_EQ(res.counters.inst, 2u);  // initial Cell + recursive re-arm
}

TEST(Reducer, PolymorphicCells) {
  // The same Cell class instantiated with an integer and with a boolean.
  Reducer red;
  run_net(red,
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
      "write(u) = Cell[self, u] } in "
      "new x, y (Cell[x, 9] | Cell[y, true] "
      "| new z (x!read[z] | z?(w) = print[w]) "
      "| new t (y!read[t] | t?(w) = print[w]))");
  std::vector<std::string> out = red.output("main");
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::string>{"9", "true"}));
}

TEST(Reducer, CellWriteReadDeterministic) {
  // Messages race in the calculus; the reference reducer is deterministic
  // (FIFO run queue, left-spine traversal): the nested `new z` block is
  // spawned before the write message executes, so `read` is enqueued at x
  // first and observes the initial value.
  Reducer red;
  run_net(red,
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
      "write(u) = Cell[self, u] } in "
      "new x (Cell[x, 1] | x!write[5] | new z (x!read[z] | z?(w) = print[w]))");
  EXPECT_EQ(red.output("main"), std::vector<std::string>{"1"});
}

TEST(Reducer, CellWriteThenReadCausally) {
  // Causal ordering via an acknowledged write: the read only fires after
  // the write has been consumed, so it must observe 5 in every schedule.
  Reducer red;
  auto res = run_net(red,
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
      "write(u, ack) = (ack![] | Cell[self, u]) } in "
      "new x (Cell[x, 1] | new a (x!write[5, a] | a?() = "
      "new z (x!read[z] | z?(w) = print[w])))");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("main"), std::vector<std::string>{"5"});
}

TEST(Reducer, SharedFreeNamesAcrossProgramsAtSameSite) {
  // Free simple names are implicitly located at the site: two programs
  // submitted to the same site share them.
  Reducer red;
  red.add_program("main", parse_program("x![5]"));
  red.add_program("main", parse_program("x?(v) = print[v]"));
  auto res = red.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("main"), std::vector<std::string>{"5"});
}

// ---------------------------------------------------------------------
// Distribution: SHIPM / SHIPO / FETCH
// ---------------------------------------------------------------------

TEST(Reducer, RemoteProcedureCall) {
  // Section 3's RPC: two SHIPM steps (request there, reply back), two
  // communications, all reductions local to the channel's site.
  Reducer red;
  auto res = run_net(red,
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("client"), std::vector<std::string>{"42"});
  EXPECT_TRUE(red.output("server").empty());
  EXPECT_EQ(res.counters.shipm, 2u);
  EXPECT_EQ(res.counters.comm, 2u);
  EXPECT_EQ(res.counters.shipo, 0u);
}

TEST(Reducer, ClientBeforeServerOrderIrrelevant) {
  Reducer red;
  auto res = run_net(red,
      "site client { import p from server in let z = p![21] in print[z] }\n"
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("client"), std::vector<std::string>{"42"});
}

TEST(Reducer, AppletServerCodeFetching) {
  // Section 4, first applet server: classes are fetched (FETCH) and
  // instantiated locally at the client.
  Reducer red;
  auto res = run_net(red,
      "site server { export def Applet(out) = out![7] in 0 }\n"
      "site client { import Applet from server in "
      "new p (Applet[p] | p?(v) = print[v]) }");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("client"), std::vector<std::string>{"7"});
  EXPECT_EQ(res.counters.fetch, 1u);
  EXPECT_EQ(res.counters.shipm, 0u) << "fetched applet runs fully locally";
}

TEST(Reducer, FetchedCodeKeepsLexicalBindings) {
  // The fetched applet body references a channel at the server: the σ
  // translation must keep it pointing home.
  Reducer red;
  auto res = run_net(red,
      "site server { export new log in "
      "(log?(m) = print[m] | export def Applet() = log![\"ran\"] in 0) }\n"
      "site client { import Applet from server in Applet[] }");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("server"), std::vector<std::string>{"ran"});
  EXPECT_EQ(res.counters.fetch, 1u);
  EXPECT_EQ(res.counters.shipm, 1u) << "log![..] ships client -> server";
}

TEST(Reducer, AppletServerCodeShipping) {
  // Section 4, second applet server: the server ships an object to a
  // client-allocated name (SHIPO).
  Reducer red;
  auto res = run_net(red,
      "site server { def AppletServer(self) = self?{ "
      "applet(p) = (p?(x) = print[x * 2] | AppletServer[self]) } in "
      "export new appletserver in AppletServer[appletserver] }\n"
      "site client { import appletserver from server in "
      "new p (appletserver!applet[p] | p![21]) }");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("client"), std::vector<std::string>{"42"})
      << "the shipped applet reduces at the client site";
  EXPECT_EQ(res.counters.shipo, 1u);
  EXPECT_EQ(res.counters.shipm, 1u);  // the applet request
  EXPECT_EQ(res.counters.fetch, 0u);
}

TEST(Reducer, SetiExample) {
  // Section 4's SETI@home: install once, then the Go loop runs at the
  // client pulling chunks from the seti database.
  Reducer red;
  auto res = run_net(red,
      "site seti { new database ("
      "  def Db(self, n) = self?{ newChunk(r) = (r![n] | Db[self, n + 1]) } "
      "  in Db[database, 0] "
      "  | export def Install() = print[\"installed\"]; Go[0] "
      "    and Go(i) = if i == 3 then print[\"done\"] "
      "                else let d = database!newChunk[] in "
      "                     print[\"chunk\", d]; Go[i + 1] "
      "    in 0) }\n"
      "site client { import Install from seti in Install[] }");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("client"),
            (std::vector<std::string>{"installed", "chunk 0", "chunk 1",
                                      "chunk 2", "done"}));
  EXPECT_EQ(res.counters.fetch, 1u)
      << "Install and Go are one definition block: downloaded once";
  // Each chunk pull is a request there + reply back.
  EXPECT_EQ(res.counters.shipm, 6u);
}

TEST(Reducer, FetchCountedOncePerSite) {
  Reducer red;
  auto res = run_net(red,
      "site server { export def A(out) = out![1] in 0 }\n"
      "site c1 { import A from server in "
      "new p (A[p] | A[p] | p?(v) = (print[v] | p?(w) = print[w])) }\n"
      "site c2 { import A from server in new p (A[p] | p?(v) = print[v]) }");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(res.counters.fetch, 2u) << "one link per site, cached after";
  EXPECT_EQ(res.counters.inst, 3u);
}

TEST(Reducer, ObjectMigratesToImportedName) {
  // SHIPO via an imported name: r[s.x?M] -> s[x?Mσ].
  Reducer red;
  auto res = run_net(red,
      "site s { export new x in x![10] }\n"
      "site r { import x from s in x?(v) = print[v + 1] }");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(res.counters.shipo, 1u);
  // The object reduced at site s, so output appears at s.
  EXPECT_EQ(red.output("s"), std::vector<std::string>{"11"});
}

// ---------------------------------------------------------------------
// Failure modes and result reporting
// ---------------------------------------------------------------------

TEST(Reducer, StallOnMissingClassExport) {
  Reducer red;
  auto res = run_net(red, "site c { import Ghost from nowhere in Ghost[] }");
  EXPECT_FALSE(res.quiescent);
  EXPECT_TRUE(res.stalled);
}

TEST(Reducer, PendingMessageReported) {
  Reducer red;
  auto res = run_net(red, "new x x!lonely[]");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(res.pending_messages, 1u);
}

TEST(Reducer, PendingObjectReported) {
  Reducer red;
  auto res = run_net(red, "new x x?(v) = 0");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(res.pending_objects, 1u);
}

TEST(Reducer, MethodNotUnderstood) {
  Reducer red;
  auto res = run_net(red, "new x (x!nosuch[] | x?{ l(v) = 0 })");
  ASSERT_EQ(res.errors.size(), 1u);
  EXPECT_NE(res.errors[0].find("nosuch"), std::string::npos);
  EXPECT_EQ(res.pending_objects, 1u) << "object survives a bad message";
}

TEST(Reducer, ArityMismatchReported) {
  Reducer red;
  auto res = run_net(red, "new x (x!l[1, 2] | x?{ l(v) = 0 })");
  ASSERT_EQ(res.errors.size(), 1u);
  EXPECT_NE(res.errors[0].find("arity"), std::string::npos);
}

TEST(Reducer, DivisionByZeroReported) {
  Reducer red;
  auto res = run_net(red, "print[1 / 0]");
  ASSERT_EQ(res.errors.size(), 1u);
  EXPECT_TRUE(red.output("main").empty());
}

TEST(Reducer, NonBooleanConditionReported) {
  Reducer red;
  auto res = run_net(red, "if 1 + 2 then 0 else 0");
  ASSERT_EQ(res.errors.size(), 1u);
}

TEST(Reducer, BudgetExhaustion) {
  Reducer red(Reducer::Config{.max_steps = 1000});
  auto res = run_net(red, "def Loop() = Loop[] in Loop[]");
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_FALSE(res.quiescent);
}

TEST(Reducer, MutualRecursionAcrossDefBlock) {
  Reducer red;
  auto res = run_net(red,
      "def Even(n, r) = if n == 0 then r![true] else Odd[n - 1, r] "
      "and Odd(n, r) = if n == 0 then r![false] else Even[n - 1, r] "
      "in new out (Even[7, out] | out?(b) = print[b])");
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(red.output("main"), std::vector<std::string>{"false"});
}

TEST(Reducer, ExpressionEvaluation) {
  Reducer red;
  run_net(red,
      "print[1 + 2 * 3, 10 % 3, 7 / 2, -4, 2.5 + 1, \"a\" ++ \"b\", "
      "1 < 2, 2 <= 1, true && false, true || false, !true, 3 == 3, 3 != 3]");
  ASSERT_EQ(red.output("main").size(), 1u);
  EXPECT_EQ(red.output("main")[0],
            "7 1 3 -4 3.5 ab true false false true false true false");
}

TEST(Reducer, ChannelsPrintOpaque) {
  Reducer red;
  run_net(red, "new x print[x]");
  EXPECT_EQ(red.output("main"), std::vector<std::string>{"#chan"});
}

TEST(Reducer, RunCanBeResumed) {
  Reducer red;
  red.add_program("main", parse_program("new q 0 | x?(v) = print[v]"));
  auto r1 = red.run();
  EXPECT_TRUE(r1.quiescent);
  red.add_program("main", parse_program("x![33]"));
  auto r2 = red.run();
  EXPECT_TRUE(r2.quiescent);
  EXPECT_EQ(red.output("main"), std::vector<std::string>{"33"});
}

}  // namespace
}  // namespace dityco::calc
