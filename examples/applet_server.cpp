// The applet server of section 4, in both mobility styles:
//
//   * code FETCHING — the server exports applet *classes*; a client's
//     instantiation downloads the byte-code and runs it locally;
//   * code SHIPPING — the server exports an object whose methods ship an
//     applet object to a client-allocated name (rule SHIPO).
//
// The example prints each site's output and the mobility counters so the
// two styles can be compared (see also bench_c5_mobility).
#include <iostream>

#include "core/network.hpp"

namespace {

void report(dityco::core::Network& net, const char* title,
            std::initializer_list<const char*> sites) {
  std::cout << "--- " << title << " ---\n";
  for (const char* s : sites) {
    for (const auto& line : net.output(s))
      std::cout << "  [" << s << "] " << line << "\n";
    const auto& mob = net.find_site(s)->mobility();
    std::cout << "  [" << s << "] shipped msgs=" << mob.msgs_shipped
              << " objs=" << mob.objs_shipped
              << " fetches=" << mob.fetch_requests
              << " served=" << mob.fetch_served << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using dityco::core::Network;

  // ---- Style 1: code fetching (classes are downloaded) ----------------
  {
    Network net;
    net.add_node();
    net.add_node();
    net.add_node();
    net.add_site(0, "server");
    net.add_site(1, "alice");
    net.add_site(2, "bob");
    net.submit_network_source(R"(
      site server {
        -- The applet store: a collection of exported class definitions.
        export def Clock(out)   = out!show["tick tick tick"]
               and Banner(out)  = out!show["*** welcome ***"]
               and Counter(out) = Count[out, 3]
               and Count(out, n) =
                 if n == 0 then out!show["liftoff"]
                 else (out!show["counting " ++ "down"] | Count[out, n - 1])
        in 0
      }
      site alice {
        import Clock from server in
        import Counter from server in
        new scr (
          Clock[scr] | Counter[scr]
          | def Screen(s) = s?{ show(m) = (print[m] | Screen[s]) }
            in Screen[scr]
        )
      }
      site bob {
        import Banner from server in
        new scr (Banner[scr] | scr?{ show(m) = print[m] })
      }
    )");
    auto res = net.run();
    (void)res;
    report(net, "code-fetching applet server", {"server", "alice", "bob"});
  }

  // ---- Style 2: code shipping (objects migrate to the client) ---------
  {
    Network net;
    net.add_node();
    net.add_node();
    net.add_site(0, "server");
    net.add_site(1, "client");
    net.submit_network_source(R"(
      site server {
        def AppletServer(self) =
          self?{
            -- On request, ship an applet object to the client's name p.
            greeter(p) = (p?(who)  = print["hello " ++ who] |
                          AppletServer[self]),
            doubler(p) = (p?(n, r) = r![n + n] | AppletServer[self])
          }
        in export new applets in AppletServer[applets]
      }
      site client {
        import applets from server in
        new g (applets!greeter[g] | g!["world"])
        | new d (applets!doubler[d] |
                 let v = d![34] in print["doubled:", v])
      }
    )");
    auto res = net.run();
    (void)res;
    report(net, "code-shipping applet server", {"server", "client"});
    std::cout << "note: the greeter applet migrated to the client but its\n"
                 "free occurrence of print refers to code, not names; the\n"
                 "greeting prints at the *client*, where the object reduced.\n";
  }
  return 0;
}
