// Encodings of higher-level constructs in the kernel calculus — the
// paper's claim 3 in section 1: "they are scalable in the sense that
// high level constructs can be readily obtained from encodings in the
// kernel calculus". Each test is a DiTyCO program implementing a classic
// construct purely with messages, objects and classes.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/network.hpp"

namespace dityco::core {
namespace {

std::vector<std::string> run_main(const std::string& src) {
  Network net;
  net.add_node();
  net.add_site(0, "main");
  net.submit_source("main", src);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent) << src;
  EXPECT_TRUE(net.all_errors().empty())
      << net.all_errors().empty() << src;
  return net.output("main");
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Encodings, BooleansAsSelection) {
  // A boolean is a channel answering `case` by signalling one of two
  // continuations — branching without `if`.
  auto out = run_main(R"(
    def True(self)  = self?{ case(t, f) = (t![] | True[self]) }
    and False(self) = self?{ case(t, f) = (f![] | False[self]) }
    in
    new b, yes, no (
      True[b]
      | b!case[yes, no]
      | yes?() = print["took the true branch"]
      | no?()  = print["took the false branch"]
    )
  )");
  EXPECT_EQ(out, std::vector<std::string>{"took the true branch"});
}

TEST(Encodings, ListsAsObjects) {
  // cons cells are objects with a `match` method; Sum folds the list.
  auto out = run_main(R"(
    def Nil(self) = self?{ match(onNil, onCons) = (onNil![] | Nil[self]) }
    and Cons(self, hd, tl) =
      self?{ match(onNil, onCons) = (onCons![hd, tl] | Cons[self, hd, tl]) }
    and Sum(list, acc, reply) =
      new n, c (
        list!match[n, c]
        | n?() = reply![acc]
        | c?(hd, tl) = Sum[tl, acc + hd, reply]
      )
    in
    new l0, l1, l2, l3, r (
      Nil[l0] | Cons[l1, 3, l0] | Cons[l2, 2, l1] | Cons[l3, 1, l2]
      | Sum[l3, 0, r]
      | r?(total) = print["sum:", total]
    )
  )");
  EXPECT_EQ(out, std::vector<std::string>{"sum: 6"});
}

TEST(Encodings, MutexAsToken) {
  // A lock is a channel holding one token message; acquire = consume,
  // release = replace. Two critical sections cannot interleave, so the
  // counter reads are strictly increasing.
  auto out = run_main(R"(
    def Worker(lock, cell, who, done) =
      lock?() =                          -- acquire
        new r (cell!read[r] | r?(v) =
          (cell!write[v + 1] |
           new r2 (cell!read[r2] | r2?(w) =
             (print[who, "saw", w] | lock![] | done![]))))
    and Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]),
                               write(u) = Cell[self, u] }
    in
    new lock, cell, d1, d2 (
      Cell[cell, 0] | lock![]
      | Worker[lock, cell, "a", d1]
      | Worker[lock, cell, "b", d2]
      | d1?() = d2?() = print["both done"]
    )
  )");
  ASSERT_EQ(out.size(), 3u);
  // One worker saw 1, the other saw 2 (order may vary), then both done.
  auto s = sorted({out[0], out[1]});
  EXPECT_TRUE((s == std::vector<std::string>{"a saw 1", "b saw 2"}) ||
              (s == std::vector<std::string>{"a saw 2", "b saw 1"}))
      << out[0] << " / " << out[1];
  EXPECT_EQ(out[2], "both done");
}

TEST(Encodings, SemaphoreWithNPermits) {
  // N tokens in the channel = counting semaphore. With 2 permits and 4
  // jobs, at most two run concurrently; all finish.
  auto out = run_main(R"(
    def Job(sem, k, done) =
      sem?() = (print["run", k] | sem![] | done![])
    and Join(done, n) = if n == 0 then print["all done"]
                        else done?() = Join[done, n - 1]
    in
    new sem, done (
      sem![] | sem![]                        -- two permits
      | Job[sem, 1, done] | Job[sem, 2, done]
      | Job[sem, 3, done] | Job[sem, 4, done]
      | Join[done, 4]
    )
  )");
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4], "all done");
  EXPECT_EQ(sorted({out[0], out[1], out[2], out[3]}),
            (std::vector<std::string>{"run 1", "run 2", "run 3", "run 4"}));
}

TEST(Encodings, NWayBarrier) {
  auto out = run_main(R"(
    def Barrier(self, n, waiters) =
      self?{ arrive(k) =
        if n == 1 then Release[waiters, k]
        else new w (Barrier[self, n - 1, w] |
                    w?() = (k![] | waiters![])) }
    and Release(waiters, k) = (k![] | waiters![])
    in
    new b, sink (
      Barrier[b, 3, sink]
      | new k1 (b!arrive[k1] | k1?() = print["p1 past the barrier"])
      | new k2 (b!arrive[k2] | k2?() = print["p2 past the barrier"])
      | new k3 (b!arrive[k3] | k3?() = print["p3 past the barrier"])
    )
  )");
  EXPECT_EQ(sorted(out),
            (std::vector<std::string>{"p1 past the barrier",
                                      "p2 past the barrier",
                                      "p3 past the barrier"}));
}

TEST(Encodings, ForkJoinFibonacci) {
  // Parallel divide-and-conquer: each Fib spawns two children and joins
  // their replies — the fine-grained parallelism the paper banks on.
  auto out = run_main(R"(
    def Fib(n, reply) =
      if n < 2 then reply![n]
      else new a, b (
        Fib[n - 1, a] | Fib[n - 2, b]
        | a?(x) = b?(y) = reply![x + y]
      )
    in new r (Fib[15, r] | r?(v) = print["fib(15) =", v])
  )");
  EXPECT_EQ(out, std::vector<std::string>{"fib(15) = 610"});
}

TEST(Encodings, UnboundedFifoQueue) {
  // A functional queue of two list channels (front/back) guarded by an
  // owner object — put/get with FIFO order.
  auto out = run_main(R"(
    def Nil(self) = self?{ match(onNil, onCons) = (onNil![] | Nil[self]) }
    and Cons(self, hd, tl) =
      self?{ match(onNil, onCons) = (onCons![hd, tl] | Cons[self, hd, tl]) }
    and Rev(list, acc, reply) =
      new n, c (list!match[n, c]
        | n?() = reply![acc]
        | c?(hd, tl) = new acc2 (Cons[acc2, hd, acc] | Rev[tl, acc2, reply]))
    and Queue(self, front, back) = self?{
      put(v, ack) = new b2 (Cons[b2, v, back] | ack![] |
                            Queue[self, front, b2]),
      -- note the parentheses around the n-branch: `new` scopes extend as
      -- far right as possible (paper convention), so without them the
      -- c-branch would be swallowed into the n-branch's body.
      get(reply) = new n, c (front!match[n, c]
        | (n?() = new r (Rev[back, front, r] | r?(rev) =
            new n2, c2 (rev!match[n2, c2]
              | n2?() = (print["queue empty"] | Queue[self, front, back])
              | c2?(hd, tl) = new e (Nil[e] | reply![hd] |
                                     Queue[self, tl, e]))))
        | c?(hd, tl) = (reply![hd] | Queue[self, tl, back])) }
    in
    new q, e (
      Nil[e] | Queue[q, e, e]
      | new a1 (q!put[10, a1] | a1?() =
        new a2 (q!put[20, a2] | a2?() =
        new a3 (q!put[30, a3] | a3?() =
        new g1 (q!get[g1] | g1?(x) = (print["got", x] |
        new g2 (q!get[g2] | g2?(y) = (print["got", y] |
        new g3 (q!get[g3] | g3?(z) = print["got", z]))))))))
    )
  )");
  EXPECT_EQ(out, (std::vector<std::string>{"got 10", "got 20", "got 30"}));
}

TEST(Encodings, SequentialCompositionViaContinuations) {
  // P ; Q encoded as P signalling a continuation channel.
  auto out = run_main(R"(
    def Step(k, label) = print[label]; k![]
    in
    new k1, k2, k3 (
      Step[k1, "first"]
      | k1?() = Step[k2, "second"]
      | k2?() = Step[k3, "third"]
      | k3?() = print["after all steps"]
    )
  )");
  EXPECT_EQ(out, (std::vector<std::string>{"first", "second", "third",
                                           "after all steps"}));
}

TEST(Encodings, DistributedMapReduce) {
  // The construct scales across sites unchanged: map on the workers,
  // reduce at the master.
  Network net;
  net.add_node();
  net.add_site(0, "master");
  for (int i = 0; i < 3; ++i) {
    net.add_node();
    net.add_site(static_cast<std::size_t>(i) + 1, "w" + std::to_string(i));
  }
  for (int i = 0; i < 3; ++i)
    net.submit_source("w" + std::to_string(i),
                      "export new map in "
                      "def Serve(self) = self?{ val(x, r) = (r![x * x] | "
                      "Serve[self]) } in Serve[map]");
  // Imports of the same identifier from different sites shadow each
  // other, so each shard is dispatched from its own parallel branch with
  // its own import; the master folds the replies.
  net.submit_source("master", R"(
    new fold (
      def Acc(self, sum, n) =
        self?{ add(v) = if n == 1 then print["total:", sum + v]
                        else Acc[self, sum + v, n - 1] }
      in Acc[fold, 0, 3]
      | import map from w0 in new r (map![2, r] | r?(v) = fold!add[v])
      | import map from w1 in new r (map![3, r] | r?(v) = fold!add[v])
      | import map from w2 in new r (map![4, r] | r?(v) = fold!add[v])
    )
  )");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("master"), std::vector<std::string>{"total: 29"});
}

}  // namespace
}  // namespace dityco::core
