#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/flight.hpp"

namespace dityco::obs {

// ---------------------------------------------------------------------
// SloHistogram
// ---------------------------------------------------------------------

void SloHistogram::record(std::uint64_t ns) {
  counts_[index_of(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = min_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

SloHistogram::Snapshot SloHistogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.sum_ns = sum_.load(std::memory_order_relaxed);
  s.max_ns = max_.load(std::memory_order_relaxed);
  s.min_ns = min_.load(std::memory_order_relaxed);
  s.counts.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i)
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  return s;
}

std::uint64_t SloHistogram::Snapshot::quantile_ns(double q) const {
  if (count == 0 || counts.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) {
      const std::uint64_t mid = bucket_low(i) + bucket_width(i) / 2;
      return std::clamp(mid, min_ns, max_ns);
    }
  }
  return max_ns;
}

SloHistogram::Snapshot& SloHistogram::Snapshot::merge(const Snapshot& other) {
  if (other.count == 0) return *this;
  if (count == 0) {
    *this = other;
    return *this;
  }
  if (counts.empty()) counts.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets && i < other.counts.size(); ++i)
    counts[i] += other.counts[i];
  count += other.count;
  sum_ns += other.sum_ns;
  max_ns = std::max(max_ns, other.max_ns);
  min_ns = std::min(min_ns, other.min_ns);
  return *this;
}

std::string SloHistogram::Snapshot::json() const {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "{\"count\":%llu,\"min_us\":%.3f,\"mean_us\":%.3f,\"p50_us\":%.3f,"
      "\"p90_us\":%.3f,\"p99_us\":%.3f,\"p999_us\":%.3f,\"max_us\":%.3f}",
      static_cast<unsigned long long>(count),
      count ? static_cast<double>(min_ns) / 1e3 : 0.0, mean_ns() / 1e3,
      quantile_us(0.50), quantile_us(0.90), quantile_us(0.99),
      quantile_us(0.999), static_cast<double>(max_ns) / 1e3);
  return buf;
}

// ---------------------------------------------------------------------
// SloPlane
// ---------------------------------------------------------------------

const char* slo_state_name(SloState s) {
  switch (s) {
    case SloState::kOk: return "ok";
    case SloState::kWarn: return "warn";
    case SloState::kPage: return "page";
  }
  return "?";
}

const char* SloPlane::op_name(Op op) {
  switch (op) {
    case Op::kMsg: return "msg";
    case Op::kObj: return "obj";
    case Op::kFetch: return "fetch";
  }
  return "?";
}

const char* SloPlane::stage_name(Stage s) {
  switch (s) {
    case Stage::kEnqueue: return "enqueue";
    case Stage::kRemote: return "remote";
    case Stage::kReply: return "reply";
    case Stage::kExecute: return "execute";
  }
  return "?";
}

void SloPlane::configure(const Config& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_ = cfg;
  // The wheel must cover the long window plus slack for lagging writes.
  cfg_.objective.long_window_s =
      std::min<std::uint32_t>(cfg_.objective.long_window_s, kWheel - 8);
  cfg_.objective.short_window_s = std::min(cfg_.objective.short_window_s,
                                           cfg_.objective.long_window_s);
  if (cfg_.objective.budget <= 0) cfg_.objective.budget = 1e-9;
}

SloPlane::Config SloPlane::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cfg_;
}

void SloPlane::set_flight(FlightRecorder* flight) {
  std::lock_guard<std::mutex> lock(mu_);
  flight_ = flight;
}

void SloPlane::on_depart(std::uint64_t trace_id, Op op,
                         std::uint64_t now_ns) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if ((tracked_ & 0xfff) == 0) sweep_locked(now_ns);
  if (ledger_.size() >= cfg_.max_inflight) {
    ++dropped_;
    return;
  }
  Rec& r = ledger_[trace_id];
  r.op = op;
  r.depart_ns = now_ns;
  ++tracked_;
}

void SloPlane::on_tcp_send(std::uint64_t trace_id, std::uint64_t now_ns) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledger_.find(trace_id);
  if (it == ledger_.end() || it->second.depart_ns == 0) return;
  Rec& r = it->second;
  if (r.send_ns != 0) return;  // first socket hop wins (fan-out ships)
  r.send_ns = now_ns;
  if (now_ns >= r.depart_ns)
    stage_[static_cast<std::size_t>(Stage::kEnqueue)].record(now_ns -
                                                             r.depart_ns);
}

void SloPlane::on_tcp_recv(std::uint64_t trace_id, std::uint64_t now_ns) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledger_.find(trace_id);
  if (it != ledger_.end()) {
    Rec& r = it->second;
    if (r.recv_ns != 0) return;
    r.recv_ns = now_ns;
    if (r.send_ns != 0 && now_ns >= r.send_ns)
      stage_[static_cast<std::size_t>(Stage::kRemote)].record(now_ns -
                                                              r.send_ns);
    return;
  }
  // A request that originated elsewhere: open a server-side record so
  // its handling latency lands in the execute stage on this node.
  if (ledger_.size() >= cfg_.max_inflight) {
    ++dropped_;
    return;
  }
  Rec& r = ledger_[trace_id];
  r.recv_ns = now_ns;
}

bool SloPlane::on_complete(std::uint64_t trace_id, std::uint64_t now_ns) {
  if (trace_id == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledger_.find(trace_id);
  if (it == ledger_.end()) return false;
  const Rec r = it->second;
  ledger_.erase(it);
  std::uint64_t lat = 0;
  if (r.depart_ns != 0) {
    if (now_ns >= r.depart_ns) lat = now_ns - r.depart_ns;
    e2e_[static_cast<std::size_t>(r.op)].record(lat);
    if (r.recv_ns != 0 && now_ns >= r.recv_ns)
      stage_[static_cast<std::size_t>(Stage::kReply)].record(now_ns -
                                                             r.recv_ns);
    ++completed_;
  } else {
    if (now_ns >= r.recv_ns) lat = now_ns - r.recv_ns;
    stage_[static_cast<std::size_t>(Stage::kExecute)].record(lat);
    ++executed_;
  }
  return judge_locked(lat, trace_id, now_ns);
}

bool SloPlane::on_served(std::uint64_t trace_id, std::uint64_t now_ns) {
  if (trace_id == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledger_.find(trace_id);
  if (it == ledger_.end() || it->second.depart_ns != 0) return false;
  const Rec r = it->second;
  ledger_.erase(it);
  std::uint64_t lat = 0;
  if (now_ns >= r.recv_ns) lat = now_ns - r.recv_ns;
  stage_[static_cast<std::size_t>(Stage::kExecute)].record(lat);
  ++executed_;
  return judge_locked(lat, trace_id, now_ns);
}

bool SloPlane::record_value(Op op, std::uint64_t e2e_ns, std::uint64_t now_ns,
                            std::uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  e2e_[static_cast<std::size_t>(op)].record(e2e_ns);
  ++completed_;
  return judge_locked(e2e_ns, trace_id, now_ns);
}

bool SloPlane::judge_locked(std::uint64_t lat_ns, std::uint64_t trace_id,
                            std::uint64_t now_ns) {
  const bool bad = lat_ns > cfg_.objective.threshold_ns;
  wheel_record_locked(bad, now_ns);
  if (bad) {
    ++violations_;
    if (flight_ != nullptr && trace_id != 0)
      flight_->promote(trace_id, FlightRecorder::Reason::kSlow,
                       static_cast<double>(lat_ns) / 1e3);
  }
  evaluate_locked(now_ns);
  return bad;
}

void SloPlane::wheel_record_locked(bool bad, std::uint64_t now_ns) {
  const std::uint64_t sec = now_ns / 1'000'000'000ull;
  Sec& slot = wheel_[sec % kWheel];
  if (slot.sec != sec) {
    slot.sec = sec;
    slot.total = 0;
    slot.bad = 0;
  }
  ++slot.total;
  if (bad) ++slot.bad;
}

SloPlane::Window SloPlane::window_locked(std::uint32_t window_s,
                                         std::uint64_t now_ns) const {
  Window w;
  const std::uint64_t now_sec = now_ns / 1'000'000'000ull;
  const std::uint64_t lo = now_sec >= window_s ? now_sec - window_s + 1 : 0;
  for (const Sec& s : wheel_) {
    if (s.sec == ~std::uint64_t{0} || s.sec < lo || s.sec > now_sec) continue;
    w.total += s.total;
    w.bad += s.bad;
  }
  if (w.total > 0)
    w.burn = (static_cast<double>(w.bad) / static_cast<double>(w.total)) /
             cfg_.objective.budget;
  return w;
}

SloState SloPlane::evaluate_locked(std::uint64_t now_ns) {
  const Window s = window_locked(cfg_.objective.short_window_s, now_ns);
  const Window l = window_locked(cfg_.objective.long_window_s, now_ns);
  SloState next = SloState::kOk;
  if (s.burn >= cfg_.objective.page_burn && l.burn >= cfg_.objective.page_burn)
    next = SloState::kPage;
  else if (s.burn >= cfg_.objective.warn_burn &&
           l.burn >= cfg_.objective.warn_burn)
    next = SloState::kWarn;
  if (next != state_) {
    transitions_.push_back({now_ns, state_, next});
    if (transitions_.size() > 64)
      transitions_.erase(transitions_.begin(),
                         transitions_.begin() + (transitions_.size() - 64));
    ++transitions_total_;
    state_ = next;
  }
  return state_;
}

void SloPlane::sweep_locked(std::uint64_t now_ns) {
  if (cfg_.expire_ns == 0 || now_ns < cfg_.expire_ns) return;
  const std::uint64_t horizon = now_ns - cfg_.expire_ns;
  for (auto it = ledger_.begin(); it != ledger_.end();) {
    const Rec& r = it->second;
    const std::uint64_t born = std::max({r.depart_ns, r.send_ns, r.recv_ns});
    if (born < horizon) {
      it = ledger_.erase(it);
      ++expired_;
    } else {
      ++it;
    }
  }
}

SloPlane::BurnView SloPlane::burn(std::uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  BurnView v;
  v.state = state_;
  v.short_w = window_locked(cfg_.objective.short_window_s, now_ns);
  v.long_w = window_locked(cfg_.objective.long_window_s, now_ns);
  return v;
}

SloState SloPlane::evaluate(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluate_locked(now_ns);
}

SloState SloPlane::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::vector<SloPlane::Transition> SloPlane::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

std::uint64_t SloPlane::tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracked_;
}
std::uint64_t SloPlane::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}
std::uint64_t SloPlane::executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}
std::uint64_t SloPlane::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}
std::uint64_t SloPlane::expired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expired_;
}
std::uint64_t SloPlane::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}
std::uint64_t SloPlane::transitions_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_total_;
}
std::size_t SloPlane::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.size();
}

std::string SloPlane::json(std::uint64_t now_ns) {
  SloObjective obj;
  BurnView v;
  std::vector<Transition> trans;
  std::uint64_t tracked, completed, executed, violations, expired, dropped,
      flips;
  std::size_t inflight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sweep_locked(now_ns);
    evaluate_locked(now_ns);
    obj = cfg_.objective;
    v.state = state_;
    v.short_w = window_locked(obj.short_window_s, now_ns);
    v.long_w = window_locked(obj.long_window_s, now_ns);
    trans = transitions_;
    tracked = tracked_;
    completed = completed_;
    executed = executed_;
    violations = violations_;
    expired = expired_;
    dropped = dropped_;
    flips = transitions_total_;
    inflight = ledger_.size();
  }
  std::string out = "{\"schema\":\"dityco-slo-v1\",";
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "\"now_ns\":%llu,\"objective\":{\"threshold_us\":%.3f,"
      "\"budget\":%g,\"short_window_s\":%u,\"long_window_s\":%u,"
      "\"warn_burn\":%g,\"page_burn\":%g},",
      static_cast<unsigned long long>(now_ns),
      static_cast<double>(obj.threshold_ns) / 1e3, obj.budget,
      obj.short_window_s, obj.long_window_s, obj.warn_burn, obj.page_burn);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"state\":\"%s\",\"burn\":{\"short\":{\"rate\":%.3f,\"bad\":%llu,"
      "\"total\":%llu},\"long\":{\"rate\":%.3f,\"bad\":%llu,"
      "\"total\":%llu}},",
      slo_state_name(v.state), v.short_w.burn,
      static_cast<unsigned long long>(v.short_w.bad),
      static_cast<unsigned long long>(v.short_w.total), v.long_w.burn,
      static_cast<unsigned long long>(v.long_w.bad),
      static_cast<unsigned long long>(v.long_w.total));
  out += buf;
  out += "\"transitions\":[";
  for (std::size_t i = 0; i < trans.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"ts_ns\":%llu,\"from\":\"%s\",\"to\":\"%s\"}",
                  i ? "," : "",
                  static_cast<unsigned long long>(trans[i].ts_ns),
                  slo_state_name(trans[i].from), slo_state_name(trans[i].to));
    out += buf;
  }
  out += "],";
  std::snprintf(
      buf, sizeof buf,
      "\"requests\":{\"tracked\":%llu,\"completed\":%llu,\"executed\":%llu,"
      "\"violations\":%llu,\"expired\":%llu,\"dropped\":%llu,"
      "\"inflight\":%zu,\"state_transitions\":%llu},",
      static_cast<unsigned long long>(tracked),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(executed),
      static_cast<unsigned long long>(violations),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(dropped), inflight,
      static_cast<unsigned long long>(flips));
  out += buf;
  out += "\"e2e\":{";
  for (std::size_t i = 0; i < kOps; ++i) {
    if (i) out += ",";
    out += "\"";
    out += op_name(static_cast<Op>(i));
    out += "\":";
    out += e2e_[i].snapshot().json();
  }
  out += "},\"stages\":{";
  for (std::size_t i = 0; i < kStages; ++i) {
    if (i) out += ",";
    out += "\"";
    out += stage_name(static_cast<Stage>(i));
    out += "\":";
    out += stage_[i].snapshot().json();
  }
  out += "}}";
  return out;
}

}  // namespace dityco::obs
