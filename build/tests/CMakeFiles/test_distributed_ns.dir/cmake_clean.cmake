file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_ns.dir/test_distributed_ns.cpp.o"
  "CMakeFiles/test_distributed_ns.dir/test_distributed_ns.cpp.o.d"
  "test_distributed_ns"
  "test_distributed_ns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_ns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
