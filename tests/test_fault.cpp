// Fault tolerance (the paper's future-work item, section 7: "detect site
// failures, reconfigure the computation topology and try to terminate
// computations cleanly"): site-failure injection, dropped-delivery
// accounting, clean termination around dead sites, and failover by
// re-exporting a dead site's identifiers from a backup.
#include <gtest/gtest.h>

#include "core/network.hpp"

namespace dityco::core {
namespace {

TEST(Fault, DeliveriesToDeadSiteAreDropped) {
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server",
                    "def S(self) = self?{ val(x, r) = (r![x] | S[self]) } in "
                    "export new p in S[p]");
  // Resolve the import first so the client holds a live netref.
  net.submit_source("client",
                    "import p from server in new a (p![0, a] | a?(v) = 0)");
  auto r1 = net.run();
  EXPECT_TRUE(r1.quiescent);
  EXPECT_TRUE(net.all_errors().empty());

  net.find_site("server")->kill();
  net.submit_source("client",
                    "import p from server in let z = p![1] in print[z]");
  auto r2 = net.run();
  // The RPC can never complete, but the network terminates cleanly: the
  // message was dropped at the dead site, nothing is left running.
  EXPECT_FALSE(r2.budget_exhausted);
  EXPECT_GE(net.find_site("server")->mobility().dropped, 1u);
  EXPECT_TRUE(net.output("client").empty());
}

TEST(Fault, DeadSiteStopsExecuting) {
  Network net;
  net.add_node();
  net.add_site(0, "main");
  net.submit_source("main", "def Loop(i) = Loop[i + 1] in Loop[0]");
  net.find_site("main")->kill();
  auto res = net.run();
  EXPECT_FALSE(res.budget_exhausted) << "a dead site must not execute";
  EXPECT_EQ(res.instructions, 0u);
}

TEST(Fault, ParkedFramesOfDeadSiteDoNotStallTheNetwork) {
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  // Client parks on an import that will never resolve...
  net.submit_source("client", "import ghost from server in ghost![1]");
  auto r1 = net.run();
  EXPECT_TRUE(r1.stalled);
  // ...then crashes. The survivors' view: nothing outstanding.
  net.find_site("client")->kill();
  net.submit_source("server", "print[\"alive\"]");
  auto r2 = net.run();
  EXPECT_EQ(net.output("server"), std::vector<std::string>{"alive"});
  // The name service still holds the dead client's lookup (it has no
  // failure detector — future work in the paper and here), but no live
  // site is blocked.
  EXPECT_FALSE(r2.budget_exhausted);
}

TEST(Fault, FailoverByReexport) {
  // Reconfiguration: a backup site re-exports the dead primary's service
  // name; clients that import afterwards are routed to the backup.
  Network net;
  net.add_node();
  net.add_node();
  net.add_node();
  net.add_site(0, "primary");
  net.add_site(1, "backup");
  net.add_site(2, "client");

  net.submit_source("primary",
                    "export new p in p?{ val(x, r) = r![x + 1] }");
  auto r1 = net.run();
  EXPECT_TRUE(r1.quiescent);
  net.find_site("primary")->kill();

  // The backup takes over the (site-qualified) identity by exporting
  // under the primary's site name is not possible — names are keyed by
  // exporting site — so the service name is re-homed: clients are told
  // to import from the backup. (A transparent takeover would need the
  // distributed name service the paper defers to future work.)
  net.submit_source("backup",
                    "export new p in p?{ val(x, r) = r![x + 100] }");
  net.submit_source("client",
                    "import p from backup in let z = p![1] in print[z]");
  auto r2 = net.run();
  EXPECT_TRUE(r2.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"101"});
}

TEST(Fault, ReexportAtSameSiteReplacesBinding) {
  // The name service keeps the newest binding for a key: a site can
  // replace its own export (e.g. after an internal restart).
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server", "export new p in p?{ val(x, r) = r![1] }");
  auto r1 = net.run();
  EXPECT_TRUE(r1.quiescent);
  net.submit_source("server", "export new p in p?{ val(x, r) = r![2] }");
  auto r2 = net.run();
  EXPECT_TRUE(r2.quiescent);
  net.submit_source("client",
                    "import p from server in let z = p![0] in print[z]");
  auto r3 = net.run();
  EXPECT_TRUE(r3.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"2"});
}

TEST(Fault, ThreadedDriverSurvivesDeadSite) {
  Network::Config cfg;
  cfg.mode = Network::Mode::kThreaded;
  cfg.timeout_ms = 5000;
  Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.find_site("server")->kill();
  net.submit_source("client", "print[\"still here\"]");
  auto res = net.run();
  EXPECT_FALSE(res.budget_exhausted);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"still here"});
}

}  // namespace
}  // namespace dityco::core
