#include "calculus/subst.hpp"

#include <atomic>

namespace dityco::calc {

namespace {

// ---------------------------------------------------------------------
// Free identifier computation.
// ---------------------------------------------------------------------

struct FreeAcc {
  std::set<std::string> plain_names;
  std::set<std::string> located_names;  // "s.x"
  std::set<std::string> plain_classes;
};

void free_expr(const Expr& e, std::set<std::string>& bound, FreeAcc& acc) {
  std::visit(
      [&](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Expr::Var>) {
          if (n.ref.located()) {
            acc.located_names.insert(*n.ref.site + "." + n.ref.name);
          } else if (!bound.contains(n.ref.name)) {
            acc.plain_names.insert(n.ref.name);
          }
        } else if constexpr (std::is_same_v<T, Expr::Binop>) {
          free_expr(*n.l, bound, acc);
          free_expr(*n.r, bound, acc);
        } else if constexpr (std::is_same_v<T, Expr::Unop>) {
          free_expr(*n.e, bound, acc);
        }
      },
      e.node);
}

void free_ref(const NameRef& r, std::set<std::string>& bound, FreeAcc& acc) {
  if (r.located()) {
    acc.located_names.insert(*r.site + "." + r.name);
  } else if (!bound.contains(r.name)) {
    acc.plain_names.insert(r.name);
  }
}

void free_class_ref(const NameRef& r, std::set<std::string>& bound_cls,
                    FreeAcc& acc) {
  if (r.located()) {
    acc.located_names.insert(*r.site + "." + r.name);
  } else if (!bound_cls.contains(r.name)) {
    acc.plain_classes.insert(r.name);
  }
}

/// RAII scope guard: inserts names into a bound set and removes the ones
/// that were newly inserted on destruction.
class Scope {
 public:
  Scope(std::set<std::string>& bound, const std::vector<std::string>& names)
      : bound_(bound) {
    for (const auto& n : names)
      if (bound_.insert(n).second) added_.push_back(n);
  }
  ~Scope() {
    for (const auto& n : added_) bound_.erase(n);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::set<std::string>& bound_;
  std::vector<std::string> added_;
};

void free_proc(const Proc& p, std::set<std::string>& bound,
               std::set<std::string>& bound_cls, FreeAcc& acc) {
  std::visit(
      [&](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Proc::Nil>) {
        } else if constexpr (std::is_same_v<T, Proc::Par>) {
          free_proc(*n.left, bound, bound_cls, acc);
          free_proc(*n.right, bound, bound_cls, acc);
        } else if constexpr (std::is_same_v<T, Proc::New> ||
                             std::is_same_v<T, Proc::ExportNew>) {
          Scope s(bound, n.names);
          free_proc(*n.body, bound, bound_cls, acc);
        } else if constexpr (std::is_same_v<T, Proc::Msg>) {
          free_ref(n.target, bound, acc);
          for (const auto& a : n.args) free_expr(*a, bound, acc);
        } else if constexpr (std::is_same_v<T, Proc::Obj>) {
          free_ref(n.target, bound, acc);
          for (const auto& m : n.methods) {
            Scope s(bound, m.params);
            free_proc(*m.body, bound, bound_cls, acc);
          }
        } else if constexpr (std::is_same_v<T, Proc::Inst>) {
          free_class_ref(n.cls, bound_cls, acc);
          for (const auto& a : n.args) free_expr(*a, bound, acc);
        } else if constexpr (std::is_same_v<T, Proc::Def> ||
                             std::is_same_v<T, Proc::ExportDef>) {
          std::vector<std::string> cls_names;
          for (const auto& d : n.defs) cls_names.push_back(d.name);
          Scope sc(bound_cls, cls_names);
          for (const auto& d : n.defs) {
            Scope sp(bound, d.params);
            free_proc(*d.body, bound, bound_cls, acc);
          }
          free_proc(*n.body, bound, bound_cls, acc);
        } else if constexpr (std::is_same_v<T, Proc::If>) {
          free_expr(*n.cond, bound, acc);
          free_proc(*n.then_p, bound, bound_cls, acc);
          free_proc(*n.else_p, bound, bound_cls, acc);
        } else if constexpr (std::is_same_v<T, Proc::Print>) {
          for (const auto& a : n.args) free_expr(*a, bound, acc);
          free_proc(*n.cont, bound, bound_cls, acc);
        } else if constexpr (std::is_same_v<T, Proc::ImportName>) {
          // import x from s in P binds x in P (as an alias for s.x).
          Scope s(bound, {n.name});
          free_proc(*n.body, bound, bound_cls, acc);
        } else if constexpr (std::is_same_v<T, Proc::ImportClass>) {
          Scope s(bound_cls, {n.name});
          free_proc(*n.body, bound, bound_cls, acc);
        }
      },
      p.node);
}

FreeAcc free_all(const Proc& p) {
  FreeAcc acc;
  std::set<std::string> bound, bound_cls;
  free_proc(p, bound, bound_cls, acc);
  return acc;
}

// ---------------------------------------------------------------------
// Substitution engine: simultaneous, capture-avoiding rewriting of free
// name and class-variable occurrences. Keys may be plain or located.
// ---------------------------------------------------------------------

using RefMap = std::map<NameRef, NameRef>;

struct Engine {
  RefMap nsub;   // name substitution
  RefMap csub;   // class-variable substitution

  NameRef map_name(const NameRef& r) const {
    auto it = nsub.find(r);
    return it == nsub.end() ? r : it->second;
  }
  NameRef map_class(const NameRef& r) const {
    auto it = csub.find(r);
    return it == csub.end() ? r : it->second;
  }

  /// Plain names that appear as *replacements*; a binder equal to one of
  /// these would capture, so it must be freshened.
  std::set<std::string> avoid(const RefMap& m) const {
    std::set<std::string> out;
    for (const auto& [k, v] : m)
      if (!v.located()) out.insert(v.name);
    return out;
  }

  ExprPtr expr(const ExprPtr& e) const {
    return std::visit(
        [&](const auto& n) -> ExprPtr {
          using T = std::decay_t<decltype(n)>;
          if constexpr (std::is_same_v<T, Expr::Var>) {
            NameRef r = map_name(n.ref);
            if (r == n.ref) return e;
            return mk_var(std::move(r));
          } else if constexpr (std::is_same_v<T, Expr::Binop>) {
            return mk_binop(n.op, expr(n.l), expr(n.r));
          } else if constexpr (std::is_same_v<T, Expr::Unop>) {
            return mk_unop(n.op, expr(n.e));
          } else {
            return e;
          }
        },
        e->node);
  }

  std::vector<ExprPtr> exprs(const std::vector<ExprPtr>& as) const {
    std::vector<ExprPtr> out;
    out.reserve(as.size());
    for (const auto& a : as) out.push_back(expr(a));
    return out;
  }

  /// Enter a scope binding `names` (plain). Returns the engine to use for
  /// the body and rewrites `names` in place when freshening is required.
  Engine bind_names(std::vector<std::string>& names) const {
    Engine inner = *this;
    const auto av = avoid(inner.nsub);
    for (auto& x : names) {
      inner.nsub.erase(NameRef{std::nullopt, x});
      if (av.contains(x)) {
        std::string fx = fresh_name(x);
        inner.nsub[NameRef{std::nullopt, x}] = NameRef{std::nullopt, fx};
        x = std::move(fx);
      }
    }
    return inner;
  }

  Engine bind_classes(std::vector<std::string>& names) const {
    Engine inner = *this;
    const auto av = avoid(inner.csub);
    for (auto& x : names) {
      inner.csub.erase(NameRef{std::nullopt, x});
      if (av.contains(x)) {
        std::string fx = fresh_name(x);
        inner.csub[NameRef{std::nullopt, x}] = NameRef{std::nullopt, fx};
        x = std::move(fx);
      }
    }
    return inner;
  }

  ProcPtr proc(const ProcPtr& p) const {
    return std::visit(
        [&](const auto& n) -> ProcPtr {
          using T = std::decay_t<decltype(n)>;
          if constexpr (std::is_same_v<T, Proc::Nil>) {
            return p;
          } else if constexpr (std::is_same_v<T, Proc::Par>) {
            return mk_par(proc(n.left), proc(n.right));
          } else if constexpr (std::is_same_v<T, Proc::New>) {
            auto names = n.names;
            Engine inner = bind_names(names);
            return mk_new(std::move(names), inner.proc(n.body));
          } else if constexpr (std::is_same_v<T, Proc::ExportNew>) {
            auto names = n.names;
            Engine inner = bind_names(names);
            return mk_export_new(std::move(names), inner.proc(n.body));
          } else if constexpr (std::is_same_v<T, Proc::Msg>) {
            return mk_msg(map_name(n.target), n.label, exprs(n.args));
          } else if constexpr (std::is_same_v<T, Proc::Obj>) {
            std::vector<Abstraction> ms;
            ms.reserve(n.methods.size());
            for (const auto& m : n.methods) {
              auto params = m.params;
              Engine inner = bind_names(params);
              ms.push_back({m.name, std::move(params), inner.proc(m.body)});
            }
            return mk_obj(map_name(n.target), std::move(ms));
          } else if constexpr (std::is_same_v<T, Proc::Inst>) {
            return mk_inst(map_class(n.cls), exprs(n.args));
          } else if constexpr (std::is_same_v<T, Proc::Def> ||
                               std::is_same_v<T, Proc::ExportDef>) {
            std::vector<std::string> cls;
            for (const auto& d : n.defs) cls.push_back(d.name);
            Engine cinner = bind_classes(cls);
            std::vector<Abstraction> ds;
            ds.reserve(n.defs.size());
            for (std::size_t i = 0; i < n.defs.size(); ++i) {
              auto params = n.defs[i].params;
              Engine inner = cinner.bind_names(params);
              ds.push_back(
                  {cls[i], std::move(params), inner.proc(n.defs[i].body)});
            }
            if constexpr (std::is_same_v<T, Proc::Def>)
              return mk_def(std::move(ds), cinner.proc(n.body));
            else
              return mk_export_def(std::move(ds), cinner.proc(n.body));
          } else if constexpr (std::is_same_v<T, Proc::If>) {
            return mk_if(expr(n.cond), proc(n.then_p), proc(n.else_p));
          } else if constexpr (std::is_same_v<T, Proc::Print>) {
            return mk_print(exprs(n.args), proc(n.cont));
          } else if constexpr (std::is_same_v<T, Proc::ImportName>) {
            std::vector<std::string> names{n.name};
            Engine inner = bind_names(names);
            return mk_import_name(names[0], n.site, inner.proc(n.body));
          } else if constexpr (std::is_same_v<T, Proc::ImportClass>) {
            std::vector<std::string> names{n.name};
            Engine inner = bind_classes(names);
            return mk_import_class(names[0], n.site, inner.proc(n.body));
          } else {
            return p;
          }
        },
        p->node);
  }
};

}  // namespace

std::set<std::string> free_names(const Proc& p) {
  return free_all(p).plain_names;
}

std::set<std::string> free_located_names(const Proc& p) {
  return free_all(p).located_names;
}

std::set<std::string> free_classes(const Proc& p) {
  return free_all(p).plain_classes;
}

ProcPtr substitute_names(const ProcPtr& p,
                         const std::map<std::string, NameRef>& sub) {
  Engine e;
  for (const auto& [k, v] : sub) e.nsub[NameRef{std::nullopt, k}] = v;
  return e.proc(p);
}

ProcPtr substitute_classes(const ProcPtr& p,
                           const std::map<std::string, NameRef>& sub) {
  Engine e;
  for (const auto& [k, v] : sub) e.csub[NameRef{std::nullopt, k}] = v;
  return e.proc(p);
}

ProcPtr sigma_translate(const ProcPtr& p, const std::string& from,
                        const std::string& to) {
  const FreeAcc acc = free_all(*p);
  Engine e;
  for (const auto& x : acc.plain_names)
    e.nsub[NameRef{std::nullopt, x}] = NameRef{from, x};
  for (const auto& x : acc.plain_classes)
    e.csub[NameRef{std::nullopt, x}] = NameRef{from, x};
  // Located identifiers at the destination become plain again. We cannot
  // distinguish located names from located classes syntactically in the
  // free set, so register the rewrite in both maps (occurrence position
  // disambiguates).
  const std::string prefix = to + ".";
  for (const auto& sx : acc.located_names) {
    if (sx.rfind(prefix, 0) == 0) {
      std::string x = sx.substr(prefix.size());
      e.nsub[NameRef{to, x}] = NameRef{std::nullopt, x};
      e.csub[NameRef{to, x}] = NameRef{std::nullopt, x};
    }
  }
  return e.proc(p);
}

std::string fresh_name(const std::string& base) {
  static std::atomic<std::uint64_t> counter{0};
  return base + "$" + std::to_string(counter.fetch_add(1));
}

}  // namespace dityco::calc
