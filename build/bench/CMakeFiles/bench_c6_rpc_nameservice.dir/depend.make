# Empty dependencies file for bench_c6_rpc_nameservice.
# This may be replaced when dependencies are built.
