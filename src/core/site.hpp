// A DiTyCO site: an extended TyCO virtual machine plus the structures of
// fig. 3 — incoming/outgoing queues, the export table (inside the
// Machine), a dynamic-link cache for fetched classes, and the
// RemoteBackend that re-implements trmsg/trobj/instof for network
// references (section 5).
//
// Threading contract: the Machine and process_incoming()/run_slice() are
// owned by exactly one executor thread; push_incoming()/pop_outgoing()
// are thread-safe and are the only surface touched by the node daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/wire.hpp"
#include "net/transport.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "vm/machine.hpp"

namespace dityco::ns {
class LeaseCache;
class ShardRouter;
}  // namespace dityco::ns

namespace dityco::core {

class Site {
 public:
  /// Mobility counters. Written by the executor thread; the cells are
  /// atomic (obs::Counter) so drivers and benches may read them while a
  /// threaded Network is running.
  struct MobilityStats {
    obs::Counter msgs_shipped;      // SHIPM departures
    obs::Counter objs_shipped;      // SHIPO departures
    obs::Counter msgs_received;
    obs::Counter objs_received;
    obs::Counter fetch_requests;    // FETCH round trips issued
    obs::Counter fetch_cache_hits;  // dynamic-link cache hits
    obs::Counter fetch_served;      // FETCH requests answered
    obs::Counter loopback;          // remote ops resolved locally
    obs::Counter dropped;           // deliveries to this site after it
                                    // failed (fault injection)
    obs::Counter gc_rel_sent;       // REL frames sent to owners
    obs::Counter gc_rel_received;   // REL frames applied as owner
    obs::Counter gc_rel_dead;       // RELs discarded (owner confirmed dead)
    obs::Counter peers_down;        // PEER-DOWN notices processed
  };

  Site(std::string name, std::uint32_t node_id, std::uint32_t site_id,
       std::uint32_t ns_node);
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const std::string& name() const { return name_; }
  std::uint32_t node_id() const { return node_id_; }
  std::uint32_t site_id() const { return site_id_; }
  /// Repoint this site's name-service requests (distributed NS mode).
  void set_ns_node(std::uint32_t node) { ns_node_ = node; }
  /// Sharded NS mode: route each request to the owning shard primary
  /// instead of ns_node_. The router outlives the site (Network owns it).
  void set_ns_router(ns::ShardRouter* router) { ns_router_ = router; }
  /// Lease cache consulted before lookups cross the wire (one per node,
  /// owned by the Network; outlives the site).
  void set_lease_cache(ns::LeaseCache* cache) { lease_cache_ = cache; }
  vm::Machine& machine() { return machine_; }
  const vm::Machine& machine() const { return machine_; }

  /// TyCOi: submit a compiled program for execution at this site.
  void submit(const vm::Program& p) { machine_.spawn_program(p); }

  /// Attach a type signature to a to-be-exported identifier (the paper's
  /// combined static/dynamic checking; see src/types).
  void set_export_signature(const std::string& name, std::string sig) {
    export_sigs_[name] = std::move(sig);
  }
  /// Expected signature for an import (checked against the name-service
  /// reply at run time).
  void expect_import_signature(const std::string& site,
                               const std::string& name, std::string sig) {
    import_sigs_[{site, name}] = std::move(sig);
  }

  // -- executor-thread operations --

  /// Parse and apply queued network deliveries to the machine.
  std::size_t process_incoming(std::size_t max_packets = SIZE_MAX);
  /// Run the VM for a bounded number of instructions.
  std::uint64_t run_slice(std::uint64_t max_instructions) {
    return failed() ? 0 : machine_.run(max_instructions);
  }

  /// Distributed-GC collection pass (executor thread, between run
  /// slices): local mark-and-sweep with the site's fetch structures as
  /// extra roots, then queue one REL per foreign reference whose
  /// cumulative released credit changed. With `final`, also drops the
  /// dynamic-link cache and unregisters this site's name-service
  /// bindings (shutdown epoch). With `resend`, retransmits *every*
  /// non-zero cumulative release (heals lost RELs; idempotent at the
  /// owner). Returns the number of packets queued. No-op unless
  /// set_gc_enabled(true).
  std::size_t collect(bool final, bool resend = false);

  /// Opt this site into the credit-based distributed GC (wire frames it
  /// sends will carry the kGcFlag credit fields).
  void set_gc_enabled(bool on) { gc_enabled_ = on; }
  bool gc_enabled() const { return gc_enabled_; }

  // -- daemon-thread operations (thread-safe) --

  /// `src_node` is the sending node when known (the daemon threads it
  /// through from the transport packet); it drives GC debtor attribution
  /// — kUnknownSource deliveries are processed but not attributed.
  static constexpr std::uint32_t kUnknownSource = 0xffffffffu;
  void push_incoming(std::vector<std::uint8_t> bytes,
                     std::uint32_t src_node = kUnknownSource);
  bool pop_outgoing(net::Packet& out);
  std::size_t incoming_size() const;
  std::size_t outgoing_size() const;

  /// Disable the dynamic-link cache (ablation A2): every remote
  /// instantiation re-fetches the class code.
  void set_fetch_cache_enabled(bool on) { fetch_cache_enabled_ = on; }

  /// Fault injection (the paper's future-work item "detect site
  /// failures, reconfigure the computation topology"): a killed site
  /// stops executing and silently drops every subsequent delivery, like
  /// a crashed cluster node. Another site may take over its exported
  /// identifiers by re-exporting them (the name service keeps the newest
  /// binding).
  void kill() { failed_.store(true, std::memory_order_relaxed); }
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  /// Nodes this site has seen a PEER-DOWN notice for (executor thread).
  const std::set<std::uint32_t>& dead_peers() const { return dead_peers_; }

  const MobilityStats& mobility() const { return mobility_; }
  /// Snapshot of accumulated errors (copied under a lock; safe to call
  /// while the executor thread is running).
  std::vector<std::string> errors() const;

  // -- observability --

  /// Start recording trace events into a ring of `capacity` slots
  /// (rounded up to a power of two). Also hooks the VM so COMM/INST and
  /// run-slices are recorded. Call before the site starts executing.
  void enable_tracing(std::size_t capacity);
  /// Keep 1-in-`every` trace ids (deterministic in `seed`; see
  /// obs::trace_id_sampled). Call before the site starts executing.
  void set_trace_sampling(std::uint64_t every, std::uint64_t seed) {
    ring_.set_sampling(every, seed);
  }
  obs::TraceRing& trace_ring() { return ring_; }
  const obs::TraceRing& trace_ring() const { return ring_; }

  /// Attach a flight recorder (tail-based trace retention): departure /
  /// completion hooks for SHIPM/SHIPO/FETCH feed its latency policy, and
  /// error / credit-starvation / stale-REL paths promote their trace ids
  /// unconditionally. The recorder must outlive the site (Network owns
  /// it). Call alongside enable_tracing, before the site executes.
  void set_flight(obs::FlightRecorder* f) {
    flight_ = f;
    if (f != nullptr) f->attach_ring(&ring_);
  }

  /// Attach the SLO plane's request ledger: SHIPM/SHIPO/FETCH departures
  /// and completions feed the per-stage latency histograms and the
  /// objective/burn-rate evaluation (obs/slo.hpp). Same hook points and
  /// lifetime rules as set_flight. Call before the site executes.
  void set_slo(obs::SloPlane* s) { slo_ = s; }

  /// Register this site's mobility counters, latency histograms and the
  /// VM's counters with `registry`, labelled {site="<name>"}. The
  /// registration dies with the site.
  void register_metrics(obs::Registry& registry);

  /// Executor thread: rebuild and publish the machine's credit-state
  /// snapshot for concurrent /gc scrapes (called at the end of every
  /// collect() pass and on executor idle transitions — the same
  /// single-writer/atomic-snapshot discipline as the trace ring).
  void publish_gc_snapshot();
  /// Last published snapshot (any thread; null until first publish).
  std::shared_ptr<const vm::Machine::GcSnapshot> gc_snapshot() const;

 private:
  class Backend;

  void handle_packet(const std::vector<std::uint8_t>& bytes);
  void send_packet(std::uint32_t dst_node, std::vector<std::uint8_t> bytes);
  void record_error(std::string what);
  /// Fresh trace id + sampling decision when tracing is on; an untraced
  /// site returns id 0 (v1 frame on the wire).
  obs::TraceTag fresh_trace_id() {
    if (!ring_.enabled()) return {};
    obs::TraceTag t;
    t.id = obs::next_trace_id();
    t.sampled = ring_.sample(t.id);
    return t;
  }
  /// The ring's time base (virtual under the sim driver) so latency
  /// measurements are deterministic there; wall clock when untraced.
  std::uint64_t now_ns() const {
    return ring_.enabled() ? ring_.now_ns() : obs::trace_now_ns();
  }

  // RemoteBackend entry points (called from machine_.run()).
  void ship_message(const vm::NetRef& target, const std::string& label,
                    std::vector<vm::Value> args);
  void ship_object(const vm::NetRef& target, std::uint32_t seg_slot,
                   std::vector<vm::Value> env);
  void fetch_instantiate(const vm::NetRef& cls, std::vector<vm::Value> args);
  void export_id(const std::string& name, const vm::NetRef& ref);
  void import_id(const std::string& site, const std::string& name,
                 vm::NetRef::Kind kind, std::uint64_t token);

  /// Owning shard primary for a directory key (ns_node_ when central).
  std::uint32_t ns_target(const std::string& site,
                          const std::string& name) const;

  std::string name_;
  std::uint32_t node_id_, site_id_, ns_node_;
  ns::ShardRouter* ns_router_ = nullptr;
  ns::LeaseCache* lease_cache_ = nullptr;
  // Lookup tokens answered from the lease cache (a synthesized reply
  // must not re-fill the cache — that would renew the lease for free).
  std::set<std::uint64_t> cache_tokens_;
  bool gc_enabled_ = false;
  // Name-service bindings this site created, kept for the final
  // unregister epoch (duplicates allowed: re-export pins again).
  std::vector<std::pair<std::string, vm::NetRef>> exported_names_;
  // atomic so TyCOmon's /healthz can read it off-thread.
  std::atomic<bool> failed_{false};
  std::unique_ptr<Backend> backend_;
  vm::Machine machine_;

  struct Delivery {
    std::vector<std::uint8_t> bytes;
    std::uint32_t src_node = kUnknownSource;
  };
  mutable std::mutex queue_mu_;
  std::deque<Delivery> incoming_;
  std::deque<net::Packet> outgoing_;

  // Nodes a failure detector confirmed dead (via PEER-DOWN). Their
  // export credit has been written off; RELs to them are pointless and
  // are discarded instead of queued.
  std::set<std::uint32_t> dead_peers_;

  // FETCH bookkeeping.
  struct FetchInFlight {
    vm::NetRef cls;
    std::uint64_t issued_ns = 0;  // for the fetch round-trip histogram
  };
  bool fetch_cache_enabled_ = true;
  std::map<vm::NetRef, vm::Value> class_cache_;  // dynamic-link cache
  std::map<vm::NetRef, std::vector<std::vector<vm::Value>>> pending_fetch_;
  std::map<std::uint64_t, FetchInFlight> fetch_by_req_;
  std::uint64_t next_req_ = 1;

  std::map<std::string, std::string> export_sigs_;
  std::map<std::pair<std::string, std::string>, std::string> import_sigs_;
  std::map<std::uint64_t, std::pair<std::string, std::string>>
      import_token_keys_;

  MobilityStats mobility_;
  mutable std::mutex err_mu_;
  std::vector<std::string> errors_;

  obs::TraceRing ring_;
  obs::FlightRecorder* flight_ = nullptr;
  obs::SloPlane* slo_ = nullptr;
  // Outbound packet sizes in bytes (16B .. ~256KiB) and FETCH round trips
  // in microseconds.
  obs::Histogram packet_bytes_{obs::Histogram::exponential_bounds(16, 4, 8)};
  obs::Histogram fetch_rtt_us_{obs::Histogram::default_bounds()};
  obs::Registry::Registration metrics_reg_;
  obs::Registry::Registration gauges_reg_;

  mutable std::mutex snap_mu_;
  std::shared_ptr<const vm::Machine::GcSnapshot> gc_snap_;
};

}  // namespace dityco::core
