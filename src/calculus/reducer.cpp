#include "calculus/reducer.hpp"

#include <sstream>

#include "calculus/subst.hpp"
#include "support/fmt.hpp"

namespace dityco::calc {

namespace {

std::string join_display(const std::vector<RVal>& vals) {
  std::string out;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i) out += ' ';
    out += rval_display(vals[i]);
  }
  return out;
}

}  // namespace

std::string rval_display(const RVal& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(x);
        } else if constexpr (std::is_same_v<T, bool>) {
          return x ? "true" : "false";
        } else if constexpr (std::is_same_v<T, double>) {
          return format_f64(x);
        } else if constexpr (std::is_same_v<T, std::string>) {
          return x;
        } else {
          return "#chan";
        }
      },
      v);
}

void Reducer::add_program(const std::string& site, ProcPtr p) {
  outputs_.try_emplace(site);
  spawn(Thread{site, std::move(p), nullptr});
}

const std::vector<std::string>& Reducer::output(const std::string& site) const {
  static const std::vector<std::string> empty;
  auto it = outputs_.find(site);
  return it == outputs_.end() ? empty : it->second;
}

std::vector<std::string> Reducer::pending_description() const {
  std::vector<std::string> out;
  for (const auto& [c, ch] : chans_) {
    if (ch.msgs.empty() && ch.objs.empty()) continue;
    std::string line = c.site + "." + c.uid + ": " +
                       std::to_string(ch.msgs.size()) + "msg/" +
                       std::to_string(ch.objs.size()) + "obj";
    for (const auto& m : ch.msgs) line += " !" + m.label;
    out.push_back(std::move(line));
  }
  return out;
}

void Reducer::register_metrics(obs::Registry& registry) {
  // Plain fields + container sizes: not safe to read mid-run, so a live
  // scrape skips this collector.
  metrics_reg_ = registry.add_collector(
      [this](obs::Collector& c) {
        c.counter("calc_comm_reductions", counters_.comm);
        c.counter("calc_inst_reductions", counters_.inst);
        c.counter("calc_shipm", counters_.shipm);
        c.counter("calc_shipo", counters_.shipo);
        c.counter("calc_fetch", counters_.fetch);
        c.counter("calc_admin_steps", counters_.admin);
        c.gauge("calc_runnable", static_cast<std::int64_t>(queue_.size()));
      },
      /*live_safe=*/false);
}

std::vector<std::string> Reducer::sites() const {
  std::vector<std::string> out;
  out.reserve(outputs_.size());
  for (const auto& [s, _] : outputs_) out.push_back(s);
  return out;
}

RVal Reducer::resolve_val(const NameRef& r, const EnvPtr& env,
                                   const std::string& site) {
  if (!r.located()) {
    for (const Env* e = env.get(); e != nullptr; e = e->parent.get()) {
      auto it = e->vars.find(r.name);
      if (it != e->vars.end()) return it->second;
    }
    // Free simple names are implicitly located at the current site.
    return Chan{site, r.name};
  }
  return Chan{*r.site, r.name};
}

Chan Reducer::resolve_chan(const NameRef& r, const EnvPtr& env,
                           const std::string& site) {
  RVal v = resolve_val(r, env, site);
  if (auto* c = std::get_if<Chan>(&v)) return *c;
  throw EvalError{"name '" + r.name + "' is bound to a non-channel value"};
}

RVal Reducer::eval(const Expr& e, const EnvPtr& env, const std::string& site) {
  return std::visit(
      [&](const auto& n) -> RVal {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Expr::IntLit>) {
          return n.v;
        } else if constexpr (std::is_same_v<T, Expr::BoolLit>) {
          return n.v;
        } else if constexpr (std::is_same_v<T, Expr::FloatLit>) {
          return n.v;
        } else if constexpr (std::is_same_v<T, Expr::StrLit>) {
          return n.v;
        } else if constexpr (std::is_same_v<T, Expr::Var>) {
          return resolve_val(n.ref, env, site);
        } else if constexpr (std::is_same_v<T, Expr::Unop>) {
          RVal v = eval(*n.e, env, site);
          if (n.op == "-") {
            if (auto* i = std::get_if<std::int64_t>(&v)) return -*i;
            if (auto* f = std::get_if<double>(&v)) return -*f;
          } else if (n.op == "!") {
            if (auto* b = std::get_if<bool>(&v)) return !*b;
          }
          throw EvalError{"bad operand for unary " + n.op};
        } else if constexpr (std::is_same_v<T, Expr::Binop>) {
          RVal l = eval(*n.l, env, site);
          RVal r = eval(*n.r, env, site);
          const std::string& op = n.op;
          if (op == "&&" || op == "||") {
            auto* lb = std::get_if<bool>(&l);
            auto* rb = std::get_if<bool>(&r);
            if (!lb || !rb) throw EvalError{"non-boolean operand for " + op};
            return op == "&&" ? (*lb && *rb) : (*lb || *rb);
          }
          if (op == "++") {
            auto* ls = std::get_if<std::string>(&l);
            auto* rs = std::get_if<std::string>(&r);
            if (ls && rs) return *ls + *rs;
            throw EvalError{"non-string operand for ++"};
          }
          if (op == "==" || op == "!=") {
            const bool eq = l == r;
            return op == "==" ? eq : !eq;
          }
          // Arithmetic / relational: ints, or mixed numeric promoting to
          // double.
          auto* li = std::get_if<std::int64_t>(&l);
          auto* ri = std::get_if<std::int64_t>(&r);
          if (li && ri) {
            std::int64_t a = *li, b = *ri;
            if (op == "+") return a + b;
            if (op == "-") return a - b;
            if (op == "*") return a * b;
            if (op == "/") {
              if (b == 0) throw EvalError{"integer division by zero"};
              return a / b;
            }
            if (op == "%") {
              if (b == 0) throw EvalError{"integer modulo by zero"};
              return a % b;
            }
            if (op == "<") return a < b;
            if (op == "<=") return a <= b;
            if (op == ">") return a > b;
            if (op == ">=") return a >= b;
            throw EvalError{"unknown operator " + op};
          }
          auto as_num = [](const RVal& v, const std::string& op) -> double {
            if (auto* i = std::get_if<std::int64_t>(&v))
              return static_cast<double>(*i);
            if (auto* f = std::get_if<double>(&v)) return *f;
            throw EvalError{"non-numeric operand for " + op};
          };
          const double a = as_num(l, op), b = as_num(r, op);
          if (op == "+") return a + b;
          if (op == "-") return a - b;
          if (op == "*") return a * b;
          if (op == "/") return a / b;
          if (op == "<") return a < b;
          if (op == "<=") return a <= b;
          if (op == ">") return a > b;
          if (op == ">=") return a >= b;
          throw EvalError{"unknown operator " + op};
        } else {
          throw EvalError{"unreachable expression form"};
        }
      },
      e.node);
}

void Reducer::try_reduce(const Chan& c) {
  auto it = chans_.find(c);
  if (it == chans_.end()) return;
  Channel& ch = it->second;
  while (!ch.msgs.empty() && !ch.objs.empty()) {
    PendingObj obj = std::move(ch.objs.front());
    ch.objs.pop_front();
    PendingMsg msg = std::move(ch.msgs.front());
    ch.msgs.pop_front();

    const Abstraction* method = nullptr;
    for (const auto& m : obj.methods)
      if (m.name == msg.label) {
        method = &m;
        break;
      }
    if (method == nullptr) {
      errors_.push_back("method not understood: " + msg.label + " at " +
                        c.site + "." + c.uid);
      // The object stays available for subsequent messages; the offending
      // message is dropped (static typing rules this out for checked
      // programs).
      ch.objs.push_front(std::move(obj));
      continue;
    }
    if (method->params.size() != msg.args.size()) {
      errors_.push_back("arity mismatch on " + msg.label + " at " + c.site +
                        "." + c.uid);
      ch.objs.push_front(std::move(obj));
      continue;
    }
    auto env = std::make_shared<Env>();
    env->parent = obj.env;
    for (std::size_t i = 0; i < method->params.size(); ++i)
      env->vars[method->params[i]] = std::move(msg.args[i]);
    ++counters_.comm;
    // Reduction happens at the channel's site (rule LOC after SHIP*).
    spawn(Thread{c.site, method->body, std::move(env)});
  }
}

void Reducer::park_on_class(const std::string& site, const std::string& name,
                            Thread t) {
  class_waiters_[{site, name}].push_back(std::move(t));
}

void Reducer::release_class_waiters(const std::string& site,
                                    const std::string& name) {
  auto it = class_waiters_.find({site, name});
  if (it == class_waiters_.end()) return;
  for (auto& t : it->second) spawn(std::move(t));
  class_waiters_.erase(it);
}

void Reducer::step(Thread t) {
  // Interpret administrative forms inline until the thread dissolves into
  // prefix processes (message / object / instantiation) or terminates.
  for (;;) {
    ++counters_.admin;
    const Proc& p = *t.proc;
    if (std::holds_alternative<Proc::Nil>(p.node)) return;

    if (const auto* par = std::get_if<Proc::Par>(&p.node)) {
      spawn(Thread{t.site, par->right, t.env});
      t.proc = par->left;
      continue;
    }
    if (const auto* nu = std::get_if<Proc::New>(&p.node)) {
      auto env = std::make_shared<Env>();
      env->parent = t.env;
      for (const auto& x : nu->names)
        env->vars[x] = Chan{t.site, fresh_name(x)};
      t.env = std::move(env);
      t.proc = nu->body;
      continue;
    }
    if (const auto* ex = std::get_if<Proc::ExportNew>(&p.node)) {
      auto env = std::make_shared<Env>();
      env->parent = t.env;
      // Exported names keep their lexeme as public identity: any site that
      // resolves s.x reaches this channel.
      for (const auto& x : ex->names) env->vars[x] = Chan{t.site, x};
      t.env = std::move(env);
      t.proc = ex->body;
      continue;
    }
    if (const auto* d = std::get_if<Proc::Def>(&p.node)) {
      auto env = std::make_shared<Env>();
      env->parent = t.env;
      for (const auto& def : d->defs) {
        auto cls = std::make_shared<ClassClosure>();
        cls->def_site = t.site;
        cls->name = def.name;
        cls->params = def.params;
        cls->body = def.body;
        cls->env = env;  // cyclic: enables mutual recursion
        env->classes[def.name] = cls;
      }
      t.env = std::move(env);
      t.proc = d->body;
      continue;
    }
    if (const auto* d = std::get_if<Proc::ExportDef>(&p.node)) {
      auto env = std::make_shared<Env>();
      env->parent = t.env;
      for (const auto& def : d->defs) {
        auto cls = std::make_shared<ClassClosure>();
        cls->def_site = t.site;
        cls->name = def.name;
        cls->params = def.params;
        cls->body = def.body;
        cls->env = env;
        env->classes[def.name] = cls;
        exported_classes_[{t.site, def.name}] = cls;
        release_class_waiters(t.site, def.name);
      }
      t.env = std::move(env);
      t.proc = d->body;
      continue;
    }
    if (const auto* im = std::get_if<Proc::ImportName>(&p.node)) {
      auto env = std::make_shared<Env>();
      env->parent = t.env;
      env->vars[im->name] = Chan{im->site, im->name};
      t.env = std::move(env);
      t.proc = im->body;
      continue;
    }
    if (const auto* im = std::get_if<Proc::ImportClass>(&p.node)) {
      auto env = std::make_shared<Env>();
      env->parent = t.env;
      env->classes[im->name] = RemoteClass{im->site, im->name};
      t.env = std::move(env);
      t.proc = im->body;
      continue;
    }
    try {
      if (const auto* iff = std::get_if<Proc::If>(&p.node)) {
        RVal c = eval(*iff->cond, t.env, t.site);
        auto* b = std::get_if<bool>(&c);
        if (!b) throw EvalError{"non-boolean condition"};
        t.proc = *b ? iff->then_p : iff->else_p;
        continue;
      }
      if (const auto* pr = std::get_if<Proc::Print>(&p.node)) {
        std::vector<RVal> vals;
        vals.reserve(pr->args.size());
        for (const auto& a : pr->args) vals.push_back(eval(*a, t.env, t.site));
        outputs_[t.site].push_back(join_display(vals));
        t.proc = pr->cont;
        continue;
      }
      if (const auto* m = std::get_if<Proc::Msg>(&p.node)) {
        Chan c = resolve_chan(m->target, t.env, t.site);
        std::vector<RVal> args;
        args.reserve(m->args.size());
        for (const auto& a : m->args) args.push_back(eval(*a, t.env, t.site));
        if (c.site != t.site) ++counters_.shipm;  // rule SHIPM
        chans_[c].msgs.push_back(PendingMsg{m->label, std::move(args)});
        try_reduce(c);
        return;
      }
      if (const auto* o = std::get_if<Proc::Obj>(&p.node)) {
        Chan c = resolve_chan(o->target, t.env, t.site);
        if (c.site != t.site) ++counters_.shipo;  // rule SHIPO
        chans_[c].objs.push_back(PendingObj{t.site, o->methods, t.env});
        try_reduce(c);
        return;
      }
      if (const auto* in = std::get_if<Proc::Inst>(&p.node)) {
        // Resolve the class binding through the lexical environment.
        ClassBinding binding;
        bool found = false;
        if (in->cls.located()) {
          binding = RemoteClass{*in->cls.site, in->cls.name};
          found = true;
        } else {
          for (const Env* e = t.env.get(); e != nullptr;
               e = e->parent.get()) {
            auto it = e->classes.find(in->cls.name);
            if (it != e->classes.end()) {
              binding = it->second;
              found = true;
              break;
            }
          }
        }
        if (!found) throw EvalError{"unbound class " + in->cls.name};

        ClassPtr cls;
        if (auto* local = std::get_if<ClassPtr>(&binding)) {
          cls = *local;
        } else {
          const auto& rc = std::get<RemoteClass>(binding);
          auto it = exported_classes_.find({rc.site, rc.name});
          if (it == exported_classes_.end()) {
            // The defining site has not exported the class yet: park until
            // it does (the implementation's blocking import).
            park_on_class(rc.site, rc.name, std::move(t));
            return;
          }
          cls = it->second;
        }
        if (cls->params.size() != in->args.size())
          throw EvalError{"arity mismatch instantiating " + cls->name};
        // FETCH accounting: first time this site links code defined
        // elsewhere (the implementation's dynamic-link cache).
        if (cls->def_site != t.site &&
            linked_.insert({t.site, cls->env.get()}).second)
          ++counters_.fetch;
        auto env = std::make_shared<Env>();
        env->parent = cls->env;
        for (std::size_t i = 0; i < cls->params.size(); ++i)
          env->vars[cls->params[i]] = eval(*in->args[i], t.env, t.site);
        ++counters_.inst;
        spawn(Thread{t.site, cls->body, std::move(env)});
        return;
      }
    } catch (const EvalError& err) {
      errors_.push_back(t.site + ": " + err.what);
      return;
    }
    errors_.push_back(t.site + ": unhandled process form");
    return;
  }
}

Reducer::Result Reducer::run() {
  Result res;
  std::uint64_t steps = 0;
  while (!queue_.empty()) {
    if (++steps > cfg_.max_steps) {
      res.budget_exhausted = true;
      break;
    }
    Thread t = std::move(queue_.front());
    queue_.pop_front();
    step(std::move(t));
  }
  for (const auto& [c, ch] : chans_) {
    res.pending_messages += ch.msgs.size();
    res.pending_objects += ch.objs.size();
  }
  res.stalled = !class_waiters_.empty() && queue_.empty();
  res.quiescent = queue_.empty() && !res.stalled && !res.budget_exhausted;
  res.counters = counters_;
  res.errors = errors_;
  return res;
}

}  // namespace dityco::calc
