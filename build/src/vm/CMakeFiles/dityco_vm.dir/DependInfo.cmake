
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/machine.cpp" "src/vm/CMakeFiles/dityco_vm.dir/machine.cpp.o" "gcc" "src/vm/CMakeFiles/dityco_vm.dir/machine.cpp.o.d"
  "/root/repo/src/vm/segment.cpp" "src/vm/CMakeFiles/dityco_vm.dir/segment.cpp.o" "gcc" "src/vm/CMakeFiles/dityco_vm.dir/segment.cpp.o.d"
  "/root/repo/src/vm/verify.cpp" "src/vm/CMakeFiles/dityco_vm.dir/verify.cpp.o" "gcc" "src/vm/CMakeFiles/dityco_vm.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dityco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
