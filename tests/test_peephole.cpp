// Peephole optimiser tests: folded programs behave identically, shrink,
// still verify, and hazardous folds (division by zero, jump targets) are
// left alone.
#include <gtest/gtest.h>

#include "calculus/reducer.hpp"
#include "compiler/codegen.hpp"
#include "compiler/parser.hpp"
#include "compiler/peephole.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"
#include "vm/verify.hpp"

namespace dityco::comp {
namespace {

std::vector<std::string> run_prog(const vm::Program& p) {
  vm::Machine m("m");
  m.spawn_program(p);
  m.run(10'000'000);
  EXPECT_TRUE(m.errors().empty()) << m.errors()[0];
  return m.output();
}

TEST(Peephole, FoldsConstantArithmetic) {
  auto prog = compile_source("print[1 + 2 * 3]", false);
  const std::size_t before = prog.segments[0].code.size();
  const std::size_t removed = peephole(prog);
  EXPECT_GT(removed, 0u);
  EXPECT_LT(prog.segments[0].code.size(), before);
  EXPECT_EQ(run_prog(prog), std::vector<std::string>{"7"});
  EXPECT_TRUE(vm::verify_program(prog).empty());
}

TEST(Peephole, FoldsBooleansAndComparisons) {
  auto prog = compile_source(
      "print[1 < 2, true && false, !(3 == 3), -(4 - 9)]", false);
  peephole(prog);
  EXPECT_EQ(run_prog(prog), std::vector<std::string>{"true false false 5"});
  // Everything folded: the only stack pushes left are the four constants.
  std::size_t ops = 0;
  const auto& code = prog.segments[0].code;
  for (std::size_t i = 0; i < code.size();) {
    const auto op = static_cast<vm::Op>(code[i]);
    if (op != vm::Op::kPushInt && op != vm::Op::kPushBool &&
        op != vm::Op::kPrint && op != vm::Op::kHalt)
      ++ops;
    i += 1 + static_cast<std::size_t>(vm::op_arity(op));
  }
  EXPECT_EQ(ops, 0u) << "no operators should survive";
}

TEST(Peephole, FoldsConstantConditionals) {
  auto prog = compile_source("if 1 < 2 then print[\"t\"] else print[\"e\"]",
                             false);
  const std::size_t removed = peephole(prog);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(run_prog(prog), std::vector<std::string>{"t"});
  auto prog2 = compile_source("if 2 < 1 then print[\"t\"] else print[\"e\"]",
                              false);
  peephole(prog2);
  EXPECT_EQ(run_prog(prog2), std::vector<std::string>{"e"});
}

TEST(Peephole, DivisionByZeroNotFolded) {
  auto prog = compile_source("print[1 / 0]", false);
  peephole(prog);
  vm::Machine m("m");
  m.spawn_program(prog);
  m.run(1000);
  ASSERT_EQ(m.errors().size(), 1u) << "the runtime error must be preserved";
  EXPECT_NE(m.errors()[0].find("division"), std::string::npos);
}

TEST(Peephole, VariablesNotFolded) {
  auto prog = compile_source("new c (c![5] | c?(v) = print[v + 1])", false);
  peephole(prog);
  EXPECT_EQ(run_prog(prog), std::vector<std::string>{"6"});
}

TEST(Peephole, MethodTableOffsetsRemapped) {
  // The constant in the method body shrinks the code before the second
  // method's body; its table offset must follow.
  auto prog = compile_source(
      "new c (c!a[] | c?{ a() = print[2 + 3], b() = print[\"b\"] })", false);
  peephole(prog);
  EXPECT_TRUE(vm::verify_program(prog).empty());
  EXPECT_EQ(run_prog(prog), std::vector<std::string>{"5"});
}

TEST(Peephole, ForkTargetsRemapped) {
  auto prog = compile_source("print[1 + 1] | print[2 + 2] | print[3 + 3]",
                             false);
  peephole(prog);
  EXPECT_TRUE(vm::verify_program(prog).empty());
  auto out = run_prog(prog);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::string>{"2", "4", "6"}));
}

TEST(Peephole, Idempotent) {
  auto prog = compile_source(
      "def F(n, r) = if n == 0 then r![1 * 1] else F[n - 1, r] in "
      "new o (F[2 + 3, o] | o?(v) = print[v])", false);
  peephole(prog);
  auto again = prog;
  EXPECT_EQ(peephole(again), 0u) << "second pass must find nothing";
}

// Differential property: optimised and unoptimised programs agree with
// the reference reducer on random constant-heavy expressions.
class PeepholeProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::string gen_const_expr(Rng& rng, int depth) {
  if (depth == 0 || rng.chance(1, 3))
    return std::to_string(rng.range(-9, 9));
  const char* ops[] = {"+", "-", "*"};
  if (rng.chance(1, 5))
    return "(" + gen_const_expr(rng, depth - 1) + " / " +
           std::to_string(rng.range(1, 7)) + ")";
  return "(" + gen_const_expr(rng, depth - 1) + " " + ops[rng.below(3)] +
         " " + gen_const_expr(rng, depth - 1) + ")";
}

TEST_P(PeepholeProperty, FoldedMatchesReducer) {
  Rng rng(GetParam() * 9176);
  const std::string src = "print[" + gen_const_expr(rng, 5) + ", " +
                          gen_const_expr(rng, 4) + "]";
  calc::Reducer red;
  red.add_program("main", parse_program(src));
  red.run();

  auto prog = compile_source(src, false);
  peephole(prog);
  EXPECT_TRUE(vm::verify_program(prog).empty());
  EXPECT_EQ(run_prog(prog), red.output("main")) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeepholeProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dityco::comp
