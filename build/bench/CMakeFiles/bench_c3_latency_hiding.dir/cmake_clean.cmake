file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_latency_hiding.dir/bench_c3_latency_hiding.cpp.o"
  "CMakeFiles/bench_c3_latency_hiding.dir/bench_c3_latency_hiding.cpp.o.d"
  "bench_c3_latency_hiding"
  "bench_c3_latency_hiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_latency_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
