#include "net/failure.hpp"

#include <cmath>

namespace dityco::net {

void PhiAccrualDetector::heartbeat(double now_ms) {
  if (last_ms_ >= 0 && now_ms >= last_ms_) {
    intervals_.push_back(now_ms - last_ms_);
    sum_ms_ += intervals_.back();
    if (intervals_.size() > opt_.window) {
      sum_ms_ -= intervals_.front();
      intervals_.pop_front();
    }
  }
  if (now_ms > last_ms_) last_ms_ = now_ms;
}

double PhiAccrualDetector::mean_interval_ms() const {
  double mean = opt_.first_interval_ms;
  if (!intervals_.empty())
    mean = sum_ms_ / static_cast<double>(intervals_.size());
  return mean < opt_.min_interval_ms ? opt_.min_interval_ms : mean;
}

double PhiAccrualDetector::phi(double now_ms) const {
  if (last_ms_ < 0) return 0.0;
  const double elapsed = now_ms - last_ms_;
  if (elapsed <= 0) return 0.0;
  // P(next arrival later than `elapsed`) = exp(-elapsed/mean) under the
  // exponential model; phi = -log10 of that probability.
  return elapsed / (mean_interval_ms() * std::log(10.0));
}

void PhiAccrualDetector::reset() {
  intervals_.clear();
  sum_ms_ = 0.0;
  last_ms_ = -1.0;
}

}  // namespace dityco::net
