#include "calculus/ast.hpp"

#include <sstream>

namespace dityco::calc {

ExprPtr mk_int(std::int64_t v) {
  return std::make_shared<Expr>(Expr{Expr::IntLit{v}});
}
ExprPtr mk_bool(bool v) { return std::make_shared<Expr>(Expr{Expr::BoolLit{v}}); }
ExprPtr mk_float(double v) {
  return std::make_shared<Expr>(Expr{Expr::FloatLit{v}});
}
ExprPtr mk_str(std::string v) {
  return std::make_shared<Expr>(Expr{Expr::StrLit{std::move(v)}});
}
ExprPtr mk_var(NameRef r) {
  return std::make_shared<Expr>(Expr{Expr::Var{std::move(r)}});
}
ExprPtr mk_var(std::string name) {
  return mk_var(NameRef{std::nullopt, std::move(name)});
}
ExprPtr mk_binop(std::string op, ExprPtr l, ExprPtr r) {
  return std::make_shared<Expr>(
      Expr{Expr::Binop{std::move(op), std::move(l), std::move(r)}});
}
ExprPtr mk_unop(std::string op, ExprPtr e) {
  return std::make_shared<Expr>(Expr{Expr::Unop{std::move(op), std::move(e)}});
}

ProcPtr mk_nil() {
  static const ProcPtr nil = std::make_shared<Proc>(Proc{Proc::Nil{}});
  return nil;
}
ProcPtr mk_par(ProcPtr l, ProcPtr r) {
  return std::make_shared<Proc>(Proc{Proc::Par{std::move(l), std::move(r)}});
}
ProcPtr mk_par(std::vector<ProcPtr> ps) {
  if (ps.empty()) return mk_nil();
  ProcPtr acc = ps.back();
  for (auto it = ps.rbegin() + 1; it != ps.rend(); ++it)
    acc = mk_par(*it, acc);
  return acc;
}
ProcPtr mk_new(std::vector<std::string> names, ProcPtr body) {
  return std::make_shared<Proc>(
      Proc{Proc::New{std::move(names), std::move(body)}});
}
ProcPtr mk_msg(NameRef target, std::string label, std::vector<ExprPtr> args) {
  return std::make_shared<Proc>(
      Proc{Proc::Msg{std::move(target), std::move(label), std::move(args)}});
}
ProcPtr mk_obj(NameRef target, std::vector<Abstraction> methods) {
  return std::make_shared<Proc>(
      Proc{Proc::Obj{std::move(target), std::move(methods)}});
}
ProcPtr mk_inst(NameRef cls, std::vector<ExprPtr> args) {
  return std::make_shared<Proc>(
      Proc{Proc::Inst{std::move(cls), std::move(args)}});
}
ProcPtr mk_def(std::vector<Abstraction> defs, ProcPtr body) {
  return std::make_shared<Proc>(
      Proc{Proc::Def{std::move(defs), std::move(body)}});
}
ProcPtr mk_if(ExprPtr c, ProcPtr t, ProcPtr e) {
  return std::make_shared<Proc>(
      Proc{Proc::If{std::move(c), std::move(t), std::move(e)}});
}
ProcPtr mk_print(std::vector<ExprPtr> args, ProcPtr cont) {
  if (!cont) cont = mk_nil();
  return std::make_shared<Proc>(
      Proc{Proc::Print{std::move(args), std::move(cont)}});
}
ProcPtr mk_export_new(std::vector<std::string> names, ProcPtr body) {
  return std::make_shared<Proc>(
      Proc{Proc::ExportNew{std::move(names), std::move(body)}});
}
ProcPtr mk_export_def(std::vector<Abstraction> defs, ProcPtr body) {
  return std::make_shared<Proc>(
      Proc{Proc::ExportDef{std::move(defs), std::move(body)}});
}
ProcPtr mk_import_name(std::string name, std::string site, ProcPtr body) {
  return std::make_shared<Proc>(
      Proc{Proc::ImportName{std::move(name), std::move(site), std::move(body)}});
}
ProcPtr mk_import_class(std::string name, std::string site, ProcPtr body) {
  return std::make_shared<Proc>(Proc{
      Proc::ImportClass{std::move(name), std::move(site), std::move(body)}});
}

namespace {

void print_ref(std::ostream& os, const NameRef& r) {
  if (r.site) os << *r.site << '.';
  os << r.name;
}

void print_expr(std::ostream& os, const Expr& e) {
  std::visit(
      [&](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Expr::IntLit>) {
          os << n.v;
        } else if constexpr (std::is_same_v<T, Expr::BoolLit>) {
          os << (n.v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, Expr::FloatLit>) {
          os << n.v;
          if (n.v == static_cast<std::int64_t>(n.v)) os << ".0";
        } else if constexpr (std::is_same_v<T, Expr::StrLit>) {
          os << '"';
          for (char c : n.v) {
            if (c == '"' || c == '\\') os << '\\';
            os << c;
          }
          os << '"';
        } else if constexpr (std::is_same_v<T, Expr::Var>) {
          print_ref(os, n.ref);
        } else if constexpr (std::is_same_v<T, Expr::Binop>) {
          os << '(';
          print_expr(os, *n.l);
          os << ' ' << n.op << ' ';
          print_expr(os, *n.r);
          os << ')';
        } else if constexpr (std::is_same_v<T, Expr::Unop>) {
          os << '(' << n.op;
          print_expr(os, *n.e);
          os << ')';
        }
      },
      e.node);
}

void print_args(std::ostream& os, const std::vector<ExprPtr>& args) {
  os << '[';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ", ";
    print_expr(os, *args[i]);
  }
  os << ']';
}

void print_proc(std::ostream& os, const Proc& p);

void print_abs_list(std::ostream& os, const std::vector<Abstraction>& abs,
                    const char* sep) {
  for (std::size_t i = 0; i < abs.size(); ++i) {
    if (i) os << ' ' << sep << ' ';
    os << abs[i].name << '(';
    for (std::size_t j = 0; j < abs[i].params.size(); ++j) {
      if (j) os << ", ";
      os << abs[i].params[j];
    }
    os << ") = ";
    print_proc(os, *abs[i].body);
  }
}

void print_proc(std::ostream& os, const Proc& p) {
  std::visit(
      [&](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Proc::Nil>) {
          os << '0';
        } else if constexpr (std::is_same_v<T, Proc::Par>) {
          os << '(';
          print_proc(os, *n.left);
          os << " | ";
          print_proc(os, *n.right);
          os << ')';
        } else if constexpr (std::is_same_v<T, Proc::New>) {
          os << "(new ";
          for (std::size_t i = 0; i < n.names.size(); ++i) {
            if (i) os << ", ";
            os << n.names[i];
          }
          os << " in ";
          print_proc(os, *n.body);
          os << ')';
        } else if constexpr (std::is_same_v<T, Proc::Msg>) {
          print_ref(os, n.target);
          os << '!' << n.label;
          print_args(os, n.args);
        } else if constexpr (std::is_same_v<T, Proc::Obj>) {
          print_ref(os, n.target);
          os << "?{ ";
          print_abs_list(os, n.methods, ",");
          os << " }";
        } else if constexpr (std::is_same_v<T, Proc::Inst>) {
          print_ref(os, n.cls);
          print_args(os, n.args);
        } else if constexpr (std::is_same_v<T, Proc::Def>) {
          os << "(def ";
          print_abs_list(os, n.defs, "and");
          os << " in ";
          print_proc(os, *n.body);
          os << ')';
        } else if constexpr (std::is_same_v<T, Proc::If>) {
          os << "(if ";
          print_expr(os, *n.cond);
          os << " then ";
          print_proc(os, *n.then_p);
          os << " else ";
          print_proc(os, *n.else_p);
          os << ')';
        } else if constexpr (std::is_same_v<T, Proc::Print>) {
          os << "print";
          print_args(os, n.args);
          if (!std::holds_alternative<Proc::Nil>(n.cont->node)) {
            os << "; ";
            print_proc(os, *n.cont);
          }
        } else if constexpr (std::is_same_v<T, Proc::ExportNew>) {
          os << "(export new ";
          for (std::size_t i = 0; i < n.names.size(); ++i) {
            if (i) os << ", ";
            os << n.names[i];
          }
          os << " in ";
          print_proc(os, *n.body);
          os << ')';
        } else if constexpr (std::is_same_v<T, Proc::ExportDef>) {
          os << "(export def ";
          print_abs_list(os, n.defs, "and");
          os << " in ";
          print_proc(os, *n.body);
          os << ')';
        } else if constexpr (std::is_same_v<T, Proc::ImportName>) {
          os << "(import " << n.name << " from " << n.site << " in ";
          print_proc(os, *n.body);
          os << ')';
        } else if constexpr (std::is_same_v<T, Proc::ImportClass>) {
          // Class imports are distinguished from name imports by the
          // uppercase initial of the imported identifier.
          os << "(import " << n.name << " from " << n.site << " in ";
          print_proc(os, *n.body);
          os << ')';
        }
      },
      p.node);
}

std::size_t expr_nodes(const Expr& e) {
  return std::visit(
      [&](const auto& n) -> std::size_t {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Expr::Binop>) {
          return 1 + expr_nodes(*n.l) + expr_nodes(*n.r);
        } else if constexpr (std::is_same_v<T, Expr::Unop>) {
          return 1 + expr_nodes(*n.e);
        } else {
          return 1;
        }
      },
      e.node);
}

std::size_t args_nodes(const std::vector<ExprPtr>& args) {
  std::size_t n = 0;
  for (const auto& a : args) n += expr_nodes(*a);
  return n;
}

}  // namespace

std::string to_string(const Proc& p) {
  std::ostringstream os;
  print_proc(os, p);
  return os.str();
}

std::string to_string(const Expr& e) {
  std::ostringstream os;
  print_expr(os, e);
  return os.str();
}

std::size_t node_count(const Proc& p) {
  return std::visit(
      [&](const auto& n) -> std::size_t {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Proc::Nil>) {
          return 1;
        } else if constexpr (std::is_same_v<T, Proc::Par>) {
          return 1 + node_count(*n.left) + node_count(*n.right);
        } else if constexpr (std::is_same_v<T, Proc::New>) {
          return 1 + n.names.size() + node_count(*n.body);
        } else if constexpr (std::is_same_v<T, Proc::Msg>) {
          return 1 + args_nodes(n.args);
        } else if constexpr (std::is_same_v<T, Proc::Obj>) {
          std::size_t c = 1;
          for (const auto& m : n.methods)
            c += 1 + m.params.size() + node_count(*m.body);
          return c;
        } else if constexpr (std::is_same_v<T, Proc::Inst>) {
          return 1 + args_nodes(n.args);
        } else if constexpr (std::is_same_v<T, Proc::Def>) {
          std::size_t c = 1 + node_count(*n.body);
          for (const auto& d : n.defs)
            c += 1 + d.params.size() + node_count(*d.body);
          return c;
        } else if constexpr (std::is_same_v<T, Proc::If>) {
          return 1 + expr_nodes(*n.cond) + node_count(*n.then_p) +
                 node_count(*n.else_p);
        } else if constexpr (std::is_same_v<T, Proc::Print>) {
          return 1 + args_nodes(n.args) + node_count(*n.cont);
        } else if constexpr (std::is_same_v<T, Proc::ExportNew>) {
          return 1 + n.names.size() + node_count(*n.body);
        } else if constexpr (std::is_same_v<T, Proc::ExportDef>) {
          std::size_t c = 1 + node_count(*n.body);
          for (const auto& d : n.defs)
            c += 1 + d.params.size() + node_count(*d.body);
          return c;
        } else if constexpr (std::is_same_v<T, Proc::ImportName> ||
                             std::is_same_v<T, Proc::ImportClass>) {
          return 1 + node_count(*n.body);
        } else {
          return 1;
        }
      },
      p.node);
}

}  // namespace dityco::calc
