// Causal event tracing (observability layer, part 2 of 3).
//
// Each site (and each node daemon) owns a TraceRing: a fixed-capacity,
// single-producer ring buffer of typed events stamped with a
// steady_clock timestamp, the recording site, and a *trace id*. Trace
// ids are allocated at the departure side of a mobility operation
// (SHIPM/SHIPO/FETCH/NS traffic) and propagated through the wire format
// (core/wire.hpp, v2 header), so one logical operation can be followed
// across sites and nodes: departure, daemon hops, service handling and
// arrival all carry the same id. obs/export.hpp merges the rings into a
// Chrome trace-event / Perfetto timeline with flow arrows along each id.
//
// Rings are default-off: a disabled ring's record() is a single branch,
// so tracing costs nothing unless enabled. record() must only be called
// by the ring's owning thread (the site executor or the node daemon).
// Slots are stored as relaxed atomics published through the head
// counter, so snapshot() may run concurrently with the producer (this
// is what lets TyCOmon serve GET /trace mid-run): a concurrent snapshot
// sees a consistent prefix; if the ring wraps during the copy the
// overtaken entries are dropped, and at most the oldest surviving entry
// can mix fields of two events. Post-quiescence snapshots are exact.
//
// Sampling: long-running networks overwhelm a fixed ring
// (site_trace_dropped measures the loss). set_sampling(N, seed) keeps
// 1-in-N trace ids; the keep/skip decision is a deterministic hash of
// the id, made once when the id is allocated and carried across the
// wire (kSampledFlag), so a sampled operation is recorded at *every*
// hop while an unsampled one costs a single branch per record site.
// Local events with trace id 0 (COMM/INST/run-slices) are unaffected.
//
// Virtual time: the simulated-cluster driver calls set_virtual_time()
// with each site's virtual clock before driving it, so trace timestamps
// match the simulated makespan instead of the simulation's wall clock.
#pragma once

#include <cstdint>
#include <atomic>
#include <memory>
#include <vector>

namespace dityco::obs {

enum class EventType : std::uint8_t {
  kComm = 1,      // local COMM reduction (message met object)
  kInst,          // local INST reduction (class instantiation)
  kShipMsgOut,    // SHIPM departure            arg = packet bytes
  kShipMsgIn,     // SHIPM arrival              arg = packet bytes
  kShipObjOut,    // SHIPO departure            arg = packet bytes
  kShipObjIn,     // SHIPO arrival              arg = packet bytes
  kFetchReq,      // FETCH request issued       arg = packet bytes
  kFetchHit,      // dynamic-link cache hit (no wire traffic)
  kFetchServed,   // FETCH request answered     arg = reply bytes
  kFetchReply,    // FETCH reply linked         arg = reply bytes
  kNsExport,      // name-service export (site issue / node service)
  kNsLookup,      // name-service lookup (site issue / node service)
  kNsReply,       // name-service reply arrival
  kPacketSend,    // daemon moved a packet out  arg = bytes
  kPacketRecv,    // daemon received a packet   arg = bytes
  kSliceBegin,    // run-slice started
  kSliceEnd,      // run-slice finished         arg = instructions executed
  kRelOut,        // GC REL frame departure     arg = cumulative credit
  kRelIn,         // GC REL frame applied       arg = cumulative credit
  kTcpSend,       // frame queued to a peer socket   arg = dst node
  kTcpRecv,       // frame popped from the socket    arg = src node
  kTcpReconnect,  // outbound connection re-established  arg = peer node
  kTcpPeerDead,   // peer confirmed dead, queue written off  arg = peer node
};

const char* event_name(EventType t);

/// Sentinel "site" id used by a node daemon's ring (a daemon is not a
/// site; exporters render it as its own thread line).
constexpr std::uint32_t kDaemonSite = 0xffffffffu;
/// Sentinel "site" id used by a TCP transport's ring: the socket-level
/// hops underneath the daemon's packet-send/packet-recv events.
constexpr std::uint32_t kTcpSite = 0xfffffffeu;

struct TraceEvent {
  EventType type = EventType::kComm;
  std::uint32_t node = 0;
  std::uint32_t site = 0;
  std::uint64_t trace_id = 0;  // 0 = purely local, no cross-site flow
  std::uint64_t arg = 0;
  std::uint64_t ts_ns = 0;     // steady_clock (or virtual time, sim mode)
};

/// Fresh non-zero trace id (process-global).
std::uint64_t next_trace_id();

/// steady_clock now, in nanoseconds.
std::uint64_t trace_now_ns();

/// Deterministic 1-in-`every` sampling decision for a trace id (a
/// splitmix64-style hash of id ^ seed). every <= 1 keeps everything;
/// the same (id, every, seed) always yields the same answer, so every
/// site of a network configured alike agrees on the sampled id set.
bool trace_id_sampled(std::uint64_t id, std::uint64_t every,
                      std::uint64_t seed);

/// A freshly allocated trace id plus its sampling decision. Unsampled
/// operations still carry their id on the wire (causality is preserved
/// for e.g. FETCH reply routing) but no hop records events for them.
struct TraceTag {
  std::uint64_t id = 0;
  bool sampled = true;
};

class TraceRing {
 public:
  TraceRing() = default;
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Allocate `capacity` slots (rounded up to a power of two) and start
  /// recording. The origin (node, site) stamps every event.
  void enable(std::size_t capacity, std::uint32_t node, std::uint32_t site);
  bool enabled() const { return mask_ != 0; }

  /// Keep 1-in-`every` trace ids (see trace_id_sampled); every <= 1
  /// disables sampling. Owner thread only, like record().
  void set_sampling(std::uint64_t every, std::uint64_t seed) {
    every_ = every < 1 ? 1 : every;
    seed_ = seed;
  }
  /// Sampling decision for a freshly allocated id; counts the outcome
  /// in sampled()/unsampled(). Called by the owning thread at trace-id
  /// allocation time.
  bool sample(std::uint64_t trace_id) {
    const bool keep = trace_id_sampled(trace_id, every_, seed_);
    auto& cell = keep ? sampled_ : unsampled_;
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    return keep;
  }
  std::uint64_t sample_every() const { return every_; }
  std::uint64_t sample_seed() const { return seed_; }
  std::uint64_t sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  std::uint64_t unsampled() const {
    return unsampled_.load(std::memory_order_relaxed);
  }

  /// Stamp subsequent events with this virtual timestamp instead of
  /// steady_clock (simulated-cluster driver). Owner thread only.
  void set_virtual_time(std::uint64_t ts_ns) {
    virtual_mode_ = true;
    virtual_now_ns_ = ts_ns;
  }

  /// The timestamp record() would use right now: the virtual clock in
  /// sim mode, steady_clock otherwise. Lets latency measurements (FETCH
  /// RTT, flight-recorder completions) share the ring's time base.
  std::uint64_t now_ns() const {
    return virtual_mode_ ? virtual_now_ns_ : trace_now_ns();
  }

  /// Tail-based retention (obs/flight.hpp) needs every traced hop in
  /// the ring regardless of the wire sampling bit — the slow operation
  /// worth keeping is usually an unsampled one. record_all makes
  /// should_record() ignore `sampled`; exporters that want the 1-in-N
  /// view re-filter with trace_id_sampled().
  void set_record_all(bool on) { record_all_ = on; }
  bool record_all() const { return record_all_; }
  /// Should an event for a packet with this sampling bit be recorded?
  bool should_record(bool sampled) const {
    return mask_ != 0 && (sampled || record_all_);
  }

  void record(EventType t, std::uint64_t trace_id, std::uint64_t arg = 0) {
    if (mask_ == 0) return;
    record_at(virtual_mode_ ? virtual_now_ns_ : trace_now_ns(), t, trace_id,
              arg);
  }
  /// Record with a caller-captured timestamp (e.g. a slice's begin time).
  void record_at(std::uint64_t ts_ns, EventType t, std::uint64_t trace_id,
                 std::uint64_t arg = 0);

  /// Events still in the ring, oldest first. Non-destructive. Safe to
  /// call from any thread while the producer records (see file header
  /// for the concurrent-snapshot caveats).
  std::vector<TraceEvent> snapshot() const;
  /// Total events ever recorded (snapshot() returns at most `capacity`
  /// of them; the difference is how many the ring overwrote).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped() const {
    const std::uint64_t h = recorded();
    return h > capacity_ ? h - capacity_ : 0;
  }

 private:
  // One event, stored as independent relaxed atomics so a concurrent
  // snapshot() is race-free; the node/site origin is constant per ring
  // and lives outside the slot.
  struct Slot {
    std::atomic<std::uint64_t> type{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint64_t> ts_ns{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;  // capacity - 1; 0 = disabled
  std::uint32_t node_ = 0, site_ = 0;
  std::uint64_t every_ = 1, seed_ = 0;
  bool virtual_mode_ = false;
  bool record_all_ = false;
  std::uint64_t virtual_now_ns_ = 0;
  std::atomic<std::uint64_t> sampled_{0};
  std::atomic<std::uint64_t> unsampled_{0};
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace dityco::obs
