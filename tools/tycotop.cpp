// tycotop — fleet-wide TyCOmon aggregator.
//
// Give it one monitor URL and it walks the cluster's own gossip
// (GET /peers carries every peer's TyCOmon port, learnt from the
// transport's hello/kPeers frames), scrapes every node it finds, and:
//
//   * default: prints a per-node summary table (transport address,
//     peer states, phi, RTT, queue depth) plus cross-process operation
//     latency percentiles computed from the stitched timeline — the
//     FETCH/SHIPO/SHIPM round trips that survive process boundaries;
//   * --trace FILE: writes one merged Perfetto document. Each node's
//     /trace carries a wall-clock anchor (otherData), so events from
//     different OS processes land on one axis and a FETCH's request and
//     serve sides connect with a flow arrow across processes;
//   * --metrics FILE: federated Prometheus text, node="N" label per
//     sample; --metrics-json FILE: the same as one JSON document.
//   * --slo: scrapes /slo from every node and stitches one fleet SLO
//     view — nodes ordered worst burn rate first, with burn-window
//     state, violation counts and a per-stage tail attribution table
//     (which pipeline stage — enqueue, remote, reply, execute — owns
//     the p99). Exit 0 when at least one node was scraped, 1 when the
//     fleet is unreachable or no node has the SLO plane enabled.
//   * --audit: scrapes /gc and /names from every node, joins the credit
//     ledgers and checks the GC conservation invariant fleet-wide
//     (DESIGN.md §GC invariants). Exit 0 when balanced, 1 when any
//     confirmed anomaly (lost REL, leak, over-release, orphan import,
//     NS mismatch) is found; --watch MS repeats forever. A fleet that
//     cannot be fully scraped (a node without --monitor, a stale
//     snapshot) is reported as unverifiable, not as imbalanced.
//   * --names: federates the fleet directory. The name service is NOT
//     assumed to live on node 0: every node's /names document is one
//     slice of the picture (the whole table when centralized, one
//     shard slice per node when --ns-shards is on; docs/NAMESERVICE.md)
//     and the view stitches them all — per-slice binding counts, the
//     shard map's epoch and dead set, and lease-cache hit rates.
//
// Usage:
//   tycotop http://127.0.0.1:7001
//   tycotop --trace fleet.json http://127.0.0.1:7001
//   tycotop --metrics - http://127.0.0.1:7001 http://10.0.0.2:7001
//   tycotop --audit http://127.0.0.1:7001
//   tycotop --audit --watch 1000 --json http://127.0.0.1:7001
//
// Extra seeds are only needed for partitioned fleets; one URL normally
// reaches everything.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/fleet.hpp"

namespace fleet = dityco::obs::fleet;

namespace {

int usage() {
  std::cerr << "usage: tycotop [--trace FILE] [--metrics FILE]\n"
               "               [--metrics-json FILE] [--json]\n"
               "               [--audit] [--slo] [--names] [--watch MS]\n"
               "               MONITOR_URL [MONITOR_URL...]\n"
               "FILE may be '-' for stdout.\n";
  return 2;
}

int state_rank(const std::string& s) {
  if (s == "page") return 2;
  if (s == "warn") return 1;
  return 0;
}

/// One node's /slo document, reduced to the fleet view.
struct SloRow {
  std::uint32_t node = 0;
  std::string state = "off";
  double burn_short = 0, burn_long = 0;
  std::uint64_t violations = 0, completed = 0, executed = 0, inflight = 0;
  std::uint64_t transitions = 0;
  // stage -> (count, p50_us, p99_us, p999_us, max_us)
  struct Stage {
    std::uint64_t count = 0;
    double p50 = 0, p99 = 0, p999 = 0, max = 0;
  };
  std::map<std::string, Stage> stages;
  std::string dominant;  // stage with the largest p99 (tail owner)
  bool scraped = false;
};

SloRow parse_slo(std::uint32_t node, const std::string& body) {
  SloRow row;
  row.node = node;
  fleet::Json doc;
  if (body.empty() || !fleet::parse_json(body, doc) ||
      doc.find("state") == nullptr)
    return row;  // node up but SLO plane off ("{}") or unreachable
  row.scraped = true;
  row.state = doc.str_or("state", "ok");
  if (const fleet::Json* burn = doc.find("burn")) {
    if (const fleet::Json* w = burn->find("short"))
      row.burn_short = w->num_or("rate", 0);
    if (const fleet::Json* w = burn->find("long"))
      row.burn_long = w->num_or("rate", 0);
  }
  if (const fleet::Json* req = doc.find("requests")) {
    row.violations = req->u64_or("violations", 0);
    row.completed = req->u64_or("completed", 0);
    row.executed = req->u64_or("executed", 0);
    row.inflight = req->u64_or("inflight", 0);
    row.transitions = req->u64_or("state_transitions", 0);
  }
  if (const fleet::Json* stages = doc.find("stages")) {
    double worst = -1;
    for (const auto& [name, h] : stages->fields) {
      SloRow::Stage s;
      s.count = h.u64_or("count", 0);
      s.p50 = h.num_or("p50_us", 0);
      s.p99 = h.num_or("p99_us", 0);
      s.p999 = h.num_or("p999_us", 0);
      s.max = h.num_or("max_us", 0);
      if (s.count > 0 && s.p99 > worst) {
        worst = s.p99;
        row.dominant = name;
      }
      row.stages.emplace(name, s);
    }
  }
  return row;
}

bool write_out(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::cout << body;
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "tycotop: cannot write " << path << "\n";
    return false;
  }
  out << body;
  return true;
}

double pctl(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

/// Operation kind of a stitched event, for the latency rollup.
const char* op_kind(const fleet::FleetEvent& e) {
  if (e.cat == "fetch" || e.name.rfind("FETCH", 0) == 0) return "FETCH";
  if (e.name.rfind("SHIPO", 0) == 0) return "SHIPO";
  if (e.name.rfind("SHIPM", 0) == 0) return "SHIPM";
  if (e.name.rfind("NS-", 0) == 0) return "NS";
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path, metrics_json_path;
  bool as_json = false;
  bool do_audit = false;
  bool do_slo = false;
  bool do_names = false;
  long watch_ms = 0;
  std::vector<std::string> seeds;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--audit") {
      do_audit = true;
    } else if (arg == "--slo") {
      do_slo = true;
    } else if (arg == "--names") {
      do_names = true;
    } else if (arg == "--watch" && i + 1 < argc) {
      do_audit = true;
      watch_ms = std::atol(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage();
    } else {
      seeds.push_back(arg);
    }
  }
  if (seeds.empty()) return usage();

  // Discovery: walk /peers from every seed, dedup by node id. Peers that
  // run without a TyCOmon are collected separately — they cannot be
  // scraped but still count toward the audit's expected fleet.
  std::map<std::uint32_t, fleet::NodeEndpoint> nodes;
  std::set<std::uint32_t> unmonitored;
  for (const std::string& seed : seeds) {
    std::vector<std::uint32_t> unm;
    for (const fleet::NodeEndpoint& ep : fleet::discover(seed, &unm))
      nodes.emplace(ep.node, ep);
    unmonitored.insert(unm.begin(), unm.end());
  }
  for (const auto& [node, ep] : nodes) unmonitored.erase(node);
  if (nodes.empty()) {
    std::cerr << "tycotop: no reachable monitors (seed down, or started "
                 "without --monitor?)\n";
    return 1;
  }

  if (do_names) {
    // Fleet directory view. Every node's /names is scraped — the
    // directory is not assumed to live on node 0: a centralized fleet
    // yields one "central" slice from the hosting node, a sharded
    // fleet one "shard<N>" slice per node, and the federation is the
    // union. The same per-slice join the credit audit uses.
    struct Slice {
      std::uint32_t node = 0;
      std::string scope;
      std::uint64_t home = 0, ids = 0, credit_rows = 0, waiters = 0,
                    parked = 0;
      bool stale = false;
    };
    std::vector<Slice> slices;
    std::string shard_line, cache_lines, names_nodes_json;
    for (const auto& [node, ep] : nodes) {
      const std::string body = fleet::http_get(ep.host, ep.monitor, "/names");
      fleet::Json doc;
      if (body.empty() || !fleet::parse_json(body, doc)) continue;
      if (as_json) {
        if (!names_nodes_json.empty()) names_nodes_json += ",";
        names_nodes_json +=
            "{\"node\":" + std::to_string(node) + ",\"names\":" + body + "}";
      }
      if (const fleet::Json* svcs = doc.find("services")) {
        for (const fleet::Json& svc : svcs->items) {
          Slice s;
          s.node = node;
          s.scope = svc.str_or("scope", "?");
          s.home = svc.u64_or("home_node", 0);
          s.parked = svc.u64_or("parked", 0);
          if (const fleet::Json* st = svc.find("stale");
              st && st->kind == fleet::Json::Kind::kBool && st->boolean)
            s.stale = true;
          if (const fleet::Json* ids = svc.find("ids")) {
            s.ids = ids->items.size();
            for (const fleet::Json& row : ids->items) {
              if (const fleet::Json* gc = row.find("gc");
                  gc && gc->kind == fleet::Json::Kind::kBool && gc->boolean)
                ++s.credit_rows;
              s.waiters += row.u64_or("waiters", 0);
            }
          }
          slices.push_back(std::move(s));
        }
      }
      if (const fleet::Json* sh = doc.find("sharding");
          sh && shard_line.empty()) {
        shard_line = "sharding: shards=" + std::to_string(sh->u64_or(
                         "shards", 0)) +
                     " replicas=" + std::to_string(sh->u64_or("replicas", 0)) +
                     " epoch=" + std::to_string(sh->u64_or("epoch", 0)) +
                     " dead=[";
        if (const fleet::Json* dead = sh->find("dead")) {
          bool first = true;
          for (const fleet::Json& d : dead->items) {
            if (!first) shard_line += ",";
            first = false;
            shard_line += std::to_string(d.u64());
          }
        }
        shard_line += "]";
      }
      if (const fleet::Json* caches = doc.find("caches")) {
        for (const fleet::Json& c : caches->items) {
          char buf[192];
          std::snprintf(buf, sizeof buf,
                        "  cache node%llu: entries=%llu hits=%llu "
                        "misses=%llu invalidations=%llu stale_served=%llu\n",
                        static_cast<unsigned long long>(c.u64_or("node", 0)),
                        static_cast<unsigned long long>(c.u64_or("entries", 0)),
                        static_cast<unsigned long long>(c.u64_or("hits", 0)),
                        static_cast<unsigned long long>(c.u64_or("misses", 0)),
                        static_cast<unsigned long long>(
                            c.u64_or("invalidations", 0)),
                        static_cast<unsigned long long>(
                            c.u64_or("stale_served", 0)));
          cache_lines += buf;
        }
      }
    }
    if (as_json) {
      std::cout << "{\"schema\":\"tycotop-names-v1\",\"nodes\":["
                << names_nodes_json << "]}\n";
      return slices.empty() ? 1 : 0;
    }
    std::printf("fleet directory: %zu slice(s) from %zu node(s)\n",
                slices.size(), nodes.size());
    std::printf("%-10s %-6s %6s %8s %8s %7s\n", "scope", "node", "ids",
                "credit", "waiters", "parked");
    for (const Slice& s : slices)
      std::printf("%-10s %-6u %6llu %8llu %8llu %7llu%s\n", s.scope.c_str(),
                  s.node, static_cast<unsigned long long>(s.ids),
                  static_cast<unsigned long long>(s.credit_rows),
                  static_cast<unsigned long long>(s.waiters),
                  static_cast<unsigned long long>(s.parked),
                  s.stale ? "  (stale)" : "");
    if (!shard_line.empty()) std::printf("%s\n", shard_line.c_str());
    if (!cache_lines.empty()) std::printf("%s", cache_lines.c_str());
    return slices.empty() ? 1 : 0;
  }

  if (do_slo) {
    // Fleet SLO view: every node's /slo, worst burn rate first. A node
    // whose plane is off serves "{}" and shows as state=off.
    std::vector<SloRow> rows;
    for (const auto& [node, ep] : nodes)
      rows.push_back(
          parse_slo(node, fleet::http_get(ep.host, ep.monitor, "/slo")));
    std::sort(rows.begin(), rows.end(), [](const SloRow& a, const SloRow& b) {
      const int ra = state_rank(a.state), rb = state_rank(b.state);
      if (ra != rb) return ra > rb;
      const double ba = std::max(a.burn_short, a.burn_long);
      const double bb = std::max(b.burn_short, b.burn_long);
      if (ba != bb) return ba > bb;
      return a.node < b.node;
    });
    const std::size_t scraped = static_cast<std::size_t>(
        std::count_if(rows.begin(), rows.end(),
                      [](const SloRow& r) { return r.scraped; }));
    if (as_json) {
      std::string out = "{\"schema\":\"tycotop-slo-v1\",\"nodes\":[";
      bool first = true;
      for (const SloRow& r : rows) {
        if (!first) out += ",";
        first = false;
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "{\"node\":%u,\"state\":\"%s\",\"burn_short\":%.3f,"
                      "\"burn_long\":%.3f,\"violations\":%llu,"
                      "\"completed\":%llu,\"executed\":%llu,\"inflight\":%llu,"
                      "\"state_transitions\":%llu,\"dominant_stage\":\"%s\","
                      "\"stages\":{",
                      r.node, r.state.c_str(), r.burn_short, r.burn_long,
                      static_cast<unsigned long long>(r.violations),
                      static_cast<unsigned long long>(r.completed),
                      static_cast<unsigned long long>(r.executed),
                      static_cast<unsigned long long>(r.inflight),
                      static_cast<unsigned long long>(r.transitions),
                      r.dominant.c_str());
        out += buf;
        bool firsts = true;
        for (const auto& [name, s] : r.stages) {
          if (!firsts) out += ",";
          firsts = false;
          std::snprintf(buf, sizeof buf,
                        "\"%s\":{\"count\":%llu,\"p50_us\":%.1f,"
                        "\"p99_us\":%.1f,\"p999_us\":%.1f,\"max_us\":%.1f}",
                        name.c_str(),
                        static_cast<unsigned long long>(s.count), s.p50,
                        s.p99, s.p999, s.max);
          out += buf;
        }
        out += "}}";
      }
      out += "]}\n";
      std::cout << out;
    } else {
      std::printf("fleet SLO: %zu node(s), %zu with the plane enabled; "
                  "worst burn first\n",
                  rows.size(), scraped);
      std::printf("%-6s %-5s %10s %10s %8s %10s %10s %9s  %s\n", "node",
                  "state", "burn_30s", "burn_long", "viol", "completed",
                  "executed", "inflight", "tail owner");
      for (const SloRow& r : rows)
        std::printf("%-6u %-5s %10.2f %10.2f %8llu %10llu %10llu %9llu  %s\n",
                    r.node, r.state.c_str(), r.burn_short, r.burn_long,
                    static_cast<unsigned long long>(r.violations),
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.executed),
                    static_cast<unsigned long long>(r.inflight),
                    r.dominant.empty() ? "-" : r.dominant.c_str());
      for (const SloRow& r : rows) {
        if (!r.scraped) continue;
        std::printf("node %u stage tails (us):\n", r.node);
        std::printf("  %-8s %10s %10s %10s %10s %10s\n", "stage", "count",
                    "p50", "p99", "p99.9", "max");
        for (const auto& [name, s] : r.stages) {
          if (s.count == 0) continue;
          std::printf("  %-8s %10llu %10.1f %10.1f %10.1f %10.1f%s\n",
                      name.c_str(), static_cast<unsigned long long>(s.count),
                      s.p50, s.p99, s.p999, s.max,
                      name == r.dominant ? "  <- p99 owner" : "");
        }
      }
    }
    return scraped > 0 ? 0 : 1;
  }

  if (do_audit) {
    for (;;) {
      std::vector<fleet::Json> gc_docs, names_docs;
      for (const auto& [node, ep] : nodes) {
        fleet::Json doc;
        std::string body = fleet::http_get(ep.host, ep.monitor, "/gc");
        if (!body.empty() && fleet::parse_json(body, doc))
          gc_docs.push_back(std::move(doc));
        body = fleet::http_get(ep.host, ep.monitor, "/names");
        if (!body.empty() && fleet::parse_json(body, doc))
          names_docs.push_back(std::move(doc));
      }
      std::vector<std::uint32_t> expected;
      for (const auto& [node, ep] : nodes) expected.push_back(node);
      expected.insert(expected.end(), unmonitored.begin(),
                      unmonitored.end());
      const fleet::AuditReport rep =
          fleet::audit(gc_docs, names_docs, expected);
      if (as_json) {
        std::cout << rep.to_json() << "\n";
      } else {
        std::cout << rep.to_text();
        for (std::uint32_t n : unmonitored)
          std::cout << "  note: node " << n
                    << " runs without --monitor (not scraped)\n";
      }
      std::cout.flush();
      if (watch_ms <= 0) return rep.balanced ? 0 : 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(watch_ms));
      // Re-discover between rounds: nodes join, exit, or gain monitors.
      nodes.clear();
      unmonitored.clear();
      for (const std::string& seed : seeds) {
        std::vector<std::uint32_t> unm;
        for (const fleet::NodeEndpoint& ep : fleet::discover(seed, &unm))
          nodes.emplace(ep.node, ep);
        unmonitored.insert(unm.begin(), unm.end());
      }
      for (const auto& [node, ep] : nodes) unmonitored.erase(node);
      if (nodes.empty()) {
        std::cerr << "tycotop: fleet lost (no reachable monitors)\n";
        return 1;
      }
    }
  }

  const bool want_summary =
      trace_path.empty() && metrics_path.empty() && metrics_json_path.empty();
  const bool want_trace = !trace_path.empty() || want_summary;

  std::vector<std::string> trace_docs;
  std::vector<std::pair<std::uint32_t, std::string>> metric_texts;
  std::vector<std::pair<std::uint32_t, std::string>> metric_docs;
  std::map<std::uint32_t, std::string> peer_docs;
  for (const auto& [node, ep] : nodes) {
    if (want_trace) {
      std::string doc = fleet::http_get(ep.host, ep.monitor, "/trace");
      if (!doc.empty()) trace_docs.push_back(std::move(doc));
    }
    if (!metrics_path.empty())
      metric_texts.emplace_back(node,
                                fleet::http_get(ep.host, ep.monitor,
                                                "/metrics"));
    if (!metrics_json_path.empty())
      metric_docs.emplace_back(node,
                               fleet::http_get(ep.host, ep.monitor,
                                               "/metrics.json"));
    if (want_summary)
      peer_docs[node] = fleet::http_get(ep.host, ep.monitor, "/peers");
  }

  fleet::MergedTrace merged;
  if (want_trace) merged = fleet::merge_traces(trace_docs);
  if (!trace_path.empty() && !write_out(trace_path, merged.json)) return 1;
  if (!metrics_path.empty() &&
      !write_out(metrics_path, fleet::federate_metrics(metric_texts)))
    return 1;
  if (!metrics_json_path.empty() &&
      !write_out(metrics_json_path,
                 fleet::federate_metrics_json(metric_docs)))
    return 1;
  if (!want_summary) return 0;

  // Cross-process operation latency: per trace id, the lifespan from its
  // first to its last stitched event; kept only when the id actually
  // crossed a process boundary (events on >= 2 pids).
  struct Span {
    double lo = 0, hi = 0;
    std::uint32_t first_pid = 0;
    bool crossed = false, init = false;
    const char* kind = nullptr;
  };
  std::map<std::uint64_t, Span> spans;
  for (const fleet::FleetEvent& e : merged.events) {
    if (e.trace_id == 0) continue;
    Span& s = spans[e.trace_id];
    if (!s.init) {
      s.init = true;
      s.lo = s.hi = e.ts_us;
      s.first_pid = e.pid;
    } else {
      s.lo = std::min(s.lo, e.ts_us);
      s.hi = std::max(s.hi, e.ts_us);
      if (e.pid != s.first_pid) s.crossed = true;
    }
    if (const char* k = op_kind(e)) s.kind = k;
  }
  std::map<std::string, std::vector<double>> lat;
  for (const auto& [id, s] : spans)
    if (s.crossed && s.kind) lat[s.kind].push_back(s.hi - s.lo);

  if (as_json) {
    std::string out = "{\"nodes\":[";
    bool first = true;
    for (const auto& [node, ep] : nodes) {
      if (!first) out += ",";
      first = false;
      out += "{\"node\":" + std::to_string(node) + ",\"monitor\":\"" +
             ep.host + ":" + std::to_string(ep.monitor) + "\",\"peers\":" +
             (peer_docs[node].empty() ? "null" : peer_docs[node]) + "}";
    }
    out += "],\"cross_process_ops\":{";
    bool firstk = true;
    for (auto& [kind, v] : lat) {
      if (!firstk) out += ",";
      firstk = false;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "\"%s\":{\"count\":%zu,\"p50_us\":%.1f,\"p99_us\":%.1f}",
                    kind.c_str(), v.size(), pctl(v, 0.50), pctl(v, 0.99));
      out += buf;
    }
    out += "}}\n";
    std::cout << out;
    return 0;
  }

  std::printf("fleet: %zu node(s), %zu trace doc(s) (%zu anchored)\n",
              nodes.size(), merged.nodes, merged.anchored);
  std::printf("%-6s %-22s %-22s %s\n", "node", "monitor", "transport",
              "peers (state phi rtt_us queue)");
  for (const auto& [node, ep] : nodes) {
    std::string peers_col;
    fleet::Json doc;
    if (!peer_docs[node].empty() && fleet::parse_json(peer_docs[node], doc)) {
      if (const fleet::Json* peers = doc.find("peers")) {
        for (const fleet::Json& p : peers->items) {
          char cell[128];
          std::snprintf(cell, sizeof cell, "%s%llu:%s phi=%.2f rtt=%llu q=%llu",
                        peers_col.empty() ? "" : "  ",
                        static_cast<unsigned long long>(p.u64_or("node", 0)),
                        p.str_or("state", "?").c_str(), p.num_or("phi", 0),
                        static_cast<unsigned long long>(p.u64_or("rtt_us", 0)),
                        static_cast<unsigned long long>(
                            p.u64_or("queue_bytes", 0)));
          peers_col += cell;
        }
      }
    }
    std::printf("%-6u %-22s %-22s %s\n", node,
                (ep.host + ":" + std::to_string(ep.monitor)).c_str(),
                ep.hostport.c_str(), peers_col.c_str());
  }
  if (!lat.empty()) {
    std::printf("cross-process operations (stitched trace):\n");
    std::printf("%-8s %8s %12s %12s\n", "op", "count", "p50_us", "p99_us");
    for (auto& [kind, v] : lat)
      std::printf("%-8s %8zu %12.1f %12.1f\n", kind.c_str(), v.size(),
                  pctl(v, 0.50), pctl(v, 0.99));
  } else {
    std::printf("cross-process operations: none stitched (enable --trace "
                "on the daemons)\n");
  }
  return 0;
}
