// Abstract syntax of DiTyCO: the TyCO base calculus (section 2 of the
// paper) extended with located identifiers and the export/import surface
// constructs (sections 3 and 4). This AST is shared by the type checker,
// the compiler and the reference reducer.
//
// Grammar (paper, fig. in section 2 + section 4):
//   P ::= 0 | P|P | new x̄ P | x!l[v̄] | x?{l1(x̄1)=P1,...} | X[v̄]
//       | def X1(x̄1)=P1 and ... in P
//       | export new x̄ P | export def D in P
//       | import x from s in P | import X from s in P
// plus the practical extensions present in the TyCO language definition
// and used by the paper's examples: builtin expressions (integers,
// booleans, floats, strings, arithmetic/relational operators),
// conditionals, and a print primitive (the paper's example uses
// `print(w)`).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace dityco::calc {

/// Occurrence of an identifier: a plain name `x` or a located name `s.x`.
/// The surface language never writes located names explicitly; they are
/// produced by the translation of `import` (section 4) and by tests that
/// build network terms directly.
struct NameRef {
  std::optional<std::string> site;  // nullopt => plain (locally bound) name
  std::string name;

  bool located() const { return site.has_value(); }
  bool operator==(const NameRef&) const = default;
};

inline bool operator<(const NameRef& a, const NameRef& b) {
  if (a.site != b.site) return a.site < b.site;
  return a.name < b.name;
}

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Builtin expressions appearing as message/instantiation arguments and in
/// conditionals.
struct Expr {
  struct IntLit {
    std::int64_t v;
  };
  struct BoolLit {
    bool v;
  };
  struct FloatLit {
    double v;
  };
  struct StrLit {
    std::string v;
  };
  struct Var {
    NameRef ref;
  };
  /// op in { + - * / % == != < <= > >= && || ++ } (++ is string concat)
  struct Binop {
    std::string op;
    ExprPtr l, r;
  };
  /// op in { - ! }
  struct Unop {
    std::string op;
    ExprPtr e;
  };

  using Node = std::variant<IntLit, BoolLit, FloatLit, StrLit, Var, Binop, Unop>;
  Node node;
};

ExprPtr mk_int(std::int64_t v);
ExprPtr mk_bool(bool v);
ExprPtr mk_float(double v);
ExprPtr mk_str(std::string v);
ExprPtr mk_var(NameRef r);
ExprPtr mk_var(std::string name);
ExprPtr mk_binop(std::string op, ExprPtr l, ExprPtr r);
ExprPtr mk_unop(std::string op, ExprPtr e);

struct Proc;
using ProcPtr = std::shared_ptr<const Proc>;

/// One method `l(x̄) = P` of an object, or one class `X(x̄) = P` of a
/// definition block.
struct Abstraction {
  std::string name;  // method label or class variable
  std::vector<std::string> params;
  ProcPtr body;
};

struct Proc {
  struct Nil {};
  struct Par {
    ProcPtr left, right;
  };
  /// new x1 ... xn P
  struct New {
    std::vector<std::string> names;
    ProcPtr body;
  };
  /// x!l[ē]  (asynchronous labelled message)
  struct Msg {
    NameRef target;
    std::string label;
    std::vector<ExprPtr> args;
  };
  /// x?{l1(x̄1)=P1, ...}  (object: collection of methods at a name)
  struct Obj {
    NameRef target;
    std::vector<Abstraction> methods;
  };
  /// X[ē]  (instance of a class)
  struct Inst {
    NameRef cls;
    std::vector<ExprPtr> args;
  };
  /// def X1(x̄1)=P1 and ... in P (mutually recursive class definitions)
  struct Def {
    std::vector<Abstraction> defs;
    ProcPtr body;
  };
  /// if e then P else Q
  struct If {
    ExprPtr cond;
    ProcPtr then_p, else_p;
  };
  /// print[ē]; P — writes one line to the site's output, continues as P.
  struct Print {
    std::vector<ExprPtr> args;
    ProcPtr cont;  // never null; Nil when no continuation written
  };
  /// export new x̄ P — declare x̄ and register them in the name service.
  struct ExportNew {
    std::vector<std::string> names;
    ProcPtr body;
  };
  /// export def D in P — register the classes of D in the name service.
  struct ExportDef {
    std::vector<Abstraction> defs;
    ProcPtr body;
  };
  /// import x from s in P  =>  P{s.x/x}
  struct ImportName {
    std::string name;
    std::string site;
    ProcPtr body;
  };
  /// import X from s in P  =>  P{s.X/X}
  struct ImportClass {
    std::string name;
    std::string site;
    ProcPtr body;
  };

  using Node = std::variant<Nil, Par, New, Msg, Obj, Inst, Def, If, Print,
                            ExportNew, ExportDef, ImportName, ImportClass>;
  Node node;
};

ProcPtr mk_nil();
ProcPtr mk_par(ProcPtr l, ProcPtr r);
/// Right-nested parallel composition of any number of processes.
ProcPtr mk_par(std::vector<ProcPtr> ps);
ProcPtr mk_new(std::vector<std::string> names, ProcPtr body);
ProcPtr mk_msg(NameRef target, std::string label, std::vector<ExprPtr> args);
ProcPtr mk_obj(NameRef target, std::vector<Abstraction> methods);
ProcPtr mk_inst(NameRef cls, std::vector<ExprPtr> args);
ProcPtr mk_def(std::vector<Abstraction> defs, ProcPtr body);
ProcPtr mk_if(ExprPtr c, ProcPtr t, ProcPtr e);
ProcPtr mk_print(std::vector<ExprPtr> args, ProcPtr cont);
ProcPtr mk_export_new(std::vector<std::string> names, ProcPtr body);
ProcPtr mk_export_def(std::vector<Abstraction> defs, ProcPtr body);
ProcPtr mk_import_name(std::string name, std::string site, ProcPtr body);
ProcPtr mk_import_class(std::string name, std::string site, ProcPtr body);

/// The label used by the sugar x![v̄] / x?(x̄)=P (paper, section 2).
inline constexpr const char* kValLabel = "val";

/// Pretty-print (parseable by the compiler's parser; used for round-trip
/// tests and diagnostics).
std::string to_string(const Proc& p);
std::string to_string(const Expr& e);

/// Structural node count (AST size metric for bench C1 compactness).
std::size_t node_count(const Proc& p);

}  // namespace dityco::calc
