#!/usr/bin/env bash
# TyCOmon smoke test: launch tycosh with --monitor on an ephemeral port,
# scrape /metrics, /healthz and /trace while (or right after) a threaded
# two-site RPC run executes, and assert each endpoint answers with real
# content. Used by CI; run locally as tools/monitor_smoke.sh [tycosh],
# default build/tools/tycosh.
set -u

TYCOSH="${1:-build/tools/tycosh}"
if [ ! -x "$TYCOSH" ]; then
  echo "monitor_smoke: no tycosh binary at $TYCOSH" >&2
  exit 2
fi

OUT="$(mktemp)"
trap 'kill "$PID" 2>/dev/null; rm -f "$OUT"' EXIT

PROG='site server { export new svc in
  def Serve(self) = self?{ val(x, r) = (r![x + 1] | Serve[self]) }
  in Serve[svc] }
site client { import svc from server in
  def Loop(i, acc) = if i == 0 then print["done", acc]
  else let v = svc![acc] in Loop[i - 1, v]
  in Loop[2000, 0] }'

"$TYCOSH" --mode threads --monitor 0 --linger 4000 -e "$PROG" >"$OUT" 2>&1 &
PID=$!

# Wait for the "tycomon listening on http://127.0.0.1:<port>" line.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's#^tycomon listening on http://127.0.0.1:\([0-9]*\)$#\1#p' "$OUT")"
  [ -n "$PORT" ] && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "monitor_smoke: tycosh exited before announcing a port:" >&2
    cat "$OUT" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "monitor_smoke: no port announced" >&2
  cat "$OUT" >&2
  exit 1
fi
echo "monitor_smoke: scraping port $PORT"

fail=0

METRICS="$(curl -sf "http://127.0.0.1:$PORT/metrics")" || fail=1
if ! printf '%s' "$METRICS" | grep -q '^site_msgs_shipped'; then
  echo "monitor_smoke: /metrics missing site_msgs_shipped:" >&2
  printf '%s\n' "$METRICS" | head -20 >&2
  fail=1
fi

HEALTH="$(curl -sf "http://127.0.0.1:$PORT/healthz")" || fail=1
if ! printf '%s' "$HEALTH" | grep -q '"sites"'; then
  echo "monitor_smoke: /healthz missing sites array: $HEALTH" >&2
  fail=1
fi

TRACE="$(curl -sf "http://127.0.0.1:$PORT/trace")" || fail=1
if ! printf '%s' "$TRACE" | grep -q '"traceEvents"'; then
  echo "monitor_smoke: /trace is not Chrome trace JSON" >&2
  fail=1
fi

JSON="$(curl -sf "http://127.0.0.1:$PORT/metrics.json")" || fail=1
if ! printf '%s' "$JSON" | grep -q '"counters"'; then
  echo "monitor_smoke: /metrics.json missing counters object" >&2
  fail=1
fi

wait "$PID"
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "monitor_smoke: tycosh exited with $STATUS:" >&2
  cat "$OUT" >&2
  fail=1
fi
if ! grep -q 'done 2000' "$OUT"; then
  echo "monitor_smoke: run did not finish the RPC loop:" >&2
  cat "$OUT" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "monitor_smoke: OK (metrics, metrics.json, healthz, trace)"
fi
exit "$fail"
