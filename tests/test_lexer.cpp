// Lexer unit tests.
#include <gtest/gtest.h>

#include "compiler/lexer.hpp"

namespace dityco::comp {
namespace {

std::vector<Tok> kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEnd);
}

TEST(Lexer, MessageSyntax) {
  auto toks = lex("x!read[r]");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].kind, Tok::kBang);
  EXPECT_EQ(toks[2].kind, Tok::kIdent);
  EXPECT_EQ(toks[2].text, "read");
  EXPECT_EQ(toks[3].kind, Tok::kLBrack);
  EXPECT_EQ(toks[4].kind, Tok::kIdent);
  EXPECT_EQ(toks[5].kind, Tok::kRBrack);
}

TEST(Lexer, ClassVsName) {
  auto toks = lex("Cell cell");
  EXPECT_EQ(toks[0].kind, Tok::kClass);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("new in def and export import from if then else print let "
                  "true false site"),
            (std::vector<Tok>{Tok::kNew, Tok::kIn, Tok::kDef, Tok::kAnd,
                              Tok::kExport, Tok::kImport, Tok::kFrom, Tok::kIf,
                              Tok::kThen, Tok::kElse, Tok::kPrint, Tok::kLet,
                              Tok::kTrue, Tok::kFalse, Tok::kSite, Tok::kEnd}));
}

TEST(Lexer, KeywordPrefixIsIdent) {
  auto toks = lex("news innovate defer android lettuce");
  for (std::size_t i = 0; i + 1 < toks.size(); ++i)
    EXPECT_EQ(toks[i].kind, Tok::kIdent) << i;
}

TEST(Lexer, Numbers) {
  auto toks = lex("42 3.5 0 1e-ignored");
  EXPECT_EQ(toks[0].kind, Tok::kInt);
  EXPECT_EQ(toks[0].int_val, 42);
  EXPECT_EQ(toks[1].kind, Tok::kFloat);
  EXPECT_DOUBLE_EQ(toks[1].float_val, 3.5);
  EXPECT_EQ(toks[2].kind, Tok::kInt);
  EXPECT_EQ(toks[2].int_val, 0);
}

TEST(Lexer, FloatWithExponent) {
  auto toks = lex("2.5e3");
  EXPECT_EQ(toks[0].kind, Tok::kFloat);
  EXPECT_DOUBLE_EQ(toks[0].float_val, 2500.0);
}

TEST(Lexer, Strings) {
  auto toks = lex(R"("hello" "a\"b" "tab\tnl\n")");
  EXPECT_EQ(toks[0].kind, Tok::kString);
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "a\"b");
  EXPECT_EQ(toks[2].text, "tab\tnl\n");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"oops"), LexError);
}

TEST(Lexer, UnknownEscapeThrows) { EXPECT_THROW(lex(R"("\q")"), LexError); }

TEST(Lexer, MultiCharOperators) {
  EXPECT_EQ(kinds("== != <= >= && || ++"),
            (std::vector<Tok>{Tok::kEq, Tok::kNe, Tok::kLe, Tok::kGe,
                              Tok::kAndAnd, Tok::kOrOr, Tok::kConcat,
                              Tok::kEnd}));
}

TEST(Lexer, BarVsOrOr) {
  EXPECT_EQ(kinds("a | b || c"),
            (std::vector<Tok>{Tok::kIdent, Tok::kBar, Tok::kIdent, Tok::kOrOr,
                              Tok::kIdent, Tok::kEnd}));
}

TEST(Lexer, Comments) {
  auto toks = lex("x -- a comment !?![]\n y");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "y");
}

TEST(Lexer, CommentNotMinus) {
  EXPECT_EQ(kinds("1 - 2"),
            (std::vector<Tok>{Tok::kInt, Tok::kMinus, Tok::kInt, Tok::kEnd}));
}

TEST(Lexer, LineColumnTracking) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, UnexpectedCharThrows) { EXPECT_THROW(lex("x @ y"), LexError); }

TEST(Lexer, DollarAllowedInsideIdent) {
  // fresh_name() produces base$n identifiers; the pretty-printer emits
  // them and they must re-lex.
  auto toks = lex("r$17");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "r$17");
}

}  // namespace
}  // namespace dityco::comp
