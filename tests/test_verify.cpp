// Byte-code verifier tests: every compiler output verifies cleanly;
// corrupted and hostile segments are rejected before linking; malformed
// packets never crash a site (fuzz).
#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "core/network.hpp"
#include "core/wire.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"
#include "vm/verify.hpp"

namespace dityco::vm {
namespace {

using comp::compile_source;

const char* kPrograms[] = {
    "print[1]",
    "new x (x![1] | x?(v) = print[v])",
    "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
    "write(u) = Cell[self, u] } in new x Cell[x, 9]",
    "if 1 < 2 then print[\"a\" ++ \"b\"] else print[2.5]",
    "import p from s in export new q in (p![q] | q?(v) = print[v])",
};

class VerifierAccepts : public ::testing::TestWithParam<const char*> {};

TEST_P(VerifierAccepts, CompilerOutputIsValid) {
  const auto prog = compile_source(GetParam());
  auto problems = verify_program(prog);
  EXPECT_TRUE(problems.empty()) << problems[0] << "\nfor: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Programs, VerifierAccepts,
                         ::testing::ValuesIn(kPrograms));

TEST(Verifier, RejectsUnknownOpcode) {
  auto prog = compile_source("print[1]");
  prog.segments[0].code[0] = 0xdeadbeef;
  EXPECT_FALSE(verify_program(prog).empty());
}

TEST(Verifier, RejectsTruncatedInstruction) {
  // print[1] ends ... print <nargs> halt: dropping the trailing halt and
  // print's operand leaves a print opcode with no operand word.
  auto prog = compile_source("print[1]");
  prog.segments[0].code.resize(prog.segments[0].code.size() - 2);
  EXPECT_FALSE(verify_program(prog).empty());
}

TEST(Verifier, CodeMayEndWithoutHalt) {
  // Dropping only the final halt leaves a decodable stream; running off
  // the end is a dynamic error, not a verification one.
  auto prog = compile_source("print[1]");
  prog.segments[0].code.resize(prog.segments[0].code.size() - 1);
  EXPECT_TRUE(verify_program(prog).empty());
  Machine m("m");
  m.spawn_program(prog);
  m.run(100);
  ASSERT_EQ(m.errors().size(), 1u);
  EXPECT_NE(m.errors()[0].find("pc out of range"), std::string::npos);
}

TEST(Verifier, RejectsOutOfRangeStringIndex) {
  auto prog = compile_source("print[\"x\"]");
  // pushs operand -> bogus pool index
  auto& code = prog.segments[0].code;
  for (std::size_t i = 0; i < code.size();) {
    const Op op = static_cast<Op>(code[i]);
    if (op == Op::kPushStr) {
      code[i + 1] = 999;
      break;
    }
    i += 1 + static_cast<std::size_t>(op_arity(op));
  }
  EXPECT_FALSE(verify_program(prog).empty());
}

TEST(Verifier, RejectsJumpIntoOperand) {
  auto prog = compile_source("if true then print[1] else print[2]", false);
  auto& code = prog.segments[0].code;
  for (std::size_t i = 0; i < code.size();) {
    const Op op = static_cast<Op>(code[i]);
    if (op == Op::kJmpIfFalse) {
      code[i + 1] = static_cast<std::uint32_t>(i + 1);  // operand word
      break;
    }
    i += 1 + static_cast<std::size_t>(op_arity(op));
  }
  EXPECT_FALSE(verify_program(prog).empty());
}

TEST(Verifier, RejectsBadDependencyIndex) {
  auto prog = compile_source("new x x?{ l() = 0 }");
  for (auto& seg : prog.segments) {
    auto& code = seg.code;
    for (std::size_t i = (&seg == &prog.segments[prog.root]) ? 0 : 0;
         i < code.size();) {
      const std::uint32_t raw = code[i];
      if (raw > static_cast<std::uint32_t>(Op::kImportClass)) break;
      const Op op = static_cast<Op>(raw);
      if (op == Op::kTrObj) {
        code[i + 1] = 7;  // no such dependency
        auto problems = verify_program(prog);
        ASSERT_FALSE(problems.empty());
        return;
      }
      i += 1 + static_cast<std::size_t>(op_arity(op));
    }
  }
  FAIL() << "no trobj found";
}

TEST(Verifier, RejectsMalformedObjectTable) {
  Segment seg;
  seg.guid = {0, 0, 0};
  seg.code = {100};  // claims 100 methods, no room
  EXPECT_FALSE(verify_segment(seg, SegmentRole::kObject).empty());
}

TEST(Verifier, HostileShippedSegmentRejectedAtLink) {
  Segment bad;
  bad.guid = SegmentGuid{9, 9, 9};
  bad.code = {0xffffffffu};  // unknown opcode
  Machine m("victim");
  std::map<SegmentGuid, Segment> pool{{bad.guid, bad}};
  EXPECT_THROW(m.link(bad.guid, pool), DecodeError);
}

// ---------------------------------------------------------------------
// Packet fuzzing: random bytes at the site boundary must never crash.
// ---------------------------------------------------------------------

class PacketFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketFuzz, RandomBytesNeverCrashASite) {
  Rng rng(GetParam() * 40503 + 7);
  core::Network net;
  net.add_node();
  net.add_site(0, "victim");
  core::Site* victim = net.find_site("victim");
  for (int k = 0; k < 50; ++k) {
    const std::size_t len = rng.below(64);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    // Valid-looking header with a random body sometimes: bias byte 0 into
    // the real MsgType range so deeper parsing paths are reached.
    if (!bytes.empty() && rng.chance(1, 2))
      bytes[0] = static_cast<std::uint8_t>(1 + rng.below(7));
    if (bytes.size() >= 5) {
      bytes[1] = 0;  // dst_site = 0 (the victim)
      bytes[2] = bytes[3] = bytes[4] = 0;
    }
    victim->push_incoming(std::move(bytes));
  }
  EXPECT_NO_THROW(victim->process_incoming());
  // The site survives and can still run programs.
  net.submit_source("victim", "print[\"alive\"]");
  auto res = net.run();
  EXPECT_EQ(net.output("victim"), std::vector<std::string>{"alive"});
  EXPECT_FALSE(res.budget_exhausted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(PacketFuzz, TruncatedRealPacketsRejected) {
  // Take a real SHIPO packet and truncate it at every length: each prefix
  // must be rejected cleanly.
  core::Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_network_source(
      "site server { export new x in x![1] }\n"
      "site client { import x from server in x?(v) = 0 }");
  // Don't run to completion; capture the client's outgoing object packet.
  // Simpler: craft the truncation test against a marshalled value stream.
  vm::Machine m("m", 0, 0);
  Writer w;
  core::marshal_value(m, Value::make_int(5), w);
  core::marshal_value(m, Value::make_chan(m.new_channel()), w);
  const auto& full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> part(full.begin(),
                                   full.begin() + static_cast<long>(cut));
    Reader r(part);
    vm::Machine m2("m2", 1, 0);
    EXPECT_THROW(
        {
          core::unmarshal_value(m2, r);
          core::unmarshal_value(m2, r);
        },
        DecodeError)
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace dityco::vm
