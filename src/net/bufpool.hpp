// Pooled packet buffers for the TCP hot path.
//
// The paper's threads are tens of instructions (§5), so in the TCP mesh
// a malloc/free pair per tiny frame is real overhead. A BufferPool
// recycles encode buffers through a bounded free list: the steady-state
// wire path (encode -> enqueue -> writev -> release) allocates nothing.
//
// Buffers are plain std::vector<uint8_t> handed out by unique_ptr, so a
// buffer that escapes the pool (or outlives it) is still just a vector
// — releasing back is an optimisation, never a correctness requirement.
// The pool is thread-safe (executors acquire while the I/O thread
// releases) and bounded: at most `max_free` buffers are retained, and
// buffers grown past `max_buffer_bytes` are dropped on release instead
// of pinning large capacities forever (counted in `trimmed`).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace dityco::net {

/// A recyclable byte buffer. Always a valid vector; the pool only
/// affects where its capacity comes from.
using Buf = std::vector<std::uint8_t>;
using BufPtr = std::unique_ptr<Buf>;

class BufferPool {
 public:
  struct Options {
    /// Free-list bound: releases beyond it free the buffer instead.
    std::size_t max_free = 256;
    /// Buffers whose capacity grew past this are not retained.
    std::size_t max_buffer_bytes = 1u << 20;
  };

  /// Gauges and counters for the observability layer (tcp_pool_* metrics
  /// and the /peers pool block). Taken under the pool lock, so the
  /// snapshot is internally consistent.
  struct StatsSnapshot {
    std::uint64_t hits = 0;      // acquires served from the free list
    std::uint64_t misses = 0;    // acquires that had to allocate
    std::uint64_t releases = 0;  // buffers returned (retained or not)
    std::uint64_t trimmed = 0;   // releases dropped by the bounds
    std::uint64_t outstanding = 0;   // acquired - released (gauge)
    std::uint64_t free_buffers = 0;  // on the free list now (gauge)
    std::uint64_t free_bytes = 0;    // capacity held by the free list
  };

  BufferPool() = default;
  explicit BufferPool(Options opts) : opts_(opts) {}

  /// A cleared buffer (size 0) with capacity >= `reserve`.
  BufPtr acquire(std::size_t reserve);
  /// Return a buffer; nullptr is a no-op. The buffer's contents are
  /// dead the moment this is called.
  void release(BufPtr b);
  /// Drop the whole free list (e.g. after a burst).
  void trim();

  StatsSnapshot stats() const;

 private:
  mutable std::mutex mu_;
  std::vector<BufPtr> free_;
  Options opts_;
  std::uint64_t hits_ = 0, misses_ = 0, releases_ = 0, trimmed_ = 0;
  std::uint64_t outstanding_ = 0;
};

}  // namespace dityco::net
