#include "compiler/assembly.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <unordered_map>

namespace dityco::comp {

using vm::Op;
using vm::Program;
using vm::Segment;
using vm::SegmentGuid;

namespace {

enum class SegKind { kRoot, kObject, kClass, kPlain };

const char* kind_name(SegKind k) {
  switch (k) {
    case SegKind::kRoot: return "root";
    case SegKind::kObject: return "object";
    case SegKind::kClass: return "class";
    case SegKind::kPlain: return "plain";
  }
  return "?";
}

/// Classify every segment by how it is referenced: kTrObj dependencies
/// carry an object method table, kMkBlock dependencies a class table.
std::vector<SegKind> classify(const Program& p) {
  std::vector<SegKind> kinds(p.segments.size(), SegKind::kPlain);
  if (p.root < kinds.size()) kinds[p.root] = SegKind::kRoot;
  // A segment's code starts after its table, and we only know whether it
  // *has* a table once we know how it is referenced — so classify to a
  // fixpoint: walk the code of segments whose kind (and hence code start)
  // is known, discovering the kinds of their dependencies.
  std::vector<bool> visited(p.segments.size(), false);
  bool changed = true;
  auto code_start = [&](std::size_t s) -> std::size_t {
    const auto& code = p.segments[s].code;
    switch (kinds[s]) {
      case SegKind::kRoot:
      case SegKind::kPlain:
        return 0;
      case SegKind::kObject:
        return 1 + 3 * static_cast<std::size_t>(code.at(0));
      case SegKind::kClass:
        return 1 + 2 * static_cast<std::size_t>(code.at(0));
    }
    return 0;
  };
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      if (visited[s]) continue;
      if (kinds[s] == SegKind::kPlain && s != p.root) {
        // Not yet referenced: postpone until a referrer classifies it —
        // unless nothing will (orphan), handled after the loop.
        bool referenced = false;
        for (const auto& other : p.segments)
          for (const auto& d : other.deps)
            if (d.index == s) referenced = true;
        if (referenced && s != p.root) continue;
      }
      visited[s] = true;
      changed = true;
      const auto& seg = p.segments[s];
      for (std::size_t i = code_start(s); i < seg.code.size();) {
        const Op op = static_cast<Op>(seg.code[i]);
        const int arity = vm::op_arity(op);
        if (op == Op::kTrObj) {
          const std::uint32_t dep = seg.code.at(i + 1);
          kinds.at(seg.deps.at(dep).index) = SegKind::kObject;
        } else if (op == Op::kMkBlock) {
          const std::uint32_t dep = seg.code.at(i + 1);
          kinds.at(seg.deps.at(dep).index) = SegKind::kClass;
        }
        i += 1 + static_cast<std::size_t>(arity);
      }
    }
  }
  return kinds;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out + "\"";
}

const std::unordered_map<std::string, Op>& op_by_name() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, Op>();
    for (std::uint32_t o = 0;
         o <= static_cast<std::uint32_t>(Op::kImportClass); ++o)
      (*m)[vm::op_name(static_cast<Op>(o))] = static_cast<Op>(o);
    return m;
  }();
  return *map;
}

}  // namespace

std::string to_assembly(const Program& p) {
  const auto kinds = classify(p);
  std::ostringstream os;
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    const Segment& seg = p.segments[s];
    os << ".segment " << s << " " << kind_name(kinds[s]) << "\n";
    if (!seg.labels.empty()) {
      os << ".labels";
      for (const auto& l : seg.labels) os << " " << l;
      os << "\n";
    }
    if (!seg.strings.empty()) {
      os << ".strings";
      for (const auto& c : seg.strings) os << " " << quote(c);
      os << "\n";
    }
    if (!seg.floats.empty()) {
      os << ".floats";
      for (double f : seg.floats) {
        os << " ";
        os << std::hexfloat << f << std::defaultfloat;
      }
      os << "\n";
    }
    if (!seg.deps.empty()) {
      os << ".deps";
      for (const auto& d : seg.deps) os << " " << d.index;
      os << "\n";
    }
    std::size_t start = 0;
    if (kinds[s] == SegKind::kObject) {
      const std::uint32_t n = seg.code.at(0);
      os << ".table";
      for (std::uint32_t k = 0; k < n; ++k)
        os << " (" << seg.code.at(1 + 3 * k) << " " << seg.code.at(2 + 3 * k)
           << " " << seg.code.at(3 + 3 * k) << ")";
      os << "\n";
      start = 1 + 3 * static_cast<std::size_t>(n);
    } else if (kinds[s] == SegKind::kClass) {
      const std::uint32_t n = seg.code.at(0);
      os << ".table";
      for (std::uint32_t k = 0; k < n; ++k)
        os << " (" << seg.code.at(1 + 2 * k) << " " << seg.code.at(2 + 2 * k)
           << ")";
      os << "\n";
      start = 1 + 2 * static_cast<std::size_t>(n);
    }
    os << ".code\n";
    for (std::size_t i = start; i < seg.code.size();) {
      const Op op = static_cast<Op>(seg.code[i]);
      os << "  " << i << ": " << vm::op_name(op);
      for (int k = 0; k < vm::op_arity(op); ++k)
        os << " " << seg.code[i + 1 + static_cast<std::size_t>(k)];
      os << "\n";
      i += 1 + static_cast<std::size_t>(vm::op_arity(op));
    }
    os << ".end\n";
  }
  return os.str();
}

namespace {

class AsmParser {
 public:
  explicit AsmParser(std::string_view src) : src_(src) {}

  Program parse() {
    Program out;
    skip_ws();
    while (!done()) {
      out.segments.push_back(segment(out.segments.size()));
      skip_ws();
    }
    if (out.segments.empty()) throw CompileError("empty assembly");
    out.root = 0;
    for (std::size_t s = 0; s < out.segments.size(); ++s)
      if (kinds_.at(s) == SegKind::kRoot) out.root = static_cast<std::uint32_t>(s);
    return out;
  }

 private:
  bool done() const { return pos_ >= src_.size(); }
  char peek() const { return done() ? '\0' : src_[pos_]; }

  void skip_ws() {
    while (!done()) {
      char c = peek();
      if (c == ';') {  // comment to end of line
        while (!done() && peek() != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (!done() && !std::isspace(static_cast<unsigned char>(peek())) &&
           peek() != '(' && peek() != ')' && peek() != ';')
      ++pos_;
    if (start == pos_) throw CompileError("assembly: token expected");
    return std::string(src_.substr(start, pos_ - start));
  }

  std::uint32_t number() {
    std::string w = word();
    // Strip a trailing ':' from offset markers.
    if (!w.empty() && w.back() == ':') w.pop_back();
    try {
      return static_cast<std::uint32_t>(std::stoul(w));
    } catch (...) {
      throw CompileError("assembly: number expected, found '" + w + "'");
    }
  }

  std::string qstring() {
    skip_ws();
    if (peek() != '"') throw CompileError("assembly: string expected");
    ++pos_;
    std::string out;
    while (!done() && peek() != '"') {
      char c = src_[pos_++];
      if (c == '\\') {
        if (done()) throw CompileError("assembly: bad escape");
        char e = src_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: throw CompileError("assembly: bad escape");
        }
      } else {
        out += c;
      }
    }
    if (done()) throw CompileError("assembly: unterminated string");
    ++pos_;
    return out;
  }

  bool at_directive() {
    skip_ws();
    return peek() == '.';
  }

  Segment segment(std::size_t index) {
    if (word() != ".segment") throw CompileError("assembly: .segment expected");
    const std::uint32_t declared = number();
    if (declared != index)
      throw CompileError("assembly: segments must appear in order");
    const std::string kind = word();
    SegKind k;
    if (kind == "root") k = SegKind::kRoot;
    else if (kind == "object") k = SegKind::kObject;
    else if (kind == "class") k = SegKind::kClass;
    else if (kind == "plain") k = SegKind::kPlain;
    else throw CompileError("assembly: unknown segment kind " + kind);
    kinds_[index] = k;

    Segment seg;
    seg.guid = SegmentGuid{0, 0, static_cast<std::uint32_t>(index)};
    for (;;) {
      skip_ws();
      std::size_t mark = pos_;
      std::string dir = word();
      if (dir == ".labels") {
        while (!at_directive()) seg.labels.push_back(word());
      } else if (dir == ".strings") {
        skip_ws();
        while (peek() == '"') {
          seg.strings.push_back(qstring());
          skip_ws();
        }
      } else if (dir == ".floats") {
        while (!at_directive()) seg.floats.push_back(std::strtod(
            word().c_str(), nullptr));
      } else if (dir == ".deps") {
        while (!at_directive())
          seg.deps.push_back(SegmentGuid{0, 0, number()});
      } else if (dir == ".table") {
        skip_ws();
        while (peek() == '(') {
          ++pos_;
          std::vector<std::uint32_t> entry;
          skip_ws();
          while (peek() != ')') {
            entry.push_back(number());
            skip_ws();
          }
          ++pos_;  // ')'
          const std::size_t want = k == SegKind::kObject ? 3u : 2u;
          if (entry.size() != want)
            throw CompileError("assembly: bad table entry arity");
          table_.push_back(entry);
          skip_ws();
        }
      } else if (dir == ".code") {
        break;
      } else {
        (void)mark;
        throw CompileError("assembly: unexpected directive " + dir);
      }
    }

    // Emit the table words first.
    if (k == SegKind::kObject || k == SegKind::kClass) {
      seg.code.push_back(static_cast<std::uint32_t>(table_.size()));
      for (const auto& e : table_)
        for (std::uint32_t w : e) seg.code.push_back(w);
    }
    table_.clear();

    // Instructions until .end.
    for (;;) {
      skip_ws();
      if (peek() == '.') {
        if (word() != ".end") throw CompileError("assembly: .end expected");
        break;
      }
      std::string first = word();
      // Optional "offset:" marker.
      if (!first.empty() && first.back() == ':') first = word();
      auto it = op_by_name().find(first);
      if (it == op_by_name().end())
        throw CompileError("assembly: unknown opcode " + first);
      const Op op = it->second;
      seg.code.push_back(static_cast<std::uint32_t>(op));
      for (int a = 0; a < vm::op_arity(op); ++a)
        seg.code.push_back(number());
    }
    return seg;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::map<std::size_t, SegKind> kinds_;
  std::vector<std::vector<std::uint32_t>> table_;
};

}  // namespace

Program from_assembly(std::string_view asm_text) {
  return AsmParser(asm_text).parse();
}

}  // namespace dityco::comp
