// Recursive-descent parser for the DiTyCO surface language, producing the
// shared calculus AST. Syntax summary (see README for the full grammar):
//
//   P ::= 0 | P '|' P | '(' P ')'
//       | new x(, y)* [in] P                       -- channel creation
//       | x!l[e, ...] | x![e, ...]                 -- message (sugar: val)
//       | x?{ l(a, b) = P, ... } | x?(a, b) = T    -- object (sugar: val)
//       | X[e, ...]                                -- instantiation
//       | def X(a) = P and Y(b) = Q in R           -- class definitions
//       | export new x(, y)* [in] P
//       | export def ... in P
//       | import x from s in P | import X from s in P
//       | if e then P else Q
//       | print[e, ...] [; P]
//       | let x = y!l[e, ...] in P                 -- RPC sugar (paper §4)
//
// Conventions: names/labels/sites are lowercase-initial, class variables
// uppercase-initial. Located identifiers (s.x, s.X) are accepted for
// testing although the surface language normally introduces them only via
// import. The body of the `x?(a)=T` sugar is a single term (binds tighter
// than '|'); brace-form method bodies are full processes.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "calculus/ast.hpp"
#include "compiler/lexer.hpp"

namespace dityco::comp {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line, int col)
      : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + what),
        line(line),
        col(col) {}
  int line, col;
};

/// Parse a single process (one site's program).
calc::ProcPtr parse_program(std::string_view src);

/// Parse a network file: either a bare process (implicitly at site "main")
/// or one or more `site name { P }` blocks.
std::vector<std::pair<std::string, calc::ProcPtr>> parse_network(
    std::string_view src);

/// Parse a standalone expression (used by tests).
calc::ExprPtr parse_expr(std::string_view src);

}  // namespace dityco::comp
