// E1 (Figure 1): the hardware platform — a 4-node dual-processor PC
// cluster with a 1 Gb/s Myrinet switch and a 100 Mb/s Fast Ethernet
// uplink. This harness characterises our simulated substitute: per-link
// one-way cost across packet sizes for both models, and a 4-node
// all-pairs exchange (the switch's point-to-point concurrency: packets
// do not hop through intermediate nodes, so all-pairs time ~ one pair).
#include "bench_util.hpp"

using namespace dityco;
using namespace dityco::benchutil;

namespace {

net::Packet mk(std::uint32_t src, std::uint32_t dst, std::size_t size) {
  net::Packet p;
  p.src_node = src;
  p.dst_node = dst;
  p.bytes.assign(size, 0);
  return p;
}

double all_pairs_makespan(const net::LinkModel& link, int nodes,
                          std::size_t size) {
  net::SimTransport t(static_cast<std::size_t>(nodes), link);
  for (int a = 0; a < nodes; ++a)
    for (int b = 0; b < nodes; ++b)
      if (a != b)
        t.send(mk(static_cast<std::uint32_t>(a),
                  static_cast<std::uint32_t>(b), size),
               0.0);
  double makespan = 0;
  for (int b = 0; b < nodes; ++b) {
    net::Packet p;
    double last = 0;
    while (auto arr = t.next_arrival(static_cast<std::uint32_t>(b))) {
      last = *arr;
      t.recv(static_cast<std::uint32_t>(b), p, *arr);
    }
    makespan = std::max(makespan, last);
  }
  return makespan;
}

}  // namespace

int main() {
  const struct {
    const char* name;
    net::LinkModel m;
  } links[] = {{"Myrinet (1 Gb/s switch)", net::myrinet()},
               {"FastEthernet (100 Mb/s)", net::fast_ethernet()}};

  header("E1a: link model calibration (one-way packet cost)",
         {"link", "latency us", "bandwidth Mb/s", "64 B", "1.5 KB",
          "64 KB"});
  for (const auto& l : links) {
    row({l.name, fmt(l.m.latency_us), fmt(l.m.bandwidth_mbps),
         fmt(l.m.cost_us(64)) + " us", fmt(l.m.cost_us(1500)) + " us",
         fmt(l.m.cost_us(65536)) + " us"});
  }

  header("E1b: 4-node all-pairs exchange makespan (switch concurrency)",
         {"link", "payload", "one pair us", "all pairs us",
          "slowdown"});
  for (const auto& l : links) {
    for (std::size_t size : {64u, 4096u}) {
      const double one = l.m.cost_us(size);
      const double all = all_pairs_makespan(l.m, 4, size);
      row({l.name, fmt_int(size) + " B", fmt(one), fmt(all),
           fmt(all / one)});
    }
  }
  std::printf(
      "\nshape check: the switch serves disjoint pairs concurrently, so\n"
      "the all-pairs makespan equals a single pair's cost (slowdown 1.0)\n"
      "— the property the paper's fig. 1 platform relies on.\n");
  return 0;
}
