// C6: two protocol-level measurements.
//
// (a) RPC decomposition (section 3): "a remote communication involves two
//     reduction steps: one to get the method invocation to the target
//     site and the other to consume the message at the target; the former
//     is an asynchronous operation, the latter requires a rendez-vous."
//     We measure one RPC's virtual time and compare against the additive
//     model  2 x link(payload) + local compute, for both network models.
//
// (b) Centralised name-service contention (section 5: "Currently ... the
//     network name service is centralized ... This will change ... for
//     reasons of both redundancy and performance."): S sites importing
//     through the single NS; lookups serialise at the service, so import
//     completion time grows with S — the quantitative motivation for the
//     future distributed NS.
#include "bench_util.hpp"

using namespace dityco;
using namespace dityco::benchutil;

namespace {

double chained_rpcs(const net::LinkModel& link, int n) {
  auto net = core::Network(sim_config(link));
  net.add_node();
  net.add_site(0, "server");
  net.add_node();
  net.add_site(1, "client");
  net.submit_source("server", echo_server_src());
  net.submit_source("client", chained_rpc_client_src("server", n));
  return net.run().virtual_time_us;
}

/// Marginal cost of one more chained RPC — excludes the one-off
/// name-service import round trip.
double one_rpc(const net::LinkModel& link) {
  return chained_rpcs(link, 2) - chained_rpcs(link, 1);
}

// `ns_shards > 0` turns on the PR 10 sharded directory (rendezvous-hashed
// slices, one per node; docs/NAMESERVICE.md); `lease_ms > 0` additionally
// enables the client-side lease cache, and `passes` repeats each site's
// import sequence so the cache has something to hit on pass two.
double import_storm(int sites, int imports_each, MetricsJsonEmitter& mj,
                    MonitorFlag& mon, ObsFlags& obsf, bool distributed = false,
                    std::uint32_t ns_shards = 0, std::uint64_t lease_ms = 0,
                    int passes = 1, const char* tag = "") {
  auto cfg = sim_config(net::myrinet());
  cfg.ns_service_us = 2.0;
  cfg.distributed_ns = distributed;
  if (ns_shards > 0) {
    cfg.ns_shards = ns_shards;
    cfg.ns_replicas = 1;
    cfg.ns_lease_ms = lease_ms;
  }
  core::Network net(cfg);
  net.add_node();
  net.add_site(0, "server");
  std::string exports = "export new a0 in ";
  std::string names;
  for (int i = 1; i < imports_each; ++i)
    exports += "export new a" + std::to_string(i) + " in ";
  net.submit_source("server", exports + "0");
  for (int s = 0; s < sites; ++s) {
    net.add_node();
    const std::string name = "c" + std::to_string(s);
    net.add_site(static_cast<std::size_t>(s) + 1, name);
    std::string prog;
    for (int p = 0; p < passes; ++p)
      for (int i = 0; i < imports_each; ++i)
        prog += "import a" + std::to_string(i) + " from server in ";
    net.submit_source(name, prog + "print[\"ok\"]");
  }
  mon.attach(net);
  obsf.attach(net);
  auto res = net.run();
  const std::string label =
      (distributed   ? "distributed-ns s="
       : ns_shards   ? (lease_ms ? "sharded-cached-ns s=" : "sharded-ns s=")
                     : "central-ns s=") +
      std::to_string(sites) + tag;
  mj.record(label, net);
  obsf.report(label, net);
  if (!res.quiescent) std::printf("WARNING: import storm not quiescent\n");
  return res.virtual_time_us;
}

// The import storm under the threaded driver on a real transport: every
// lookup crosses in-proc queues vs loopback TCP sockets to the node
// hosting the name service (docs/NETWORKING.md). Wall clock, best of
// `reps`; each repetition's duration lands in `samples`.
double wall_import_storm(core::Network::TransportKind t, int sites,
                         int imports_each, int reps, MetricsJsonEmitter& mj,
                         ObsFlags& obsf, std::vector<double>& samples,
                         std::size_t flush_frames = 0) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto cfg = wall_config(t);
    if (flush_frames) cfg.tcp.flush_frames = flush_frames;
    core::Network net(cfg);
    net.add_node();
    net.add_site(0, "server");
    std::string exports;
    for (int i = 0; i < imports_each; ++i)
      exports += "export new a" + std::to_string(i) + " in ";
    net.submit_source("server", exports + "0");
    for (int s = 0; s < sites; ++s) {
      net.add_node();
      const std::string name = "c" + std::to_string(s);
      net.add_site(static_cast<std::size_t>(s) + 1, name);
      std::string prog;
      for (int i = 0; i < imports_each; ++i)
        prog += "import a" + std::to_string(i) + " from server in ";
      net.submit_source(name, prog + "print[\"ok\"]");
    }
    obsf.attach(net);
    core::Network::Result res;
    const double us = run_wall_us(net, &res);
    const std::string label = std::string("wall ns ") + transport_name(t);
    if (rep == 0) {
      mj.record(label, net);
      obsf.report(label, net);
    }
    if (!res.quiescent)
      std::printf("WARNING: %s did not quiesce\n", label.c_str());
    samples.push_back(us);
    if (best == 0 || us < best) best = us;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  MetricsJsonEmitter mj(argc, argv);
  MonitorFlag mon(argc, argv);
  ObsFlags obsf(argc, argv);
  BenchJson bj("bench_c6_rpc_nameservice", argc, argv);
  header("C6a: marginal RPC cost, measured vs additive model",
         {"network", "measured us", "2 x link + compute (model)",
          "ratio"});
  for (bool myri : {true, false}) {
    const auto link = myri ? net::myrinet() : net::fast_ethernet();
    const double measured = one_rpc(link);
    bj.section(myri ? "c6_sim_rpc_marginal_myrinet"
                    : "c6_sim_rpc_marginal_fastethernet",
               "virtual_us", 1, {measured});
    // Payload: a ship-msg packet is a few tens of bytes; compute ~ the
    // loop bookkeeping at 100 instr/us.
    const double model = 2 * link.cost_us(60) + 1.0;
    row({myri ? "Myrinet" : "FastEthernet", fmt(measured), fmt(model),
         fmt(measured / model)});
  }
  std::printf(
      "\nshape check: one remote interaction = SHIPM there + SHIPM back\n"
      "(two asynchronous legs) plus a local rendez-vous at each end, so\n"
      "the ratio against the additive 2-leg model must sit near 1.\n");

  header("C6b: name-service contention (8 imports/site)",
         {"importing sites", "centralised us", "distributed us (extension)"});
  const int imports_each = 8;
  for (int s : {1, 2, 4, 8, 16, 32}) {
    const double central = import_storm(s, imports_each, mj, mon, obsf, false);
    const double dist = import_storm(s, imports_each, mj, mon, obsf, true);
    bj.section("c6_sim_import_storm_central_s" + std::to_string(s),
               "virtual_us", s * imports_each, {central});
    bj.section("c6_sim_import_storm_distributed_s" + std::to_string(s),
               "virtual_us", s * imports_each, {dist});
    row({fmt_int(s), fmt(central), fmt(dist)});
  }
  std::printf(
      "\nshape check: centralised total time grows with the number of\n"
      "importing sites (the single NS serialises lookups) — the paper's\n"
      "stated reason to distribute the name service. With the replicated\n"
      "service (this repo's future-work extension) lookups are answered\n"
      "on-node and the growth disappears.\n");

  // A storm heavy enough that directory service time dominates the fixed
  // costs sharding adds (remote registration, replica forwards): 32
  // imports per site. All three columns run the identical workload, so
  // the sections compare raw virtual time; the cached column repeats the
  // import list, doubling ops for near-zero added time.
  const int storm_imports = 32;
  header("C6c: sharded name service vs centralised (32 imports/site; "
         "cached column runs the import list twice per site)",
         {"importing sites", "centralised us", "sharded us",
          "sharded+cache us"});
  for (int s : {4, 16}) {
    // One shard slice per node (server's node included), one follower each
    // — the topology ns_smoke.sh runs, minus the kill.
    const auto shards = static_cast<std::uint32_t>(s) + 1;
    const double central = import_storm(s, storm_imports, mj, mon, obsf,
                                        false, 0, 0, 1, " heavy");
    const double sharded = import_storm(s, storm_imports, mj, mon, obsf,
                                        false, shards);
    const double cached = import_storm(s, storm_imports, mj, mon, obsf, false,
                                       shards, /*lease_ms=*/10000,
                                       /*passes=*/2);
    bj.section("c6_sim_import_storm_central_heavy_s" + std::to_string(s),
               "virtual_us", s * storm_imports, {central});
    bj.section("c6_sim_import_storm_sharded_s" + std::to_string(s),
               "virtual_us", s * storm_imports, {sharded});
    bj.section("c6_sim_import_storm_sharded_cached_s" + std::to_string(s),
               "virtual_us", s * storm_imports * 2, {cached});
    row({fmt_int(s), fmt(central), fmt(sharded), fmt(cached)});
  }
  std::printf(
      "\nshape check: sharding spreads lookup service across every node's\n"
      "slice, so the sharded column must undercut the centralised one at\n"
      "both fleet sizes; the cached column performs twice the imports,\n"
      "yet the second pass is answered from the on-node lease cache, so\n"
      "it must land near the sharded column, far under 2x.\n");

  header("C6-wall: 8-site import storm over a real transport "
         "(8 imports/site, threaded, wall clock, best of 3)",
         {"transport", "wall us"});
  using TK = core::Network::TransportKind;
  for (TK t : {TK::kInProc, TK::kTcp}) {
    std::vector<double> samples;
    const double us =
        wall_import_storm(t, 8, imports_each, 3, mj, obsf, samples);
    bj.section(t == TK::kTcp ? "c6_wall_import_storm_tcp_mesh"
                             : "c6_wall_import_storm_inproc",
               "wall_us", 8 * imports_each, samples);
    row({transport_name(t), fmt(us)});
  }
  {
    // Coalescing off: one write() per frame, same workload. The storm
    // funnels 8 clients into node 0, so this is where batching pays.
    std::vector<double> samples;
    const double us =
        wall_import_storm(TK::kTcp, 8, imports_each, 3, mj, obsf, samples, 1);
    bj.section("c6_wall_import_storm_tcp_mesh_nocoalesce", "wall_us",
               8 * imports_each, samples);
    row({"loopback TCP (no coalesce)", fmt(us)});
  }
  std::printf(
      "\nshape check: every lookup serialises at node 0's name service\n"
      "in both columns; the TCP column adds socket transit per\n"
      "request/reply, so it must be slower but still complete with all\n"
      "sites printing ok.\n");
  return 0;
}
