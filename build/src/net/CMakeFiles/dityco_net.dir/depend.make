# Empty dependencies file for dityco_net.
# This may be replaced when dependencies are built.
