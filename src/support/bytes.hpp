// Byte-oriented serialisation buffers used for everything that crosses a
// node boundary: marshalled messages, shipped objects, fetched code
// segments and name-service requests. The encoding is explicit and
// hardware independent (little-endian, fixed widths), mirroring the
// paper's requirement that network references and byte-code have a
// "hardware independent representation".
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dityco {

/// Error thrown when a Reader runs off the end of a buffer or meets a
/// malformed tag. Deserialisation of network data must never trust its
/// input, so all reads are bounds-checked.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder. All integers little-endian; strings are
/// length-prefixed (u32).
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void bytes(std::span<const std::uint8_t> s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked decoder over a borrowed byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return fixed<std::uint8_t>(); }
  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int32_t i32() { return fixed<std::int32_t>(); }
  std::int64_t i64() { return fixed<std::int64_t>(); }
  double f64() { return fixed<double>(); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T fixed() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw DecodeError("buffer underrun");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dityco
