// Stress and robustness tests: heavy cross-site traffic under the
// threaded driver, deep recursion, wide fan-outs, long pipelines, VM
// tracing, and API misuse.
#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/codegen.hpp"
#include "core/network.hpp"
#include "vm/machine.hpp"

namespace dityco::core {
namespace {


TEST(Stress, ThreadedManyToOneFlood) {
  Network::Config cfg;
  cfg.mode = Network::Mode::kThreaded;
  cfg.timeout_ms = 30'000;
  Network net(cfg);
  net.add_node();
  net.add_site(0, "sink");
  const int producers = 4;
  const int msgs = 500;
  for (int i = 0; i < producers; ++i) {
    net.add_node();
    net.add_site(static_cast<std::size_t>(i) + 1, "p" + std::to_string(i));
  }
  net.submit_source(
      "sink",
      "export new acc in "
      "def Count(self, n) = self?{ val(v) = "
      "(if n == " + std::to_string(producers * msgs) +
      " - 1 then print[\"received\", n + 1] else 0) | Count[self, n + 1] } "
      "in Count[acc, 0]");
  for (int i = 0; i < producers; ++i)
    net.submit_source("p" + std::to_string(i),
                      "import acc from sink in "
                      "def Flood(k) = if k == 0 then 0 else (acc![k] | "
                      "Flood[k - 1]) in Flood[" + std::to_string(msgs) + "]");
  auto res = net.run();
  ASSERT_TRUE(res.quiescent) << "flood did not drain";
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("sink"),
            std::vector<std::string>{
                "received " + std::to_string(producers * msgs)});
}

TEST(Stress, ThreadedRingManyLaps) {
  Network::Config cfg;
  cfg.mode = Network::Mode::kThreaded;
  cfg.timeout_ms = 30'000;
  Network net(cfg);
  const int n = 4, laps = 25;
  for (int i = 0; i < n; ++i) {
    net.add_node();
    net.add_site(static_cast<std::size_t>(i), "s" + std::to_string(i));
  }
  for (int i = 0; i < n; ++i) {
    const std::string next = "s" + std::to_string((i + 1) % n);
    net.submit_source(
        "s" + std::to_string(i),
        "export new slot in "
        "def Station(self) = self?{ tok(v) = "
        "((if v >= " + std::to_string(n * laps) +
        " then print[\"retired\", v] "
        "else (import slot from " + next + " in slot!tok[v + 1])) "
        "| Station[self]) } in (Station[slot]" +
        std::string(i == 0 ? " | import slot from " + next +
                                 " in slot!tok[1]"
                           : "") + ")");
  }
  auto res = net.run();
  ASSERT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("s0"),
            std::vector<std::string>{"retired " + std::to_string(n * laps)});
}

TEST(Stress, DeepTailRecursionConstantMemoryish) {
  Network net;
  net.add_node();
  net.add_site(0, "main");
  net.submit_source("main",
                    "def Loop(i) = if i == 0 then print[\"bottom\"] "
                    "else Loop[i - 1] in Loop[300000]");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("main"), std::vector<std::string>{"bottom"});
}

TEST(Stress, WideForkJoin) {
  // 512 parallel workers all reply to a single collector.
  Network net;
  net.add_node();
  net.add_site(0, "main");
  net.submit_source("main",
                    "new done ("
                    "def Spawn(k) = if k == 0 then 0 else (done![k] | "
                    "Spawn[k - 1]) "
                    "and Join(n, acc) = if n == 0 then print[\"sum\", acc] "
                    "else done?(v) = Join[n - 1, acc + v] "
                    "in (Spawn[512] | Join[512, 0]))");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  // 1 + 2 + ... + 512
  EXPECT_EQ(net.output("main"), std::vector<std::string>{"sum 131328"});
}

TEST(Stress, LongDistributedPipeline) {
  // 24 sites in a row, each incrementing and forwarding to the next.
  Network net;
  const int n = 24;
  for (int i = 0; i < n; ++i) {
    net.add_node();
    net.add_site(static_cast<std::size_t>(i), "h" + std::to_string(i));
  }
  for (int i = 0; i < n; ++i) {
    std::string prog = "export new slot in slot?(v) = ";
    if (i + 1 < n)
      prog += "(import slot from h" + std::to_string(i + 1) +
              " in slot![v + 1])";
    else
      prog += "print[\"end\", v]";
    net.submit_source("h" + std::to_string(i), prog);
  }
  // Inject the token at h0's exported slot. An exported name is a
  // restricted channel, not the site's free-name global, so it must be
  // addressed through an import (a self-import resolves locally).
  net.submit_source("h0", "import slot from h0 in slot![0]");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("h" + std::to_string(n - 1)),
            std::vector<std::string>{"end " + std::to_string(n - 1)});
}

TEST(Stress, TraceCapturesInstructions) {
  vm::Machine m("traced");
  std::vector<std::string> trace;
  m.set_trace(&trace);
  // Compile unoptimised so the expression survives constant folding.
  m.spawn_program(comp::compile_source("print[1 + 2]", /*optimize=*/false));
  m.run(1000);
  ASSERT_FALSE(trace.empty());
  // pushi, pushi, add, print, halt
  EXPECT_EQ(trace.size(), 5u);
  EXPECT_NE(trace[2].find("add"), std::string::npos);
  EXPECT_NE(trace[3].find("print"), std::string::npos);
}

TEST(Stress, ApiMisuseThrows) {
  Network net;
  net.add_node();
  net.add_site(0, "main");
  EXPECT_THROW(net.add_site(0, "main"), std::logic_error);  // duplicate
  EXPECT_THROW(net.submit_source("ghost", "0"), std::logic_error);
  EXPECT_THROW(net.output("ghost"), std::logic_error);
  net.run();
  EXPECT_THROW(net.add_node(), std::logic_error);  // after start
}

TEST(Stress, ResubmissionAfterRunsAccumulate) {
  Network net;
  net.add_node();
  net.add_site(0, "main");
  for (int round = 0; round < 10; ++round) {
    net.submit_source("main", "print[" + std::to_string(round) + "]");
    auto res = net.run();
    EXPECT_TRUE(res.quiescent);
  }
  EXPECT_EQ(net.output("main").size(), 10u);
}

}  // namespace
}  // namespace dityco::core
