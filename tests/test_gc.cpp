// Distributed GC for network references (DESIGN.md §GC): credit-based
// reference counting over the wire protocol, proven by leak checks.
//
// The acceptance bar: after representative workloads — a token ring over
// imported names, class fetching, object shipping — every site's export
// table and the name service's IdTable are empty once the final GC epoch
// (Network::collect_garbage) runs, and heaps return to their baselines.
// Machine-level tests pin the REL protocol's idempotence (duplicates,
// reorders, stale releases) and the credit-split starvation path.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "core/wire.hpp"
#include "vm/machine.hpp"

namespace dityco::core {
namespace {

// ---------------------------------------------------------------------
// Network-level leak checks
// ---------------------------------------------------------------------

/// Three sites on three nodes passing a token around a ring of imported
/// names. Exercises export/import via the name service plus SHIPM credit
/// transfer in both directions; r0 prints the token after two hops.
void build_ring(Network& net) {
  net.add_node();
  net.add_node();
  net.add_node();
  net.add_site(0, "r0");
  net.add_site(1, "r1");
  net.add_site(2, "r2");
  net.submit_source(
      "r0", "export new c0 in import c1 from r1 in (c1![0] | c0?(v) = print[v])");
  net.submit_source("r1",
                    "export new c1 in import c2 from r2 in c1?(v) = c2![v + 1]");
  net.submit_source("r2",
                    "export new c2 in import c0 from r0 in c2?(v) = c0![v + 1]");
}

void expect_all_empty(Network& net, const Network::GcReport& rep) {
  EXPECT_EQ(rep.exports_live, 0u) << "export-table entries leaked";
  EXPECT_EQ(rep.netrefs_live, 0u) << "netref slots leaked";
  EXPECT_EQ(rep.ns_ids, 0u) << "IdTable bindings leaked";
  for (const auto& n : net.nodes())
    for (const auto& s : n->sites()) {
      EXPECT_EQ(s->machine().live_exports(), 0u) << s->name();
      EXPECT_EQ(s->machine().exports_outstanding(), 0u) << s->name();
      EXPECT_EQ(s->machine().live_channels(), 0u) << s->name();
    }
}

TEST(Gc, RingDrainsToEmpty) {
  Network net;
  build_ring(net);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("r0"), std::vector<std::string>{"2"});
  auto rep = net.collect_garbage();
  EXPECT_GE(rep.rounds, 1u);
  expect_all_empty(net, rep);
  // Every site reclaimed its own exported name's entry.
  for (const auto& n : net.nodes())
    for (const auto& s : n->sites())
      EXPECT_GE(s->machine().gc_stats().exports_reclaimed, 1u) << s->name();
}

TEST(Gc, FetchMobilityDrainsToEmpty) {
  // Class code fetching (FETCH/instof) with the dynamic-link cache: the
  // cached class value and its keying netref are pinned during the run
  // and dropped by the final epoch.
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_network_source(
      "site server { export def A(out) = out![1] in 0 }\n"
      "site client { import A from server in "
      "new p (A[p] | p?(a) = (print[a] | A[p] | p?(b) = print[b])) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), (std::vector<std::string>{"1", "1"}));
  EXPECT_EQ(net.find_site("client")->mobility().fetch_cache_hits, 1u);
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, ShipObjectDrainsToEmpty) {
  // SHIPO: the object (with its marshalled environment) migrates to the
  // imported name and reduces there.
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_network_source(
      "site server { export new x in x![10] }\n"
      "site client { import x from server in x?(v) = print[v + 1] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("server"), std::vector<std::string>{"11"});
  EXPECT_EQ(net.find_site("client")->mobility().objs_shipped, 1u);
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, ReplyChannelReclaimedDuringRun) {
  // The classic RPC leak: the client marshals a fresh reply channel per
  // call, creating an export-table entry the pre-GC runtime could never
  // drop. With credit GC the server's collection releases the carried
  // credit as soon as its handle dies, and the entry drains *during the
  // run* — no final epoch needed.
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server", "export new p in p?{ val(x, r) = r![x * 2] }");
  net.submit_source("client",
                    "import p from server in let z = p![5] in print[z]");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"10"});
  Site& client = *net.find_site("client");
  Site& server = *net.find_site("server");
  EXPECT_EQ(client.machine().live_exports(), 0u)
      << "reply-channel entry must auto-reclaim at quiescence";
  EXPECT_EQ(client.machine().gc_stats().exports_reclaimed, 1u);
  EXPECT_EQ(server.machine().live_netrefs(), 0u);
  EXPECT_GE(server.mobility().gc_rel_sent, 1u);
  EXPECT_GE(client.mobility().gc_rel_received, 1u);
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, ThreadedRingDrainsToEmpty) {
  Network::Config cfg;
  cfg.mode = Network::Mode::kThreaded;
  cfg.timeout_ms = 5000;
  Network net(cfg);
  build_ring(net);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("r0"), std::vector<std::string>{"2"});
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, SimRingDrainsToEmpty) {
  // The sim driver defers GC entirely (virtual-time results must not pay
  // for collection passes); the final epoch drives the timed transport
  // with a far-future clock and still drains everything.
  Network::Config cfg;
  cfg.mode = Network::Mode::kSim;
  Network net(cfg);
  build_ring(net);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_GT(res.virtual_time_us, 0.0);
  EXPECT_EQ(net.output("r0"), std::vector<std::string>{"2"});
  std::size_t live = 0;
  for (const auto& n : net.nodes())
    for (const auto& s : n->sites()) live += s->machine().live_exports();
  EXPECT_GT(live, 0u) << "sim mode must not collect mid-run";
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, DisabledGcKeepsLegacyBehaviour) {
  // cfg.gc = false: no credit on the wire, entries live forever, and
  // collect_garbage is a no-op report.
  Network::Config cfg;
  cfg.gc = false;
  Network net(cfg);
  build_ring(net);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("r0"), std::vector<std::string>{"2"});
  std::size_t live = 0;
  for (const auto& n : net.nodes())
    for (const auto& s : n->sites()) live += s->machine().live_exports();
  EXPECT_GE(live, 3u);
  auto rep = net.collect_garbage();
  EXPECT_EQ(rep.rounds, 0u);
}

TEST(Gc, MetricsExposed) {
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server", "export new p in p?{ val(x, r) = r![x] }");
  net.submit_source("client", "import p from server in let z = p![1] in 0");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  net.collect_garbage();
  const std::string text = net.metrics().expose_text();
  EXPECT_NE(text.find("site_exports_live{site=\"server\"}"), std::string::npos);
  EXPECT_NE(text.find("site_gc_reclaimed_total{site=\"client\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ns_unregisters{ns=\"central\"}"), std::string::npos);
}

// ---------------------------------------------------------------------
// Machine-level REL protocol semantics
// ---------------------------------------------------------------------

using vm::Machine;
using vm::NetRef;
using vm::Value;

/// Marshal a local channel out of `owner` (minting credit) and intern
/// the resulting reference at `holder`; returns the netref Value.
Value ship_chan(Machine& owner, std::uint32_t chan, Machine& holder) {
  Writer w;
  marshal_value(owner, Value::make_chan(chan), w, /*gc=*/true);
  const auto bytes = w.take();
  Reader r(bytes);
  return unmarshal_value(holder, r, /*gc=*/true);
}

TEST(GcProtocol, ReleaseDrainsAndReclaims) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  const Value v = ship_chan(owner, ch, peer);
  ASSERT_EQ(v.tag, Value::Tag::kNetRef);
  EXPECT_EQ(owner.live_exports(), 1u);
  EXPECT_EQ(owner.exports_outstanding(), peer.netref_credit_total());

  peer.gc();  // no roots: the handle dies, its balance joins the ledger
  auto rels = peer.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  const auto [ref, cum] = rels[0];
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, peer.node_id(),
                                peer.site_id(), cum),
            Machine::ReleaseResult::kReclaimed);
  EXPECT_EQ(owner.live_exports(), 0u);
  owner.gc();
  EXPECT_EQ(owner.live_channels(), 0u);
}

TEST(GcProtocol, DuplicateReleaseIsStale) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  ship_chan(owner, ch, peer);
  peer.gc();
  const auto rels = peer.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  const auto [ref, cum] = rels[0];
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum),
            Machine::ReleaseResult::kReclaimed);
  // The duplicate targets a reclaimed entry (heap ids are never reused):
  // stale, harmless.
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum),
            Machine::ReleaseResult::kStale);
  EXPECT_GE(owner.gc_stats().rel_stale, 1u);
}

TEST(GcProtocol, ReorderedReleasesMaxMerge) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  // Two marshals of the same channel: minted twice against one entry.
  ship_chan(owner, ch, peer);
  peer.gc();
  const auto first = peer.take_pending_releases();
  ASSERT_EQ(first.size(), 1u);
  const auto [ref, cum1] = first[0];

  ship_chan(owner, ch, peer);  // second handle, same heap id
  peer.gc();
  const auto second = peer.take_pending_releases();
  ASSERT_EQ(second.size(), 1u);
  const auto cum2 = second[0].second;
  ASSERT_GT(cum2, cum1) << "cumulative totals only grow";

  // Deliver newest-first; the older total must be recognised as stale
  // and must not resurrect outstanding credit.
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum2),
            Machine::ReleaseResult::kReclaimed);
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum1),
            Machine::ReleaseResult::kStale);
  EXPECT_EQ(owner.live_exports(), 0u);
}

TEST(GcProtocol, PartialReleaseDoesNotReclaim) {
  Machine owner("owner", 0, 0);
  Machine a("a", 1, 0);
  Machine b("b", 2, 0);
  const std::uint32_t ch = owner.new_channel();
  ship_chan(owner, ch, a);
  ship_chan(owner, ch, b);  // two holders, minted twice
  a.gc();
  const auto rels = a.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  const auto [ref, cum] = rels[0];
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum),
            Machine::ReleaseResult::kApplied);
  EXPECT_EQ(owner.live_exports(), 1u) << "b still holds credit";
  EXPECT_EQ(owner.exports_outstanding(), b.netref_credit_total());
}

TEST(GcProtocol, LegacyEntriesAreNeverReclaimed) {
  // export_chan without credit (a non-GC peer's view): minted == 0
  // marks the entry immortal, preserving pre-GC semantics.
  Machine owner("owner", 0, 0);
  const std::uint32_t ch = owner.new_channel();
  const std::uint64_t id = owner.export_chan(ch);
  // Releases and returns against it are recorded but can never drain a
  // zero mint: the entry survives arbitrary credit traffic.
  EXPECT_EQ(owner.apply_release(NetRef::Kind::kChan, id, 1, 0, 1ull << 40),
            Machine::ReleaseResult::kApplied);
  owner.return_export_credit(NetRef::Kind::kChan, id, 1ull << 40);
  EXPECT_EQ(owner.live_exports(), 1u);
  EXPECT_EQ(owner.exports_outstanding(), 0u);
}

TEST(GcProtocol, NameServicePinBlocksReclaim) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  const Value v = ship_chan(owner, ch, peer);
  const NetRef ref = peer.netref(v.idx);
  owner.pin_name(ref);
  peer.gc();
  const auto rels = peer.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, rels[0].second),
            Machine::ReleaseResult::kApplied)
      << "fully drained but pinned: no reclaim";
  EXPECT_EQ(owner.live_exports(), 1u);
  owner.unpin_name(ref);
  EXPECT_EQ(owner.live_exports(), 0u) << "unpin completes the reclaim";
}

TEST(GcProtocol, ForwardingSplitsCreditAndStarves) {
  Machine owner("owner", 0, 0);
  Machine a("a", 1, 0);
  Machine b("b", 2, 0);
  const std::uint32_t ch = owner.new_channel();
  const Value va = ship_chan(owner, ch, a);

  // Forward a -> b: half the balance travels.
  Writer w;
  marshal_value(a, va, w, /*gc=*/true);
  const auto bytes = w.take();
  Reader r(bytes);
  unmarshal_value(b, r, /*gc=*/true);
  EXPECT_EQ(a.netref_credit_total(), vm::kMintCredit / 2);
  EXPECT_EQ(b.netref_credit_total(), vm::kMintCredit / 2);
  EXPECT_EQ(owner.exports_outstanding(),
            a.netref_credit_total() + b.netref_credit_total());

  // Starvation: a balance of 1 cannot split — the copy ships weak
  // (credit 0) and the starvation counter records the safe leak.
  Machine c("c", 3, 0);
  const std::uint32_t idx =
      c.intern_netref_credit(NetRef{NetRef::Kind::kChan, 0, 0, 999}, 1);
  EXPECT_EQ(c.split_netref_credit(idx), 0u);
  EXPECT_EQ(c.gc_stats().credit_starved, 1u);
}

TEST(GcProtocol, HeapSlotsAreReused) {
  Machine m("m", 0, 0);
  const std::uint32_t a = m.new_channel();
  const std::uint32_t b = m.new_channel();
  EXPECT_EQ(m.live_channels(), 2u);
  m.gc();  // both unreachable
  EXPECT_EQ(m.live_channels(), 0u);
  const std::uint32_t c = m.new_channel();
  EXPECT_TRUE(c == a || c == b) << "freed slots are recycled";
  EXPECT_EQ(m.live_channels(), 1u);
}

}  // namespace
}  // namespace dityco::core
