// Sampled execution profiler (observability, story 2).
//
// A counting profiler answers "which TyCO definitions burn the VM's
// instructions" without per-instruction bookkeeping: the VM decrements a
// countdown each decoded instruction and, every `period` instructions,
// attributes one sample to the pair (opcode, code-segment slot). The
// sample table is a fixed-capacity open-addressed array of atomic
// {key, count} cells written only by the owning executor thread, so the
// hot path is a hash, a probe, and a relaxed add — and any thread
// (TyCOmon's scrape workers) can read a consistent snapshot mid-run.
//
// Segment slots are mapped to human names (the compiler stamps
// vm::Segment::name with the source-level definition, e.g. "Serve")
// through a small mutex-guarded registry, so /profile folds samples
// into `site;definition;opcode count` lines flamegraph tools ingest.
//
// Disabled cost: one predictable branch per decoded instruction
// (`period == 0` keeps the countdown at zero).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dityco::obs {

class Profiler {
 public:
  Profiler() = default;
  // Movable (not copyable) so owners like vm::Machine stay movable;
  // moving is only safe while no other thread samples or snapshots.
  Profiler(Profiler&& o) noexcept { *this = std::move(o); }
  Profiler& operator=(Profiler&& o) noexcept {
    cells_ = std::move(o.cells_);
    period_ = o.period_;
    total_.store(o.total_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    overflow_.store(o.overflow_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    names_ = std::move(o.names_);
    return *this;
  }

  struct Sample {
    std::uint32_t op = 0;
    std::uint32_t ctx = 0;  // segment slot (VM) or caller-defined context
    std::uint64_t count = 0;
  };

  /// Start sampling every `period` attributed instructions (0 disables).
  /// Allocates the cell table on first enable. Owner thread only.
  void enable(std::uint64_t period);
  bool enabled() const { return period_ != 0; }
  std::uint64_t period() const { return period_; }

  /// Attribute one sample. Owner thread only.
  void sample(std::uint32_t op, std::uint32_t ctx);

  /// Human name for a context slot (e.g. the linked segment's source
  /// definition). Any thread.
  void set_context_name(std::uint32_t ctx, std::string name);
  std::string context_name(std::uint32_t ctx) const;

  /// All non-empty cells; order unspecified. Any thread, mid-run safe.
  std::vector<Sample> snapshot() const;
  std::uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  /// Samples that found no free cell within the probe limit.
  std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }

 private:
  // 2^11 cells ≈ far more than |opcodes| x live segments in practice;
  // the probe limit bounds worst-case insert cost, overflow_ counts the
  // (lossy, but measured) spill.
  static constexpr std::size_t kSlots = 2048;
  static constexpr int kMaxProbe = 16;

  struct Cell {
    std::atomic<std::uint64_t> key{0};  // 0 = empty; see make_key
    std::atomic<std::uint64_t> count{0};
  };

  static std::uint64_t make_key(std::uint32_t op, std::uint32_t ctx) {
    // Bit 63 marks the cell used so (op=0, ctx=0) is distinguishable
    // from empty.
    return (1ull << 63) | (static_cast<std::uint64_t>(ctx) << 16) |
           (op & 0xffffu);
  }

  std::unique_ptr<Cell[]> cells_;
  std::uint64_t period_ = 0;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> overflow_{0};
  mutable std::mutex names_mu_;
  std::unordered_map<std::uint32_t, std::string> names_;
};

}  // namespace dityco::obs
