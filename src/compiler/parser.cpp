#include "compiler/parser.hpp"

#include "calculus/subst.hpp"

namespace dityco::comp {

using calc::Abstraction;
using calc::ExprPtr;
using calc::NameRef;
using calc::ProcPtr;

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  ProcPtr program() {
    ProcPtr p = proc();
    expect(Tok::kEnd);
    return p;
  }

  std::vector<std::pair<std::string, ProcPtr>> network() {
    std::vector<std::pair<std::string, ProcPtr>> out;
    if (cur().kind != Tok::kSite) {
      out.emplace_back("main", program());
      return out;
    }
    while (cur().kind == Tok::kSite) {
      next();
      std::string name = expect(Tok::kIdent).text;
      expect(Tok::kLBrace);
      out.emplace_back(std::move(name), proc());
      expect(Tok::kRBrace);
    }
    expect(Tok::kEnd);
    return out;
  }

  ExprPtr standalone_expr() {
    ExprPtr e = expr();
    expect(Tok::kEnd);
    return e;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t off = 1) const {
    return toks_[std::min(pos_ + off, toks_.size() - 1)];
  }
  Token next() { return toks_[pos_++]; }
  bool accept(Tok k) {
    if (cur().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token expect(Tok k) {
    if (cur().kind != k)
      fail(std::string("expected ") + tok_name(k) + ", found " +
           tok_name(cur().kind));
    return next();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, cur().line, cur().col);
  }

  // ---- processes -----------------------------------------------------

  ProcPtr proc() {
    ProcPtr p = term();
    while (cur().kind == Tok::kBar) {
      next();
      p = calc::mk_par(std::move(p), term());
    }
    return p;
  }

  ProcPtr term() {
    switch (cur().kind) {
      case Tok::kInt:
        if (cur().int_val == 0) {
          next();
          return calc::mk_nil();
        }
        fail("a process cannot start with an integer literal (use 0 for nil)");
      case Tok::kLParen: {
        next();
        ProcPtr p = proc();
        expect(Tok::kRParen);
        return p;
      }
      case Tok::kNew:
        next();
        return new_tail(/*exported=*/false);
      case Tok::kExport: {
        next();
        if (accept(Tok::kNew)) return new_tail(/*exported=*/true);
        expect(Tok::kDef);
        auto defs = def_list();
        expect(Tok::kIn);
        return calc::mk_export_def(std::move(defs), proc());
      }
      case Tok::kDef: {
        next();
        auto defs = def_list();
        expect(Tok::kIn);
        return calc::mk_def(std::move(defs), proc());
      }
      case Tok::kImport: {
        next();
        if (cur().kind == Tok::kClass) {
          std::string name = next().text;
          expect(Tok::kFrom);
          std::string site = expect(Tok::kIdent).text;
          expect(Tok::kIn);
          return calc::mk_import_class(std::move(name), std::move(site),
                                       proc());
        }
        std::string name = expect(Tok::kIdent).text;
        expect(Tok::kFrom);
        std::string site = expect(Tok::kIdent).text;
        expect(Tok::kIn);
        return calc::mk_import_name(std::move(name), std::move(site), proc());
      }
      case Tok::kIf: {
        next();
        ExprPtr c = expr();
        expect(Tok::kThen);
        ProcPtr t = term();
        expect(Tok::kElse);
        ProcPtr e = term();
        return calc::mk_if(std::move(c), std::move(t), std::move(e));
      }
      case Tok::kPrint: {
        next();
        auto args = bracket_exprs();
        ProcPtr cont = calc::mk_nil();
        if (accept(Tok::kSemi)) cont = term();
        return calc::mk_print(std::move(args), std::move(cont));
      }
      case Tok::kLet:
        return let_sugar();
      case Tok::kClass: {
        NameRef cls{std::nullopt, next().text};
        return calc::mk_inst(std::move(cls), bracket_exprs());
      }
      case Tok::kIdent:
        return ident_term();
      default:
        fail(std::string("expected a process, found ") + tok_name(cur().kind));
    }
  }

  ProcPtr new_tail(bool exported) {
    std::vector<std::string> names;
    names.push_back(expect(Tok::kIdent).text);
    while (accept(Tok::kComma)) names.push_back(expect(Tok::kIdent).text);
    accept(Tok::kIn);  // optional, as in the paper's `new x P`
    ProcPtr body = proc_or_term_after_binder();
    return exported ? calc::mk_export_new(std::move(names), std::move(body))
                    : calc::mk_new(std::move(names), std::move(body));
  }

  /// After `new x̄ [in]` the scope extends as far right as possible.
  ProcPtr proc_or_term_after_binder() { return proc(); }

  /// let x = y!l[ē] in P  ≜  new r (y!l[ē, r] | r?(x) = P)
  ProcPtr let_sugar() {
    expect(Tok::kLet);
    std::string var = expect(Tok::kIdent).text;
    expect(Tok::kAssign);
    NameRef target = name_ref();
    expect(Tok::kBang);
    std::string label = calc::kValLabel;
    if (cur().kind == Tok::kIdent) label = next().text;
    auto args = bracket_exprs();
    expect(Tok::kIn);
    ProcPtr body = proc();

    std::string reply = calc::fresh_name("r");
    args.push_back(calc::mk_var(reply));
    ProcPtr msg = calc::mk_msg(std::move(target), std::move(label),
                               std::move(args));
    ProcPtr obj = calc::mk_obj(
        NameRef{std::nullopt, reply},
        {Abstraction{calc::kValLabel, {std::move(var)}, std::move(body)}});
    return calc::mk_new({std::move(reply)},
                        calc::mk_par(std::move(msg), std::move(obj)));
  }

  /// A term starting with a lowercase identifier: message, object, or a
  /// located instantiation `s.X[ē]`.
  ProcPtr ident_term() {
    std::string first = expect(Tok::kIdent).text;
    NameRef ref{std::nullopt, std::move(first)};
    if (accept(Tok::kDot)) {
      if (cur().kind == Tok::kClass) {
        NameRef cls{ref.name, next().text};
        return calc::mk_inst(std::move(cls), bracket_exprs());
      }
      ref = NameRef{ref.name, expect(Tok::kIdent).text};
    }
    if (accept(Tok::kBang)) {
      std::string label = calc::kValLabel;
      if (cur().kind == Tok::kIdent) label = next().text;
      return calc::mk_msg(std::move(ref), std::move(label), bracket_exprs());
    }
    if (accept(Tok::kQuery)) {
      if (cur().kind == Tok::kLBrace) {
        next();
        std::vector<Abstraction> methods;
        methods.push_back(method());
        while (accept(Tok::kComma)) methods.push_back(method());
        expect(Tok::kRBrace);
        return calc::mk_obj(std::move(ref), std::move(methods));
      }
      // Sugar: x?(a, b) = T  where T is a single term.
      std::vector<std::string> params = paren_params();
      expect(Tok::kAssign);
      return calc::mk_obj(std::move(ref), {Abstraction{calc::kValLabel,
                                                       std::move(params),
                                                       term()}});
    }
    fail("expected '!' (message), '?' (object) or '.' after name");
  }

  Abstraction method() {
    std::string label = expect(Tok::kIdent).text;
    std::vector<std::string> params = paren_params();
    expect(Tok::kAssign);
    return Abstraction{std::move(label), std::move(params), proc()};
  }

  std::vector<Abstraction> def_list() {
    std::vector<Abstraction> defs;
    do {
      std::string name = expect(Tok::kClass).text;
      std::vector<std::string> params = paren_params();
      expect(Tok::kAssign);
      defs.push_back(Abstraction{std::move(name), std::move(params), proc()});
    } while (accept(Tok::kAnd));
    return defs;
  }

  std::vector<std::string> paren_params() {
    expect(Tok::kLParen);
    std::vector<std::string> params;
    if (cur().kind != Tok::kRParen) {
      params.push_back(expect(Tok::kIdent).text);
      while (accept(Tok::kComma))
        params.push_back(expect(Tok::kIdent).text);
    }
    expect(Tok::kRParen);
    return params;
  }

  std::vector<ExprPtr> bracket_exprs() {
    expect(Tok::kLBrack);
    std::vector<ExprPtr> args;
    if (cur().kind != Tok::kRBrack) {
      args.push_back(expr());
      while (accept(Tok::kComma)) args.push_back(expr());
    }
    expect(Tok::kRBrack);
    return args;
  }

  NameRef name_ref() {
    std::string first = expect(Tok::kIdent).text;
    if (accept(Tok::kDot))
      return NameRef{std::move(first), expect(Tok::kIdent).text};
    return NameRef{std::nullopt, std::move(first)};
  }

  // ---- expressions ---------------------------------------------------

  ExprPtr expr() { return or_expr(); }

  ExprPtr or_expr() {
    ExprPtr e = and_expr();
    while (cur().kind == Tok::kOrOr) {
      next();
      e = calc::mk_binop("||", std::move(e), and_expr());
    }
    return e;
  }

  ExprPtr and_expr() {
    ExprPtr e = cmp_expr();
    while (cur().kind == Tok::kAndAnd) {
      next();
      e = calc::mk_binop("&&", std::move(e), cmp_expr());
    }
    return e;
  }

  ExprPtr cmp_expr() {
    ExprPtr e = add_expr();
    const char* op = nullptr;
    switch (cur().kind) {
      case Tok::kEq: op = "=="; break;
      case Tok::kNe: op = "!="; break;
      case Tok::kLt: op = "<"; break;
      case Tok::kLe: op = "<="; break;
      case Tok::kGt: op = ">"; break;
      case Tok::kGe: op = ">="; break;
      default: return e;
    }
    next();
    return calc::mk_binop(op, std::move(e), add_expr());
  }

  ExprPtr add_expr() {
    ExprPtr e = mul_expr();
    for (;;) {
      const char* op = nullptr;
      if (cur().kind == Tok::kPlus) op = "+";
      else if (cur().kind == Tok::kMinus) op = "-";
      else if (cur().kind == Tok::kConcat) op = "++";
      else break;
      next();
      e = calc::mk_binop(op, std::move(e), mul_expr());
    }
    return e;
  }

  ExprPtr mul_expr() {
    ExprPtr e = unary_expr();
    for (;;) {
      const char* op = nullptr;
      if (cur().kind == Tok::kStar) op = "*";
      else if (cur().kind == Tok::kSlash) op = "/";
      else if (cur().kind == Tok::kPercent) op = "%";
      else break;
      next();
      e = calc::mk_binop(op, std::move(e), unary_expr());
    }
    return e;
  }

  ExprPtr unary_expr() {
    if (accept(Tok::kMinus)) return calc::mk_unop("-", unary_expr());
    if (accept(Tok::kBang)) return calc::mk_unop("!", unary_expr());
    return atom();
  }

  ExprPtr atom() {
    switch (cur().kind) {
      case Tok::kInt: return calc::mk_int(next().int_val);
      case Tok::kFloat: return calc::mk_float(next().float_val);
      case Tok::kString: return calc::mk_str(next().text);
      case Tok::kTrue: next(); return calc::mk_bool(true);
      case Tok::kFalse: next(); return calc::mk_bool(false);
      case Tok::kIdent: return calc::mk_var(name_ref());
      case Tok::kLParen: {
        next();
        ExprPtr e = expr();
        expect(Tok::kRParen);
        return e;
      }
      default:
        fail(std::string("expected an expression, found ") +
             tok_name(cur().kind));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ProcPtr parse_program(std::string_view src) { return Parser(src).program(); }

std::vector<std::pair<std::string, ProcPtr>> parse_network(
    std::string_view src) {
  return Parser(src).network();
}

ExprPtr parse_expr(std::string_view src) {
  return Parser(src).standalone_expr();
}

}  // namespace dityco::comp
