// The TCP transport and its failure machinery (docs/NETWORKING.md):
// framing against partial reads, the phi-accrual detector on a fake
// clock, loopback socket pairs, reconnect after a peer restart,
// backpressure, confirmed-death frames, the GC write-off they trigger,
// and two real tycod processes completing SHIPO/FETCH over loopback —
// including one being SIGKILLed mid-run.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/network.hpp"
#include "core/wire.hpp"
#include "net/failure.hpp"
#include "net/tcp.hpp"
#include "obs/fleet.hpp"
#include "obs/trace.hpp"
#include "support/bytes.hpp"
#include "vm/machine.hpp"

namespace dityco {
namespace {

using net::FrameKind;
using net::FrameParser;
using net::PhiAccrualDetector;
using net::TcpConfig;
using net::TcpTransport;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

std::vector<std::uint8_t> payload_of(char kind, const std::string& body) {
  std::vector<std::uint8_t> p;
  p.push_back(static_cast<std::uint8_t>(kind));
  p.insert(p.end(), body.begin(), body.end());
  return p;
}

TEST(Framing, RoundTripByteAtATime) {
  const auto a = payload_of(2, "hello");
  const auto b = payload_of(3, std::string(1000, 'x'));
  std::vector<std::uint8_t> stream;
  for (const auto* p : {&a, &b}) {
    const auto f = net::encode_frame(*p);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameParser parser;
  std::vector<std::vector<std::uint8_t>> out;
  // TCP has no message boundaries: feed the worst case, one byte per
  // read, and expect the exact payload sequence back.
  for (std::uint8_t byte : stream) ASSERT_TRUE(parser.feed(&byte, 1, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], a);
  EXPECT_EQ(out[1], b);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Framing, ManyFramesOneRead) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 50; ++i) {
    const auto f = net::encode_frame(payload_of(2, std::to_string(i)));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameParser parser;
  std::vector<std::vector<std::uint8_t>> out;
  ASSERT_TRUE(parser.feed(stream.data(), stream.size(), out));
  ASSERT_EQ(out.size(), 50u);
  EXPECT_EQ(out[49], payload_of(2, "49"));
}

TEST(Framing, OversizedFramePoisonsStream) {
  // A hostile length prefix must not become an allocation.
  std::uint32_t len = net::kMaxFrameBytes + 1;
  std::uint8_t hdr[4];
  std::memcpy(hdr, &len, 4);
  FrameParser parser;
  std::vector<std::vector<std::uint8_t>> out;
  EXPECT_FALSE(parser.feed(hdr, 4, out));
  EXPECT_TRUE(parser.error());
  EXPECT_TRUE(out.empty());
}

TEST(Framing, ZeroLengthFrameIsError) {
  std::uint8_t hdr[4] = {0, 0, 0, 0};
  FrameParser parser;
  std::vector<std::vector<std::uint8_t>> out;
  EXPECT_FALSE(parser.feed(hdr, 4, out));
}

TEST(Framing, ConsumeWrittenKeepsAlignment) {
  net::BufferPool pool;
  const auto f1 = net::encode_frame(payload_of(2, "first"));
  const auto f2 = net::encode_frame(payload_of(2, "second!"));
  std::deque<net::BufPtr> q;
  q.push_back(std::make_unique<net::Buf>(f1));
  q.push_back(std::make_unique<net::Buf>(f2));
  // Mid-frame: nothing may be popped — a disconnect must be able to
  // rewind to the start of the partially written frame and resend it
  // whole, or the reconnect stream would carry a dangling tail.
  std::size_t wr = 0;
  net::consume_written(q, wr, f1.size() - 2, pool);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(wr, f1.size() - 2);
  // Past the first frame boundary: exactly that frame goes (back to the
  // pool), the offset lands inside the new head frame.
  net::consume_written(q, wr, 2 + 3, pool);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(wr, 3u);
  EXPECT_EQ(pool.stats().free_buffers, 1u);
  // Everything written: the queue drains completely, offset back to 0.
  net::consume_written(q, wr, f2.size() - 3, pool);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(wr, 0u);
  EXPECT_EQ(pool.stats().free_buffers, 2u);
}

TEST(Framing, GatherFramesHonoursBudgetsAndOffset) {
  std::deque<net::BufPtr> q;
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 6; ++i) {
    const auto f =
        net::encode_frame(payload_of(2, std::string(10 + i, 'x')));
    sizes.push_back(f.size());
    q.push_back(std::make_unique<net::Buf>(f));
  }
  struct iovec iov[net::kIovMax];
  // Unbounded budgets: every frame gathers, head offset honoured.
  std::size_t cnt = net::gather_frames(q, 3, 1u << 20, 64, iov, net::kIovMax);
  ASSERT_EQ(cnt, 6u);
  EXPECT_EQ(iov[0].iov_len, sizes[0] - 3);
  EXPECT_EQ(iov[0].iov_base, q[0]->data() + 3);
  EXPECT_EQ(iov[5].iov_len, sizes[5]);
  // Frame budget: flush_frames = 1 is the one-write-per-frame path.
  cnt = net::gather_frames(q, 0, 1u << 20, 1, iov, net::kIovMax);
  EXPECT_EQ(cnt, 1u);
  // Byte budget: stop once the gathered bytes cross flush_bytes — but
  // always make progress (at least one frame).
  cnt = net::gather_frames(q, 0, sizes[0] + 1, 64, iov, net::kIovMax);
  EXPECT_EQ(cnt, 2u);
  cnt = net::gather_frames(q, 0, 1, 64, iov, net::kIovMax);
  EXPECT_EQ(cnt, 1u);
}

TEST(Framing, CoalescedBatchSplitAtEveryBoundary) {
  // A coalesced writev lands many frames in one TCP segment, but the
  // receiver may still wake at any byte offset. Split the batch at
  // every position and demand identical output.
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 8; ++i) {
    auto p = payload_of(2, "b" + std::to_string(i) + std::string(i * 3, 'y'));
    frames.push_back(p);
    const auto f = net::encode_frame(p);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameParser parser;
    std::vector<std::vector<std::uint8_t>> out;
    ASSERT_TRUE(parser.feed(stream.data(), split, out));
    ASSERT_TRUE(
        parser.feed(stream.data() + split, stream.size() - split, out));
    ASSERT_EQ(out.size(), frames.size()) << "split at " << split;
    for (std::size_t i = 0; i < frames.size(); ++i)
      EXPECT_EQ(out[i], frames[i]) << "split at " << split;
    EXPECT_EQ(parser.buffered(), 0u);
  }
}

TEST(Framing, FuzzRandomChunksNeverTearFrames) {
  // Randomized read-boundary torture: random frame batches, possibly
  // truncated mid-frame, fed in random slices. The parser must emit
  // exactly the whole frames the bytes contain — never a partial one —
  // and hold exactly the unconsumed tail.
  std::mt19937_64 rng(0xd117c0de5eedull);
  for (int round = 0; round < 200; ++round) {
    const std::size_t nf = 1 + rng() % 20;
    std::vector<std::vector<std::uint8_t>> frames;
    std::vector<std::uint8_t> stream;
    for (std::size_t i = 0; i < nf; ++i) {
      std::vector<std::uint8_t> p(1 + rng() % 600);
      for (auto& b : p) b = static_cast<std::uint8_t>(rng());
      frames.push_back(p);
      const auto f = net::encode_frame(p);
      stream.insert(stream.end(), f.begin(), f.end());
    }
    // Half the rounds stop mid-stream (a peer died mid-batch).
    const std::size_t cut =
        rng() % 2 ? stream.size() : rng() % (stream.size() + 1);
    FrameParser parser;
    std::vector<std::vector<std::uint8_t>> out;
    std::size_t off = 0;
    while (off < cut) {
      const std::size_t n = std::min<std::size_t>(1 + rng() % 97, cut - off);
      ASSERT_TRUE(parser.feed(stream.data() + off, n, out));
      off += n;
    }
    std::size_t consumed = 0, expect = 0;
    for (const auto& f : frames) {
      if (consumed + 4 + f.size() > cut) break;
      consumed += 4 + f.size();
      ++expect;
    }
    ASSERT_EQ(out.size(), expect) << "round " << round << " cut " << cut;
    for (std::size_t i = 0; i < expect; ++i)
      EXPECT_EQ(out[i], frames[i]) << "round " << round;
    EXPECT_EQ(parser.buffered(), cut - consumed) << "round " << round;
    EXPECT_FALSE(parser.error());
  }
}

TEST(Framing, FuzzGarbageNeverCrashesAndPoisonSticks) {
  // Pure garbage: most 4-byte prefixes decode to an oversized length
  // and must poison the stream without allocating; a lucky small prefix
  // just buffers. Either way: no crash, no zero-length payloads, and a
  // poisoned parser stays poisoned.
  std::mt19937_64 rng(0xbadc0ffeull);
  for (int round = 0; round < 300; ++round) {
    FrameParser parser;
    std::vector<std::vector<std::uint8_t>> out;
    bool poisoned = false;
    for (int chunk = 0; chunk < 20; ++chunk) {
      std::vector<std::uint8_t> junk(1 + rng() % 64);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
      const bool ok = parser.feed(junk.data(), junk.size(), out);
      if (poisoned) EXPECT_FALSE(ok);
      if (!ok) {
        EXPECT_TRUE(parser.error());
        poisoned = true;
      }
    }
    for (const auto& p : out) {
      EXPECT_GE(p.size(), 1u);
      EXPECT_LE(p.size(), net::kMaxFrameBytes);
    }
  }
}

// ---------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------

TEST(BufferPool, RecyclesAndCountsAccurately) {
  net::BufferPool pool(net::BufferPool::Options{2, 1024});
  auto a = pool.acquire(100);
  auto b = pool.acquire(100);
  auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 2u);
  EXPECT_EQ(s.misses, 2u);
  pool.release(std::move(a));
  pool.release(std::move(b));
  s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.free_buffers, 2u);
  auto c = pool.acquire(10);
  EXPECT_EQ(pool.stats().hits, 1u);
  // A buffer grown past max_buffer_bytes is freed, not cached — one
  // giant frame must not pin its capacity forever.
  c->reserve(4096);
  pool.release(std::move(c));
  s = pool.stats();
  EXPECT_EQ(s.trimmed, 1u);
  EXPECT_EQ(s.free_buffers, 1u);
  // A full free list trims instead of growing without bound.
  auto d = pool.acquire(1);
  auto e = pool.acquire(1);
  auto f = pool.acquire(1);
  pool.release(std::move(d));
  pool.release(std::move(e));
  pool.release(std::move(f));
  s = pool.stats();
  EXPECT_EQ(s.free_buffers, 2u);
  EXPECT_EQ(s.trimmed, 2u);
  EXPECT_EQ(s.releases, 6u);
}

TEST(BufferPool, ConcurrentAcquireReleaseIsRaceFree) {
  // TSan target: four threads hammer one pool; the gauges must balance
  // exactly when they drain (no lost or double-counted buffer).
  net::BufferPool pool;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&pool, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      for (int i = 0; i < 2000; ++i) {
        auto b = pool.acquire(64 + rng() % 512);
        b->push_back(static_cast<std::uint8_t>(i));
        pool.release(std::move(b));
      }
    });
  for (auto& th : ts) th.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.hits + s.misses, 8000u);
  EXPECT_EQ(s.releases, 8000u);
}

TEST(Framing, ParseHostport) {
  const auto [h, p] = net::parse_hostport("10.1.2.3:7100");
  EXPECT_EQ(h, "10.1.2.3");
  EXPECT_EQ(p, 7100);
  EXPECT_THROW(net::parse_hostport("nocolon"), std::invalid_argument);
  EXPECT_THROW(net::parse_hostport("host:"), std::invalid_argument);
  EXPECT_THROW(net::parse_hostport("host:notaport"), std::invalid_argument);
  EXPECT_THROW(net::parse_hostport("host:99999"), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Phi-accrual failure detector (fake clock)
// ---------------------------------------------------------------------

TEST(PhiAccrual, SilentPeerNeverSuspected) {
  PhiAccrualDetector d;
  EXPECT_FALSE(d.started());
  // A peer that never spoke can only be unreachable, not dead.
  EXPECT_EQ(d.phi(1e9), 0.0);
}

TEST(PhiAccrual, RegularHeartbeatsKeepPhiLow) {
  PhiAccrualDetector d;
  double now = 0;
  for (int i = 0; i < 100; ++i) {
    d.heartbeat(now);
    now += 100;
  }
  EXPECT_NEAR(d.mean_interval_ms(), 100.0, 1.0);
  // Right on schedule: suspicion stays near zero.
  EXPECT_LT(d.phi(now), 1.0);
  // One missed beat is not yet damning, ten are.
  EXPECT_LT(d.phi(now + 200), 2.0);
  EXPECT_GT(d.phi(now + 1000), 4.0);
}

TEST(PhiAccrual, PhiGrowsLinearlyWithSilence) {
  PhiAccrualDetector d;
  for (double t = 0; t <= 1000; t += 100) d.heartbeat(t);
  const double p1 = d.phi(1000 + 500);
  const double p2 = d.phi(1000 + 1000);
  EXPECT_GT(p2, p1);
  EXPECT_NEAR(p2 / p1, 2.0, 0.01);  // linear in elapsed time
}

TEST(PhiAccrual, WindowSlidesAndResetForgets) {
  PhiAccrualDetector d(PhiAccrualDetector::Options{.window = 4});
  for (double t = 0; t <= 400; t += 100) d.heartbeat(t);
  EXPECT_EQ(d.samples(), 4u);  // window bound holds
  // Faster cadence takes over once the old samples slide out.
  for (double t = 420; t <= 500; t += 20) d.heartbeat(t);
  EXPECT_LT(d.mean_interval_ms(), 100.0);
  d.reset();
  EXPECT_FALSE(d.started());
  EXPECT_EQ(d.samples(), 0u);
}

TEST(PhiAccrual, MinIntervalFloorGuardsBursts) {
  PhiAccrualDetector d;
  // A burst of back-to-back arrivals must not make the detector
  // hair-triggered: the mean is floored at min_interval_ms (10).
  for (double t = 0; t < 5; t += 0.1) d.heartbeat(t);
  EXPECT_GE(d.mean_interval_ms(), 10.0);
}

// ---------------------------------------------------------------------
// Loopback TcpTransport pairs
// ---------------------------------------------------------------------

net::Packet make_packet(std::uint32_t src, std::uint32_t dst,
                        const std::string& body) {
  net::Packet p;
  p.src_node = src;
  p.dst_node = dst;
  p.bytes.assign(body.begin(), body.end());
  return p;
}

bool recv_wait(net::Transport& t, std::uint32_t node, net::Packet& out,
               int ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (t.recv(node, out, 0)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(TcpTransport, LoopbackPairExchanges) {
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  TcpTransport a(ca);
  TcpConfig cb;
  cb.self = 1;
  cb.detect_failures = false;
  cb.peers[0] = "127.0.0.1:" + std::to_string(a.port());
  TcpTransport b(cb);
  a.add_peer(1, "127.0.0.1:" + std::to_string(b.port()));

  a.send(make_packet(0, 1, "ping"), 0);
  net::Packet got;
  ASSERT_TRUE(recv_wait(b, 1, got));
  EXPECT_EQ(std::string(got.bytes.begin(), got.bytes.end()), "ping");
  EXPECT_EQ(got.src_node, 0u);

  b.send(make_packet(1, 0, "pong"), 0);
  ASSERT_TRUE(recv_wait(a, 0, got));
  EXPECT_EQ(std::string(got.bytes.begin(), got.bytes.end()), "pong");
  EXPECT_GE(a.stats().connects.load(), 1u);
  EXPECT_GE(b.stats().accepts.load(), 0u);
  EXPECT_EQ(a.in_flight() + b.in_flight(), 0u);
  a.shutdown();
  b.shutdown();
}

TEST(TcpTransport, SelfSendStaysLocal) {
  TcpConfig c;
  c.self = 3;
  c.detect_failures = false;
  TcpTransport t(c);
  t.send(make_packet(3, 3, "loop"), 0);
  net::Packet got;
  ASSERT_TRUE(recv_wait(t, 3, got));
  EXPECT_EQ(std::string(got.bytes.begin(), got.bytes.end()), "loop");
}

TEST(TcpTransport, QueuedFramesSurviveLateConnect) {
  // Frames queue before any connection exists (connect on first send)
  // and flush once the listener appears at the configured address.
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  ca.backoff_min_ms = 10;
  ca.backoff_max_ms = 50;
  TcpTransport a(ca);
  // Reserve a port by binding, then release it for the late listener.
  std::uint16_t port = 0;
  {
    TcpConfig probe;
    probe.self = 9;
    TcpTransport reserve(probe);
    port = reserve.port();
    reserve.shutdown();
  }
  a.add_peer(1, "127.0.0.1:" + std::to_string(port));
  for (int i = 0; i < 5; ++i)
    a.send(make_packet(0, 1, "m" + std::to_string(i)), 0);
  EXPECT_EQ(a.in_flight(), 5u);  // unflushed frames stay visible
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TcpConfig cb;
  cb.self = 1;
  cb.detect_failures = false;
  cb.listen_port = port;
  TcpTransport b(cb);
  net::Packet got;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(recv_wait(b, 1, got)) << "frame " << i;
    EXPECT_EQ(std::string(got.bytes.begin(), got.bytes.end()),
              "m" + std::to_string(i));
  }
  a.shutdown();
  b.shutdown();
}

TEST(TcpTransport, ReconnectAfterPeerRestart) {
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  ca.backoff_min_ms = 10;
  ca.backoff_max_ms = 100;
  TcpTransport a(ca);

  std::uint16_t bport = 0;
  {
    TcpConfig cb;
    cb.self = 1;
    cb.detect_failures = false;
    auto b = std::make_unique<TcpTransport>(cb);
    bport = b->port();
    a.add_peer(1, "127.0.0.1:" + std::to_string(bport));
    a.send(make_packet(0, 1, "before"), 0);
    net::Packet got;
    ASSERT_TRUE(recv_wait(*b, 1, got));
    b->shutdown();
  }
  // Peer is down; the send queues and the connector backs off.
  a.send(make_packet(0, 1, "after"), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    TcpConfig cb;
    cb.self = 1;
    cb.detect_failures = false;
    cb.listen_port = bport;  // restart on the same address
    TcpTransport b2(cb);
    net::Packet got;
    ASSERT_TRUE(recv_wait(b2, 1, got));
    EXPECT_EQ(std::string(got.bytes.begin(), got.bytes.end()), "after");
    b2.shutdown();
  }
  EXPECT_GE(a.stats().reconnects.load() + a.stats().connects.load(), 2u);
  a.shutdown();
}

TEST(TcpTransport, BackpressureBlocksAndShutdownReleases) {
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  ca.max_queue_bytes = 4096;
  // Unreachable peer: everything queues, nothing drains.
  TcpConfig probe;
  probe.self = 9;
  auto reserve = std::make_unique<TcpTransport>(probe);
  const std::uint16_t dead_port = reserve->port();
  reserve->shutdown();
  reserve.reset();

  TcpTransport a(ca);
  a.add_peer(1, "127.0.0.1:" + std::to_string(dead_port));
  std::atomic<bool> done{false};
  std::thread sender([&] {
    const std::string big(2048, 'b');
    for (int i = 0; i < 64; ++i) a.send(make_packet(0, 1, big), 0);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // The queue bound held (a few frames, not 64 x 2KB) and the sender is
  // parked in backpressure.
  EXPECT_FALSE(done.load());
  EXPECT_GT(a.stats().backpressure_waits.load(), 0u);
  EXPECT_LE(a.queued_bytes(), 4096u + 3000u);
  // Teardown must release blocked senders, not deadlock.
  a.shutdown();
  sender.join();
}

TEST(TcpTransport, MalformedFrameDropsConnectionNotProcess) {
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  TcpTransport a(ca);
  // Hand-roll a hostile client: a well-framed kHello whose body is
  // truncated (needs node u32 + port u16, carries one byte). Decoding
  // it must not let DecodeError escape the I/O thread and terminate
  // the process — the connection is dropped like any framing error.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(a.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const auto bad = net::encode_frame(
      {static_cast<std::uint8_t>(FrameKind::kHello), 0x01});
  ASSERT_EQ(::write(fd, bad.data(), bad.size()),
            static_cast<ssize_t>(bad.size()));
  // The transport closes the poisoned connection: our blocking read
  // observes EOF (a crashed daemon would reset or hang instead).
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
  EXPECT_GE(a.stats().frames_malformed.load(), 1u);
  // And the transport still serves well-formed traffic afterwards.
  TcpConfig cb;
  cb.self = 1;
  cb.detect_failures = false;
  cb.peers[0] = "127.0.0.1:" + std::to_string(a.port());
  TcpTransport b(cb);
  b.send(make_packet(1, 0, "still alive"), 0);
  net::Packet got;
  ASSERT_TRUE(recv_wait(a, 0, got));
  EXPECT_EQ(std::string(got.bytes.begin(), got.bytes.end()), "still alive");
  a.shutdown();
  b.shutdown();
}

TEST(TcpTransport, GarbageFramingCountsMalformedAndDropsConnection) {
  // A framing-level poison (zero-length prefix — never valid) from a
  // raw client must be counted in tcp_frames_malformed and cost only
  // that connection, exactly like an undecodable body.
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  TcpTransport a(ca);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(a.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::write(fd, zero, sizeof zero), 4);
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);  // transport dropped us
  ::close(fd);
  EXPECT_GE(a.stats().frames_malformed.load(), 1u);
  a.shutdown();
}

TEST(TcpTransport, ConcurrentSendersRecycleThroughThePool) {
  // TSan target for the pool's hot path: executor threads encode into
  // pooled buffers while the I/O thread flushes and releases them. At
  // shutdown every buffer must be back (use-after-return would tear the
  // gauges; TSan catches the races themselves).
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  TcpTransport a(ca);
  TcpConfig cb;
  cb.self = 1;
  cb.detect_failures = false;
  cb.peers[0] = "127.0.0.1:" + std::to_string(a.port());
  TcpTransport b(cb);
  a.add_peer(1, "127.0.0.1:" + std::to_string(b.port()));

  // Two waves: wave 1's buffers are all back in the pool before wave 2
  // encodes (receipt implies the flush released them), so wave 2 MUST
  // recycle — a hungry scheduler can starve the I/O thread long enough
  // for a single wave to be all misses.
  constexpr int kThreads = 4, kEach = 100;
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::thread> senders;
    for (int t = 0; t < kThreads; ++t)
      senders.emplace_back([&a, t] {
        for (int i = 0; i < kEach; ++i)
          a.send(make_packet(0, 1, "t" + std::to_string(t) + ":" +
                                       std::to_string(i)),
                 0);
      });
    for (auto& th : senders) th.join();
    net::Packet got;
    for (int i = 0; i < kThreads * kEach; ++i)
      ASSERT_TRUE(recv_wait(b, 1, got)) << "wave " << wave << " packet " << i;
  }
  a.shutdown();
  b.shutdown();
  const auto pa = a.pool_stats();
  EXPECT_EQ(pa.outstanding, 0u) << "sender leaked pooled buffers";
  EXPECT_GT(pa.hits, 0u) << "steady state never recycled";
  EXPECT_EQ(b.pool_stats().outstanding, 0u) << "receiver leaked";
}

TEST(TcpTransport, BackpressureTimeoutDropsInsteadOfWedging) {
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  ca.max_queue_bytes = 1024;
  ca.send_timeout_ms = 100;
  TcpConfig probe;
  probe.self = 9;
  auto reserve = std::make_unique<TcpTransport>(probe);
  const std::uint16_t dead_port = reserve->port();
  reserve->shutdown();
  reserve.reset();

  TcpTransport a(ca);
  a.add_peer(1, "127.0.0.1:" + std::to_string(dead_port));
  // The peer is unreachable, so the queue never drains; bounded waits
  // must hand control back (dropping the frame) instead of parking the
  // sending thread forever.
  const std::string big(2048, 'b');
  for (int i = 0; i < 4; ++i) a.send(make_packet(0, 1, big), 0);
  EXPECT_GT(a.stats().backpressure_waits.load(), 0u);
  EXPECT_GT(a.stats().send_timeouts.load(), 0u);
  EXPECT_GT(a.stats().frames_dropped.load(), 0u);
  a.shutdown();
}

TEST(TcpTransport, NeverConnectedPeerDeclaredDeadAfterDeadline) {
  // phi is 0 for a peer that never spoke, so an unreachable or wrong
  // address needs its own verdict: demand without a first connection
  // for connect_deadline_ms is a death, with the usual write-off frame.
  TcpConfig ca;
  ca.self = 0;
  ca.connect_deadline_ms = 150;
  ca.backoff_min_ms = 10;
  ca.backoff_max_ms = 40;
  TcpConfig probe;
  probe.self = 9;
  auto reserve = std::make_unique<TcpTransport>(probe);
  const std::uint16_t dead_port = reserve->port();
  reserve->shutdown();
  reserve.reset();

  TcpTransport a(ca);
  a.set_death_frame([](std::uint32_t dead) {
    return std::vector<std::uint8_t>{0xDD, static_cast<std::uint8_t>(dead)};
  });
  a.add_peer(1, "127.0.0.1:" + std::to_string(dead_port));
  a.send(make_packet(0, 1, "anyone there?"), 0);
  net::Packet got;
  ASSERT_TRUE(recv_wait(a, 0, got, 5000)) << "no death frame";
  EXPECT_EQ(got.src_node, 1u);
  ASSERT_EQ(got.bytes.size(), 2u);
  EXPECT_EQ(got.bytes[0], 0xDD);
  EXPECT_TRUE(a.peer_dead(1));
  // Later sends drop instead of queueing toward a dead address.
  const auto dropped_before = a.stats().frames_dropped.load();
  a.send(make_packet(0, 1, "too late"), 0);
  EXPECT_GT(a.stats().frames_dropped.load(), dropped_before);
  a.shutdown();
}

TEST(TcpTransport, WildcardBindAdvertisesRoutableHost) {
  // Gossiping 0.0.0.0 would make peers dial an unroutable address; the
  // advertised reach-back falls back to loopback (or the configured
  // advertise_host) instead.
  TcpConfig c;
  c.self = 0;
  c.detect_failures = false;
  c.listen_host = "0.0.0.0";
  TcpTransport t(c);
  EXPECT_EQ(t.advertised_hostport(),
            "127.0.0.1:" + std::to_string(t.port()));
  TcpConfig c2 = c;
  c2.advertise_host = "10.9.8.7";
  TcpTransport t2(c2);
  EXPECT_EQ(t2.advertised_hostport(),
            "10.9.8.7:" + std::to_string(t2.port()));
  t.shutdown();
  t2.shutdown();
}

TEST(TcpTransport, FailureDetectorInjectsDeathFrame) {
  TcpConfig ca;
  ca.self = 0;
  ca.heartbeat_ms = 10;
  ca.phi_threshold = 3.0;
  ca.confirm_ms = 100;
  ca.phi.min_interval_ms = 5.0;
  ca.phi.first_interval_ms = 50.0;
  TcpTransport a(ca);
  a.set_death_frame([](std::uint32_t dead) {
    return std::vector<std::uint8_t>{0xDE, static_cast<std::uint8_t>(dead)};
  });

  TcpConfig cb;
  cb.self = 1;
  cb.heartbeat_ms = 10;
  cb.peers[0] = "127.0.0.1:" + std::to_string(a.port());
  auto b = std::make_unique<TcpTransport>(cb);
  a.add_peer(1, "127.0.0.1:" + std::to_string(b->port()));
  // Make the pair exchange so both detectors are primed.
  a.send(make_packet(0, 1, "hi"), 0);
  net::Packet got;
  ASSERT_TRUE(recv_wait(*b, 1, got));
  b->send(make_packet(1, 0, "yo"), 0);
  ASSERT_TRUE(recv_wait(a, 0, got));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  b->shutdown();  // peer goes silent
  b.reset();
  ASSERT_TRUE(recv_wait(a, 0, got, 5000)) << "no death frame";
  EXPECT_EQ(got.src_node, 1u);  // the obituary names the dead peer
  ASSERT_EQ(got.bytes.size(), 2u);
  EXPECT_EQ(got.bytes[0], 0xDE);
  EXPECT_EQ(got.bytes[1], 1u);
  EXPECT_TRUE(a.peer_dead(1));
  EXPECT_GE(a.stats().peers_suspected.load(), 1u);
  EXPECT_EQ(a.stats().peers_dead.load(), 1u);
  // Sends to a confirmed-dead peer drop instead of queueing forever.
  const auto dropped_before = a.stats().frames_dropped.load();
  a.send(make_packet(0, 1, "too late"), 0);
  EXPECT_GT(a.stats().frames_dropped.load(), dropped_before);
  a.shutdown();
}

// ---------------------------------------------------------------------
// Socket-level trace spans (tcp-send / tcp-recv, trace-id propagation)
// ---------------------------------------------------------------------

/// Daemon-packet bytes in the v2 wire header: [type|flags][dst_site u32]
/// [trace_id u64][payload]. The transport treats packets as opaque but
/// peeks exactly these fields for its span events.
std::vector<std::uint8_t> traced_bytes(std::uint64_t id, bool sampled) {
  std::vector<std::uint8_t> b;
  b.push_back(static_cast<std::uint8_t>(0x01 | 0x80 | (sampled ? 0x40 : 0)));
  b.resize(13);  // dst_site u32 (zero) + trace_id u64
  std::memcpy(b.data() + 5, &id, sizeof id);
  b.push_back(0x7f);  // payload
  return b;
}

bool ring_has(const obs::TraceRing& r, obs::EventType t, std::uint64_t id,
              std::uint64_t* arg = nullptr) {
  for (const auto& e : r.snapshot())
    if (e.type == t && e.trace_id == id) {
      if (arg) *arg = e.arg;
      return true;
    }
  return false;
}

TEST(TcpTrace, SendRecvSpansCarryThePropagatedTraceId) {
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  TcpTransport a(ca);
  a.enable_trace(1024);
  TcpConfig cb;
  cb.self = 1;
  cb.detect_failures = false;
  cb.peers[0] = "127.0.0.1:" + std::to_string(a.port());
  TcpTransport b(cb);
  b.enable_trace(1024);
  a.add_peer(1, "127.0.0.1:" + std::to_string(b.port()));

  const std::uint64_t id = obs::next_trace_id();
  net::Packet p;
  p.src_node = 0;
  p.dst_node = 1;
  p.bytes = traced_bytes(id, /*sampled=*/true);
  a.send(std::move(p), 0);
  net::Packet got;
  ASSERT_TRUE(recv_wait(b, 1, got));

  // The sender recorded the socket hop out, the receiver the hop in,
  // both under the id peeked from the packet's v2 header — this is what
  // lets the exporter draw one flow arrow across the process boundary.
  std::uint64_t arg = 0;
  EXPECT_TRUE(ring_has(a.trace_ring(), obs::EventType::kTcpSend, id, &arg));
  EXPECT_EQ(arg, 1u);  // arg = destination node
  EXPECT_TRUE(ring_has(b.trace_ring(), obs::EventType::kTcpRecv, id, &arg));
  EXPECT_EQ(arg, 0u);  // arg = source node
  a.shutdown();
  b.shutdown();
}

TEST(TcpTrace, UnsampledFramesCrossButAreNotRecorded) {
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  TcpTransport a(ca);
  a.enable_trace(1024, /*sample_every=*/4);
  TcpConfig cb;
  cb.self = 1;
  cb.detect_failures = false;
  cb.peers[0] = "127.0.0.1:" + std::to_string(a.port());
  TcpTransport b(cb);
  b.enable_trace(1024, /*sample_every=*/4);
  a.add_peer(1, "127.0.0.1:" + std::to_string(b.port()));

  // kTraceFlag without kSampledFlag: the id crosses the socket (reply
  // routing still needs it) but no hop spends a ring slot on it.
  const std::uint64_t unsampled = obs::next_trace_id();
  net::Packet p;
  p.src_node = 0;
  p.dst_node = 1;
  p.bytes = traced_bytes(unsampled, /*sampled=*/false);
  a.send(std::move(p), 0);
  net::Packet got;
  ASSERT_TRUE(recv_wait(b, 1, got));
  EXPECT_EQ(got.bytes, traced_bytes(unsampled, false));
  EXPECT_FALSE(ring_has(a.trace_ring(), obs::EventType::kTcpSend, unsampled));
  EXPECT_FALSE(ring_has(b.trace_ring(), obs::EventType::kTcpRecv, unsampled));

  // A sampled frame through the same pair IS recorded: the decision is
  // the wire bit, not anything local to the transport.
  const std::uint64_t sampled = obs::next_trace_id();
  net::Packet q;
  q.src_node = 0;
  q.dst_node = 1;
  q.bytes = traced_bytes(sampled, /*sampled=*/true);
  a.send(std::move(q), 0);
  ASSERT_TRUE(recv_wait(b, 1, got));
  EXPECT_TRUE(ring_has(a.trace_ring(), obs::EventType::kTcpSend, sampled));
  EXPECT_TRUE(ring_has(b.trace_ring(), obs::EventType::kTcpRecv, sampled));
  a.shutdown();
  b.shutdown();
}

TEST(TcpTrace, ReconnectLandsInRingAndFiresPeerEventHook) {
  TcpConfig ca;
  ca.self = 0;
  ca.detect_failures = false;
  ca.backoff_min_ms = 10;
  ca.backoff_max_ms = 100;
  TcpTransport a(ca);
  a.enable_trace(1024);
  a.set_trace_record_all(true);
  std::atomic<int> reconnect_hooks{0};
  a.set_peer_event_hook(
      [&](TcpTransport::PeerEvent ev, std::uint32_t node, std::uint64_t) {
        if (ev == TcpTransport::PeerEvent::kReconnect && node == 1)
          reconnect_hooks.fetch_add(1);
      });

  std::uint16_t bport = 0;
  {
    TcpConfig cb;
    cb.self = 1;
    cb.detect_failures = false;
    auto b = std::make_unique<TcpTransport>(cb);
    bport = b->port();
    a.add_peer(1, "127.0.0.1:" + std::to_string(bport));
    a.send(make_packet(0, 1, "before"), 0);
    net::Packet got;
    ASSERT_TRUE(recv_wait(*b, 1, got));
    b->shutdown();
  }
  a.send(make_packet(0, 1, "after"), 0);
  {
    TcpConfig cb;
    cb.self = 1;
    cb.detect_failures = false;
    cb.listen_port = bport;
    TcpTransport b2(cb);
    net::Packet got;
    ASSERT_TRUE(recv_wait(b2, 1, got));
    b2.shutdown();
  }
  // The re-established connection shows up as a flight-recorder-grade
  // event: a ring entry (for the timeline) plus the hook (for
  // promotion into tail-based retention).
  bool found = false;
  for (const auto& e : a.trace_ring().snapshot())
    if (e.type == obs::EventType::kTcpReconnect && e.arg == 1) found = true;
  EXPECT_TRUE(found);
  EXPECT_GE(reconnect_hooks.load(), 1);
  a.shutdown();
}

TEST(TcpTrace, PeerInfoReportsTransportState) {
  TcpConfig ca;
  ca.self = 0;
  ca.heartbeat_ms = 20;
  TcpTransport a(ca);
  TcpConfig cb;
  cb.self = 1;
  cb.heartbeat_ms = 20;
  cb.peers[0] = "127.0.0.1:" + std::to_string(a.port());
  TcpTransport b(cb);
  a.add_peer(1, "127.0.0.1:" + std::to_string(b.port()));
  a.send(make_packet(0, 1, "hi"), 0);
  net::Packet got;
  ASSERT_TRUE(recv_wait(b, 1, got));
  // Give a couple of heartbeat round trips time to land.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto infos = a.peer_info();
  ASSERT_EQ(infos.size(), 1u);
  const auto& pi = infos[0];
  EXPECT_EQ(pi.node, 1u);
  EXPECT_TRUE(pi.connected);
  EXPECT_FALSE(pi.dead);
  EXPECT_GE(pi.last_heard_age_ms, 0.0);
  EXPECT_GT(pi.last_rtt_us, 0u);          // heartbeat ack RTT attributed
  EXPECT_GT(pi.rtt_us.total, 0u);         // ... and histogrammed
  EXPECT_EQ(pi.queue_bytes, 0u);          // drained
  a.shutdown();
  b.shutdown();
}

// ---------------------------------------------------------------------
// PEER-DOWN -> GC write-off (single process, forged death notice)
// ---------------------------------------------------------------------

TEST(WriteOff, PeerDownWritesOffDeadHoldersCredit) {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kSequential;
  core::Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server",
                    "export new p in p?{ val(x, rep) = rep![x * 2] }");
  // The client imports p and then parks forever holding the netref, so
  // at quiescence the server's export entry still carries the client's
  // attributed credit share.
  net.submit_source("client",
                    "import p from server in import never from server in "
                    "p!val[1, p]");
  auto res = net.run();
  EXPECT_TRUE(res.stalled);
  core::Site* server = net.find_site("server");
  ASSERT_NE(server, nullptr);
  ASSERT_EQ(server->machine().live_exports(), 1u);
  EXPECT_GT(server->machine().exports_outstanding(), 0u);
  EXPECT_EQ(server->machine().gc_stats().credit_written_off.value(), 0u);

  // Forge the transport's death notice for node 1 and route it through
  // node 0 exactly as the daemon would.
  net::Packet obit;
  obit.src_node = 1;
  obit.dst_node = 0;
  obit.bytes = core::make_peer_down(1);
  net.nodes()[0]->route(std::move(obit), net.transport(), 0);
  server->process_incoming();

  EXPECT_GT(server->machine().gc_stats().credit_written_off.value(), 0u);
  EXPECT_EQ(server->mobility().peers_down.value(), 1u);
  EXPECT_EQ(server->dead_peers().count(1), 1u);

  // The name service (hosted by node 0) dropped the dead node's rows.
  EXPECT_GT(net.name_service().stats().evictions.value(), 0u);

  // Premature reclamation must not happen: the NS still holds its own
  // credit share, so the entry survives until the final epoch returns
  // it — then everything drains.
  auto gc = net.collect_garbage();
  EXPECT_EQ(gc.exports_live, 0u);
  EXPECT_EQ(gc.ns_ids, 0u);
}

TEST(WriteOff, LiveHoldersAreNotWrittenOff) {
  // Two importers; only one dies. The survivor's credit must stay on
  // the books (no premature reclamation of a live holder's share).
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kSequential;
  core::Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "c1");
  net.add_site(2, "c2");
  net.submit_source("server",
                    "export new p in p?{ val(x, rep) = rep![x * 2] }");
  net.submit_source("c1",
                    "import p from server in import never from server in "
                    "p!val[1, p]");
  net.submit_source("c2",
                    "import p from server in import never from server in "
                    "p!val[2, p]");
  (void)net.run();
  core::Site* server = net.find_site("server");
  ASSERT_NE(server, nullptr);
  const auto outstanding_before = server->machine().exports_outstanding();
  ASSERT_GT(outstanding_before, 0u);

  net::Packet obit;
  obit.src_node = 1;
  obit.dst_node = 0;
  obit.bytes = core::make_peer_down(1);
  net.nodes()[0]->route(std::move(obit), net.transport(), 0);
  server->process_incoming();

  const auto written = server->machine().gc_stats().credit_written_off.value();
  EXPECT_GT(written, 0u);
  // Strictly less than everything outstanding: c2's share survives.
  EXPECT_LT(written, outstanding_before);
  EXPECT_EQ(server->machine().live_exports(), 1u);
}

TEST(WriteOff, NameServiceEvictsDeadNode) {
  core::NameService ns(0);
  std::vector<net::Packet> replies;
  ns.register_site("alpha", 1, 0);
  ns.register_site("beta", 2, 0);
  vm::NetRef dead_ref{vm::NetRef::Kind::kChan, 1, 0, 7};
  vm::NetRef live_ref{vm::NetRef::Kind::kChan, 2, 0, 8};
  ns.register_id("alpha", "x", dead_ref, "", replies);
  ns.register_id("beta", "y", live_ref, "", replies);
  EXPECT_EQ(ns.id_count(), 2u);

  const std::size_t dropped = ns.evict_node(1);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(ns.id_count(), 1u);
  EXPECT_FALSE(ns.lookup_site("alpha").has_value());
  EXPECT_TRUE(ns.lookup_site("beta").has_value());
  EXPECT_FALSE(ns.lookup_id("alpha", "x").has_value());
  EXPECT_GT(ns.stats().evictions.value(), 0u);
}

// ---------------------------------------------------------------------
// In-process TCP mesh under the real drivers
// ---------------------------------------------------------------------

TEST(TcpMesh, ThreadedShipObjectAndFetchOverSockets) {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kThreaded;
  cfg.transport = core::Network::TransportKind::kTcp;
  core::Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  // Code mobility over real sockets: the client fetches the class
  // definition (FETCH) and instantiates locally (SHIPO on the way out).
  net.submit_network_source(
      "site server { export def Applet(out) = out![7] in 0 }\n"
      "site client { import Applet from server in "
      "new r (Applet[r] | r?(v) = print[v]) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  ASSERT_EQ(net.output("client").size(), 1u);
  EXPECT_EQ(net.output("client")[0], "7");
  auto gc = net.collect_garbage();
  EXPECT_EQ(gc.exports_live, 0u);
  EXPECT_EQ(gc.ns_ids, 0u);
}

TEST(TcpMesh, SequentialDriverAlsoWorks) {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kSequential;
  cfg.transport = core::Network::TransportKind::kTcp;
  core::Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "a");
  net.add_site(1, "b");
  net.submit_network_source(
      "site a { export new x in x![10] }\n"
      "site b { import x from a in x?(v) = print[v + 1] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  ASSERT_EQ(net.output("a").size(), 1u);
  EXPECT_EQ(net.output("a")[0], "11");
}

TEST(TcpMesh, PoolDrainsToZeroAfterImportStorm) {
  // ASan-job leak check (ISSUE 8): after a full C6-shaped mesh run every
  // pooled buffer is back — encode buffers released by the flush path,
  // read buffers released at I/O-loop exit, queued frames released by
  // shutdown. A nonzero gauge here is a leak even when ASan is silent
  // (the pool would pin the memory live).
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kThreaded;
  cfg.transport = core::Network::TransportKind::kTcp;
  core::Network net(cfg);
  net.add_node();
  net.add_site(0, "server");
  std::string exports;
  for (int i = 0; i < 8; ++i)
    exports += "export new a" + std::to_string(i) + " in ";
  net.submit_source("server", exports + "0");
  for (int s = 0; s < 4; ++s) {
    net.add_node();
    const std::string name = "c" + std::to_string(s);
    net.add_site(static_cast<std::size_t>(s) + 1, name);
    std::string prog;
    for (int i = 0; i < 8; ++i)
      prog += "import a" + std::to_string(i) + " from server in ";
    net.submit_source(name, prog + "print[\"ok\"]");
  }
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  auto* mesh = dynamic_cast<net::TcpMeshTransport*>(&net.transport());
  ASSERT_NE(mesh, nullptr);
  mesh->shutdown();
  for (std::size_t i = 0; i < mesh->parts_count(); ++i) {
    const auto ps = mesh->part(i).pool_stats();
    EXPECT_EQ(ps.outstanding, 0u) << "mesh part " << i;
    EXPECT_EQ(ps.hits + ps.misses, ps.releases) << "mesh part " << i;
  }
}

TEST(TcpMesh, SimModeRejectsTcp) {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kSim;
  cfg.transport = core::Network::TransportKind::kTcp;
  core::Network net(cfg);
  net.add_node();
  EXPECT_THROW(net.transport(), std::logic_error);
}

// ---------------------------------------------------------------------
// Multi-process e2e: real tycod daemons over loopback
// ---------------------------------------------------------------------

#ifdef TYCOD_PATH

/// Start `cmd` via popen, read lines until one contains `until` (which is
/// returned) or EOF.
std::string read_until(FILE* f, const std::string& until) {
  char buf[512];
  while (fgets(buf, sizeof buf, f)) {
    std::string line(buf);
    if (line.find(until) != std::string::npos) return line;
  }
  return {};
}

std::string slurp(FILE* f) {
  std::string all;
  char buf[512];
  while (fgets(buf, sizeof buf, f)) all += buf;
  return all;
}

std::string parse_port(const std::string& listening_line) {
  const auto colon = listening_line.rfind(':');
  return listening_line.substr(colon + 1,
                               listening_line.find_last_not_of(" \n\r") -
                                   colon);
}

TEST(TycodE2E, TwoProcessesCompleteShipAndFetch) {
  const std::string tycod = TYCOD_PATH;
  FILE* p0 = popen((tycod +
                    " --node 0 --idle-exit-ms 1200 --serve-ms 20000 -e "
                    "'site server { export def Applet(out) = out![7] in "
                    "export new p in p?{ val(x, rep) = rep![x * 2] } }' 2>&1")
                       .c_str(),
                   "r");
  ASSERT_NE(p0, nullptr);
  const std::string line = read_until(p0, "listening on");
  ASSERT_FALSE(line.empty()) << "node 0 never bound";
  const std::string port = parse_port(line);

  FILE* p1 = popen((tycod + " --node 1 --join 127.0.0.1:" + port +
                    " --idle-exit-ms 1200 --serve-ms 20000 -e "
                    "'site client { import Applet from server in "
                    "import p from server in new r (Applet[r] | r?(v) = "
                    "let z = p![v * 3] in print[z + v]) }' 2>&1")
                       .c_str(),
                   "r");
  ASSERT_NE(p1, nullptr);
  const std::string out1 = slurp(p1);
  const int rc1 = pclose(p1);
  const std::string out0 = slurp(p0);
  const int rc0 = pclose(p0);

  // Applet ran at the client (code mobility), the remote method call
  // round-tripped (7*3*2 + 7 = 49), and both processes drained their
  // export tables to empty.
  EXPECT_NE(out1.find("[client] 49"), std::string::npos) << out1;
  EXPECT_NE(out1.find("exports_live=0"), std::string::npos) << out1;
  EXPECT_NE(out0.find("exports_live=0"), std::string::npos) << out0;
  EXPECT_EQ(WEXITSTATUS(rc0), 0) << out0;
  EXPECT_EQ(WEXITSTATUS(rc1), 0) << out1;
}

TEST(TycodE2E, TraceIdsStitchAcrossTwoProcesses) {
  // Two --trace'd daemons; scrape both TyCOmon /trace documents while
  // they serve and stitch them. A FETCH allocates its trace id on the
  // client, so finding that id in BOTH processes' rings proves the id
  // (and kSampledFlag) survived the real socket hop.
  const std::string tycod = TYCOD_PATH;
  FILE* p0 = popen((tycod +
                    " --node 0 --monitor 0 --trace --idle-exit-ms 4000 "
                    "--serve-ms 20000 -e "
                    "'site server { export def Applet(out) = out![7] in 0 }'"
                    " 2>&1")
                       .c_str(),
                   "r");
  ASSERT_NE(p0, nullptr);
  const std::string mon0_line = read_until(p0, "tycomon listening");
  ASSERT_FALSE(mon0_line.empty()) << "node 0 monitor never bound";
  const std::string mon0 = parse_port(mon0_line);
  const std::string port = parse_port(read_until(p0, "tycod node0"));
  ASSERT_FALSE(port.empty());

  FILE* p1 = popen((tycod + " --node 1 --join 127.0.0.1:" + port +
                    " --monitor 0 --trace --idle-exit-ms 4000 "
                    "--serve-ms 20000 -e "
                    "'site client { import Applet from server in "
                    "new r (Applet[r] | r?(v) = print[v]) }' 2>&1")
                       .c_str(),
                   "r");
  ASSERT_NE(p1, nullptr);
  const std::string mon1_line = read_until(p1, "tycomon listening");
  ASSERT_FALSE(mon1_line.empty()) << "node 1 monitor never bound";
  const std::string mon1 = parse_port(mon1_line);

  // Let the FETCH complete, then scrape both nodes' rings over HTTP.
  namespace fleet = obs::fleet;
  std::this_thread::sleep_for(std::chrono::milliseconds(2000));
  const std::string doc0 = fleet::http_get(
      "127.0.0.1", static_cast<std::uint16_t>(std::stoi(mon0)), "/trace");
  const std::string doc1 = fleet::http_get(
      "127.0.0.1", static_cast<std::uint16_t>(std::stoi(mon1)), "/trace");
  ASSERT_FALSE(doc0.empty());
  ASSERT_FALSE(doc1.empty());

  const fleet::MergedTrace merged = fleet::merge_traces({doc0, doc1});
  EXPECT_EQ(merged.nodes, 2u);
  EXPECT_EQ(merged.anchored, 2u);  // both docs carried a clock anchor
  // Some nonzero trace id must have events in both processes.
  std::map<std::uint64_t, std::set<std::uint32_t>> pids_by_id;
  for (const auto& e : merged.events)
    if (e.trace_id != 0) pids_by_id[e.trace_id].insert(e.pid);
  bool crossed = false;
  for (const auto& [id, pids] : pids_by_id)
    if (pids.size() >= 2) crossed = true;
  EXPECT_TRUE(crossed) << "no trace id appeared on both nodes";

  (void)slurp(p1);
  pclose(p1);
  (void)slurp(p0);
  pclose(p0);
}

TEST(TycodE2E, KilledPeerIsWrittenOff) {
  const std::string tycod = TYCOD_PATH;
  FILE* p0 = popen((tycod +
                    " --node 0 --heartbeat-ms 25 --confirm-ms 200 "
                    "--idle-exit-ms 3000 --serve-ms 30000 -e "
                    "'site server { export new p in "
                    "p?{ val(x, rep) = rep![x * 2] } }' 2>&1")
                       .c_str(),
                   "r");
  ASSERT_NE(p0, nullptr);
  const std::string line = read_until(p0, "listening on");
  ASSERT_FALSE(line.empty()) << "node 0 never bound";
  const std::string port = parse_port(line);

  // The client imports p (so it holds attributed credit) and parks
  // forever; we SIGKILL it mid-run.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: silence stdio and become tycod node 1.
    freopen("/dev/null", "w", stdout);
    freopen("/dev/null", "w", stderr);
    execl(TYCOD_PATH, "tycod", "--node", "1", "--join",
          ("127.0.0.1:" + port).c_str(), "--heartbeat-ms", "25",
          "--timeout-ms", "25000", "-e",
          "site client { import p from server in "
          "import never from server in p!val[1, p] }",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  waitpid(child, &wstatus, 0);

  const std::string out0 = slurp(p0);
  const int rc0 = pclose(p0);
  // The survivor's failure detector fired, the dead holder's credit was
  // written off (> 0), tables drained, and shutdown was clean.
  EXPECT_NE(out0.find("peers_down=1"), std::string::npos) << out0;
  EXPECT_NE(out0.find("exports_live=0"), std::string::npos) << out0;
  const auto pos = out0.find("credit_written_off=");
  ASSERT_NE(pos, std::string::npos) << out0;
  EXPECT_EQ(out0.find("credit_written_off=0 ", pos), std::string::npos)
      << out0;
  EXPECT_EQ(WEXITSTATUS(rc0), 0) << out0;
}

TEST(TycodE2E, CoalescedRpcSoakSurvivesMidBatchKill) {
  // Soak: sustained C2-style RPC load with coalescing explicitly on
  // (the new --flush-* / writev path carries every frame), then SIGKILL
  // the client mid-batch. The survivor's failure detector must fire and
  // the GC write-off converge — a torn or replayed partial frame after
  // the kill would poison the server's framing and show up as a decode
  // error or a wedged daemon instead.
  const std::string tycod = TYCOD_PATH;
  FILE* p0 = popen((tycod +
                    " --node 0 --heartbeat-ms 25 --confirm-ms 200 "
                    "--flush-bytes 262144 --flush-frames 64 "
                    "--idle-exit-ms 3000 --serve-ms 30000 -e "
                    "'site server { export new svc in "
                    "def Serve(self) = self?{ val(x, r) = (r![x + 1] | "
                    "Serve[self]) } in Serve[svc] }' 2>&1")
                       .c_str(),
                   "r");
  ASSERT_NE(p0, nullptr);
  const std::string line = read_until(p0, "listening on");
  ASSERT_FALSE(line.empty()) << "node 0 never bound";
  const std::string port = parse_port(line);

  // The client RPCs in an unbounded loop — load is still flowing in
  // both directions when the SIGKILL lands.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    freopen("/dev/null", "w", stdout);
    freopen("/dev/null", "w", stderr);
    execl(TYCOD_PATH, "tycod", "--node", "1", "--join",
          ("127.0.0.1:" + port).c_str(), "--heartbeat-ms", "25",
          "--flush-bytes", "262144", "--flush-frames", "64", "--timeout-ms",
          "25000", "-e",
          "site client { import svc from server in "
          "def Loop(i) = let v = svc![i] in Loop[v] in Loop[0] }",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  waitpid(child, &wstatus, 0);

  const std::string out0 = slurp(p0);
  const int rc0 = pclose(p0);
  EXPECT_NE(out0.find("peers_down=1"), std::string::npos) << out0;
  EXPECT_NE(out0.find("exports_live=0"), std::string::npos) << out0;
  const auto pos = out0.find("credit_written_off=");
  ASSERT_NE(pos, std::string::npos) << out0;
  EXPECT_EQ(out0.find("credit_written_off=0 ", pos), std::string::npos)
      << out0;
  EXPECT_EQ(WEXITSTATUS(rc0), 0) << out0;
}

#endif  // TYCOD_PATH

}  // namespace
}  // namespace dityco
