// String interner: maps lexemes (method labels, exported identifier
// names, site names) to dense 32-bit ids. Each Site owns one for method
// labels so that label comparison during reduction is an integer compare;
// labels crossing a node boundary travel as strings and are re-interned
// on arrival (the paper's relinking step).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dityco {

class Interner {
 public:
  using Id = std::uint32_t;

  /// Intern `s`, returning its dense id (stable for the interner's life).
  Id intern(std::string_view s);

  /// Lookup without inserting; returns false if unknown.
  bool find(std::string_view s, Id& out) const;

  /// The lexeme for an id. Precondition: id was returned by intern().
  const std::string& name(Id id) const { return names_.at(id); }

  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Id> map_;
  std::vector<std::string> names_;
};

}  // namespace dityco
