// Transport unit tests: in-process delivery, link-cost models, and the
// virtual-time semantics of the simulated cluster transport.
#include <gtest/gtest.h>

#include <thread>

#include "net/transport.hpp"

namespace dityco::net {
namespace {

Packet mk(std::uint32_t src, std::uint32_t dst, std::size_t size = 8) {
  Packet p;
  p.src_node = src;
  p.dst_node = dst;
  p.bytes.assign(size, 0xab);
  return p;
}

TEST(InProc, FifoPerNode) {
  InProcTransport t(2);
  auto a = mk(0, 1);
  a.bytes[0] = 1;
  auto b = mk(0, 1);
  b.bytes[0] = 2;
  t.send(std::move(a), 0);
  t.send(std::move(b), 0);
  Packet out;
  ASSERT_TRUE(t.recv(1, out, 0));
  EXPECT_EQ(out.bytes[0], 1);
  ASSERT_TRUE(t.recv(1, out, 0));
  EXPECT_EQ(out.bytes[0], 2);
  EXPECT_FALSE(t.recv(1, out, 0));
}

TEST(InProc, InFlightAccounting) {
  InProcTransport t(2);
  EXPECT_EQ(t.in_flight(), 0u);
  t.send(mk(0, 1), 0);
  t.send(mk(1, 0), 0);
  EXPECT_EQ(t.in_flight(), 2u);
  Packet out;
  t.recv(1, out, 0);
  EXPECT_EQ(t.in_flight(), 1u);
  t.recv(0, out, 0);
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(InProc, BytesAndPacketsCounted) {
  InProcTransport t(2);
  t.send(mk(0, 1, 100), 0);
  t.send(mk(0, 1, 28), 0);
  EXPECT_EQ(t.bytes_sent(), 128u);
  EXPECT_EQ(t.packets_sent(), 2u);
}

TEST(InProc, ThreadSafety) {
  InProcTransport t(2);
  std::thread producer([&] {
    for (int i = 0; i < 10000; ++i) t.send(mk(0, 1), 0);
  });
  int got = 0;
  Packet out;
  while (got < 10000) {
    if (t.recv(1, out, 0)) ++got;
  }
  producer.join();
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(LinkModel, CostComposition) {
  LinkModel m{10.0, 1000.0, 1.0};
  // 1000 Mb/s == 1000 bits/us: 1250 bytes == 10000 bits -> 10us transfer.
  EXPECT_DOUBLE_EQ(m.cost_us(1250), 10.0 + 1.0 + 10.0);
  EXPECT_DOUBLE_EQ(m.cost_us(0), 11.0);
}

TEST(LinkModel, MyrinetBeatsFastEthernet) {
  for (std::size_t sz : {0u, 64u, 1500u, 100000u})
    EXPECT_LT(myrinet().cost_us(sz), fast_ethernet().cost_us(sz)) << sz;
}

TEST(Sim, DeliveryRespectsVirtualTime) {
  SimTransport t(2, LinkModel{10.0, 1000.0, 0.0});
  t.send(mk(0, 1, 0), /*now=*/5.0);  // arrival = 15
  Packet out;
  EXPECT_FALSE(t.recv(1, out, 14.9));
  EXPECT_EQ(t.in_flight(), 1u);
  EXPECT_TRUE(t.recv(1, out, 15.0));
  EXPECT_EQ(t.in_flight(), 0u);
}

TEST(Sim, NextArrivalAndPeek) {
  SimTransport t(2, LinkModel{10.0, 1000.0, 0.0});
  EXPECT_FALSE(t.next_arrival(1).has_value());
  t.send(mk(0, 1, 0), 100.0);
  ASSERT_TRUE(t.next_arrival(1).has_value());
  EXPECT_DOUBLE_EQ(*t.next_arrival(1), 110.0);
  double arr = 0;
  const Packet* head = t.peek(1, arr);
  ASSERT_NE(head, nullptr);
  EXPECT_DOUBLE_EQ(arr, 110.0);
  EXPECT_EQ(head->src_node, 0u);
}

TEST(Sim, ArrivalOrderingAcrossSenders) {
  SimTransport t(3, LinkModel{10.0, 1000.0, 0.0});
  auto late = mk(0, 2, 0);
  late.bytes.assign(1, 1);
  auto early = mk(1, 2, 0);
  early.bytes.assign(1, 2);
  t.send(std::move(late), 50.0);   // arrival ~60
  t.send(std::move(early), 10.0);  // arrival ~20
  Packet out;
  ASSERT_TRUE(t.recv(2, out, 1000.0));
  EXPECT_EQ(out.bytes[0], 2) << "earlier arrival first";
}

TEST(Sim, BandwidthMatters) {
  SimTransport fast(2, myrinet());
  SimTransport slow(2, fast_ethernet());
  fast.send(mk(0, 1, 100000), 0.0);
  slow.send(mk(0, 1, 100000), 0.0);
  EXPECT_LT(*fast.next_arrival(1), *slow.next_arrival(1));
}

}  // namespace
}  // namespace dityco::net
