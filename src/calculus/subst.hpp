// Free identifiers, capture-avoiding substitution and the σ identifier
// translation of section 3. These implement the static machinery of the
// calculus; the reference reducer and the compiler's capture analysis are
// built on top of them.
#pragma once

#include <map>
#include <set>
#include <string>

#include "calculus/ast.hpp"

namespace dityco::calc {

/// Free *plain* names of P (names not bound by new/method params/class
/// params). Located names are network constants and are reported by
/// free_located_names instead.
std::set<std::string> free_names(const Proc& p);

/// Free located names s.x occurring in P, as "s.x" strings.
std::set<std::string> free_located_names(const Proc& p);

/// Free *plain* class variables of P (not bound by an enclosing def).
std::set<std::string> free_classes(const Proc& p);

/// Capture-avoiding simultaneous substitution of names: every free
/// occurrence of a key is replaced by the mapped NameRef. Binders that
/// would capture a replacement are freshened. Used for the import
/// translation P{s.x/x} and by tests of the formal rules.
ProcPtr substitute_names(const ProcPtr& p,
                         const std::map<std::string, NameRef>& sub);

/// Capture-avoiding substitution of class variables (occurrences are
/// instantiation heads X[v̄]).
ProcPtr substitute_classes(const ProcPtr& p,
                           const std::map<std::string, NameRef>& sub);

/// The translation σ_r^s of section 3, applied to code moving from site
/// `from` to site `to`:
///   plain x          ->  from.x      (uploaded)
///   to.x             ->  x           (localised at destination)
///   other s'.x       ->  s'.x        (unchanged)
/// applied to both names and class variables. Note: σ acts only on *free*
/// identifiers; bound identifiers are untouched.
ProcPtr sigma_translate(const ProcPtr& p, const std::string& from,
                        const std::string& to);

/// Fresh-name source for capture avoidance and the reducer; returns
/// base$n with a process-global counter (thread-safe).
std::string fresh_name(const std::string& base);

}  // namespace dityco::calc
