// Phi-accrual failure detection (Hayashibara et al., "The φ Accrual
// Failure Detector"), in the exponential-interarrival simplification
// popularised by Cassandra: instead of a binary alive/dead verdict the
// detector outputs a suspicion level
//
//   phi(now) = (now - last_arrival) / (mean_interarrival * ln 10)
//
// i.e. -log10 of the probability that the next heartbeat is merely late,
// assuming exponentially distributed inter-arrival times whose mean is
// estimated over a sliding window. phi = 1 means "90% sure it's dead",
// phi = 3 "99.9%", and so on; the caller picks a threshold matched to
// its tolerance for false positives.
//
// The paper's future-work list asks for exactly this ("detect site
// failures, reconfigure the computation topology"); TcpTransport feeds
// one detector per peer from heartbeat/data arrivals and turns a
// sustained phi breach into a confirmed-dead verdict (see tcp.hpp).
//
// All methods take explicit `now_ms` timestamps, so unit tests drive the
// detector with a fake clock and the verdict timeline is deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace dityco::net {

class PhiAccrualDetector {
 public:
  struct Options {
    /// Sliding window of inter-arrival samples used for the mean.
    std::size_t window = 64;
    /// Floor for the estimated mean (guards phi explosion when a burst
    /// of back-to-back arrivals drives the observed mean toward zero).
    double min_interval_ms = 10.0;
    /// Mean assumed after the first arrival, before any interval exists.
    double first_interval_ms = 500.0;
  };

  PhiAccrualDetector() : PhiAccrualDetector(Options{}) {}
  explicit PhiAccrualDetector(Options o) : opt_(o) {}

  /// Record an arrival (heartbeat or any other traffic from the peer).
  void heartbeat(double now_ms);

  /// Suspicion level at `now_ms`; 0 while no arrival has been seen
  /// (a peer that never spoke cannot be declared dead — only ever
  /// unreachable, which reconnect handles).
  double phi(double now_ms) const;

  bool started() const { return last_ms_ >= 0; }
  double mean_interval_ms() const;
  std::size_t samples() const { return intervals_.size(); }

  /// Forget everything (peer restarted under a fresh connection).
  void reset();

 private:
  Options opt_;
  std::deque<double> intervals_;
  double sum_ms_ = 0.0;
  double last_ms_ = -1.0;
};

}  // namespace dityco::net
