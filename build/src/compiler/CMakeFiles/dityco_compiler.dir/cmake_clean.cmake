file(REMOVE_RECURSE
  "CMakeFiles/dityco_compiler.dir/assembly.cpp.o"
  "CMakeFiles/dityco_compiler.dir/assembly.cpp.o.d"
  "CMakeFiles/dityco_compiler.dir/codegen.cpp.o"
  "CMakeFiles/dityco_compiler.dir/codegen.cpp.o.d"
  "CMakeFiles/dityco_compiler.dir/lexer.cpp.o"
  "CMakeFiles/dityco_compiler.dir/lexer.cpp.o.d"
  "CMakeFiles/dityco_compiler.dir/parser.cpp.o"
  "CMakeFiles/dityco_compiler.dir/parser.cpp.o.d"
  "CMakeFiles/dityco_compiler.dir/peephole.cpp.o"
  "CMakeFiles/dityco_compiler.dir/peephole.cpp.o.d"
  "libdityco_compiler.a"
  "libdityco_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dityco_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
