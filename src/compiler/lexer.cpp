#include "compiler/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace dityco::comp {

namespace {

const std::unordered_map<std::string_view, Tok> kKeywords = {
    {"new", Tok::kNew},       {"in", Tok::kIn},       {"def", Tok::kDef},
    {"and", Tok::kAnd},       {"export", Tok::kExport},
    {"import", Tok::kImport}, {"from", Tok::kFrom},   {"if", Tok::kIf},
    {"then", Tok::kThen},     {"else", Tok::kElse},   {"print", Tok::kPrint},
    {"let", Tok::kLet},       {"true", Tok::kTrue},   {"false", Tok::kFalse},
    {"site", Tok::kSite},
};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < src.size() && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  auto push = [&](Tok k, std::string text = {}) {
    out.push_back(Token{k, std::move(text), 0, 0, line, col});
  };

  while (i < src.size()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '-' && peek(1) == '-') {  // line comment
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    const int tline = line, tcol = col;
    auto pushed = [&] { out.back().line = tline, out.back().col = tcol; };

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(
                                    peek())) ||
                                peek() == '_' || peek() == '$'))
        advance();
      std::string_view word = src.substr(start, i - start);
      auto kw = kKeywords.find(word);
      if (kw != kKeywords.end()) {
        push(kw->second);
      } else if (std::isupper(static_cast<unsigned char>(word[0]))) {
        push(Tok::kClass, std::string(word));
      } else {
        push(Tok::kIdent, std::string(word));
      }
      pushed();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
        if (peek() == 'e' || peek() == 'E') {
          advance();
          if (peek() == '+' || peek() == '-') advance();
          while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
        }
        Token t{Tok::kFloat, {}, 0, 0, tline, tcol};
        t.float_val = std::stod(std::string(src.substr(start, i - start)));
        out.push_back(t);
      } else {
        Token t{Tok::kInt, {}, 0, 0, tline, tcol};
        t.int_val = std::stoll(std::string(src.substr(start, i - start)));
        out.push_back(t);
      }
      continue;
    }
    if (c == '"') {
      advance();
      std::string s;
      while (i < src.size() && peek() != '"') {
        char ch = peek();
        if (ch == '\\') {
          advance();
          char esc = peek();
          switch (esc) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case '\\': s += '\\'; break;
            case '"': s += '"'; break;
            default:
              throw LexError("unknown escape", line, col);
          }
          advance();
        } else if (ch == '\n') {
          throw LexError("unterminated string", tline, tcol);
        } else {
          s += ch;
          advance();
        }
      }
      if (i >= src.size()) throw LexError("unterminated string", tline, tcol);
      advance();  // closing quote
      out.push_back(Token{Tok::kString, std::move(s), 0, 0, tline, tcol});
      continue;
    }

    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('=', '=')) { push(Tok::kEq); pushed(); advance(2); continue; }
    if (two('!', '=')) { push(Tok::kNe); pushed(); advance(2); continue; }
    if (two('<', '=')) { push(Tok::kLe); pushed(); advance(2); continue; }
    if (two('>', '=')) { push(Tok::kGe); pushed(); advance(2); continue; }
    if (two('&', '&')) { push(Tok::kAndAnd); pushed(); advance(2); continue; }
    if (two('|', '|')) { push(Tok::kOrOr); pushed(); advance(2); continue; }
    if (two('+', '+')) { push(Tok::kConcat); pushed(); advance(2); continue; }

    Tok k;
    switch (c) {
      case '!': k = Tok::kBang; break;
      case '?': k = Tok::kQuery; break;
      case '{': k = Tok::kLBrace; break;
      case '}': k = Tok::kRBrace; break;
      case '[': k = Tok::kLBrack; break;
      case ']': k = Tok::kRBrack; break;
      case '(': k = Tok::kLParen; break;
      case ')': k = Tok::kRParen; break;
      case ',': k = Tok::kComma; break;
      case '.': k = Tok::kDot; break;
      case ';': k = Tok::kSemi; break;
      case '=': k = Tok::kAssign; break;
      case '|': k = Tok::kBar; break;
      case '+': k = Tok::kPlus; break;
      case '-': k = Tok::kMinus; break;
      case '*': k = Tok::kStar; break;
      case '/': k = Tok::kSlash; break;
      case '%': k = Tok::kPercent; break;
      case '<': k = Tok::kLt; break;
      case '>': k = Tok::kGt; break;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", line,
                       col);
    }
    push(k);
    pushed();
    advance();
  }
  out.push_back(Token{Tok::kEnd, {}, 0, 0, line, col});
  return out;
}

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEnd: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kClass: return "class identifier";
    case Tok::kInt: return "integer";
    case Tok::kFloat: return "float";
    case Tok::kString: return "string";
    case Tok::kNew: return "'new'";
    case Tok::kIn: return "'in'";
    case Tok::kDef: return "'def'";
    case Tok::kAnd: return "'and'";
    case Tok::kExport: return "'export'";
    case Tok::kImport: return "'import'";
    case Tok::kFrom: return "'from'";
    case Tok::kIf: return "'if'";
    case Tok::kThen: return "'then'";
    case Tok::kElse: return "'else'";
    case Tok::kPrint: return "'print'";
    case Tok::kLet: return "'let'";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kSite: return "'site'";
    case Tok::kBang: return "'!'";
    case Tok::kQuery: return "'?'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBrack: return "'['";
    case Tok::kRBrack: return "']'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kComma: return "','";
    case Tok::kDot: return "'.'";
    case Tok::kSemi: return "';'";
    case Tok::kAssign: return "'='";
    case Tok::kBar: return "'|'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kConcat: return "'++'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kNot: return "'!'";
  }
  return "?";
}

}  // namespace dityco::comp
