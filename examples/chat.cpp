// A chat room: the site-level communication topology changes dynamically
// (fig. 2's "dynamic communication topology at the site level"). The room
// keeps a list of member channels (encoded as cons cells); joining ships
// your inbox channel to the room, and every post is broadcast to all
// current members — across whatever nodes they live on.
//
// Run:   ./build/examples/chat
#include <iostream>

#include "core/network.hpp"

int main() {
  using dityco::core::Network;
  Network net;
  net.add_node();
  net.add_site(0, "room");
  const char* members[] = {"ana", "bruno", "clara"};
  for (std::size_t i = 0; i < 3; ++i) {
    net.add_node();
    net.add_site(i + 1, members[i]);
  }

  // The room: a member list plus join/post methods.
  net.submit_source("room", R"(
    def Nil(self) = self?{ each(msg, k) = (k![] | Nil[self]) }
    and Cons(self, inbox, tl) = self?{
      each(msg, k) = (inbox!deliver[msg] | tl!each[msg, k] |
                      Cons[self, inbox, tl]) }
    and Room(self, list) = self?{
      join(inbox, ack) = new l2 (Cons[l2, inbox, list] | ack![] |
                                 Room[self, l2]),
      post(msg) = new k (list!each[msg, k] | k?() = Room[self, list]) }
    in
    new empty (Nil[empty] | export new chat in Room[chat, empty])
  )");

  // Members join, then chat. Joining before posting is sequenced with an
  // ack so nobody misses a message.
  net.submit_source("ana", R"(
    import chat from room in
    new inbox (
      def Listen(self) = self?{ deliver(m) = (print["<ana> sees:", m] |
                                              Listen[self]) }
      in Listen[inbox]
      | new ok (chat!join[inbox, ok] | ok?() =
          chat!post["hello from ana"])
    )
  )");
  net.submit_source("bruno", R"(
    import chat from room in
    new inbox (
      def Listen(self) = self?{ deliver(m) = (print["<bruno> sees:", m] |
                                              Listen[self]) }
      in Listen[inbox]
      | new ok (chat!join[inbox, ok] | ok?() =
          chat!post["hi, bruno here"])
    )
  )");
  net.submit_source("clara", R"(
    import chat from room in
    new inbox (
      def Listen(self) = self?{ deliver(m) = (print["<clara> sees:", m] |
                                              Listen[self]) }
      in Listen[inbox]
      | new ok (chat!join[inbox, ok] | ok?() = 0)   -- lurker
    )
  )");

  auto res = net.run();
  for (const char* m : members) {
    std::cout << "--- " << m << " ---\n";
    for (const auto& line : net.output(m)) std::cout << line << "\n";
  }
  std::cout << "\nquiescent: " << std::boolalpha << res.quiescent
            << ", packets: " << res.packets << "\n";
  std::cout << "(each member sees the posts that happened after they "
               "joined;\n the room's member list grew dynamically as "
               "inbox channels\n migrated to it)\n";
  return res.quiescent ? 0 : 1;
}
