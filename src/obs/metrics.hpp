// Unified metrics registry (observability layer, part 1 of 3).
//
// The runtime previously exposed four disconnected counter structs
// (vm::Machine::Stats, calc::Reducer::Counters, core::NameService::Stats,
// core::Site::MobilityStats) with no common exposition. This registry
// gives them one roof without touching their hot paths:
//
//   * Counter / Gauge / Histogram are standalone atomic cells. Components
//     own their cells (pre-resolved handles: `++stats_.comm` compiles to
//     one relaxed fetch_add, or stays a plain increment for structs owned
//     by a single executor thread) and registry exposure never sits on a
//     hot path.
//   * Components publish through *collectors*: a callback that reads the
//     component's cells into a Collector sink. Registration is RAII, so a
//     destroyed site/machine silently drops out of the exposition.
//   * The registry can also own find-or-create metrics by name for ad-hoc
//     instrumentation (tools, benches).
//
// Exposition formats: Prometheus-style text and JSON.
//
// Thread safety: cells are atomic; the registry itself is mutex-guarded.
// Collector callbacks that read non-atomic fields (e.g. the VM's
// single-threaded Stats) must only be driven when the owning thread is at
// rest — i.e. call expose_*/snapshot() after run(), not during it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dityco::obs {

/// Monotonic counter cell. Copyable (a copy snapshots the value) so the
/// stats structs that embed it keep their value semantics.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& o) : v_(o.value()) {}
  Counter& operator=(const Counter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  Counter& operator++() {
    inc();
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    inc(n);
    return *this;
  }
  operator std::uint64_t() const { return value(); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Single-writer counter: only the owning thread increments, with a
/// plain load + store (no atomic RMW, so the hot path compiles to a
/// normal add), while any thread may read a consistent value. The shape
/// for per-component stats structs owned by one executor thread that
/// TyCOmon must still be able to scrape mid-run.
class SoloCounter {
 public:
  SoloCounter() = default;
  SoloCounter(const SoloCounter& o) : v_(o.value()) {}
  SoloCounter& operator=(const SoloCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  SoloCounter& operator++() {
    inc();
    return *this;
  }
  SoloCounter& operator+=(std::uint64_t n) {
    inc(n);
    return *this;
  }
  operator std::uint64_t() const { return value(); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (queue depths, in-flight packets).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& o) : v_(o.value()) {}
  Gauge& operator=(const Gauge& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  operator std::int64_t() const { return value(); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit +inf bucket at the end. Observation is lock free.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
    std::uint64_t total = 0;
    double sum = 0.0;
  };

  Histogram() : Histogram(default_bounds()) {}
  explicit Histogram(std::vector<double> bounds);
  // Movable (not copyable) so owners like vm::Machine stay movable;
  // moving is only safe while no other thread observes/snapshots.
  Histogram(Histogram&& o) noexcept
      : bounds_(std::move(o.bounds_)),
        counts_(std::move(o.counts_)),
        total_(o.total_.load(std::memory_order_relaxed)),
        sum_(o.sum_.load(std::memory_order_relaxed)) {}
  Histogram& operator=(Histogram&& o) noexcept {
    bounds_ = std::move(o.bounds_);
    counts_ = std::move(o.counts_);
    total_.store(o.total_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(o.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }

  void observe(double v);
  Snapshot snapshot() const;

  /// `count` bounds starting at `start`, each `factor` times the last —
  /// the usual shape for latency/size distributions.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int count);
  /// 1µs .. ~1s in powers of 4 (a serviceable latency default).
  static std::vector<double> default_bounds() {
    return exponential_bounds(1.0, 4.0, 10);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Sink handed to collector callbacks; values land in the registry
/// snapshot under their fully-qualified name (labels embedded, e.g.
/// `vm_instructions{site="client"}`). Same-named values are summed.
class Collector {
 public:
  void counter(const std::string& name, std::uint64_t v);
  void gauge(const std::string& name, std::int64_t v);
  void histogram(const std::string& name, Histogram::Snapshot s);

 private:
  friend class Registry;
  std::map<std::string, std::uint64_t>* counters_ = nullptr;
  std::map<std::string, std::int64_t>* gauges_ = nullptr;
  std::map<std::string, Histogram::Snapshot>* histograms_ = nullptr;
};

using CollectFn = std::function<void(Collector&)>;

/// Escape a string for inclusion in a JSON string literal (metric names
/// carry embedded `label="value"` quotes).
std::string json_escape(std::string_view s);

class Registry {
 public:
  /// RAII collector registration: destroying the token (or the component
  /// holding it) removes the collector. Outliving the registry is a bug;
  /// the owning structure (e.g. Network) must destroy components first.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& o) noexcept { *this = std::move(o); }
    Registration& operator=(Registration&& o) noexcept;
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { reset(); }

    void reset();
    bool active() const { return reg_ != nullptr; }

   private:
    friend class Registry;
    Registration(Registry* r, std::uint64_t id) : reg_(r), id_(id) {}
    Registry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// `live_safe` collectors only touch atomic cells (Counter/SoloCounter/
  /// Gauge/Histogram) and may be driven while the network executes —
  /// TyCOmon's live scrape path. Pass false for collectors that read
  /// plain fields or container sizes; those are skipped by a live-only
  /// snapshot and only run once the owning threads are at rest.
  [[nodiscard]] Registration add_collector(CollectFn fn,
                                           bool live_safe = true);

  // Owned find-or-create metrics; references stay valid for the
  // registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };

  /// Merged view of owned metrics plus every registered collector. With
  /// `live_only`, collectors registered live_safe=false are skipped
  /// (scrape-while-running mode).
  Snapshot snapshot(bool live_only = false) const;
  /// Prometheus-style text exposition.
  std::string expose_text(bool live_only = false) const;
  /// The same snapshot as a JSON object.
  std::string expose_json(bool live_only = false) const;

  /// Process-wide default registry (tools and standalone components).
  static Registry& global();

 private:
  friend class Registration;
  void remove_collector(std::uint64_t id);

  struct CollectorEntry {
    CollectFn fn;
    bool live_safe = true;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::uint64_t, CollectorEntry> collectors_;
  std::uint64_t next_id_ = 1;
};

}  // namespace dityco::obs
