file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_granularity.dir/bench_c4_granularity.cpp.o"
  "CMakeFiles/bench_c4_granularity.dir/bench_c4_granularity.cpp.o.d"
  "bench_c4_granularity"
  "bench_c4_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
