#include "core/node.hpp"

#include <cstring>

namespace dityco::core {

std::uint32_t packet_dst_site(const net::Packet& p) {
  if (p.bytes.size() < 5) throw DecodeError("short packet");
  std::uint32_t v;
  std::memcpy(&v, p.bytes.data() + 1, sizeof v);
  return v;
}

bool packet_is_ns(const net::Packet& p) {
  if (p.bytes.empty()) throw DecodeError("empty packet");
  // packet_type masks the trace-flag bit, so v2 (traced) frames route the
  // same as v1.
  const MsgType t = packet_type(p.bytes);
  return t == MsgType::kNsExport || t == MsgType::kNsLookup ||
         t == MsgType::kNsUnregister;
}

void Node::enable_local_ns(std::uint32_t n_nodes) {
  replica_ = std::make_unique<NameService>(id_);
  // The replica inherits this node's site registrations lazily: sites are
  // re-registered by the Network when it distributes the service.
  ns_ = replica_.get();
  broadcast_nodes_ = n_nodes;
  for (auto& s : sites_) s->set_ns_node(id_);
}

Site& Node::add_site(const std::string& name) {
  const auto site_id = static_cast<std::uint32_t>(sites_.size());
  sites_.push_back(
      std::make_unique<Site>(name, id_, site_id, ns_->home_node()));
  ns_->register_site(name, id_, site_id);
  Site& s = *sites_.back();
  if (metrics_) s.register_metrics(*metrics_);
  if (trace_capacity_ > 0) {
    s.enable_tracing(trace_capacity_);
    s.set_trace_sampling(sample_every_, sample_seed_);
  }
  if (flight_ != nullptr) {
    s.set_flight(flight_);
    s.trace_ring().set_record_all(true);
  }
  if (slo_ != nullptr) s.set_slo(slo_);
  if (prof_period_ > 0) s.machine().enable_profiling(prof_period_);
  return s;
}

void Node::set_slo(obs::SloPlane* slo) {
  slo_ = slo;
  for (auto& s : sites_) s->set_slo(slo);
}

void Node::set_flight(obs::FlightRecorder* f) {
  flight_ = f;
  ring_.set_record_all(f != nullptr);
  if (f != nullptr) f->attach_ring(&ring_);
  for (auto& s : sites_) {
    s->set_flight(f);
    s->trace_ring().set_record_all(f != nullptr);
  }
}

void Node::enable_profiling(std::uint64_t period) {
  prof_period_ = period;
  for (auto& s : sites_) s->machine().enable_profiling(period);
}

void Node::enable_tracing(std::size_t capacity, std::uint64_t sample_every,
                          std::uint64_t sample_seed) {
  trace_capacity_ = capacity;
  sample_every_ = sample_every;
  sample_seed_ = sample_seed;
  ring_.enable(capacity, id_, obs::kDaemonSite);
  ring_.set_sampling(sample_every, sample_seed);
  for (auto& s : sites_) {
    if (!s->trace_ring().enabled()) s->enable_tracing(capacity);
    s->set_trace_sampling(sample_every, sample_seed);
  }
}

void Node::route(net::Packet p, net::Transport& t, double now_us) {
  if (packet_is_ns(p)) {
    // This node hosts a name service (the central one, or its replica
    // when the service is distributed).
    Reader r(p.bytes);
    const PacketHeader h = read_header(r);
    std::vector<net::Packet> replies;
    if (h.type == MsgType::kNsExport || h.type == MsgType::kNsUnregister) {
      if (ring_.should_record(h.sampled))
        ring_.record(obs::EventType::kNsExport, h.trace_id, p.bytes.size());
      // Replicated mode: exports (and unregisters) originating here
      // propagate to every other replica (which releases their parked
      // lookups / drops their copies of the binding).
      const bool origin = broadcast_nodes_ == 0 || p.src_node == id_;
      if (broadcast_nodes_ > 0 && p.src_node == id_) {
        for (std::uint32_t n = 0; n < broadcast_nodes_; ++n) {
          if (n == id_) continue;
          net::Packet copy;
          copy.src_node = id_;
          copy.dst_node = n;
          copy.bytes = p.bytes;
          t.send(std::move(copy), now_us);
        }
      }
      if (h.type == MsgType::kNsExport)
        // Only the origin replica keeps the GC credit the export carries:
        // one holder per minted unit.
        ns_->handle_export(r, replies, h.trace_id, h.sampled, h.gc, origin);
      else
        ns_->handle_unregister(r, replies);
    } else {
      if (ring_.should_record(h.sampled))
        ring_.record(obs::EventType::kNsLookup, h.trace_id, p.bytes.size());
      ns_->handle_lookup(r, replies, h.trace_id, h.sampled);
    }
    for (auto& rep : replies) {
      if (rep.dst_node == id_)
        route(std::move(rep), t, now_us);
      else
        t.send(std::move(rep), now_us);
    }
    return;
  }
  if (packet_type(p.bytes) == MsgType::kPeerDown) {
    // A synthetic death notice injected by the transport's failure
    // detector: every site on this node writes off the dead holder's
    // export credit, and the name service (central or replica) drops
    // the dead node's registrations so lookups stop resolving to it.
    Reader r(p.bytes);
    read_header(r);
    const std::uint32_t dead = read_peer_down(r);
    if (ns_->home_node() == id_) ns_->evict_node(dead);
    for (auto& s : sites_) s->push_incoming(p.bytes, p.src_node);
    return;
  }
  const std::uint32_t dst_site = packet_dst_site(p);
  if (dst_site >= sites_.size()) throw DecodeError("packet to unknown site");
  sites_[dst_site]->push_incoming(std::move(p.bytes), p.src_node);
}

std::size_t Node::pump_site_outgoing(net::Transport& t, std::size_t site_idx,
                                     double now_us) {
  std::size_t moved = 0;
  net::Packet p;
  while (sites_.at(site_idx)->pop_outgoing(p)) {
    ++moved;
    if (p.dst_node == id_ && (!packet_is_ns(p) || ns_->home_node() == id_)) {
      if (!packet_is_ns(p)) ++local_deliveries_;
      route(std::move(p), t, now_us);  // shared-memory fast path
    } else {
      if (ring_.enabled() && ring_.should_record(packet_sampled(p.bytes)))
        ring_.record(obs::EventType::kPacketSend, packet_trace_id(p.bytes),
                     p.bytes.size());
      t.send(std::move(p), now_us);
    }
  }
  return moved;
}

std::size_t Node::pump_outgoing(net::Transport& t, double now_us) {
  std::size_t moved = 0;
  for (std::size_t i = 0; i < sites_.size(); ++i)
    moved += pump_site_outgoing(t, i, now_us);
  return moved;
}

std::size_t Node::pump_incoming(net::Transport& t, double now_us) {
  std::size_t moved = 0;
  net::Packet p;
  while (t.recv(id_, p, now_us)) {
    ++moved;
    if (ring_.enabled() && ring_.should_record(packet_sampled(p.bytes)))
      ring_.record(obs::EventType::kPacketRecv, packet_trace_id(p.bytes),
                   p.bytes.size());
    route(std::move(p), t, now_us);
  }
  return moved;
}

}  // namespace dityco::core
