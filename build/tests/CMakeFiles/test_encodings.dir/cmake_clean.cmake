file(REMOVE_RECURSE
  "CMakeFiles/test_encodings.dir/test_encodings.cpp.o"
  "CMakeFiles/test_encodings.dir/test_encodings.cpp.o.d"
  "test_encodings"
  "test_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
