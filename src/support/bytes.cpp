#include "support/bytes.hpp"

// All of Writer/Reader is inline; this TU anchors the library.
namespace dityco {}
