// Lexer for the DiTyCO surface language. Tokens follow the paper's
// notation: labelled messages `x!l[v]`, objects `x?{...}`, class
// instantiation `X[v]`, plus keywords for the binders and the
// export/import constructs of section 4. Line comments start with `--`.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dityco::comp {

enum class Tok {
  kEnd,
  kIdent,    // lowercase-initial identifier (names, labels, sites)
  kClass,    // uppercase-initial identifier (class variables)
  kInt,
  kFloat,
  kString,
  // keywords
  kNew,
  kIn,
  kDef,
  kAnd,
  kExport,
  kImport,
  kFrom,
  kIf,
  kThen,
  kElse,
  kPrint,
  kLet,
  kTrue,
  kFalse,
  kSite,
  // punctuation / operators
  kBang,     // !
  kQuery,    // ?
  kLBrace,
  kRBrace,
  kLBrack,
  kRBrack,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemi,
  kAssign,   // =
  kBar,      // |
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kConcat,   // ++
  kEq,       // ==
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kNot,      // ! in expression position is produced as kBang; parser decides
};

struct Token {
  Tok kind;
  std::string text;      // identifier lexeme / string contents
  std::int64_t int_val = 0;
  double float_val = 0;
  int line = 0;
  int col = 0;
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, int line, int col)
      : std::runtime_error("lex error at " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + what),
        line(line),
        col(col) {}
  int line, col;
};

/// Tokenise the whole input (throws LexError on malformed input). The
/// result always ends with a kEnd token.
std::vector<Token> lex(std::string_view src);

/// Human-readable token kind name (diagnostics).
const char* tok_name(Tok t);

}  // namespace dityco::comp
