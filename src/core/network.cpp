#include "core/network.hpp"
#include <sys/prctl.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "compiler/codegen.hpp"
#include "types/infer.hpp"
#include "compiler/parser.hpp"

namespace dityco::core {

Network::Network(Config cfg)
    : cfg_(cfg),
      metrics_(std::make_unique<obs::Registry>()),
      ns_(std::make_unique<NameService>(0)) {
  ns_->register_metrics(*metrics_, "central");
  // Audit-plane counters live in LiveStatus (heap, survives moves); the
  // cells are atomic so the collector is live-safe.
  LiveStatus* ls = live_.get();
  audit_reg_ = metrics_->add_collector([ls](obs::Collector& c) {
    c.counter("gc_audits", ls->gc_audits);
    c.counter("gc_audit_imbalance", ls->gc_audit_imbalance);
  });
}

Network::~Network() {
  // Stop transport background machinery (the TCP I/O thread) before any
  // member it could race with is torn down; also releases senders
  // blocked on backpressure.
  if (transport_) transport_->shutdown();
}

Node& Network::add_node() {
  if (transport_)
    throw std::logic_error("cannot add nodes after the network started");
  std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  // A multiprocess TCP network hosts one node whose id is the
  // process-global node id, not a local ordinal.
  if (cfg_.transport == TransportKind::kTcp && cfg_.tcp.multiprocess)
    id += cfg_.tcp.self;
  nodes_.push_back(std::make_unique<Node>(id, *ns_, metrics_.get()));
  if (trace_capacity_ > 0)
    nodes_.back()->enable_tracing(trace_capacity_, sample_every_,
                                  sample_seed_);
  if (flight_) nodes_.back()->set_flight(flight_.get());
  if (slo_) nodes_.back()->set_slo(slo_.get());
  if (prof_period_ > 0) nodes_.back()->enable_profiling(prof_period_);
  return *nodes_.back();
}

void Network::enable_tracing(std::size_t capacity, std::uint64_t sample_every,
                             std::uint64_t sample_seed) {
  trace_capacity_ = capacity;
  sample_every_ = sample_every;
  sample_seed_ = sample_seed;
  for (auto& n : nodes_)
    n->enable_tracing(capacity, sample_every, sample_seed);
  // Socket-level hops record into transport-owned rings with the same
  // sampling, so one trace id lines up from site to wire to peer.
  for (net::TcpTransport* t : tcp_parts()) {
    t->enable_trace(capacity, sample_every, sample_seed);
    if (flight_) t->set_trace_record_all(true);
  }
}

void Network::enable_flight(const obs::FlightPolicy& policy) {
  // The recorder harvests promoted events from the rings, so retention
  // without tracing would have nothing to keep.
  if (trace_capacity_ == 0) enable_tracing();
  if (!flight_) {
    flight_ = std::make_unique<obs::FlightRecorder>();
    obs::FlightRecorder* f = flight_.get();
    flight_reg_ = metrics_->add_collector([f](obs::Collector& c) {
      using R = obs::FlightRecorder::Reason;
      for (R r : {R::kSlow, R::kError, R::kStarved, R::kRelAnomaly,
                  R::kNetwork})
        c.counter(std::string("flight_promoted{reason=\"") +
                      obs::FlightRecorder::reason_name(r) + "\"}",
                  f->promoted_count(r));
      c.counter("flight_completions", f->completions());
      c.counter("flight_evicted", f->evicted());
      c.counter("flight_duplicates", f->duplicates());
      c.counter("flight_index_rebuilds", f->index_rebuilds());
      c.histogram("flight_latency_us", f->latency_snapshot());
    });
  }
  flight_->configure(policy);
  if (slo_) slo_->set_flight(flight_.get());
  for (auto& n : nodes_) n->set_flight(flight_.get());
  for (net::TcpTransport* t : tcp_parts()) wire_tcp_flight(*t);
}

void Network::enable_slo(const obs::SloPlane::Config& cfg) {
  // The ledger keys on propagated v2 trace ids, which only exist while
  // tracing is on (fresh_trace_id returns 0 otherwise).
  if (trace_capacity_ == 0) enable_tracing();
  if (!slo_) {
    slo_ = std::make_unique<obs::SloPlane>();
    obs::SloPlane* s = slo_.get();
    slo_reg_ = metrics_->add_collector([s](obs::Collector& c) {
      c.counter("slo_requests_tracked", s->tracked());
      c.counter("slo_requests_completed", s->completed());
      c.counter("slo_requests_executed", s->executed());
      c.counter("slo_violations", s->violations());
      c.counter("slo_requests_expired", s->expired());
      c.counter("slo_requests_dropped", s->dropped());
      c.counter("slo_state_transitions", s->transitions_total());
      c.gauge("slo_inflight", static_cast<std::int64_t>(s->inflight()));
      c.gauge("slo_state", static_cast<std::int64_t>(s->state()));
      const auto v = s->burn(obs::trace_now_ns());
      c.gauge("slo_burn_short_milli",
              static_cast<std::int64_t>(v.short_w.burn * 1000.0));
      c.gauge("slo_burn_long_milli",
              static_cast<std::int64_t>(v.long_w.burn * 1000.0));
      using Op = obs::SloPlane::Op;
      for (Op op : {Op::kMsg, Op::kObj, Op::kFetch}) {
        const auto snap = s->e2e_snapshot(op);
        if (snap.empty()) continue;
        const std::string lbl =
            std::string("{op=\"") + obs::SloPlane::op_name(op) + "\"}";
        c.gauge("slo_e2e_p50_us" + lbl,
                static_cast<std::int64_t>(snap.quantile_us(0.50)));
        c.gauge("slo_e2e_p99_us" + lbl,
                static_cast<std::int64_t>(snap.quantile_us(0.99)));
      }
    });
  }
  slo_->configure(cfg);
  if (flight_) slo_->set_flight(flight_.get());
  for (auto& n : nodes_) n->set_slo(slo_.get());
  for (net::TcpTransport* t : tcp_parts()) wire_tcp_slo(*t);
}

std::string Network::slo_json() {
  if (!slo_) return "{}";
  // Render on the ledger's own time base: under the sim driver the
  // sites stamped it with virtual time, which the daemon rings carry.
  std::uint64_t now = obs::trace_now_ns();
  if (cfg_.mode == Mode::kSim && !nodes_.empty())
    now = nodes_.front()->daemon_ring().now_ns();
  return slo_->json(now);
}

std::vector<net::TcpTransport*> Network::tcp_parts() const {
  std::vector<net::TcpTransport*> out;
  if (!transport_) return out;
  if (auto* t = dynamic_cast<net::TcpTransport*>(transport_.get())) {
    out.push_back(t);
  } else if (auto* m =
                 dynamic_cast<net::TcpMeshTransport*>(transport_.get())) {
    for (std::size_t i = 0; i < m->parts_count(); ++i)
      out.push_back(&m->part(i));
  }
  return out;
}

void Network::wire_tcp_flight(net::TcpTransport& t) {
  // The recorder needs every traced socket hop available for promotion,
  // not just the 1-in-N sampled set; /trace re-filters (collect_traces).
  t.set_trace_record_all(true);
  flight_->attach_ring(&t.trace_ring());
  obs::FlightRecorder* f = flight_.get();
  // Hook runs on the I/O thread under the transport lock; promote() only
  // takes the recorder's own mutex and never calls back into the
  // transport, so the lock order is one-way.
  t.set_peer_event_hook([f](net::TcpTransport::PeerEvent, std::uint32_t,
                            std::uint64_t trace_id) {
    f->promote(trace_id, obs::FlightRecorder::Reason::kNetwork);
  });
}

void Network::wire_tcp_slo(net::TcpTransport& t) {
  obs::SloPlane* s = slo_.get();
  // Hook runs under the transport lock; the plane only takes its own
  // mutex and never calls back into the transport (one-way lock order,
  // same shape as the flight recorder's peer-event hook).
  t.set_slo_hook([s](std::uint64_t trace_id, bool outbound,
                     std::uint64_t now_ns) {
    if (outbound)
      s->on_tcp_send(trace_id, now_ns);
    else
      s->on_tcp_recv(trace_id, now_ns);
  });
}

void Network::enable_profiling(std::uint64_t period) {
  prof_period_ = period;
  for (auto& n : nodes_) n->enable_profiling(period);
}

std::string Network::profile_folded() const {
  std::string out;
  for (const auto& n : nodes_)
    for (const auto& s : n->sites()) out += s->machine().profile_folded();
  return out;
}

std::string Network::flight_json() const {
  std::vector<obs::ThreadTrace> lines;
  if (flight_) {
    // Regroup the promoted events into the (node, site) thread lines the
    // Chrome exporter expects; flow arrows re-emerge from the trace ids.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> index;
    auto site_name = [this](std::uint32_t node, std::uint32_t site) {
      if (site == obs::kDaemonSite)
        return "node" + std::to_string(node) + "/tycod";
      for (const auto& n : nodes_)
        if (n->id() == node)
          for (const auto& s : n->sites())
            if (s->site_id() == site) return s->name();
      return "node" + std::to_string(node) + "/site" + std::to_string(site);
    };
    for (const auto& entry : flight_->snapshot()) {
      for (const auto& ev : entry.events) {
        const auto key = std::make_pair(ev.node, ev.site);
        auto it = index.find(key);
        if (it == index.end()) {
          obs::ThreadTrace tt;
          tt.pid = ev.node;
          tt.tid = ev.site;
          tt.name = site_name(ev.node, ev.site);
          it = index.emplace(key, lines.size()).first;
          lines.push_back(std::move(tt));
        }
        lines[it->second].events.push_back(ev);
      }
    }
  }
  return obs::chrome_trace_json(lines);
}

// ---------------------------------------------------------------------
// TyCOmon
// ---------------------------------------------------------------------

std::uint16_t Network::start_monitor(std::uint16_t port,
                                     const std::string& bind_addr) {
  if (monitor_) return monitor_->port();
  auto srv = std::make_unique<obs::MonitorServer>();
  using Resp = obs::MonitorServer::Response;
  // A scrape during run() must only touch live-safe state: the registry
  // filters out collectors that read plain fields, and ring snapshots
  // are concurrent-safe by construction. The scrape_mu lock pins the
  // at-rest decision: run() cannot start executors while a full
  // snapshot is being taken.
  srv->route("/metrics", [this] {
    std::lock_guard<std::mutex> lk(live_->scrape_mu);
    const bool live = live_->running.load(std::memory_order_relaxed);
    return Resp{200, "text/plain; version=0.0.4; charset=utf-8",
                metrics_->expose_text(live)};
  });
  srv->route("/metrics.json", [this] {
    std::lock_guard<std::mutex> lk(live_->scrape_mu);
    const bool live = live_->running.load(std::memory_order_relaxed);
    return Resp{200, "application/json", metrics_->expose_json(live)};
  });
  srv->route("/trace", [this] {
    return Resp{200, "application/json", trace_json()};
  });
  srv->route("/healthz", [this] {
    return Resp{200, "application/json", health_json()};
  });
  srv->route("/peers", [this] {
    return Resp{200, "application/json", peers_json()};
  });
  // The audit plane: at rest these build fresh snapshots under scrape_mu
  // (run() cannot start executors mid-build); while running they serve
  // the owner threads' last published snapshots.
  srv->route("/gc", [this] {
    return Resp{200, "application/json", gc_json()};
  });
  srv->route("/names", [this] {
    return Resp{200, "application/json", names_json()};
  });
  // The flight buffer and the profiler tables are mutex/atomic-guarded,
  // so both endpoints are safe mid-run.
  srv->route("/flight", [this] {
    return Resp{200, "application/json", flight_json()};
  });
  srv->route("/profile", [this] {
    return Resp{200, "text/plain; charset=utf-8", profile_folded()};
  });
  // The SLO plane is mutex/atomic-guarded, so /slo is safe mid-run.
  srv->route("/slo", [this] {
    return Resp{200, "application/json", slo_json()};
  });
  if (srv->start(port, bind_addr) == 0) return 0;
  monitor_ = std::move(srv);
  // A transport built before the monitor (late start_monitor) has been
  // gossiping monitor_port 0; publish the real port to connected peers.
  if (auto* t = dynamic_cast<net::TcpTransport*>(transport_.get()))
    t->set_monitor_port(monitor_->port());
  return monitor_->port();
}

namespace {
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}
}  // namespace

std::string Network::peers_json() const {
  std::string out = "{\"self\":{";
  const std::uint32_t self_node =
      cfg_.transport == TransportKind::kTcp && cfg_.tcp.multiprocess
          ? cfg_.tcp.self
          : 0;
  out += "\"node\":" + std::to_string(self_node);
  net::TcpTransport* tcp = nullptr;
  // Never force the lazy transport factory from a scrape: building it
  // early would make a later add_node() throw.
  for (net::TcpTransport* t : tcp_parts())
    if (t->config().self == self_node) tcp = t;
  if (tcp)
    out += ",\"hostport\":\"" + obs::json_escape(tcp->advertised_hostport()) +
           "\"";
  out += ",\"monitor\":" + std::to_string(monitor_ ? monitor_->port() : 0);
  if (tcp) {
    const auto ps = tcp->pool_stats();
    out += ",\"pool\":{\"hits\":" + std::to_string(ps.hits);
    out += ",\"misses\":" + std::to_string(ps.misses);
    out += ",\"releases\":" + std::to_string(ps.releases);
    out += ",\"trimmed\":" + std::to_string(ps.trimmed);
    out += ",\"outstanding\":" + std::to_string(ps.outstanding);
    out += ",\"free_buffers\":" + std::to_string(ps.free_buffers);
    out += ",\"free_bytes\":" + std::to_string(ps.free_bytes);
    out += "}";
  }
  out += "},\"peers\":[";
  if (tcp) {
    bool first = true;
    for (const auto& pi : tcp->peer_info()) {
      if (!first) out += ",";
      first = false;
      const char* state = pi.dead          ? "dead"
                          : pi.suspected   ? "suspected"
                          : pi.connected   ? "connected"
                          : pi.connecting  ? "connecting"
                                           : "idle";
      out += "{\"node\":" + std::to_string(pi.node);
      out += ",\"hostport\":\"" + obs::json_escape(pi.hostport) + "\"";
      out += ",\"monitor\":" + std::to_string(pi.monitor_port);
      out += ",\"state\":\"" + std::string(state) + "\"";
      out += ",\"phi\":" + fmt_double(pi.phi);
      out += ",\"last_heard_age_ms\":" + fmt_double(pi.last_heard_age_ms);
      out += ",\"queue_bytes\":" + std::to_string(pi.queue_bytes);
      out += ",\"queued_frames\":" + std::to_string(pi.queued_frames);
      out += ",\"reconnects\":" + std::to_string(pi.reconnects);
      out += ",\"backoff_ms\":" + std::to_string(pi.backoff_ms);
      out += ",\"rtt_us\":" + std::to_string(pi.last_rtt_us);
      out += "}";
    }
  }
  out += "]}";
  return out;
}

namespace {

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string owner_ref_json(const vm::NetRef& r) {
  return "\"owner_node\":" + std::to_string(r.node) +
         ",\"owner_site\":" + std::to_string(r.site) +
         ",\"kind\":" + std::to_string(static_cast<int>(r.kind)) +
         ",\"id\":" + std::to_string(r.heap_id);
}

std::string gc_snapshot_json(const vm::Machine::GcSnapshot& g,
                             std::uint64_t now_ns) {
  std::string out = "{\"name\":\"" + obs::json_escape(g.name) + "\"";
  out += ",\"node\":" + std::to_string(g.node);
  out += ",\"site\":" + std::to_string(g.site);
  out += ",\"stale\":false";
  out += ",\"live_channels\":" + std::to_string(g.live_channels);
  out += ",\"free_channels\":" + std::to_string(g.free_channels);
  out += ",\"live_netrefs\":" + std::to_string(g.live_netrefs);
  out += ",\"free_netrefs\":" + std::to_string(g.free_netrefs);
  out += ",\"outstanding\":" + std::to_string(g.outstanding);
  out += ",\"held\":" + std::to_string(g.held);
  out += ",\"exports\":[";
  bool first = true;
  for (const auto& e : g.exports) {
    if (!first) out += ",";
    first = false;
    out += "{\"kind\":" + std::to_string(static_cast<int>(e.kind));
    out += ",\"id\":" + std::to_string(e.heap_id);
    out += ",\"local\":" + std::to_string(e.local);
    out += ",\"minted\":" + std::to_string(e.minted);
    out += ",\"returned\":" + std::to_string(e.returned);
    out += ",\"released\":" + std::to_string(e.released);
    out += ",\"outstanding\":" + std::to_string(e.outstanding);
    out += ",\"pins\":" + std::to_string(e.pins);
    // Leak age: the scrape's clock minus the ledger's last movement.
    // A stale snapshot still ages correctly — touched_ns is absolute
    // steady time within this process.
    const double age_ms =
        e.touched_ns == 0 || now_ns < e.touched_ns
            ? 0.0
            : static_cast<double>(now_ns - e.touched_ns) / 1e6;
    out += ",\"age_ms\":" + fmt_double(age_ms);
    out += ",\"trace\":" + std::to_string(e.last_trace);
    out += ",\"releasers\":[";
    for (std::size_t i = 0; i < e.releasers.size(); ++i) {
      if (i) out += ",";
      out += "[" + std::to_string(e.releasers[i].first >> 32) + "," +
             std::to_string(e.releasers[i].first & 0xffffffffu) + "," +
             std::to_string(e.releasers[i].second) + "]";
    }
    out += "],\"debt\":[";
    for (std::size_t i = 0; i < e.debt.size(); ++i) {
      if (i) out += ",";
      out += "[" + std::to_string(e.debt[i].first) + "," +
             std::to_string(e.debt[i].second) + "]";
    }
    out += "]}";
  }
  out += "],\"imports\":[";
  first = true;
  for (const auto& h : g.imports) {
    if (!first) out += ",";
    first = false;
    out += "{" + owner_ref_json(h.ref) +
           ",\"credit\":" + std::to_string(h.credit) + "}";
  }
  out += "],\"releases\":[";
  first = true;
  for (const auto& r : g.releases) {
    if (!first) out += ",";
    first = false;
    out += "{" + owner_ref_json(r.ref) + ",\"cum\":" + std::to_string(r.cum) +
           "}";
  }
  out += "]}";
  return out;
}

std::string ns_snapshot_json(const NameService::Snapshot& s,
                             const std::string& scope) {
  std::string out = "{\"scope\":\"" + obs::json_escape(scope) + "\"";
  out += ",\"home_node\":" + std::to_string(s.home_node);
  out += ",\"stale\":false";
  out += ",\"parked\":" + std::to_string(s.parked);
  out += ",\"sites\":[";
  bool first = true;
  for (const auto& row : s.sites) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + obs::json_escape(row.name) +
           "\",\"node\":" + std::to_string(row.node) +
           ",\"site\":" + std::to_string(row.site) + "}";
  }
  out += "],\"ids\":[";
  first = true;
  for (const auto& row : s.ids) {
    if (!first) out += ",";
    first = false;
    out += "{\"site\":\"" + obs::json_escape(row.site) + "\"";
    out += ",\"name\":\"" + obs::json_escape(row.name) + "\"";
    out += "," + owner_ref_json(row.ref);
    out += ",\"type\":\"" + obs::json_escape(row.type_sig) + "\"";
    out += ",\"credit\":" + std::to_string(row.credit);
    out += ",\"gc\":";
    out += row.gc ? "true" : "false";
    out += ",\"waiters\":" + std::to_string(row.waiters);
    out += "}";
  }
  out += "],\"releases\":[";
  first = true;
  for (const auto& r : s.releases) {
    if (!first) out += ",";
    first = false;
    out += "{" + owner_ref_json(r.ref) + ",\"cum\":" + std::to_string(r.cum) +
           "}";
  }
  out += "]}";
  return out;
}

}  // namespace

std::string Network::gc_json() const {
  std::lock_guard<std::mutex> lk(live_->scrape_mu);
  const bool running = live_->running.load(std::memory_order_relaxed);
  const std::uint64_t now_ns = obs::trace_now_ns();
  std::string out = "{\"running\":";
  out += running ? "true" : "false";
  out += ",\"fresh\":";
  out += running ? "false" : "true";
  out += ",\"steady_now_ns\":" + std::to_string(now_ns);
  out += ",\"wall_now_us\":" + std::to_string(wall_now_us());
  out += ",\"sites\":[";
  bool first = true;
  for (const auto& n : nodes_) {
    for (const auto& s : n->sites()) {
      if (!first) out += ",";
      first = false;
      if (!running) {
        // At rest under scrape_mu: the machine is unowned, build fresh.
        out += gc_snapshot_json(s->machine().gc_snapshot(), now_ns);
      } else if (auto snap = s->gc_snapshot()) {
        out += gc_snapshot_json(*snap, now_ns);
      } else {
        out += "{\"name\":\"" + obs::json_escape(s->name()) +
               "\",\"node\":" + std::to_string(n->id()) +
               ",\"site\":" + std::to_string(s->site_id()) +
               ",\"stale\":true}";
      }
    }
  }
  out += "]}";
  return out;
}

std::string Network::names_json() const {
  std::lock_guard<std::mutex> lk(live_->scrape_mu);
  const bool running = live_->running.load(std::memory_order_relaxed);
  std::string out = "{\"running\":";
  out += running ? "true" : "false";
  out += ",\"fresh\":";
  out += running ? "false" : "true";
  out += ",\"services\":[";
  bool first = true;
  auto emit = [&](const NameService& svc, const std::string& scope) {
    if (!first) out += ",";
    first = false;
    if (!running) {
      out += ns_snapshot_json(svc.snapshot(), scope);
    } else if (auto snap = svc.last_snapshot()) {
      out += ns_snapshot_json(*snap, scope);
    } else {
      out += "{\"scope\":\"" + obs::json_escape(scope) +
             "\",\"home_node\":" + std::to_string(svc.home_node()) +
             ",\"stale\":true}";
    }
  };
  // The central service is only authoritative where its home node is
  // hosted; other processes of a multiprocess fleet never route its
  // packets and would report an empty shell.
  if (ns_sharded_) {
    // One scope per hosted shard slice: primaries carry credit
    // (gc=true), follower copies are weak — the fleet audit joins only
    // the credit-bearing rows, so slices federate without double count.
    for (const auto& n : nodes_)
      emit(n->name_service(), "shard" + std::to_string(n->id()));
  } else if (!ns_distributed_) {
    for (const auto& n : nodes_)
      if (n->id() == ns_->home_node()) {
        emit(*ns_, "central");
        break;
      }
  } else {
    for (const auto& n : nodes_)
      emit(n->name_service(), "node" + std::to_string(n->id()));
  }
  out += "]";
  if (ns_sharded_ && ns_router_) {
    out += ",\"sharding\":{\"shards\":" + std::to_string(ns_router_->shards()) +
           ",\"replicas\":" + std::to_string(ns_router_->replicas()) +
           ",\"epoch\":" + std::to_string(ns_router_->epoch()) +
           ",\"generation\":" + std::to_string(ns_router_->generation()) +
           ",\"dead\":[";
    bool fd = true;
    for (std::uint32_t d : ns_router_->dead()) {
      if (!fd) out += ",";
      fd = false;
      out += std::to_string(d);
    }
    out += "]}";
    out += ",\"caches\":[";
    bool fc = true;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const ns::LeaseCache* c = i < ns_caches_.size() ? ns_caches_[i].get()
                                                      : nullptr;
      if (c == nullptr) continue;
      if (!fc) out += ",";
      fc = false;
      out += "{\"node\":" + std::to_string(nodes_[i]->id()) +
             ",\"entries\":" + std::to_string(c->size()) +
             ",\"hits\":" + std::to_string(c->hits()) +
             ",\"misses\":" + std::to_string(c->misses()) +
             ",\"invalidations\":" + std::to_string(c->invalidations()) +
             ",\"stale_served\":" + std::to_string(c->stale_served()) +
             ",\"evictions\":" + std::to_string(c->evictions()) + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

obs::fleet::AuditReport Network::self_audit(bool include_fleet) {
  namespace fleet = obs::fleet;
  std::vector<fleet::Json> gc_docs, names_docs;
  std::vector<std::uint32_t> expected;
  auto add_doc = [](std::vector<fleet::Json>& docs, const std::string& body) {
    fleet::Json doc;
    if (!body.empty() && fleet::parse_json(body, doc))
      docs.push_back(std::move(doc));
  };
  add_doc(gc_docs, gc_json());
  add_doc(names_docs, names_json());
  std::set<std::uint32_t> local;
  for (const auto& n : nodes_) {
    local.insert(n->id());
    expected.push_back(n->id());
  }
  if (include_fleet && monitor_) {
    // Peers gossip their TyCOmon ports; walk them from our own monitor
    // so the audit joins every reachable node's ledgers.
    const std::string seed = "127.0.0.1:" + std::to_string(monitor_->port());
    for (const fleet::NodeEndpoint& ep : fleet::discover(seed)) {
      if (local.count(ep.node)) continue;
      expected.push_back(ep.node);
      add_doc(gc_docs, fleet::http_get(ep.host, ep.monitor, "/gc"));
      add_doc(names_docs, fleet::http_get(ep.host, ep.monitor, "/names"));
    }
  }
  fleet::AuditReport rep = fleet::audit(gc_docs, names_docs, expected);
  ++live_->gc_audits;
  if (!rep.balanced) {
    live_->gc_audit_imbalance.inc(rep.offenders.size() +
                                  rep.orphan_imports.size() +
                                  rep.ns_mismatches.size());
    // Promote the minting traces of the offending entries so the flight
    // recorder retains the operations that leaked the credit.
    if (flight_)
      for (const auto& off : rep.offenders)
        if (off.trace != 0)
          flight_->promote(off.trace,
                           obs::FlightRecorder::Reason::kRelAnomaly);
  }
  return rep;
}

std::size_t Network::heal_releases() {
  if (!cfg_.gc) return 0;
  {
    std::lock_guard<std::mutex> lk(live_->scrape_mu);
    if (live_->running.load(std::memory_order_relaxed)) return 0;
    live_->running.store(true, std::memory_order_relaxed);
  }
  const std::size_t queued = gc_pass(/*final=*/false, /*resend=*/true);
  Result res;
  sequential_drain(transport(), res);
  {
    std::lock_guard<std::mutex> lk(live_->scrape_mu);
    live_->running.store(false, std::memory_order_relaxed);
  }
  return queued;
}

void Network::stop_monitor() { monitor_.reset(); }

std::string Network::health_json() const {
  // Everything below is either atomic or (in_flight, gated on sim mode)
  // only read at rest; the lock makes the running-flag read and that
  // gate atomic against run()'s transitions.
  std::lock_guard<std::mutex> lk(live_->scrape_mu);
  const bool running = live_->running.load(std::memory_order_relaxed);
  const char* outcome = "never_ran";
  if (running) {
    outcome = "running";
  } else {
    switch (live_->outcome.load(std::memory_order_relaxed)) {
      case 1: outcome = "quiescent"; break;
      case 2: outcome = "stalled"; break;
      case 3: outcome = "budget_exhausted"; break;
      default: break;
    }
  }
  std::string out = "{\"mode\":\"";
  switch (cfg_.mode) {
    case Mode::kSequential: out += "sequential"; break;
    case Mode::kThreaded: out += "threaded"; break;
    case Mode::kSim: out += "sim"; break;
  }
  out += "\",\"running\":";
  out += running ? "true" : "false";
  out += ",\"outcome\":\"";
  out += outcome;
  out += "\",\"instructions\":" +
         std::to_string(live_->instructions.load(std::memory_order_relaxed));
  out += ",\"progress\":" +
         std::to_string(live_->progress.load(std::memory_order_relaxed));
  // SimTransport's queues are plain fields owned by the sim loop; only
  // report in-flight counts when no driver could be mutating them.
  if (transport_ && !(cfg_.mode == Mode::kSim && running))
    out += ",\"in_flight\":" + std::to_string(transport_->in_flight());
  out += ",\"sites\":[";
  bool first = true;
  for (const auto& n : nodes_) {
    for (const auto& s : n->sites()) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + obs::json_escape(s->name()) + "\"";
      out += ",\"node\":" + std::to_string(n->id());
      out += ",\"incoming\":" + std::to_string(s->incoming_size());
      out += ",\"outgoing\":" + std::to_string(s->outgoing_size());
      out += ",\"failed\":";
      out += s->failed() ? "true" : "false";
      if (s->trace_ring().enabled()) {
        out += ",\"trace_recorded\":" +
               std::to_string(s->trace_ring().recorded());
        out += ",\"trace_dropped\":" +
               std::to_string(s->trace_ring().dropped());
      }
      out += "}";
    }
  }
  out += "]";
  // Per-peer transport state (the failure detector's live view): only on
  // TCP networks; peer_info() takes the transport lock briefly and is
  // safe mid-run. On an in-process mesh, part 0's view stands in.
  const std::vector<net::TcpTransport*> parts = tcp_parts();
  if (!parts.empty()) {
    out += ",\"peers\":[";
    bool pfirst = true;
    for (const auto& pi : parts.front()->peer_info()) {
      if (!pfirst) out += ",";
      pfirst = false;
      out += "{\"node\":" + std::to_string(pi.node);
      out += ",\"phi\":" + fmt_double(pi.phi);
      out += ",\"last_heard_age_ms\":" + fmt_double(pi.last_heard_age_ms);
      out += ",\"queue_bytes\":" + std::to_string(pi.queue_bytes);
      out += ",\"reconnects\":" + std::to_string(pi.reconnects);
      out += ",\"dead\":";
      out += pi.dead ? "true" : "false";
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::vector<obs::ThreadTrace> Network::collect_traces() const {
  std::vector<obs::ThreadTrace> out;
  // Tail retention runs the rings in record-all mode; /trace keeps its
  // 1-in-N contract by re-filtering to the sampled id set.
  const bool refilter = flight_ != nullptr && sample_every_ > 1;
  for (const auto& n : nodes_) {
    if (n->daemon_ring().enabled()) {
      obs::ThreadTrace tt;
      tt.name = "node" + std::to_string(n->id()) + "/tycod";
      tt.pid = n->id();
      tt.tid = obs::kDaemonSite;
      tt.events = n->daemon_ring().snapshot();
      if (refilter)
        std::erase_if(tt.events, [this](const obs::TraceEvent& e) {
          return e.trace_id != 0 &&
                 !obs::trace_id_sampled(e.trace_id, sample_every_,
                                        sample_seed_);
        });
      out.push_back(std::move(tt));
    }
    for (const auto& s : n->sites()) {
      if (!s->trace_ring().enabled()) continue;
      obs::ThreadTrace tt;
      tt.name = s->name();
      tt.pid = n->id();
      tt.tid = s->site_id();
      tt.events = s->trace_ring().snapshot();
      if (refilter)
        std::erase_if(tt.events, [this](const obs::TraceEvent& e) {
          return e.trace_id != 0 &&
                 !obs::trace_id_sampled(e.trace_id, sample_every_,
                                        sample_seed_);
        });
      out.push_back(std::move(tt));
    }
  }
  // Socket-level rings: one "tcp" line per endpoint, under the owning
  // node's process group.
  for (net::TcpTransport* t : tcp_parts()) {
    if (!t->trace_ring().enabled()) continue;
    obs::ThreadTrace tt;
    tt.name = "node" + std::to_string(t->config().self) + "/tcp";
    tt.pid = t->config().self;
    tt.tid = obs::kTcpSite;
    tt.events = t->trace_ring().snapshot();
    if (refilter)
      std::erase_if(tt.events, [this](const obs::TraceEvent& e) {
        return e.trace_id != 0 &&
               !obs::trace_id_sampled(e.trace_id, sample_every_,
                                      sample_seed_);
      });
    out.push_back(std::move(tt));
  }
  return out;
}

std::string Network::trace_json() const {
  // Anchor the steady-clock timeline to the wall clock at export time so
  // a fleet aggregator can rebase documents from different processes
  // onto one axis (ExportMeta in obs/export.hpp). Meaningless under the
  // sim driver's virtual time, but harmless — aggregation targets real
  // multiprocess runs.
  obs::ExportMeta meta;
  meta.has_anchor = true;
  meta.node = nodes_.empty() ? 0 : nodes_.front()->id();
  meta.steady_now_ns = obs::trace_now_ns();
  meta.wall_now_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return obs::chrome_trace_json(collect_traces(), meta);
}

Site& Network::add_site(std::size_t node_idx, const std::string& name) {
  if (find_site(name))
    throw std::logic_error("duplicate site name " + name);
  Site& s = nodes_.at(node_idx)->add_site(name);
  if (cfg_.gc) s.set_gc_enabled(true);
  return s;
}

Site* Network::find_site(const std::string& name) {
  for (auto& n : nodes_)
    for (auto& s : n->sites())
      if (s->name() == name) return s.get();
  return nullptr;
}

void Network::submit(const std::string& site_name, const calc::ProcPtr& prog) {
  Site* s = find_site(site_name);
  if (!s) throw std::logic_error("no such site: " + site_name);
  if (cfg_.typecheck) {
    types::InferResult tr = types::infer(prog);
    for (auto& [name, sig] : tr.exports) s->set_export_signature(name, sig);
    for (auto& req : tr.imports)
      s->expect_import_signature(req.site, req.name, req.signature);
  }
  s->submit(comp::compile(prog));
}

void Network::submit_source(const std::string& site_name,
                            std::string_view src) {
  submit(site_name, comp::parse_program(src));
}

void Network::submit_network_source(std::string_view src) {
  for (auto& [site, prog] : comp::parse_network(src)) submit(site, prog);
}

net::Transport& Network::transport() {
  if (!transport_) {
    if (cfg_.mode == Mode::kSim) {
      if (cfg_.transport == TransportKind::kTcp)
        throw std::logic_error(
            "TCP transport cannot run under the virtual-time sim driver");
      transport_ = std::make_unique<net::SimTransport>(nodes_.size(),
                                                       cfg_.link);
    } else if (cfg_.transport == TransportKind::kTcp) {
      // A monitor started before the transport (tycod's order) rides in
      // the hello/gossip frames so peers can federate scrapes.
      if (monitor_) cfg_.tcp.monitor_port = monitor_->port();
      if (cfg_.tcp.multiprocess) {
        auto t = std::make_unique<net::TcpTransport>(cfg_.tcp);
        // A confirmed-dead peer becomes a PEER-DOWN packet in our inbox,
        // routed like any delivery (GC write-off on executor threads).
        t->set_death_frame(
            [](std::uint32_t dead) { return make_peer_down(dead); });
        register_tcp_metrics(*t, "self");
        if (trace_capacity_ > 0)
          t->enable_trace(trace_capacity_, sample_every_, sample_seed_);
        if (flight_) wire_tcp_flight(*t);
        if (slo_) wire_tcp_slo(*t);
        transport_ = std::move(t);
      } else {
        auto mesh =
            std::make_unique<net::TcpMeshTransport>(nodes_.size(), cfg_.tcp);
        if (mesh->parts_count() > 0) register_tcp_metrics(mesh->part(0), "0");
        for (std::size_t i = 0; i < mesh->parts_count(); ++i) {
          if (trace_capacity_ > 0)
            mesh->part(i).enable_trace(trace_capacity_, sample_every_,
                                       sample_seed_);
          if (flight_) wire_tcp_flight(mesh->part(i));
          if (slo_) wire_tcp_slo(mesh->part(i));
        }
        transport_ = std::move(mesh);
      }
    } else {
      transport_ = std::make_unique<net::InProcTransport>(nodes_.size());
    }
  }
  return *transport_;
}

net::TcpTransport* Network::tcp_transport() {
  return dynamic_cast<net::TcpTransport*>(&transport());
}

void Network::register_tcp_metrics(net::TcpTransport& t,
                                   const std::string& label) {
  tcp_metrics_reg_ = metrics_->add_collector([&t, label](obs::Collector& c) {
    const std::string l = "{transport=\"" + label + "\"}";
    const auto& s = t.stats();
    c.counter("tcp_connects" + l, s.connects.load(std::memory_order_relaxed));
    c.counter("tcp_reconnects" + l,
              s.reconnects.load(std::memory_order_relaxed));
    c.counter("tcp_accepts" + l, s.accepts.load(std::memory_order_relaxed));
    c.counter("tcp_frames_out" + l,
              s.frames_out.load(std::memory_order_relaxed));
    c.counter("tcp_frames_in" + l,
              s.frames_in.load(std::memory_order_relaxed));
    c.counter("tcp_bytes_in" + l, s.bytes_in.load(std::memory_order_relaxed));
    c.counter("tcp_heartbeats_sent" + l,
              s.heartbeats_sent.load(std::memory_order_relaxed));
    c.counter("tcp_heartbeats_acked" + l,
              s.heartbeats_acked.load(std::memory_order_relaxed));
    c.counter("tcp_backpressure_waits" + l,
              s.backpressure_waits.load(std::memory_order_relaxed));
    c.counter("tcp_frames_dropped" + l,
              s.frames_dropped.load(std::memory_order_relaxed));
    c.counter("tcp_send_timeouts" + l,
              s.send_timeouts.load(std::memory_order_relaxed));
    c.counter("tcp_frames_filtered" + l,
              s.frames_filtered.load(std::memory_order_relaxed));
    c.counter("tcp_frames_malformed" + l,
              s.frames_malformed.load(std::memory_order_relaxed));
    c.counter("tcp_peers_suspected" + l,
              s.peers_suspected.load(std::memory_order_relaxed));
    c.counter("tcp_peers_dead" + l,
              s.peers_dead.load(std::memory_order_relaxed));
    c.gauge("tcp_connections" + l,
            static_cast<std::int64_t>(t.connected_peers()));
    c.gauge("tcp_queue_bytes" + l,
            static_cast<std::int64_t>(t.queued_bytes()));
    c.gauge("tcp_heartbeat_rtt_us" + l,
            static_cast<std::int64_t>(
                s.last_rtt_us.load(std::memory_order_relaxed)));
    // Coalescing: how many frames each writev() carried. A mean near 1
    // means the queue never builds up (latency-bound); higher means the
    // batching path is actually amortizing syscalls.
    c.counter("tcp_writev_calls" + l,
              s.writev_calls.load(std::memory_order_relaxed));
    c.counter("tcp_writev_frames" + l,
              s.writev_frames.load(std::memory_order_relaxed));
    // Buffer pool: hits vs. misses says whether steady state is
    // allocation-free; outstanding not draining to zero at shutdown is
    // a leak (the ASan job asserts this).
    const auto ps = t.pool_stats();
    c.counter("tcp_pool_hits" + l, ps.hits);
    c.counter("tcp_pool_misses" + l, ps.misses);
    c.counter("tcp_pool_releases" + l, ps.releases);
    c.counter("tcp_pool_trimmed" + l, ps.trimmed);
    c.gauge("tcp_pool_outstanding" + l,
            static_cast<std::int64_t>(ps.outstanding));
    c.gauge("tcp_pool_free_buffers" + l,
            static_cast<std::int64_t>(ps.free_buffers));
    c.gauge("tcp_pool_free_bytes" + l,
            static_cast<std::int64_t>(ps.free_bytes));
    // Path-telemetry distributions: where cross-node latency went.
    c.histogram("tcp_rtt_us" + l, s.rtt_us.snapshot());
    c.histogram("tcp_send_queue_bytes" + l, s.send_queue_bytes.snapshot());
    c.histogram("tcp_flush_frames_per_call" + l,
                s.flush_frames_per_call.snapshot());
    c.histogram("tcp_reconnect_backoff_ms" + l,
                s.reconnect_backoff_ms.snapshot());
    // Per-peer series (peer_info takes the transport lock briefly). Phi
    // is exported milli-scaled: the registry's gauges are integers and
    // the actionable range is ~0.5..12.
    for (const auto& pi : t.peer_info()) {
      const std::string pl = "{transport=\"" + label + "\",peer=\"" +
                             std::to_string(pi.node) + "\"}";
      c.gauge("tcp_peer_phi_milli" + pl,
              static_cast<std::int64_t>(pi.phi * 1000.0));
      c.gauge("tcp_peer_last_heard_age_ms" + pl,
              static_cast<std::int64_t>(pi.last_heard_age_ms));
      c.gauge("tcp_peer_queue_bytes" + pl,
              static_cast<std::int64_t>(pi.queue_bytes));
      c.gauge("tcp_peer_backoff_ms" + pl,
              static_cast<std::int64_t>(pi.backoff_ms));
      c.counter("tcp_peer_reconnects" + pl, pi.reconnects);
      c.histogram("tcp_peer_rtt_us" + pl, pi.rtt_us);
    }
  });
}

const std::vector<std::string>& Network::output(const std::string& site_name) {
  Site* s = find_site(site_name);
  if (!s) throw std::logic_error("no such site: " + site_name);
  return s->machine().output();
}

std::vector<std::string> Network::all_errors() const {
  std::vector<std::string> out;
  for (const auto& n : nodes_)
    for (const auto& s : n->sites()) {
      for (const auto& e : s->errors()) out.push_back(e);
      for (const auto& e : s->machine().errors()) out.push_back(e);
    }
  return out;
}

bool Network::anything_parked() const {
  if (ns_->parked() > 0) return true;
  for (const auto& n : nodes_) {
    if (n->name_service().parked() > 0) return true;
    for (const auto& s : n->sites())
      if (!s->failed() && s->machine().parked() > 0) return true;
  }
  return false;
}

Network::Result Network::finish(Result r) const {
  // Order matters for concurrent /healthz readers: clear `running` first
  // so a scrape never reports "running" with a final outcome attached.
  {
    std::lock_guard<std::mutex> lk(live_->scrape_mu);
    live_->running.store(false, std::memory_order_relaxed);
  }
  r.stalled = anything_parked();
  r.quiescent = !r.stalled && !r.budget_exhausted;
  live_->outcome.store(r.budget_exhausted ? 3 : (r.stalled ? 2 : 1),
                       std::memory_order_relaxed);
  if (transport_) {
    r.packets = transport_->packets_sent();
    r.bytes = transport_->bytes_sent();
  }
  return r;
}

Network::Result Network::run() {
  if (cfg_.ns_shards > 0 && !cfg_.distributed_ns && !ns_sharded_) {
    ns_sharded_ = true;
    // In-process runs clamp the shard count to the nodes that exist; a
    // multiprocess daemon hosts one node of a larger fleet and must use
    // the fleet-wide count so every process computes the same map.
    std::uint32_t shards = cfg_.ns_shards;
    if (!(cfg_.transport == TransportKind::kTcp && cfg_.tcp.multiprocess))
      shards = std::min<std::uint32_t>(
          shards, static_cast<std::uint32_t>(nodes_.size()));
    ns_router_ = std::make_unique<ns::ShardRouter>(shards, cfg_.ns_replicas);
    const std::uint64_t lease_ns = cfg_.ns_lease_ms * 1'000'000ull;
    for (auto& node : nodes_) {
      ns::LeaseCache* cache = nullptr;
      if (lease_ns > 0) {
        ns_caches_.push_back(std::make_unique<ns::LeaseCache>(lease_ns));
        cache = ns_caches_.back().get();
        cache->register_metrics(*metrics_,
                                "node" + std::to_string(node->id()));
      } else {
        ns_caches_.push_back(nullptr);
      }
      node->enable_sharded_ns(ns_router_.get(), cache, lease_ns > 0);
      node->name_service().register_metrics(
          *metrics_, "shard" + std::to_string(node->id()));
      // Every slice knows every site's location in advance (paper §5);
      // which slice answers a given lookup is the router's business.
      for (auto& other : nodes_)
        for (auto& s : other->sites())
          node->name_service().register_site(s->name(), other->id(),
                                             s->site_id());
    }
  }
  if (cfg_.distributed_ns && !ns_distributed_) {
    ns_distributed_ = true;
    for (auto& node : nodes_) {
      node->enable_local_ns(static_cast<std::uint32_t>(nodes_.size()));
      node->name_service().register_metrics(
          *metrics_, "node" + std::to_string(node->id()));
      for (auto& other : nodes_)
        for (auto& s : other->sites())
          node->name_service().register_site(s->name(), other->id(),
                                             s->site_id());
    }
  }
  {
    // Blocks until any in-progress at-rest (full) scrape finishes, so
    // executors never start under a non-live-safe snapshot.
    std::lock_guard<std::mutex> lk(live_->scrape_mu);
    live_->running.store(true, std::memory_order_relaxed);
  }
  switch (cfg_.mode) {
    case Mode::kSequential: return run_sequential();
    case Mode::kThreaded: return run_threaded();
    case Mode::kSim: return run_sim();
  }
  live_->running.store(false, std::memory_order_relaxed);
  return {};
}

// ---------------------------------------------------------------------
// Sequential driver
// ---------------------------------------------------------------------

std::size_t Network::gc_pass(bool final, bool resend) {
  std::size_t queued = 0;
  for (auto& n : nodes_)
    for (auto& s : n->sites()) queued += s->collect(final, resend);
  return queued;
}

void Network::sequential_drain(net::Transport& t, Result& res) {
  for (;;) {
    std::size_t moved = 0;
    std::uint64_t executed = 0;
    for (auto& n : nodes_) moved += n->pump_incoming(t, 0);
    for (auto& n : nodes_) {
      for (std::size_t i = 0; i < n->sites().size(); ++i) {
        Site& s = *n->sites()[i];
        moved += s.process_incoming();
        executed += s.run_slice(cfg_.slice);
        moved += n->pump_site_outgoing(t, i, 0);
      }
    }
    instructions_run_ += executed;
    res.instructions += executed;
    live_->instructions.fetch_add(executed, std::memory_order_relaxed);
    if (moved != 0)
      live_->progress.fetch_add(moved, std::memory_order_relaxed);
    if (instructions_run_ > cfg_.max_instructions) {
      res.budget_exhausted = true;
      return;
    }
    if (moved == 0 && executed == 0 && t.in_flight() == 0) {
      // Quiescent. Run a GC pass; if it queued RELs, keep pumping so the
      // owners apply them (and possibly cascade further collections).
      if (cfg_.gc && gc_pass(/*final=*/false) > 0) continue;
      return;
    }
  }
}

Network::Result Network::run_sequential() {
  net::Transport& t = transport();
  Result res;
  sequential_drain(t, res);
  return finish(res);
}

// ---------------------------------------------------------------------
// Threaded driver: one executor thread per site, one daemon per node
// ---------------------------------------------------------------------

Network::Result Network::run_threaded() {
  net::Transport& t = transport();
  Result res;

  std::atomic<bool> stop{false};
  // The progress clock lives in LiveStatus so TyCOmon's /healthz can
  // report it mid-run: `executed` counts instructions, `progress` counts
  // queue movements (messages applied by sites plus packets pumped by
  // daemons). The termination scan compares both across its grace
  // period. Both are cumulative across runs, hence the baselines.
  std::atomic<std::uint64_t>& executed = live_->instructions;
  std::atomic<std::uint64_t>& progress = live_->progress;
  const std::uint64_t executed0 = executed.load(std::memory_order_relaxed);
  // Per-thread idleness hints. A worker clears its hint BEFORE touching
  // any queue, so a message "in hand" (popped from one queue but not yet
  // pushed into the next) always keeps its holder visibly busy —
  // otherwise the drain scan could declare quiescence while the last
  // packet sits in a daemon's or executor's hands and is in no queue.
  std::vector<std::unique_ptr<std::atomic<bool>>> idle_hints;
  std::vector<std::unique_ptr<std::atomic<bool>>> daemon_hints;
  // Remote transports only: a site parked on an import is quiescent
  // locally, but its reply is still in flight *somewhere* — in the
  // peer's queues, which this process cannot scan. The executor
  // publishes a parked hint (machine().parked() is executor-private
  // state, unsafe to read from the scan thread) and the drain scan
  // refuses to declare quiescence while any site still waits.
  std::vector<std::unique_ptr<std::atomic<bool>>> parked_hints;
  std::vector<Site*> sites;
  for (auto& n : nodes_)
    for (auto& s : n->sites()) {
      sites.push_back(s.get());
      idle_hints.push_back(std::make_unique<std::atomic<bool>>(false));
      parked_hints.push_back(std::make_unique<std::atomic<bool>>(false));
    }
  for (std::size_t j = 0; j < nodes_.size(); ++j)
    daemon_hints.push_back(std::make_unique<std::atomic<bool>>(false));

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    threads.emplace_back([&, i] {
      ::prctl(PR_SET_TIMERSLACK, 1000, 0, 0, 0);
      Site& s = *sites[i];
      // Periodic REL resend (Config::gc_resend_ms): collect() is an
      // executor-thread operation, so the heal timer lives here.
      const bool resend_gc = cfg_.gc && cfg_.gc_resend_ms > 0;
      auto next_resend = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(cfg_.gc_resend_ms);
      bool was_idle = false;
      std::uint32_t idle_streak = 0;
      // The credit snapshot walk is O(export table + heap), and a
      // request/reply site flips busy->idle once per round trip — so
      // publishing on every flip is quadratic over a long run. Throttle
      // the idle-edge publish; /gc mid-run is last-published state by
      // contract, and every collect() still publishes unconditionally.
      auto next_publish = std::chrono::steady_clock::now();
      const auto publish_every = std::chrono::milliseconds(20);
      while (!stop.load(std::memory_order_relaxed)) {
        idle_hints[i]->store(false, std::memory_order_release);
        const std::size_t applied = s.process_incoming();
        const std::uint64_t ran = s.run_slice(cfg_.slice);
        executed.fetch_add(ran, std::memory_order_relaxed);
        if (resend_gc && std::chrono::steady_clock::now() >= next_resend) {
          next_resend += std::chrono::milliseconds(cfg_.gc_resend_ms);
          const std::size_t queued = s.collect(/*final=*/false,
                                               /*resend=*/true);
          if (queued != 0)
            progress.fetch_add(queued, std::memory_order_release);
        }
        if (applied != 0)
          progress.fetch_add(applied, std::memory_order_release);
        const bool idle =
            applied == 0 && ran == 0 && s.incoming_size() == 0;
        // Publish the credit snapshot on busy→idle transitions (at most
        // one per throttle window) so a mid-run /gc scrape sees state
        // roughly as of the last real work.
        if (idle && !was_idle &&
            std::chrono::steady_clock::now() >= next_publish) {
          s.publish_gc_snapshot();
          next_publish = std::chrono::steady_clock::now() + publish_every;
        }
        was_idle = idle;
        parked_hints[i]->store(s.machine().parked() > 0 && !s.failed(),
                               std::memory_order_release);
        idle_hints[i]->store(idle, std::memory_order_release);
        if (idle) {
          // Adaptive idle: a 50µs park really costs ~100µs of wall once
          // timer slack and a scheduler pass are added — several hops of
          // that dominates cross-site RPC latency. Yield first (a
          // freshly-arrived message is picked up within one scheduler
          // pass) and only park after a sustained idle streak.
          if (++idle_streak < 64)
            std::this_thread::yield();
          else
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
          idle_streak = 0;
        }
      }
    });
  }
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    threads.emplace_back([&, j, node = nodes_[j].get()] {
      ::prctl(PR_SET_TIMERSLACK, 1000, 0, 0, 0);
      std::uint32_t idle_streak = 0;
      // Sharded NS over a real wire: death advisories gossiped on
      // kPeers frames move shard ownership here (generation-gated so a
      // quiet fleet costs one atomic load per pump).
      net::TcpTransport* tcp =
          node->ns_router() != nullptr ? dynamic_cast<net::TcpTransport*>(&t)
                                       : nullptr;
      std::uint64_t adv_gen = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        daemon_hints[j]->store(false, std::memory_order_release);
        if (tcp != nullptr) {
          const std::uint64_t g = tcp->advisory_dead_generation();
          if (g != adv_gen) {
            adv_gen = g;
            node->ns_merge_dead(tcp->advisory_dead(), t, 0);
          }
        }
        const std::size_t moved =
            node->pump_incoming(t, 0) + node->pump_outgoing(t, 0);
        if (moved != 0)
          progress.fetch_add(moved, std::memory_order_release);
        daemon_hints[j]->store(moved == 0, std::memory_order_release);
        if (moved == 0) {
          // The daemon is the NS owner thread: publish its tables for
          // concurrent /names scrapes (cheap — gated on a dirty count).
          // Only the home node's daemon may touch a service's state.
          NameService& dns = node->name_service();
          if (dns.home_node() == node->id()) dns.publish_snapshot();
          // Same adaptive idle as the executors (see above).
          if (++idle_streak < 64)
            std::this_thread::yield();
          else
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
          idle_streak = 0;
        }
      }
    });
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.timeout_ms);
  // Cross-process transports make the in-flight count approximate: a
  // frame the peer has written but we have not yet read is invisible to
  // every scan this process can make. Two adjustments: parked imports
  // veto the drain (their replies are queued at the peer), and the
  // confirm grace stretches to cover loopback delivery latency.
  const bool remote = t.remote();
  const auto grace = std::chrono::milliseconds(remote ? 250 : 1);
  auto all_drained = [&] {
    if (t.in_flight() != 0) return false;
    for (std::size_t j = 0; j < nodes_.size(); ++j)
      if (!daemon_hints[j]->load(std::memory_order_acquire)) return false;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (!idle_hints[i]->load(std::memory_order_acquire)) return false;
      if (remote && parked_hints[i]->load(std::memory_order_acquire))
        return false;
      if (sites[i]->incoming_size() != 0 || sites[i]->outgoing_size() != 0)
        return false;
    }
    return true;
  };
  for (;;) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (executed.load(std::memory_order_relaxed) - executed0 >
        cfg_.max_instructions) {
      res.budget_exhausted = true;
      break;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      res.budget_exhausted = true;
      break;
    }
    if (all_drained()) {
      // Confirm over a grace period with a stable progress clock: a
      // message that crosses any queue between the two scans (and could
      // thus dodge both) moves the clock and voids the pass.
      const std::uint64_t p0 = progress.load(std::memory_order_acquire);
      const std::uint64_t e0 = executed.load(std::memory_order_relaxed);
      std::this_thread::sleep_for(grace);
      if (all_drained() && progress.load(std::memory_order_acquire) == p0 &&
          executed.load(std::memory_order_relaxed) == e0)
        break;
    }
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  res.instructions = executed.load() - executed0;
  instructions_run_ += res.instructions;
  // Executors are joined: the network is single-threaded again, so GC
  // passes run through the sequential pump (any work the RELs uncover is
  // executed inline).
  if (cfg_.gc && !res.budget_exhausted) {
    Result gc_res;
    sequential_drain(t, gc_res);
    res.instructions += gc_res.instructions;
    res.budget_exhausted |= gc_res.budget_exhausted;
  }
  return finish(res);
}

// ---------------------------------------------------------------------
// Final GC epoch
// ---------------------------------------------------------------------

Network::GcReport Network::collect_garbage(int max_rounds) {
  GcReport rep;
  if (!cfg_.gc) return rep;
  net::Transport& t = transport();
  // In sim mode the transport holds timed queues: drive them with a
  // virtual clock far past the run's makespan, advanced whenever packets
  // are still in flight, so every REL's arrival time is reached.
  double now = cfg_.mode == Mode::kSim ? 1e15 : 0.0;
  bool final = true;
  for (int round = 0; round < max_rounds; ++round) {
    ++rep.rounds;
    // With the heal timer configured, the final epoch also retransmits
    // cumulative releases: a REL the transport dropped mid-run is then
    // healed even by runs too short for the timer to fire.
    const std::size_t queued =
        gc_pass(final, /*resend=*/final && cfg_.gc_resend_ms > 0);
    final = false;
    // A remote transport delivers asynchronously: a peer's REL can be on
    // the wire while every local scan reads empty. Idle-wait a grace
    // window before declaring the epoch drained.
    int quiet_ms = 0;
    for (;;) {
      std::size_t moved = 0;
      for (auto& n : nodes_) moved += n->pump_outgoing(t, now);
      for (auto& n : nodes_) moved += n->pump_incoming(t, now);
      for (auto& n : nodes_)
        for (auto& s : n->sites()) moved += s->process_incoming();
      if (moved == 0) {
        if (t.in_flight() != 0) {
          now += 1e9;  // sim: jump past any link latency
          continue;
        }
        if (t.remote() && quiet_ms < 300) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          quiet_ms += 10;
          continue;
        }
        break;
      }
      quiet_ms = 0;
      now += 1e6;
    }
    if (queued == 0) break;  // a pass with nothing to say: converged
  }
  for (const auto& n : nodes_)
    for (const auto& s : n->sites()) {
      rep.exports_live += s->machine().live_exports();
      rep.netrefs_live += s->machine().live_netrefs();
    }
  if (ns_distributed_ || ns_sharded_) {
    // Sharded: primaries and their follower copies both count — a
    // leak-free run drains every slice to zero (the final unregister is
    // forwarded from primary to replica like any other mutation).
    for (const auto& n : nodes_) rep.ns_ids += n->name_service().id_count();
  } else {
    rep.ns_ids = ns_->id_count();
  }
  return rep;
}

// ---------------------------------------------------------------------
// Simulated-cluster driver (conservative virtual time)
// ---------------------------------------------------------------------

Network::Result Network::run_sim() {
  auto& t = dynamic_cast<net::SimTransport&>(transport());
  Result res;

  struct SiteRef {
    Node* node;
    Site* site;
    std::size_t idx_in_node;
  };
  std::vector<SiteRef> sites;
  std::vector<double> clock;
  for (auto& n : nodes_)
    for (std::size_t i = 0; i < n->sites().size(); ++i) {
      sites.push_back(SiteRef{n.get(), n->sites()[i].get(), i});
      clock.push_back(0.0);
    }
  auto site_index = [&](std::uint32_t node, std::uint32_t site) {
    for (std::size_t i = 0; i < sites.size(); ++i)
      if (sites[i].node->id() == node && sites[i].site->site_id() == site)
        return i;
    throw std::logic_error("unknown site in packet");
  };
  // Each name-service host is one server: its requests serialise. The
  // centralised service routes everything to one node (one hot clock);
  // distributed replicas and shard slices each get their own, which is
  // exactly the contention relief the C6 experiment measures.
  std::vector<double> ns_clock(nodes_.size(), 0.0);
  auto ns_clock_of = [&](std::uint32_t node_id) -> double& {
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      if (nodes_[i]->id() == node_id) return ns_clock[i];
    throw std::logic_error("NS packet to unknown node");
  };

  // Trace timestamps in sim mode are *virtual*: each ring is switched to
  // the owning site's simulated clock (µs -> ns) before the site does
  // any recordable work, so an exported timeline lines up with the
  // simulated makespan instead of the simulation's wall clock.
  const bool vtrace = tracing_enabled();
  auto vns = [](double us) {
    return static_cast<std::uint64_t>(us < 0 ? 0 : us * 1000.0);
  };
  if (vtrace) {
    for (auto& n : nodes_) n->daemon_ring().set_virtual_time(0);
    for (auto& sr : sites) sr.site->trace_ring().set_virtual_time(0);
  }

  // Deliver packets that have arrived by their destination site's clock.
  // With `force`, the earliest pending packet is delivered anyway and the
  // (idle) receiver's clock advances to its arrival time — this is how
  // virtual time progresses when every site is blocked on the network.
  auto deliver = [&](bool force) {
    bool any = false;
    for (auto& n : nodes_) {
      for (;;) {
        double arrival = 0;
        const net::Packet* head = t.peek(n->id(), arrival);
        if (!head) break;
        std::size_t idx = SIZE_MAX;
        // The NS daemon is modelled as always ready; site packets wait
        // until the receiving site's virtual clock reaches the arrival.
        if (!packet_is_ns(*head)) {
          idx = site_index(n->id(), packet_dst_site(*head));
          // An idle receiver is simply waiting: its clock may jump to the
          // arrival. A busy receiver only sees the packet once its own
          // clock catches up.
          Site& rx = *sites[idx].site;
          const bool rx_idle =
              rx.machine().idle() && rx.incoming_size() == 0;
          if (!force && !rx_idle && arrival > clock[idx]) break;
        }
        net::Packet p;
        t.recv(n->id(), p, arrival);  // pops the head we just peeked
        double now = arrival;
        if (idx != SIZE_MAX) {
          clock[idx] = std::max(clock[idx], arrival);
        } else {
          // NS request: queue behind earlier requests at this host, pay
          // service time.
          double& nsc = ns_clock_of(n->id());
          nsc = std::max(nsc, arrival) + cfg_.ns_service_us;
          now = nsc;
        }
        if (vtrace) n->daemon_ring().set_virtual_time(vns(now));
        n->route(std::move(p), t, now);
        any = true;
      }
    }
    return any;
  };

  for (;;) {
    // Pick the runnable site with the smallest clock.
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      Site& s = *sites[i].site;
      const bool work = s.incoming_size() > 0 || !s.machine().idle();
      if (!work) continue;
      if (best == SIZE_MAX || clock[i] < clock[best]) best = i;
    }
    if (best != SIZE_MAX) {
      Site& s = *sites[best].site;
      if (vtrace) s.trace_ring().set_virtual_time(vns(clock[best]));
      s.process_incoming();
      const std::uint64_t ran = s.run_slice(cfg_.slice);
      clock[best] += static_cast<double>(ran) / cfg_.instr_per_us;
      if (vtrace)
        sites[best].node->daemon_ring().set_virtual_time(vns(clock[best]));
      sites[best].node->pump_site_outgoing(t, sites[best].idx_in_node,
                                           clock[best]);
      res.instructions += ran;
      instructions_run_ += ran;
      live_->instructions.fetch_add(ran, std::memory_order_relaxed);
      if (instructions_run_ > cfg_.max_instructions) {
        res.budget_exhausted = true;
        break;
      }
      deliver(false);
      continue;
    }
    if (t.in_flight() > 0) {
      deliver(true);
      continue;
    }
    break;
  }
  for (std::size_t i = 0; i < sites.size(); ++i)
    res.virtual_time_us = std::max(res.virtual_time_us, clock[i]);
  return finish(res);
}

}  // namespace dityco::core
