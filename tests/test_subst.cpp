// Tests for free-identifier computation, capture-avoiding substitution
// and the σ translation of section 3.
#include <gtest/gtest.h>

#include "calculus/ast.hpp"
#include "calculus/subst.hpp"
#include "compiler/parser.hpp"

namespace dityco::calc {
namespace {

using dityco::comp::parse_program;

TEST(FreeNames, MessageTargetAndArgs) {
  auto p = parse_program("x!l[y, z + 1]");
  EXPECT_EQ(free_names(*p), (std::set<std::string>{"x", "y", "z"}));
}

TEST(FreeNames, NewBinds) {
  auto p = parse_program("new x in x!l[y]");
  EXPECT_EQ(free_names(*p), (std::set<std::string>{"y"}));
}

TEST(FreeNames, MethodParamsBind) {
  auto p = parse_program("x?{ l(a, b) = a![b, c] }");
  EXPECT_EQ(free_names(*p), (std::set<std::string>{"x", "c"}));
}

TEST(FreeNames, DefBindsClassAndParams) {
  auto p = parse_program("def X(a) = a![b] in X[c]");
  EXPECT_EQ(free_names(*p), (std::set<std::string>{"b", "c"}));
  EXPECT_TRUE(free_classes(*p).empty());
}

TEST(FreeNames, UnboundClassIsFree) {
  auto p = parse_program("Unknown[1]");
  EXPECT_EQ(free_classes(*p), (std::set<std::string>{"Unknown"}));
}

TEST(FreeNames, LocatedNamesReportedSeparately) {
  auto p = parse_program("s.x!l[t.y]");
  EXPECT_TRUE(free_names(*p).empty());
  EXPECT_EQ(free_located_names(*p), (std::set<std::string>{"s.x", "t.y"}));
}

TEST(FreeNames, ImportBindsItsAlias) {
  auto p = parse_program("import x from s in x![y]");
  EXPECT_EQ(free_names(*p), (std::set<std::string>{"y"}));
}

TEST(FreeNames, MutualRecursionNotFree) {
  auto p = parse_program("def A(x) = B[x] and B(x) = A[x] in A[y]");
  EXPECT_TRUE(free_classes(*p).empty());
}

TEST(Subst, ReplacesFreeOccurrences) {
  auto p = parse_program("x!l[x, y]");
  auto q = substitute_names(p, {{"x", NameRef{"s", "x"}}});
  EXPECT_EQ(to_string(*q), "s.x!l[s.x, y]");
}

TEST(Subst, DoesNotTouchBound) {
  auto p = parse_program("new x in x!l[y]");
  auto q = substitute_names(p, {{"x", NameRef{"s", "z"}}});
  // Bound x unchanged.
  EXPECT_EQ(free_located_names(*q), std::set<std::string>{});
  EXPECT_EQ(free_names(*q), (std::set<std::string>{"y"}));
}

TEST(Subst, SimultaneousNotSequential) {
  // {x->y, y->x} must swap, not chain.
  auto p = parse_program("c!l[x, y]");
  auto q = substitute_names(p, {{"x", NameRef{std::nullopt, "y"}},
                                {"y", NameRef{std::nullopt, "x"}}});
  EXPECT_EQ(to_string(*q), "c!l[y, x]");
}

TEST(Subst, CaptureAvoidance) {
  // Substituting y for x under a binder named y must freshen the binder.
  auto p = parse_program("new y in c!l[x, y]");
  auto q = substitute_names(p, {{"x", NameRef{std::nullopt, "y"}}});
  const auto& nu = std::get<Proc::New>(q->node);
  ASSERT_EQ(nu.names.size(), 1u);
  EXPECT_NE(nu.names[0], "y") << "binder must be freshened";
  // Free y (the substituted one) remains free.
  EXPECT_EQ(free_names(*q), (std::set<std::string>{"c", "y"}));
}

TEST(Subst, MethodParamCapture) {
  auto p = parse_program("c?{ l(y) = d![x, y] }");
  auto q = substitute_names(p, {{"x", NameRef{std::nullopt, "y"}}});
  EXPECT_EQ(free_names(*q), (std::set<std::string>{"c", "d", "y"}));
}

TEST(Subst, ClassSubstitution) {
  auto p = parse_program("X[1] | def X(a) = 0 in X[2]");
  auto q = substitute_classes(p, {{"X", NameRef{"srv", "X"}}});
  // Only the unbound occurrence is rewritten.
  const auto& par = std::get<Proc::Par>(q->node);
  const auto& outer = std::get<Proc::Inst>(par.left->node);
  EXPECT_TRUE(outer.cls.located());
  const auto& d = std::get<Proc::Def>(par.right->node);
  const auto& inner = std::get<Proc::Inst>(d.body->node);
  EXPECT_FALSE(inner.cls.located());
}

// σ translation (section 3):
//   σ_r^s(x) = r.x ; σ_r^s(s.x) = x ; σ_r^s(s'.x) = s'.x
TEST(Sigma, UploadsPlainNames) {
  auto p = parse_program("x!l[y]");
  auto q = sigma_translate(p, "r", "s");
  EXPECT_EQ(to_string(*q), "r.x!l[r.y]");
}

TEST(Sigma, LocalisesDestinationNames) {
  auto p = parse_program("s.x!l[1]");
  auto q = sigma_translate(p, "r", "s");
  EXPECT_EQ(to_string(*q), "x!l[1]");
}

TEST(Sigma, ThirdPartyNamesUnchanged) {
  auto p = parse_program("t.x!l[1]");
  auto q = sigma_translate(p, "r", "s");
  EXPECT_EQ(to_string(*q), "t.x!l[1]");
}

TEST(Sigma, BoundNamesUntouched) {
  auto p = parse_program("new x in x!l[y]");
  auto q = sigma_translate(p, "r", "s");
  const auto& nu = std::get<Proc::New>(q->node);
  const auto& m = std::get<Proc::Msg>(nu.body->node);
  EXPECT_FALSE(m.target.located()) << "bound x must stay plain";
}

TEST(Sigma, AppliesInsideMethodBodies) {
  // The applet-server example: shipping p?(x) = P_j translates P_j's free
  // names to server-located names.
  auto p = parse_program("c.p?(x) = q!work[x]");
  auto q = sigma_translate(p, "server", "c");
  EXPECT_EQ(to_string(*q), "p?{ val(x) = server.q!work[x] }");
}

TEST(Sigma, ClassVariablesUploaded) {
  // The SETI example: code shipped from seti carrying a local class var.
  auto p = parse_program("a?() = Install[]");
  auto q = sigma_translate(p, "seti", "client");
  const auto& o = std::get<Proc::Obj>(q->node);
  const auto& inst = std::get<Proc::Inst>(o.methods[0].body->node);
  ASSERT_TRUE(inst.cls.located());
  EXPECT_EQ(*inst.cls.site, "seti");
}

TEST(Sigma, RoundTripRS) {
  // σ_s^r ∘ σ_r^s restores plain names (for terms without third-party or
  // pre-located identifiers).
  auto p = parse_program("x!l[y, 1] | z?(a) = a![x]");
  auto q = sigma_translate(sigma_translate(p, "r", "s"), "s", "r");
  EXPECT_EQ(to_string(*q), to_string(*p));
}

TEST(Fresh, NamesAreUnique) {
  auto a = fresh_name("x");
  auto b = fresh_name("x");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.starts_with("x$"));
}

}  // namespace
}  // namespace dityco::calc
