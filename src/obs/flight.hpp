// Flight recorder: tail-based trace retention (observability, story 2).
//
// Uniform 1-in-N sampling (obs/trace.hpp) answers "what does typical
// traffic look like" but discards exactly the operations worth keeping:
// the slow FETCH, the malformed packet, the starved credit forward, the
// stale REL. The flight recorder closes that gap with a *post-hoc*
// policy: sites record every traced hop into their rings (the rings run
// in record-all mode while a recorder is attached), and when a mobility
// operation COMPLETES the recorder decides — completion latency above an
// absolute threshold or a percentile of the live distribution, or an
// error/starvation/REL-anomaly path — whether to promote that trace id.
// Promotion copies the id's events out of every attached ring into a
// small durable buffer before the rings overwrite them, so the uniform
// sample stream and the "always keep the slow and broken ones" stream
// coexist; TyCOmon serves the buffer at GET /flight as Chrome trace JSON.
//
// Mechanics: sites call on_depart(id, ts) when a SHIPM/SHIPO/FETCH
// leaves and on_complete(id, ts) when the matching arrival/reply is
// handled; latency is the difference on the caller's time base (virtual
// time under the sim driver, so the promotion decision is deterministic
// there). Promotion walks a per-ring index keyed by trace id, rebuilt
// lazily only when that ring's head has advanced since the last build —
// promotions are rare, so the common case costs one map lookup per ring.
//
// Thread safety: every entry point takes one mutex. Completions are
// per-remote-operation (not per-instruction), so the lock is off any
// hot path; ring reads go through TraceRing::snapshot(), which is safe
// against the owning producer by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dityco::obs {

/// Retention policy. Everything off by default: a default-constructed
/// recorder only promotes explicit error/starvation/REL anomalies.
struct FlightPolicy {
  /// Promote completions slower than this many microseconds (0 = off).
  double slow_us = 0;
  /// Promote completions above this latency percentile (0 = off; e.g.
  /// 0.99 keeps the slowest ~1%). Needs pctl_min_samples completions
  /// before it starts firing, so early traffic is not all "slow".
  double slow_pctl = 0;
  std::uint64_t pctl_min_samples = 64;
  /// Flight-buffer capacity in promoted traces (oldest evicted first).
  std::size_t max_traces = 64;
  /// Departure-table cap: beyond this many in-flight operations new
  /// departures are dropped from latency tracking (never from tracing).
  std::size_t max_inflight = 4096;
};

class FlightRecorder {
 public:
  enum class Reason : std::uint8_t {
    kSlow = 1,    // completion latency over threshold/percentile
    kError,       // malformed packet / NS failure on this trace
    kStarved,     // marshalling shipped a zero-credit (weak) handle
    kRelAnomaly,  // owner saw a stale/duplicate REL for this trace
    kNetwork,     // transport path event (peer reconnect / write-off)
  };
  static const char* reason_name(Reason r);

  /// One promoted trace: every hop recovered from the rings, oldest
  /// first, plus why it was kept.
  struct Entry {
    std::uint64_t trace_id = 0;
    Reason reason = Reason::kSlow;
    double latency_us = 0;
    std::vector<TraceEvent> events;
  };

  void configure(const FlightPolicy& p);
  FlightPolicy policy() const;

  /// Register a ring to harvest promoted events from. The ring must
  /// outlive the recorder (Network owns both and attaches at
  /// enable_flight time).
  void attach_ring(const TraceRing* ring);

  /// A traced operation departed at ts_ns (ring time base).
  void on_depart(std::uint64_t trace_id, std::uint64_t ts_ns);
  /// The matching completion; applies the latency policy. Returns true
  /// if the trace was promoted.
  bool on_complete(std::uint64_t trace_id, std::uint64_t ts_ns);
  /// Unconditional promotion (error / starvation / REL-anomaly paths).
  bool promote(std::uint64_t trace_id, Reason reason, double latency_us = 0);

  /// Promoted traces, oldest first.
  std::vector<Entry> snapshot() const;

  // Counters for the metrics exposition (atomic; any thread).
  std::uint64_t promoted_count(Reason r) const;
  std::uint64_t completions() const { return completions_.value(); }
  std::uint64_t evicted() const { return evicted_.value(); }
  std::uint64_t duplicates() const { return duplicates_.value(); }
  std::uint64_t index_rebuilds() const { return index_rebuilds_.value(); }
  Histogram::Snapshot latency_snapshot() const {
    return latency_us_.snapshot();
  }

 private:
  struct RingIndex {
    const TraceRing* ring = nullptr;
    std::uint64_t built_head = ~0ull;  // recorded() when by_id was built
    std::unordered_map<std::uint64_t, std::vector<TraceEvent>> by_id;
  };

  bool promote_locked(std::uint64_t trace_id, Reason reason,
                      double latency_us);
  /// Smallest histogram bound at or above the configured percentile, or
  /// 0 when the percentile policy cannot fire yet.
  double pctl_threshold_locked() const;

  mutable std::mutex mu_;
  FlightPolicy policy_;
  std::vector<RingIndex> rings_;
  std::unordered_map<std::uint64_t, std::uint64_t> depart_ns_;
  std::deque<Entry> buffer_;
  std::unordered_set<std::uint64_t> promoted_ids_;
  Histogram latency_us_;  // completion latencies, policy input
  Counter promoted_slow_, promoted_error_, promoted_starved_, promoted_rel_,
      promoted_network_;
  Counter completions_, evicted_, duplicates_, index_rebuilds_;
};

}  // namespace dityco::obs
