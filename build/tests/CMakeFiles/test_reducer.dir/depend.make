# Empty dependencies file for test_reducer.
# This may be replaced when dependencies are built.
