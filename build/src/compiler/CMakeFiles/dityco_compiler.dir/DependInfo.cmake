
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/assembly.cpp" "src/compiler/CMakeFiles/dityco_compiler.dir/assembly.cpp.o" "gcc" "src/compiler/CMakeFiles/dityco_compiler.dir/assembly.cpp.o.d"
  "/root/repo/src/compiler/codegen.cpp" "src/compiler/CMakeFiles/dityco_compiler.dir/codegen.cpp.o" "gcc" "src/compiler/CMakeFiles/dityco_compiler.dir/codegen.cpp.o.d"
  "/root/repo/src/compiler/lexer.cpp" "src/compiler/CMakeFiles/dityco_compiler.dir/lexer.cpp.o" "gcc" "src/compiler/CMakeFiles/dityco_compiler.dir/lexer.cpp.o.d"
  "/root/repo/src/compiler/parser.cpp" "src/compiler/CMakeFiles/dityco_compiler.dir/parser.cpp.o" "gcc" "src/compiler/CMakeFiles/dityco_compiler.dir/parser.cpp.o.d"
  "/root/repo/src/compiler/peephole.cpp" "src/compiler/CMakeFiles/dityco_compiler.dir/peephole.cpp.o" "gcc" "src/compiler/CMakeFiles/dityco_compiler.dir/peephole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calculus/CMakeFiles/dityco_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dityco_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dityco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
