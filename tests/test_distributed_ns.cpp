// Tests for the replicated name service (the paper's future-work
// extension): lookups answered by the node-local replica, exports
// broadcast to every replica, parked lookups released by the broadcast,
// and full agreement with the centralised service on the paper examples.
#include <gtest/gtest.h>

#include "core/network.hpp"

namespace dityco::core {
namespace {

Network dist_net(Network::Mode mode = Network::Mode::kSequential) {
  Network::Config cfg;
  cfg.mode = mode;
  cfg.distributed_ns = true;
  Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  return net;
}

TEST(DistributedNs, RpcWorks) {
  auto net = dist_net();
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"});
}

TEST(DistributedNs, LookupBeforeExportParksAtLocalReplica) {
  auto net = dist_net();
  net.submit_source("client",
                    "import p from server in let z = p![1] in print[z]");
  auto r1 = net.run();
  EXPECT_TRUE(r1.stalled);
  // The broadcasted export must release the parked lookup at the
  // client's replica.
  net.submit_source("server",
                    "export new p in p?{ val(x, rep) = rep![x + 1] }");
  auto r2 = net.run();
  EXPECT_TRUE(r2.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"2"});
}

TEST(DistributedNs, CodeFetchingWorks) {
  auto net = dist_net();
  net.submit_network_source(
      "site server { export def Applet(out) = out![7] in 0 }\n"
      "site client { import Applet from server in "
      "new p (Applet[p] | p?(v) = print[v]) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"7"});
}

TEST(DistributedNs, LookupsDoNotCrossTheNetwork) {
  auto net = dist_net();
  net.submit_network_source(
      "site server { export new p in 0 }\n"
      "site client { import p from server in 0 }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  // Wire traffic is only the export broadcast (server -> client's
  // replica); the client's lookup and its reply stay on-node.
  EXPECT_EQ(res.packets, 1u);
}

TEST(DistributedNs, ThreadedDriverWorks) {
  auto net = dist_net(Network::Mode::kThreaded);
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"});
}

TEST(DistributedNs, ManyImportersAllServedLocally) {
  Network::Config cfg;
  cfg.distributed_ns = true;
  Network net(cfg);
  net.add_node();
  net.add_site(0, "server");
  const int clients = 6;
  for (int i = 0; i < clients; ++i) {
    net.add_node();
    net.add_site(static_cast<std::size_t>(i) + 1, "c" + std::to_string(i));
  }
  net.submit_source("server",
                    "def S(self) = self?{ val(x, r) = (r![x * x] | S[self]) "
                    "} in export new sq in S[sq]");
  for (int i = 0; i < clients; ++i)
    net.submit_source("c" + std::to_string(i),
                      "import sq from server in let z = sq![" +
                          std::to_string(i + 2) + "] in print[z]");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  for (int i = 0; i < clients; ++i)
    EXPECT_EQ(net.output("c" + std::to_string(i)),
              std::vector<std::string>{std::to_string((i + 2) * (i + 2))});
}

TEST(DistributedNs, SimDriverQuiesces) {
  auto net = dist_net(Network::Mode::kSim);
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"});
  EXPECT_GT(res.virtual_time_us, 0.0);
}

}  // namespace
}  // namespace dityco::core
