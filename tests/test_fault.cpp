// Fault tolerance (the paper's future-work item, section 7: "detect site
// failures, reconfigure the computation topology and try to terminate
// computations cleanly"): site-failure injection, dropped-delivery
// accounting, clean termination around dead sites, and failover by
// re-exporting a dead site's identifiers from a backup.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/network.hpp"
#include "core/wire.hpp"
#include "net/transport.hpp"
#include "ns/shard.hpp"
#include "vm/machine.hpp"

namespace dityco::core {
namespace {

TEST(Fault, DeliveriesToDeadSiteAreDropped) {
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server",
                    "def S(self) = self?{ val(x, r) = (r![x] | S[self]) } in "
                    "export new p in S[p]");
  // Resolve the import first so the client holds a live netref.
  net.submit_source("client",
                    "import p from server in new a (p![0, a] | a?(v) = 0)");
  auto r1 = net.run();
  EXPECT_TRUE(r1.quiescent);
  EXPECT_TRUE(net.all_errors().empty());

  net.find_site("server")->kill();
  net.submit_source("client",
                    "import p from server in let z = p![1] in print[z]");
  auto r2 = net.run();
  // The RPC can never complete, but the network terminates cleanly: the
  // message was dropped at the dead site, nothing is left running.
  EXPECT_FALSE(r2.budget_exhausted);
  EXPECT_GE(net.find_site("server")->mobility().dropped, 1u);
  EXPECT_TRUE(net.output("client").empty());
}

TEST(Fault, DeadSiteStopsExecuting) {
  Network net;
  net.add_node();
  net.add_site(0, "main");
  net.submit_source("main", "def Loop(i) = Loop[i + 1] in Loop[0]");
  net.find_site("main")->kill();
  auto res = net.run();
  EXPECT_FALSE(res.budget_exhausted) << "a dead site must not execute";
  EXPECT_EQ(res.instructions, 0u);
}

TEST(Fault, ParkedFramesOfDeadSiteDoNotStallTheNetwork) {
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  // Client parks on an import that will never resolve...
  net.submit_source("client", "import ghost from server in ghost![1]");
  auto r1 = net.run();
  EXPECT_TRUE(r1.stalled);
  // ...then crashes. The survivors' view: nothing outstanding.
  net.find_site("client")->kill();
  net.submit_source("server", "print[\"alive\"]");
  auto r2 = net.run();
  EXPECT_EQ(net.output("server"), std::vector<std::string>{"alive"});
  // The name service still holds the dead client's lookup (it has no
  // failure detector — future work in the paper and here), but no live
  // site is blocked.
  EXPECT_FALSE(r2.budget_exhausted);
}

TEST(Fault, FailoverByReexport) {
  // Reconfiguration: a backup site re-exports the dead primary's service
  // name; clients that import afterwards are routed to the backup.
  Network net;
  net.add_node();
  net.add_node();
  net.add_node();
  net.add_site(0, "primary");
  net.add_site(1, "backup");
  net.add_site(2, "client");

  net.submit_source("primary",
                    "export new p in p?{ val(x, r) = r![x + 1] }");
  auto r1 = net.run();
  EXPECT_TRUE(r1.quiescent);
  net.find_site("primary")->kill();

  // The backup takes over the (site-qualified) identity by exporting
  // under the primary's site name is not possible — names are keyed by
  // exporting site — so the service name is re-homed: clients are told
  // to import from the backup. (A transparent takeover would need the
  // distributed name service the paper defers to future work.)
  net.submit_source("backup",
                    "export new p in p?{ val(x, r) = r![x + 100] }");
  net.submit_source("client",
                    "import p from backup in let z = p![1] in print[z]");
  auto r2 = net.run();
  EXPECT_TRUE(r2.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"101"});
}

TEST(Fault, ReexportAtSameSiteReplacesBinding) {
  // The name service keeps the newest binding for a key: a site can
  // replace its own export (e.g. after an internal restart).
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server", "export new p in p?{ val(x, r) = r![1] }");
  auto r1 = net.run();
  EXPECT_TRUE(r1.quiescent);
  net.submit_source("server", "export new p in p?{ val(x, r) = r![2] }");
  auto r2 = net.run();
  EXPECT_TRUE(r2.quiescent);
  net.submit_source("client",
                    "import p from server in let z = p![0] in print[z]");
  auto r3 = net.run();
  EXPECT_TRUE(r3.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"2"});
}

// ---------------------------------------------------------------------
// Distributed-GC REL protocol under message faults (DESIGN.md §GC).
//
// These drive two Machines directly through the marshalling layer and
// play the REL frames by hand, so drops, duplicates and reorders are
// exact. The invariant under every fault: an entry is never reclaimed
// while credit is still outstanding (premature free is the unrecoverable
// failure; a delayed reclaim is just a deferred leak).
// ---------------------------------------------------------------------

using vm::Machine;
using vm::Value;

/// Ship a minted handle for `chan` from `owner` into `holder`.
void ship(Machine& owner, std::uint32_t chan, Machine& holder) {
  Writer w;
  marshal_value(owner, Value::make_chan(chan), w, /*gc=*/true);
  const auto bytes = w.take();
  Reader r(bytes);
  unmarshal_value(holder, r, /*gc=*/true);
}

TEST(Fault, DroppedRelIsHealedByResend) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  ship(owner, ch, peer);
  peer.gc();
  auto lost = peer.take_pending_releases();  // ...and the REL is dropped
  ASSERT_EQ(lost.size(), 1u);

  // No premature reclaim: the owner never saw the release.
  EXPECT_EQ(owner.live_exports(), 1u);
  EXPECT_GT(owner.exports_outstanding(), 0u);
  EXPECT_TRUE(peer.take_pending_releases().empty())
      << "the pending set was consumed; only a resend can heal";

  // Healing: retransmit every cumulative total (idempotent at the owner).
  auto resend = peer.all_releases();
  ASSERT_EQ(resend.size(), 1u);
  EXPECT_EQ(resend[0].second, lost[0].second) << "cumulative, not a delta";
  const auto& ref = resend[0].first;
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, resend[0].second),
            Machine::ReleaseResult::kReclaimed);
  EXPECT_EQ(owner.live_exports(), 0u);
}

TEST(Fault, DuplicatedAndReorderedRelsReclaimExactlyOnce) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  ship(owner, ch, peer);
  peer.gc();
  const auto first = peer.take_pending_releases();
  ASSERT_EQ(first.size(), 1u);
  const auto [ref, cum1] = first[0];

  ship(owner, ch, peer);  // a second handle for the same entry
  peer.gc();
  const auto second = peer.take_pending_releases();
  ASSERT_EQ(second.size(), 1u);
  const std::uint64_t cum2 = second[0].second;

  // Adversarial delivery order: newest, then a duplicate of it, then the
  // stale older total, then the newest again.
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum2),
            Machine::ReleaseResult::kReclaimed);
  for (const std::uint64_t cum : {cum2, cum1, cum2})
    EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum),
              Machine::ReleaseResult::kStale);
  EXPECT_EQ(owner.live_exports(), 0u);
  EXPECT_EQ(owner.gc_stats().exports_reclaimed, 1u) << "exactly one reclaim";
  EXPECT_GE(owner.gc_stats().rel_stale, 3u);
}

TEST(Fault, PartialDeliveryNeverReclaimsEarly) {
  // Two independent holders; only one releases. Whatever order frames
  // arrive in, the entry must survive until *all* credit is back.
  Machine owner("owner", 0, 0);
  Machine a("a", 1, 0);
  Machine b("b", 2, 0);
  const std::uint32_t ch = owner.new_channel();
  ship(owner, ch, a);
  ship(owner, ch, b);
  a.gc();
  const auto rels = a.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  const auto [ref, cum] = rels[0];
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum),
            Machine::ReleaseResult::kApplied);
  EXPECT_EQ(owner.live_exports(), 1u) << "b's credit is still out";
  // b finally drops too — now, and only now, the entry drains.
  b.gc();
  const auto rels_b = b.take_pending_releases();
  ASSERT_EQ(rels_b.size(), 1u);
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 2, 0, rels_b[0].second),
            Machine::ReleaseResult::kReclaimed);
}

TEST(Fault, CollectGarbageTerminatesWhenCreditDiesWithASite) {
  // The client pins its imported handle in an object stored at a
  // site-global channel (its I/O port), so the credit is live — not
  // collectable — when the site crashes. That balance can never come
  // back: the final GC epoch must terminate anyway (bounded rounds),
  // keep the server's entry alive (leak-safe direction), and still
  // drain everything else.
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server", "export new p in p?{ val(x, r) = r![x + 1] }");
  net.submit_source("client", "import p from server in io?(x) = p![x]");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_GE(net.find_site("client")->machine().live_netrefs(), 1u)
      << "the handle is rooted at the io channel";

  net.find_site("client")->kill();
  auto rep = net.collect_garbage();
  EXPECT_LE(rep.rounds, 8u);
  EXPECT_EQ(rep.ns_ids, 0u) << "the live server still unregisters";
  EXPECT_EQ(rep.exports_live, 1u)
      << "the dead client's share is lost: the entry leaks, it never frees";
  EXPECT_GT(net.find_site("server")->machine().exports_outstanding(), 0u);
}

TEST(Fault, RelToDeadOwnerIsDroppedSafely) {
  // Sim mode defers all collection to the final epoch, so the client
  // still holds its handle when the owner crashes: the epoch's REL is
  // dropped at the dead site, and collection terminates regardless.
  Network::Config cfg;
  cfg.mode = Network::Mode::kSim;
  Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server", "export new p in p?{ val(x, r) = r![x + 1] }");
  net.submit_source("client",
                    "import p from server in let z = p![1] in print[z]");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"2"});
  vm::Machine& client = net.find_site("client")->machine();
  ASSERT_GE(client.live_netrefs(), 1u) << "sim defers GC past run()";

  net.find_site("server")->kill();
  auto rep = net.collect_garbage();
  EXPECT_LE(rep.rounds, 8u);
  EXPECT_EQ(client.live_netrefs(), 0u) << "the REL was sent regardless";
  EXPECT_GE(net.find_site("server")->mobility().dropped, 1u)
      << "the dead owner dropped the REL";
  // The client's own reply-channel entry leaks: its releaser died with
  // the server. Leak-safe, never a premature free.
  EXPECT_EQ(client.live_exports(), 1u);
}

TEST(Fault, ThreadedDriverSurvivesDeadSite) {
  Network::Config cfg;
  cfg.mode = Network::Mode::kThreaded;
  cfg.timeout_ms = 5000;
  Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.find_site("server")->kill();
  net.submit_source("client", "print[\"still here\"]");
  auto res = net.run();
  EXPECT_FALSE(res.budget_exhausted);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"still here"});
}

// ---------------------------------------------------------------------
// Lost-REL healing (distributed GC + fault injection)
// ---------------------------------------------------------------------

/// A REL frame silently dropped by the network must not leak the owner's
/// export-table entry forever: with Config::gc_resend_ms set, sites
/// periodically retransmit their cumulative releases (idempotent at the
/// owner), so the next epoch heals the loss. The control run (resend
/// off) must keep the leak — proving the drop actually bit.
void run_with_first_rel_dropped(bool resend, Network::GcReport& rep_out,
                                std::uint64_t& dropped_out) {
  Network::Config cfg;
  cfg.gc_resend_ms = resend ? 1 : 0;
  Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  // transport() materialises lazily; grab it only after topology exists.
  auto& tr = dynamic_cast<net::InProcTransport&>(net.transport());
  auto first = std::make_shared<std::atomic<bool>>(true);
  tr.set_drop_filter([first](const net::Packet& p) {
    return packet_type(p.bytes) == MsgType::kRelease &&
           first->exchange(false);
  });
  net.submit_source("server",
                    "def S(self) = self?{ val(x, r) = (r![x] | S[self]) } in "
                    "export new p in S[p]");
  net.submit_source("client",
                    "import p from server in new a (p![7, a] | a?(v) = 0)");
  ASSERT_TRUE(net.run().quiescent);
  ASSERT_TRUE(net.all_errors().empty());
  rep_out = net.collect_garbage();
  dropped_out = tr.dropped();
}

TEST(Fault, DroppedRelHealsWithResendTimer) {
  Network::GcReport rep;
  std::uint64_t dropped = 0;
  run_with_first_rel_dropped(/*resend=*/true, rep, dropped);
  EXPECT_GE(dropped, 1u) << "the fault fired";
  EXPECT_EQ(rep.exports_live, 0u)
      << "retransmitted cumulative REL healed the loss";
  EXPECT_EQ(rep.netrefs_live, 0u);
}

TEST(Fault, DroppedRelLeaksWithoutResend) {
  Network::GcReport rep;
  std::uint64_t dropped = 0;
  run_with_first_rel_dropped(/*resend=*/false, rep, dropped);
  EXPECT_GE(dropped, 1u) << "the fault fired";
  EXPECT_GE(rep.exports_live, 1u)
      << "without resend the dropped REL's credit is gone for good";
}

// ---------------------------------------------------------------------
// Sharded name service under faults (docs/NAMESERVICE.md)
// ---------------------------------------------------------------------

TEST(Fault, KillPrimaryShardFailsOverToReplica) {
  // The binding's owning shard primary dies after the export. The
  // follower copy (made on registration) is promoted when the failure
  // detector's kPeerDown lands: survivors keep resolving, the binding
  // is registered at exactly one primary (no double-registration), and
  // the credit ledgers still join to zero across the handoff.
  Network::Config cfg;
  cfg.ns_shards = 4;
  cfg.ns_replicas = 1;
  Network net(cfg);
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.add_site(1, "client2");

  // Pick a service name whose shard primary is a pure-NS node (2 or 3)
  // and whose follower is not the exporter's node, so the injected
  // kPeerDown reaches no app-hosting site and nothing writes credit
  // off — in-process the "dead" slice is still scraped by the audit,
  // which must therefore balance without a write-off.
  ns::ShardRouter probe(4, 1);
  std::string name;
  for (int i = 0;; ++i) {
    name = "svc" + std::to_string(i);
    const auto o = probe.owners_of("server", name);
    if (o.primary >= 2 && o.replica != 0) break;
    ASSERT_LT(i, 4096) << "no suitable name found";
  }

  net.submit_source("server",
                    "def S(self) = self?{ val(x, r) = (r![x] | S[self]) } in "
                    "export new " + name + " in S[" + name + "]");
  net.submit_source("client", "import " + name + " from server in new a (" +
                                  name + "![7, a] | a?(v) = 0)");
  auto r1 = net.run();
  ASSERT_TRUE(r1.quiescent);
  ASSERT_TRUE(net.all_errors().empty());

  ns::ShardRouter* router = net.ns_router();
  ASSERT_NE(router, nullptr);
  const auto before = router->owners_of("server", name);
  const std::uint32_t dead = before.primary;
  const std::uint32_t follower = before.replica;
  // Registration replicated the binding to exactly {primary, follower}.
  for (const auto& n : net.nodes()) {
    const bool should = n->id() == dead || n->id() == follower;
    EXPECT_EQ(n->name_service().lookup_id("server", name).has_value(), should)
        << "node " << n->id();
  }

  // Confirmed death, delivered to the follower: it promotes itself and
  // re-replicates its slice to the post-death follower.
  auto& tr = dynamic_cast<net::InProcTransport&>(net.transport());
  net::Packet down;
  down.src_node = follower;
  down.dst_node = follower;
  down.bytes = make_peer_down(dead);
  tr.send(std::move(down), 0);
  auto rf = net.run();  // pump the failover before new traffic
  EXPECT_FALSE(rf.budget_exhausted);
  EXPECT_TRUE(router->is_dead(dead));
  const auto after = router->owners_of("server", name);
  EXPECT_EQ(after.primary, follower) << "the follower was promoted";

  // A fresh import resolves from the promoted primary.
  net.submit_source("client2", "import " + name + " from server in new a (" +
                                   name + "![9, a] | a?(v) = print[v])");
  auto r2 = net.run();
  EXPECT_TRUE(r2.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client2"), std::vector<std::string>{"9"});

  // No double-registration: among survivors the binding lives at
  // exactly the promoted primary and its new follower.
  for (const auto& n : net.nodes()) {
    if (n->id() == dead) continue;
    const bool should = n->id() == after.primary || n->id() == after.replica;
    EXPECT_EQ(n->name_service().lookup_id("server", name).has_value(), should)
        << "node " << n->id();
  }
  // Credit conservation across the handoff: promoted and re-replicated
  // copies are weak (credit 0), the registration credit still sits in
  // the original slice, so the fleet audit joins to zero.
  auto audit = net.self_audit();
  EXPECT_TRUE(audit.balanced) << audit.to_text();
}

TEST(Fault, DroppedInvalidationServesStaleUntilLeaseExpiry) {
  // A rebind's kNsInvalidate frame is lost in flight. The lease cache
  // keeps serving the stale binding — but only until the lease runs
  // out, and the staleness is accounted retroactively when the next
  // authoritative lookup replaces the entry (ns_cache_stale_served).
  Network::Config cfg;
  cfg.ns_shards = 4;
  cfg.ns_replicas = 1;
  cfg.ns_lease_ms = 500;
  Network net(cfg);
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.add_site(1, "client2");
  net.add_site(1, "client3");

  // The invalidation must cross the transport to be droppable: pick a
  // name whose shard primary is not the lease holders' node.
  ns::ShardRouter probe(4, 1);
  std::string name;
  for (int i = 0;; ++i) {
    name = "svc" + std::to_string(i);
    if (probe.owners_of("server", name).primary != 1) break;
    ASSERT_LT(i, 4096) << "no suitable name found";
  }
  auto& tr = dynamic_cast<net::InProcTransport&>(net.transport());
  tr.set_drop_filter([](const net::Packet& p) {
    return packet_type(p.bytes) == MsgType::kNsInvalidate;
  });

  net.submit_source("server", "export new " + name + " in " + name +
                                  "?{ val(x, r) = r![1] }");
  net.submit_source("client", "import " + name + " from server in 0");
  ASSERT_TRUE(net.run().quiescent);
  ASSERT_TRUE(net.all_errors().empty());
  const ns::LeaseCache* cache = net.lease_cache(1);
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->size(), 1u) << "the first import filled the cache";

  // Rebind: the shard pushes an invalidation to the lease holder, which
  // the network silently drops.
  net.submit_source("server", "export new " + name + " in " + name +
                                  "?{ val(x, r) = r![2] }");
  ASSERT_TRUE(net.run().quiescent);
  EXPECT_GE(tr.dropped(), 1u) << "the fault fired";
  EXPECT_EQ(cache->invalidations(), 0u) << "the invalidation never arrived";
  EXPECT_EQ(cache->size(), 1u) << "the stale entry survived";

  // Within the lease the stale binding is served from the cache...
  net.submit_source("client2", "import " + name + " from server in 0");
  ASSERT_TRUE(net.run().quiescent);
  EXPECT_GE(cache->hits(), 1u);
  EXPECT_EQ(cache->stale_served(), 0u) << "not yet known to be stale";

  // ...but not past it: the next import misses, asks the shard, and the
  // authoritative (different) ref convicts the expired entry's hits.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  net.submit_source("client3", "import " + name + " from server in 0");
  ASSERT_TRUE(net.run().quiescent);
  EXPECT_GE(cache->misses(), 2u) << "the expired entry was not served";
  EXPECT_GE(cache->stale_served(), 1u)
      << "the dropped invalidation's stale hits are accounted";
}

}  // namespace
}  // namespace dityco::core
