#include "obs/fleet.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "obs/metrics.hpp"  // json_escape

namespace dityco::obs::fleet {

// -- tiny JSON reader ---------------------------------------------------

double Json::num() const { return std::strtod(raw.c_str(), nullptr); }

std::uint64_t Json::u64() const {
  return std::strtoull(raw.c_str(), nullptr, 10);
}

const Json* Json::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

double Json::num_or(const std::string& key, double def) const {
  const Json* v = find(key);
  return v && v->kind == Kind::kNumber ? v->num() : def;
}

std::uint64_t Json::u64_or(const std::string& key, std::uint64_t def) const {
  const Json* v = find(key);
  return v && v->kind == Kind::kNumber ? v->u64() : def;
}

std::string Json::str_or(const std::string& key,
                         const std::string& def) const {
  const Json* v = find(key);
  return v && v->kind == Kind::kString ? v->raw : def;
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  int depth = 0;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool literal(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, s, n) != 0)
      return false;
    p += n;
    return true;
  }

  bool string(std::string& out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (p + 1 >= end) return false;
        ++p;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Pass \uXXXX through literally: nothing we scrape emits
            // unicode escapes for content we interpret.
            if (end - p < 5) return false;
            out += "\\u";
            out.append(p + 1, 4);
            p += 4;
            break;
          }
          default: return false;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool value(Json& out) {
    if (++depth > 64) return false;  // stack guard for hostile input
    skip_ws();
    if (p >= end) return false;
    bool ok = false;
    if (*p == '{') {
      ++p;
      out.kind = Json::Kind::kObject;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          std::string key;
          skip_ws();
          if (!string(key)) break;
          skip_ws();
          if (p >= end || *p != ':') break;
          ++p;
          Json v;
          if (!value(v)) break;
          out.fields.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      out.kind = Json::Kind::kArray;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          Json v;
          if (!value(v)) break;
          out.items.push_back(std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '"') {
      out.kind = Json::Kind::kString;
      ok = string(out.raw);
    } else if (literal("true")) {
      out.kind = Json::Kind::kBool;
      out.boolean = true;
      ok = true;
    } else if (literal("false")) {
      out.kind = Json::Kind::kBool;
      out.boolean = false;
      ok = true;
    } else if (literal("null")) {
      out.kind = Json::Kind::kNull;
      ok = true;
    } else {
      const char* start = p;
      if (p < end && (*p == '-' || *p == '+')) ++p;
      while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                         *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                         *p == '+'))
        ++p;
      if (p > start) {
        out.kind = Json::Kind::kNumber;
        out.raw.assign(start, p);
        ok = true;
      }
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool parse_json(const std::string& text, Json& out) {
  Parser ps{text.data(), text.data() + text.size()};
  if (!ps.value(out)) return false;
  ps.skip_ws();
  return ps.p == ps.end;
}

// -- HTTP ---------------------------------------------------------------

bool parse_url(const std::string& url, std::string& host,
               std::uint16_t& port) {
  std::string rest = url;
  const std::string scheme = "http://";
  if (rest.rfind(scheme, 0) == 0) rest = rest.substr(scheme.size());
  const auto slash = rest.find('/');
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size())
    return false;
  host = rest.substr(0, colon);
  char* endp = nullptr;
  const long v = std::strtol(rest.c_str() + colon + 1, &endp, 10);
  if (endp == nullptr || *endp != '\0' || v <= 0 || v > 65535) return false;
  port = static_cast<std::uint16_t>(v);
  return true;
}

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return "";
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return "";
  }
  std::string resp;
  char buf[16384];
  for (;;) {
    pollfd pf{fd, POLLIN, 0};
    const int rc = ::poll(&pf, 1, timeout_ms);
    if (rc <= 0) break;  // timeout or error: return what we have
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (resp.compare(0, 5, "HTTP/") != 0) return "";
  // Require a 2xx status.
  const auto sp = resp.find(' ');
  if (sp == std::string::npos || sp + 1 >= resp.size() ||
      resp[sp + 1] != '2')
    return "";
  const auto hdr_end = resp.find("\r\n\r\n");
  return hdr_end == std::string::npos ? "" : resp.substr(hdr_end + 4);
}

// -- discovery ------------------------------------------------------------

namespace {

std::string host_of(const std::string& hostport, const std::string& fallback) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0) return fallback;
  return hostport.substr(0, colon);
}

}  // namespace

std::vector<NodeEndpoint> discover(const std::string& seed_url) {
  std::vector<NodeEndpoint> out;
  std::string host;
  std::uint16_t port = 0;
  if (!parse_url(seed_url, host, port)) return out;

  // (host, monitor-port) pairs queued for a /peers probe.
  std::vector<std::pair<std::string, std::uint16_t>> todo{{host, port}};
  std::set<std::pair<std::string, std::uint16_t>> seen{{host, port}};
  std::set<std::uint32_t> known_nodes;

  while (!todo.empty()) {
    const auto [h, p] = todo.back();
    todo.pop_back();
    const std::string body = http_get(h, p, "/peers");
    if (body.empty()) continue;
    Json doc;
    if (!parse_json(body, doc)) continue;

    if (const Json* self = doc.find("self")) {
      const auto node = static_cast<std::uint32_t>(self->u64_or("node", 0));
      if (known_nodes.insert(node).second) {
        NodeEndpoint ep;
        ep.node = node;
        ep.host = h;
        ep.monitor = p;
        ep.hostport = self->str_or("hostport");
        out.push_back(std::move(ep));
      }
    }
    const Json* peers = doc.find("peers");
    if (!peers || peers->kind != Json::Kind::kArray) continue;
    for (const Json& peer : peers->items) {
      const auto mport =
          static_cast<std::uint16_t>(peer.u64_or("monitor", 0));
      if (mport == 0) continue;
      // The peer's monitor listens where its transport does; fall back
      // to the probed host for peers whose address is not yet gossiped.
      const std::string mhost = host_of(peer.str_or("hostport"), h);
      if (seen.insert({mhost, mport}).second) todo.push_back({mhost, mport});
    }
  }
  return out;
}

// -- stitching ------------------------------------------------------------

namespace {

std::string fmt_ts(double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

}  // namespace

MergedTrace merge_traces(const std::vector<std::string>& docs) {
  MergedTrace merged;

  struct Meta {
    std::uint32_t pid;
    std::string kind;  // "process_name" | "thread_name"
    std::string name;
    bool has_tid = false;
    std::uint32_t tid = 0;
  };
  std::vector<Meta> metas;
  std::set<std::pair<std::uint32_t, std::uint64_t>> meta_seen;

  for (const std::string& text : docs) {
    Json doc;
    if (!parse_json(text, doc)) continue;
    const Json* events = doc.find("traceEvents");
    if (!events || events->kind != Json::Kind::kArray) continue;
    ++merged.nodes;

    // Clock anchor: the wall time of local ts 0 (see the file header of
    // fleet.hpp). Unanchored documents keep their local base.
    double offset_us = 0;
    if (const Json* other = doc.find("otherData")) {
      const std::uint64_t steady = other->u64_or("steady_now_ns", 0);
      const std::uint64_t base = other->u64_or("ts_base_ns", 0);
      const std::uint64_t wall = other->u64_or("wall_now_us", 0);
      if (steady != 0 && wall != 0 && steady >= base) {
        offset_us = static_cast<double>(wall) -
                    static_cast<double>(steady - base) / 1000.0;
        ++merged.anchored;
      }
    }

    for (const Json& e : events->items) {
      const std::string ph = e.str_or("ph");
      const auto pid = static_cast<std::uint32_t>(e.u64_or("pid", 0));
      const auto tid = static_cast<std::uint32_t>(e.u64_or("tid", 0));
      if (ph == "M") {
        // Dedup metadata across documents (every node names its own
        // pid; a re-scrape must not emit it twice).
        const std::uint64_t key =
            (static_cast<std::uint64_t>(tid) << 1) |
            (e.str_or("name") == "process_name" ? 0u : 1u);
        if (!meta_seen.insert({pid, key}).second) continue;
        Meta m;
        m.pid = pid;
        m.kind = e.str_or("name");
        if (const Json* args = e.find("args")) m.name = args->str_or("name");
        m.has_tid = e.find("tid") != nullptr;
        m.tid = tid;
        metas.push_back(std::move(m));
        continue;
      }
      if (ph == "s" || ph == "t" || ph == "f") continue;  // regenerated
      FleetEvent fe;
      fe.ph = ph;
      fe.name = e.str_or("name");
      fe.cat = e.str_or("cat");
      fe.pid = pid;
      fe.tid = tid;
      fe.ts_us = offset_us + e.num_or("ts", 0);
      fe.trace_id = e.u64_or("id", 0);  // async b/e spans
      if (const Json* args = e.find("args")) {
        if (fe.trace_id == 0) fe.trace_id = args->u64_or("trace_id", 0);
        fe.arg = args->u64_or("arg", args->u64_or("instructions", 0));
      }
      merged.events.push_back(std::move(fe));
    }
  }

  // Rebase the fleet axis to its earliest event.
  double base = 0;
  bool have_base = false;
  for (const FleetEvent& e : merged.events)
    if (!have_base || e.ts_us < base) {
      base = e.ts_us;
      have_base = true;
    }
  for (FleetEvent& e : merged.events) e.ts_us -= base;

  // Re-emit one Chrome trace document.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };
  for (const Meta& m : metas) {
    std::string obj = "{\"ph\":\"M\",\"name\":\"" + json_escape(m.kind) +
                      "\",\"pid\":" + std::to_string(m.pid);
    if (m.has_tid) obj += ",\"tid\":" + std::to_string(m.tid);
    obj += ",\"args\":{\"name\":\"" + json_escape(m.name) + "\"}}";
    emit(obj);
  }
  struct FlowPoint {
    double ts_us;
    std::uint32_t pid, tid;
  };
  std::map<std::uint64_t, std::vector<FlowPoint>> flows;
  for (const FleetEvent& e : merged.events) {
    const std::string pidtid = "\"pid\":" + std::to_string(e.pid) +
                               ",\"tid\":" + std::to_string(e.tid);
    const std::string ts = fmt_ts(e.ts_us);
    if (e.ph == "B") {
      emit("{\"ph\":\"B\",\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"" + json_escape(e.cat) + "\"," + pidtid +
           ",\"ts\":" + ts + "}");
    } else if (e.ph == "E") {
      emit("{\"ph\":\"E\"," + pidtid + ",\"ts\":" + ts +
           ",\"args\":{\"instructions\":" + std::to_string(e.arg) + "}}");
    } else if (e.ph == "b" || e.ph == "e") {
      emit("{\"ph\":\"" + e.ph + "\",\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"" + json_escape(e.cat) +
           "\",\"id\":" + std::to_string(e.trace_id) + "," + pidtid +
           ",\"ts\":" + ts + ",\"args\":{\"arg\":" + std::to_string(e.arg) +
           "}}");
    } else {
      emit("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"" + json_escape(e.cat) + "\"," + pidtid +
           ",\"ts\":" + ts + ",\"args\":{\"arg\":" + std::to_string(e.arg) +
           ",\"trace_id\":" + std::to_string(e.trace_id) + "}}");
    }
    if (e.trace_id != 0)
      flows[e.trace_id].push_back(FlowPoint{e.ts_us, e.pid, e.tid});
  }
  for (auto& [id, points] : flows) {
    if (points.size() < 2) continue;
    std::stable_sort(points.begin(), points.end(),
                     [](const FlowPoint& a, const FlowPoint& b) {
                       return a.ts_us < b.ts_us;
                     });
    for (std::size_t i = 0; i < points.size(); ++i) {
      const FlowPoint& p = points[i];
      const char* ph = i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
      std::string obj = "{\"ph\":\"";
      obj += ph;
      obj += "\",\"name\":\"flow\",\"cat\":\"mobility\",\"id\":" +
             std::to_string(id) + ",\"pid\":" + std::to_string(p.pid) +
             ",\"tid\":" + std::to_string(p.tid) +
             ",\"ts\":" + fmt_ts(p.ts_us);
      if (ph[0] == 'f') obj += ",\"bp\":\"e\"";
      obj += "}";
      emit(obj);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  merged.json = std::move(out);
  return merged;
}

std::string federate_metrics(
    const std::vector<std::pair<std::uint32_t, std::string>>& texts) {
  std::string out;
  for (const auto& [node, body] : texts) {
    const std::string label = "node=\"" + std::to_string(node) + "\"";
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      std::string line = body.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.empty() || line[0] == '#') {
        out += line;
        out += '\n';
        continue;
      }
      const auto brace = line.find('{');
      const auto space = line.find(' ');
      if (brace != std::string::npos &&
          (space == std::string::npos || brace < space)) {
        line.insert(brace + 1, label + ",");
      } else if (space != std::string::npos) {
        line.insert(space, "{" + label + "}");
      }
      out += line;
      out += '\n';
    }
  }
  return out;
}

std::string federate_metrics_json(
    const std::vector<std::pair<std::uint32_t, std::string>>& docs) {
  std::string out = "{\"nodes\":[";
  bool first = true;
  for (const auto& [node, body] : docs) {
    if (!first) out += ",";
    first = false;
    out += "{\"node\":" + std::to_string(node) + ",\"metrics\":";
    out += body.empty() ? "null" : body;
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace dityco::obs::fleet
