#!/usr/bin/env bash
# Workload SLO smoke test: launch three tycod daemons on loopback, each
# exporting a persistent echo service and running the SLO plane
# (--slo), then drive them with the tycoload open-loop generator —
# SIGKILLing node 2 mid-run (--kill-node, the failover drill of
# docs/NETWORKING.md) — and assert the whole alerting path end to end:
#
#   * tycoload survives the failover (exit 0, completions on both
#     sides of the kill, a separate failover latency histogram);
#   * the survivors' /slo ledgers hold NON-COLLAPSED per-stage
#     latency histograms (at least two stages populated, p50 != p99
#     somewhere — the whole point of the per-op ledger);
#   * the burn-rate state machine left `ok` (a recorded transition,
#     current state warn/page) — the objective is set deliberately
#     tight (--slo-p99-us 50) so the drill always pages: this tests
#     the alerting machinery, not the fleet's tuning;
#   * objective-violating trace ids were promoted into the flight
#     recorder (flight_promoted{reason="slow"} > 0, /flight non-empty);
#   * `tycotop --slo` renders the fleet view from one seed monitor
#     and exits 0.
#
# Used by CI; run locally as
#   tools/slo_smoke.sh [tycod] [tycoload] [tycotop]
set -u

TYCOD="${1:-build/tools/tycod}"
TYCOLOAD="${2:-build/tools/tycoload}"
TYCOTOP="${3:-build/tools/tycotop}"
for bin in "$TYCOD" "$TYCOLOAD" "$TYCOTOP"; do
  if [ ! -x "$bin" ]; then
    echo "slo_smoke: no binary at $bin" >&2
    exit 2
  fi
done

OUT0="$(mktemp)"
OUT1="$(mktemp)"
OUT2="$(mktemp)"
LOAD="$(mktemp)"
SLO="$(mktemp)"
TOPJSON="$(mktemp)"
trap 'kill -9 "$PID0" "$PID1" "$PID2" 2>/dev/null;
      rm -f "$OUT0" "$OUT1" "$OUT2" "$LOAD" "$SLO" "$TOPJSON"' EXIT

fail=0

scrape() {
  # First match of sed pattern $2 in log $1 while pid $3 stays alive.
  local log="$1" pat="$2" pid="$3" got=""
  for _ in $(seq 1 100); do
    got="$(sed -n "$pat" "$log" | head -n 1)"
    [ -n "$got" ] && { echo "$got"; return 0; }
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

wait_port() {
  scrape "$1" 's#^tycod node[0-9]* listening on 127\.0\.0\.1:\([0-9]*\)$#\1#p' "$2"
}

wait_mon() {
  scrape "$1" 's#^tycomon listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$2"
}

http_get() {
  python3 - "$1" <<'EOF'
import sys, urllib.request
print(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())
EOF
}

# ---------------------------------------------------------------------
# Three daemons, each a persistent echo service under the SLO plane
# ---------------------------------------------------------------------

SRV='export new svc in def Serve(self) = self?{ val(x, r) = (r![x + 1] | Serve[self]) } in Serve[svc]'
COMMON="--monitor 0 --slo --slo-p99-us 50 --slo-budget 0.001 \
  --idle-exit-ms 8000 --serve-ms 60000"

# shellcheck disable=SC2086
"$TYCOD" --node 0 $COMMON -e "site server0 { $SRV }" >"$OUT0" 2>&1 &
PID0=$!
PORT0="$(wait_port "$OUT0" "$PID0")" || {
  echo "slo_smoke: node 0 never announced a port:" >&2
  cat "$OUT0" >&2
  exit 1
}
MON0="$(wait_mon "$OUT0" "$PID0")" || {
  echo "slo_smoke: node 0 never announced a monitor:" >&2
  cat "$OUT0" >&2
  exit 1
}

# shellcheck disable=SC2086
"$TYCOD" --node 1 --join "127.0.0.1:$PORT0" $COMMON \
  -e "site server1 { $SRV }" >"$OUT1" 2>&1 &
PID1=$!
# shellcheck disable=SC2086
"$TYCOD" --node 2 --join "127.0.0.1:$PORT0" $COMMON \
  -e "site server2 { $SRV }" >"$OUT2" 2>&1 &
PID2=$!
MON1="$(wait_mon "$OUT1" "$PID1")" || {
  echo "slo_smoke: node 1 never announced a monitor:" >&2
  cat "$OUT1" >&2
  exit 1
}
wait_mon "$OUT2" "$PID2" >/dev/null || {
  echo "slo_smoke: node 2 never announced a monitor:" >&2
  cat "$OUT2" >&2
  exit 1
}
echo "slo_smoke: fleet up (transport :$PORT0, monitors :$MON0 :$MON1)"

# ---------------------------------------------------------------------
# Open-loop load with a mid-run SIGKILL of node 2
# ---------------------------------------------------------------------

"$TYCOLOAD" --join "127.0.0.1:$PORT0" \
  --import server0:svc --import server1:svc --import server2:svc \
  --scenario rpc --rate 2000 --duration-ms 4000 --timeout-ms 1500 \
  --kill-node 2 --kill-pid "$PID2" --at 2000 --json >"$LOAD" 2>&1
LOADRC=$?
if [ "$LOADRC" -ne 0 ]; then
  echo "slo_smoke: tycoload exited $LOADRC:" >&2
  cat "$LOAD" >&2
  exit 1
fi

python3 - "$LOAD" <<'EOF' || fail=1
import json, sys
rep = json.loads(open(sys.argv[1]).read().strip().splitlines()[-1])
assert rep["schema"] == "tycoload-report-v1", rep
assert rep["completed"] > 0, "no request ever completed"
lat = rep["latency"]
assert lat["count"] > 0 and lat["p50_us"] < lat["p99_us"], \
    f"client latency collapsed: {lat}"
assert "failover" in rep, "kill drill produced no failover histogram"
assert rep["failover"]["count"] > 0, \
    "no request completed after the kill point"
print(f"slo_smoke: tycoload ok "
      f"({rep['completed']} completed, {rep['failed']} failed, "
      f"{rep['failover']['count']} through failover, "
      f"client state {rep['state']})")
EOF

# ---------------------------------------------------------------------
# Survivors' /slo: populated stage histograms, a burn transition
# ---------------------------------------------------------------------

for mon in "$MON0" "$MON1"; do
  http_get "http://127.0.0.1:$mon/slo" >"$SLO" || {
    echo "slo_smoke: cannot scrape /slo on :$mon" >&2
    exit 1
  }
  python3 - "$SLO" "$mon" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
mon = sys.argv[2]
assert doc["schema"] == "dityco-slo-v1", doc.get("schema")
stages = doc["stages"]
live = {k: v for k, v in stages.items() if v.get("count", 0) > 0}
assert len(live) >= 2, f":{mon} has {len(live)} populated stage(s): " \
    f"{sorted(stages)}"
spread = [k for k, v in live.items() if v["p50_us"] < v["p99_us"]]
assert spread, f":{mon} every stage histogram collapsed: {live}"
assert doc["transitions"], f":{mon} burn state never left ok"
assert doc["state"] in ("warn", "page"), \
    f":{mon} state {doc['state']} after a deliberately tight objective"
req = doc["requests"]
assert req["violations"] > 0, f":{mon} no recorded violations: {req}"
assert req["state_transitions"] >= 1, f":{mon} no state flips: {req}"
print(f"slo_smoke: :{mon} /slo ok (stages {sorted(live)}, "
      f"spread in {spread}, state {doc['state']}, "
      f"{req['violations']} violations)")
EOF
done

# ---------------------------------------------------------------------
# Violating trace ids landed in the flight recorder
# ---------------------------------------------------------------------

http_get "http://127.0.0.1:$MON0/metrics" | \
  grep 'flight_promoted{reason="slow"}' | grep -qv ' 0$' || {
  echo "slo_smoke: node 0 promoted no slow traces" >&2
  fail=1
}
http_get "http://127.0.0.1:$MON0/flight" >"$SLO" || {
  echo "slo_smoke: cannot scrape /flight" >&2
  exit 1
}
python3 - "$SLO" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
events = [e for e in doc["traceEvents"] if e.get("ph") != "M"]
assert events, "flight recorder holds no promoted timeline"
print(f"slo_smoke: /flight holds {len(events)} promoted events")
EOF

# ---------------------------------------------------------------------
# tycotop --slo: fleet burn view from one seed monitor
# ---------------------------------------------------------------------

"$TYCOTOP" --slo --json "http://127.0.0.1:$MON0" >"$TOPJSON" || {
  echo "slo_smoke: tycotop --slo failed:" >&2
  cat "$TOPJSON" >&2
  exit 1
}
python3 - "$TOPJSON" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tycotop-slo-v1", doc.get("schema")
rows = {n["node"]: n for n in doc["nodes"]}
assert {0, 1} <= set(rows), f"fleet view missing a survivor: {sorted(rows)}"
hot = [n for n, r in rows.items() if r["state"] in ("warn", "page")]
assert hot, f"no node shows burn in the fleet view: {rows}"
print(f"slo_smoke: tycotop --slo ok (nodes {sorted(rows)}, burning {hot})")
EOF

if [ "$fail" -eq 0 ]; then
  echo "slo_smoke: OK (failover drill, stage tails, burn alert, flight)"
fi
exit "$fail"
