# Empty compiler generated dependencies file for test_distributed_ns.
# This may be replaced when dependencies are built.
