// Value formatting shared by the reference reducer and the VM so that
// `print` output is byte-identical between the two — a requirement for
// the differential tests (VM vs formal semantics).
#pragma once

#include <cstdio>
#include <string>

namespace dityco {

inline std::string format_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace dityco
