# Empty dependencies file for bench_c1_vm_vs_reducer.
# This may be replaced when dependencies are built.
