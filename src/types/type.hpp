// The TyCO type language (paper, section 2: "TyCO features a
// (Damas-Milner) polymorphic type-system").
//
// Types:
//   T ::= int | bool | float | str | α | ^R          (channels)
//   R ::= {} | {l[T̄] ; R} | ρ                        (method rows)
// plus class parameter tuples cls(T̄) used internally by inference.
//
// Channel types are records of method signatures; objects contribute
// closed rows (their exact interface), messages contribute open rows
// (at least the invoked label) — row unification in the style of
// Wand/Rémy. Class definitions are generalised (let-polymorphism), which
// is what makes the paper's polymorphic Cell example type.
//
// Canonical signature strings (to_signature/parse_signature) are the
// currency of the paper's combined static/dynamic checking scheme: the
// exporter registers its inferred signature with the name service and the
// importer's inferred *requirement* is checked against it at run time
// (types/compat).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dityco::types {

class TypeError : public std::runtime_error {
 public:
  explicit TypeError(const std::string& what)
      : std::runtime_error("type error: " + what) {}
};

struct Type;
using TypePtr = std::shared_ptr<Type>;

struct Type {
  enum class K {
    kVar,       // unification variable (link != null once bound)
    kInt,
    kBool,
    kFloat,
    kString,
    kChan,      // row
    kRowEmpty,
    kRowCons,   // label, payload, tail
    kParams,    // class parameter tuple
  };

  K k = K::kVar;
  // kVar
  std::uint64_t id = 0;
  TypePtr link;  // non-null when bound
  bool numeric = false;  // var constrained to int/float (arithmetic)
  // kChan
  TypePtr row;
  // kRowCons
  std::string label;
  std::vector<TypePtr> payload;
  TypePtr tail;
  // kParams
  std::vector<TypePtr> params;
};

TypePtr t_var();
TypePtr t_int();
TypePtr t_bool();
TypePtr t_float();
TypePtr t_string();
TypePtr t_chan(TypePtr row);
TypePtr t_row_empty();
TypePtr t_row_cons(std::string label, std::vector<TypePtr> payload,
                   TypePtr tail);
TypePtr t_params(std::vector<TypePtr> params);

/// Follow variable links to the representative.
TypePtr prune(const TypePtr& t);

/// Unify two types (throws TypeError). Row unification rewrites open rows
/// to expose common labels.
void unify(const TypePtr& a, const TypePtr& b);

/// Resolve remaining numeric-constrained variables to int and report
/// violations (called once per program after inference).
void default_numerics(const TypePtr& t);

/// Canonical, parseable rendering; variable names normalised by first
/// occurrence (a, b, c, ...). Two alpha-equivalent types print equally.
std::string to_signature(const TypePtr& t);

/// Parse a signature produced by to_signature (fresh variables).
TypePtr parse_signature(const std::string& sig);

/// The dynamic half of the combined checking scheme: may a requirement
/// inferred at the import site be satisfied by the exporter's signature?
/// (Parses both into fresh variables and attempts unification.)
bool compatible(const std::string& required, const std::string& provided);

}  // namespace dityco::types
