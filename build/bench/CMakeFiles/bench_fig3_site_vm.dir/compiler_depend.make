# Empty compiler generated dependencies file for bench_fig3_site_vm.
# This may be replaced when dependencies are built.
