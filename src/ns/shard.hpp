// Shard map for the decentralized name service.
//
// The directory key space — (exporting site, identifier) string pairs —
// is partitioned across the first `shards` node ids by rendezvous
// (highest-random-weight) hashing over the *live* membership: every
// node computes weight(key, node) for each live member and the maximum
// wins. HRW gives the property the failover protocol leans on: when a
// node dies, only the keys it owned move (its primaries promote to
// their old replicas, its replica slots slide to the next weight), and
// no key ever migrates between two surviving nodes.
//
// The membership view is `{0..shards-1}` minus a grow-only dead set, so
// the map is a pure function of the dead set: two nodes with the same
// dead set compute identical owners, and the set (gossiped as an
// additive trailing block on kPeers frames) converges monotonically.
// The epoch is simply the dead-set size.
//
// `note_dead` records a *locally confirmed* death (phi-accrual verdict
// delivered as a kPeerDown frame); `merge_dead` records *advisory*
// deaths learned from gossip. Both update the map — only confirmation
// may additionally drive GC credit write-off, which is the caller's
// business, never this class's.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace dityco::ns {

class ShardRouter {
 public:
  /// Sentinel for "no such owner" (e.g. no live replica candidate).
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  explicit ShardRouter(std::uint32_t shards, std::uint32_t replicas = 1);

  /// Stable FNV-1a hash of the directory key (site, name).
  static std::uint64_t key_hash(const std::string& site,
                                const std::string& name);

  struct Owners {
    std::uint32_t primary = kNoNode;
    std::uint32_t replica = kNoNode;
  };
  /// Primary and first replica for a key under the current view.
  Owners owners_of(const std::string& site, const std::string& name) const;
  std::uint32_t primary_of(const std::string& site,
                           const std::string& name) const;
  std::uint32_t replica_of(const std::string& site,
                           const std::string& name) const;

  /// Locally confirmed death. Returns true when the node was newly
  /// marked (the map changed; owners must re-replicate).
  bool note_dead(std::uint32_t node);
  /// Advisory deaths from gossip; returns true when any was new. Never
  /// a trigger for credit write-off — only for map convergence.
  bool merge_dead(const std::vector<std::uint32_t>& nodes);

  bool is_dead(std::uint32_t node) const;
  /// Map epoch: the dead-set size (monotone, view-comparable).
  std::uint32_t epoch() const;
  /// Bumped on every map change; pollers compare to skip rework.
  std::uint64_t generation() const;
  std::uint32_t shards() const { return shards_; }
  std::uint32_t replicas() const { return replicas_; }
  std::vector<std::uint32_t> dead() const;

 private:
  Owners owners_locked(std::uint64_t h) const;

  const std::uint32_t shards_;
  const std::uint32_t replicas_;
  mutable std::mutex mu_;
  std::set<std::uint32_t> dead_;
  std::uint64_t generation_ = 0;
};

}  // namespace dityco::ns
