file(REMOVE_RECURSE
  "CMakeFiles/applet_server.dir/applet_server.cpp.o"
  "CMakeFiles/applet_server.dir/applet_server.cpp.o.d"
  "applet_server"
  "applet_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applet_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
