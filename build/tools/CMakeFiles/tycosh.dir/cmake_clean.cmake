file(REMOVE_RECURSE
  "CMakeFiles/tycosh.dir/tycosh.cpp.o"
  "CMakeFiles/tycosh.dir/tycosh.cpp.o.d"
  "tycosh"
  "tycosh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tycosh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
