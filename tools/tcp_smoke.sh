#!/usr/bin/env bash
# TCP networking smoke test: launch two real tycod processes on loopback
# (node 0 hosting the name service, node 1 joining it), run a cross-
# process import + remote method call to completion, and assert both
# daemons exit cleanly with empty export tables. Then kill node 1 of a
# second pair mid-run and assert the survivor's failure detector writes
# the dead holder's GC credit off. Used by CI; run locally as
# tools/tcp_smoke.sh [tycod], default build/tools/tycod.
set -u

TYCOD="${1:-build/tools/tycod}"
if [ ! -x "$TYCOD" ]; then
  echo "tcp_smoke: no tycod binary at $TYCOD" >&2
  exit 2
fi

OUT0="$(mktemp)"
OUT1="$(mktemp)"
trap 'kill "$PID0" "$PID1" 2>/dev/null; rm -f "$OUT0" "$OUT1"' EXIT

fail=0

wait_port() {
  # Scrape "tycod nodeN listening on 127.0.0.1:<port>" from $1.
  local log="$1" pid="$2" port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's#^tycod node[0-9]* listening on 127\.0\.0\.1:\([0-9]*\)$#\1#p' "$log")"
    [ -n "$port" ] && { echo "$port"; return 0; }
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

# ---------------------------------------------------------------------
# Happy path: SHIPO + FETCH across two processes
# ---------------------------------------------------------------------

"$TYCOD" --node 0 --idle-exit-ms 1200 --serve-ms 30000 -e \
  'site server { export def Applet(out) = out![7] in
     export new p in p?{ val(x, rep) = rep![x * 2] } }' >"$OUT0" 2>&1 &
PID0=$!
PORT="$(wait_port "$OUT0" "$PID0")" || {
  echo "tcp_smoke: node 0 never announced a port:" >&2
  cat "$OUT0" >&2
  exit 1
}
echo "tcp_smoke: node 0 on port $PORT"

"$TYCOD" --node 1 --join "127.0.0.1:$PORT" --idle-exit-ms 1200 \
  --serve-ms 30000 -e \
  'site client { import Applet from server in import p from server in
     new r (Applet[r] | r?(v) = let z = p![v * 3] in print[z + v]) }' \
  >"$OUT1" 2>&1 &
PID1=$!

wait "$PID1"; S1=$?
wait "$PID0"; S0=$?
if [ "$S0" -ne 0 ] || [ "$S1" -ne 0 ]; then
  echo "tcp_smoke: daemons exited $S0/$S1:" >&2
  cat "$OUT0" "$OUT1" >&2
  fail=1
fi
# Applet ran at the client (code mobility) and the remote call
# round-tripped: 7*3*2 + 7 = 49.
grep -q '\[client\] 49' "$OUT1" || {
  echo "tcp_smoke: client output missing:" >&2; cat "$OUT1" >&2; fail=1; }
grep -q 'exports_live=0' "$OUT0" || {
  echo "tcp_smoke: node 0 leaked exports:" >&2; cat "$OUT0" >&2; fail=1; }
grep -q 'exports_live=0' "$OUT1" || {
  echo "tcp_smoke: node 1 leaked exports:" >&2; cat "$OUT1" >&2; fail=1; }

# ---------------------------------------------------------------------
# Failure path: kill node 1 mid-run, survivor writes its credit off
# ---------------------------------------------------------------------

"$TYCOD" --node 0 --heartbeat-ms 25 --confirm-ms 200 --idle-exit-ms 3000 \
  --serve-ms 30000 -e \
  'site server { export new p in p?{ val(x, rep) = rep![x * 2] } }' \
  >"$OUT0" 2>&1 &
PID0=$!
PORT="$(wait_port "$OUT0" "$PID0")" || {
  echo "tcp_smoke: kill-test node 0 never announced a port:" >&2
  cat "$OUT0" >&2
  exit 1
}

# The client imports p (holding attributed credit) and parks forever.
"$TYCOD" --node 1 --join "127.0.0.1:$PORT" --heartbeat-ms 25 \
  --timeout-ms 25000 -e \
  'site client { import p from server in import never from server in
     p!val[1, p] }' >"$OUT1" 2>&1 &
PID1=$!
sleep 1.5
kill -9 "$PID1" 2>/dev/null
wait "$PID1" 2>/dev/null

wait "$PID0"; S0=$?
if [ "$S0" -ne 0 ]; then
  echo "tcp_smoke: survivor exited $S0:" >&2; cat "$OUT0" >&2; fail=1
fi
grep -q 'peers_down=1' "$OUT0" || {
  echo "tcp_smoke: survivor never saw the death:" >&2; cat "$OUT0" >&2
  fail=1; }
grep -Eq 'credit_written_off=[1-9][0-9]*' "$OUT0" || {
  echo "tcp_smoke: no credit written off:" >&2; cat "$OUT0" >&2; fail=1; }
grep -q 'exports_live=0' "$OUT0" || {
  echo "tcp_smoke: survivor leaked exports:" >&2; cat "$OUT0" >&2; fail=1; }

if [ "$fail" -eq 0 ]; then
  echo "tcp_smoke: OK (cross-process SHIPO/FETCH, empty tables, kill -> write-off)"
fi
exit "$fail"
