// Parser unit tests, including print/parse round-trip fixpoint checks on
// the paper's programs.
#include <gtest/gtest.h>

#include "calculus/ast.hpp"
#include "compiler/parser.hpp"

namespace dityco::comp {
namespace {

using calc::Proc;
using calc::ProcPtr;

const Proc::Msg& as_msg(const ProcPtr& p) {
  return std::get<Proc::Msg>(p->node);
}

TEST(Parser, Nil) {
  auto p = parse_program("0");
  EXPECT_TRUE(std::holds_alternative<Proc::Nil>(p->node));
}

TEST(Parser, SimpleMessage) {
  auto p = parse_program("x!read[r]");
  const auto& m = as_msg(p);
  EXPECT_EQ(m.target.name, "x");
  EXPECT_FALSE(m.target.located());
  EXPECT_EQ(m.label, "read");
  ASSERT_EQ(m.args.size(), 1u);
}

TEST(Parser, ValSugarMessage) {
  auto p = parse_program("x![1, 2]");
  const auto& m = as_msg(p);
  EXPECT_EQ(m.label, calc::kValLabel);
  EXPECT_EQ(m.args.size(), 2u);
}

TEST(Parser, LocatedMessage) {
  auto p = parse_program("server.p!req[1]");
  const auto& m = as_msg(p);
  ASSERT_TRUE(m.target.located());
  EXPECT_EQ(*m.target.site, "server");
  EXPECT_EQ(m.target.name, "p");
}

TEST(Parser, ObjectBraces) {
  auto p = parse_program("x?{ read(r) = r![9], write(u) = 0 }");
  const auto& o = std::get<Proc::Obj>(p->node);
  ASSERT_EQ(o.methods.size(), 2u);
  EXPECT_EQ(o.methods[0].name, "read");
  EXPECT_EQ(o.methods[0].params, std::vector<std::string>{"r"});
  EXPECT_EQ(o.methods[1].name, "write");
}

TEST(Parser, ObjectSugar) {
  auto p = parse_program("x?(w) = print[w]");
  const auto& o = std::get<Proc::Obj>(p->node);
  ASSERT_EQ(o.methods.size(), 1u);
  EXPECT_EQ(o.methods[0].name, calc::kValLabel);
}

TEST(Parser, SugarObjectBodyBindsTighterThanPar) {
  // x?(w) = P | Q parses as (x?(w) = P) | Q.
  auto p = parse_program("x?(w) = print[w] | y![1]");
  ASSERT_TRUE(std::holds_alternative<Proc::Par>(p->node));
  const auto& par = std::get<Proc::Par>(p->node);
  EXPECT_TRUE(std::holds_alternative<Proc::Obj>(par.left->node));
  EXPECT_TRUE(std::holds_alternative<Proc::Msg>(par.right->node));
}

TEST(Parser, ParAssociation) {
  auto p = parse_program("a![] | b![] | c![]");
  // Right-nested: a | (b | c)? mk_par is left-folded in the loop: ((a|b)|c)
  ASSERT_TRUE(std::holds_alternative<Proc::Par>(p->node));
}

TEST(Parser, NewWithOptionalIn) {
  auto p1 = parse_program("new x x![]");
  auto p2 = parse_program("new x in x![]");
  const auto& n1 = std::get<Proc::New>(p1->node);
  const auto& n2 = std::get<Proc::New>(p2->node);
  EXPECT_EQ(n1.names, n2.names);
}

TEST(Parser, NewMultipleNames) {
  auto p = parse_program("new x, y, z in x![]");
  const auto& n = std::get<Proc::New>(p->node);
  EXPECT_EQ(n.names, (std::vector<std::string>{"x", "y", "z"}));
}

TEST(Parser, NewScopeExtendsOverPar) {
  // new binds as far right as possible: new x (P | Q).
  auto p = parse_program("new x x![] | x?(v) = 0");
  const auto& n = std::get<Proc::New>(p->node);
  EXPECT_TRUE(std::holds_alternative<Proc::Par>(n.body->node));
}

TEST(Parser, DefAndInstantiation) {
  auto p = parse_program(
      "def Cell(self, v) = self?{ read(r) = r![v], write(u) = Cell[self, u] } "
      "in new x Cell[x, 9]");
  const auto& d = std::get<Proc::Def>(p->node);
  ASSERT_EQ(d.defs.size(), 1u);
  EXPECT_EQ(d.defs[0].name, "Cell");
  EXPECT_EQ(d.defs[0].params, (std::vector<std::string>{"self", "v"}));
}

TEST(Parser, MutuallyRecursiveDefs) {
  auto p = parse_program(
      "def Ping(n) = Pong[n] and Pong(n) = Ping[n] in Ping[3]");
  const auto& d = std::get<Proc::Def>(p->node);
  ASSERT_EQ(d.defs.size(), 2u);
  EXPECT_EQ(d.defs[0].name, "Ping");
  EXPECT_EQ(d.defs[1].name, "Pong");
}

TEST(Parser, ExportNew) {
  auto p = parse_program("export new appletserver in appletserver![]");
  const auto& e = std::get<Proc::ExportNew>(p->node);
  EXPECT_EQ(e.names, std::vector<std::string>{"appletserver"});
}

TEST(Parser, ExportDef) {
  auto p = parse_program("export def Applet(x) = x![] in 0");
  const auto& e = std::get<Proc::ExportDef>(p->node);
  ASSERT_EQ(e.defs.size(), 1u);
  EXPECT_EQ(e.defs[0].name, "Applet");
}

TEST(Parser, ImportName) {
  auto p = parse_program("import appletserver from server in 0");
  const auto& i = std::get<Proc::ImportName>(p->node);
  EXPECT_EQ(i.name, "appletserver");
  EXPECT_EQ(i.site, "server");
}

TEST(Parser, ImportClassByCase) {
  auto p = parse_program("import Applet from server in Applet[]");
  const auto& i = std::get<Proc::ImportClass>(p->node);
  EXPECT_EQ(i.name, "Applet");
  EXPECT_EQ(i.site, "server");
}

TEST(Parser, LocatedInstantiation) {
  auto p = parse_program("server.Applet[1]");
  const auto& i = std::get<Proc::Inst>(p->node);
  ASSERT_TRUE(i.cls.located());
  EXPECT_EQ(*i.cls.site, "server");
  EXPECT_EQ(i.cls.name, "Applet");
}

TEST(Parser, IfThenElse) {
  auto p = parse_program("if 1 < 2 then print[\"yes\"] else print[\"no\"]");
  const auto& i = std::get<Proc::If>(p->node);
  EXPECT_TRUE(std::holds_alternative<Proc::Print>(i.then_p->node));
}

TEST(Parser, PrintWithContinuation) {
  auto p = parse_program("print[1]; print[2]");
  const auto& pr = std::get<Proc::Print>(p->node);
  EXPECT_TRUE(std::holds_alternative<Proc::Print>(pr.cont->node));
}

TEST(Parser, LetSugarDesugarsToRpc) {
  // let z = a!l[v] in P  =>  new r (a!l[v, r] | r?{val(z) = P})
  auto p = parse_program("let z = a!get[1] in print[z]");
  const auto& n = std::get<Proc::New>(p->node);
  ASSERT_EQ(n.names.size(), 1u);
  const auto& par = std::get<Proc::Par>(n.body->node);
  const auto& m = std::get<Proc::Msg>(par.left->node);
  EXPECT_EQ(m.label, "get");
  ASSERT_EQ(m.args.size(), 2u);  // original arg + reply channel
  const auto& o = std::get<Proc::Obj>(par.right->node);
  EXPECT_EQ(o.methods[0].name, calc::kValLabel);
  EXPECT_EQ(o.methods[0].params, std::vector<std::string>{"z"});
}

TEST(Parser, LetWithValSugar) {
  auto p = parse_program("let z = a![1] in 0");
  const auto& n = std::get<Proc::New>(p->node);
  const auto& par = std::get<Proc::Par>(n.body->node);
  EXPECT_EQ(std::get<Proc::Msg>(par.left->node).label, calc::kValLabel);
}

TEST(Parser, ExpressionPrecedence) {
  auto e = parse_expr("1 + 2 * 3 == 7 && true");
  EXPECT_EQ(calc::to_string(*e), "(((1 + (2 * 3)) == 7) && true)");
}

TEST(Parser, UnaryOperators) {
  auto e = parse_expr("-x + !y");
  EXPECT_EQ(calc::to_string(*e), "((-x) + (!y))");
}

TEST(Parser, StringConcat) {
  auto e = parse_expr("\"a\" ++ \"b\"");
  EXPECT_EQ(calc::to_string(*e), "(\"a\" ++ \"b\")");
}

TEST(Parser, NetworkBlocks) {
  auto net = parse_network(
      "site server { export new p in p?(r) = r![1] }\n"
      "site client { import p from server in let z = p![] in print[z] }");
  ASSERT_EQ(net.size(), 2u);
  EXPECT_EQ(net[0].first, "server");
  EXPECT_EQ(net[1].first, "client");
}

TEST(Parser, NetworkBareProgram) {
  auto net = parse_network("print[1]");
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].first, "main");
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_program("x!"), ParseError);
  EXPECT_THROW(parse_program("x?["), ParseError);
  EXPECT_THROW(parse_program("new in 0"), ParseError);
  EXPECT_THROW(parse_program("def cell() = 0 in 0"), ParseError);  // lowercase
  EXPECT_THROW(parse_program("x![] |"), ParseError);
  EXPECT_THROW(parse_program("(x![]"), ParseError);
  EXPECT_THROW(parse_program("1"), ParseError);  // non-zero int as process
  EXPECT_THROW(parse_program("if 1 then 0 else 0 0"), ParseError);
}

// Round-trip: print(parse(src)) must be a fixpoint of parse∘print.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParsePrintFixpoint) {
  auto p1 = parse_program(GetParam());
  std::string s1 = calc::to_string(*p1);
  auto p2 = parse_program(s1);
  std::string s2 = calc::to_string(*p2);
  EXPECT_EQ(s1, s2) << "source: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    PaperPrograms, RoundTrip,
    ::testing::Values(
        "0",
        "x!read[r] | x?{ read(r) = r![9] }",
        "new x, y in (x![1] | y![2])",
        "def Cell(self, v) = self?{ read(r) = r![v] | Cell[self, v], "
        "write(u) = Cell[self, u] } in new x Cell[x, 9]",
        "export new p in p?(r) = r![42]",
        "import p from server in p![1]",
        "import Applet from server in Applet[1]",
        "export def Applet(x) = x![] in 0",
        "if 1 < 2 then print[\"y\"] else 0",
        "print[1, true, \"s\", 2.5]; print[2]",
        "server.p!req[1, 2]",
        "server.Applet[3]",
        "new a (r.p!v[1, a] | a?(y) = print[y])"));

}  // namespace
}  // namespace dityco::comp
