// Fleet-wide observability: discover every TyCOmon in a DiTyCO cluster
// from one seed, scrape them all, and stitch the results together.
//
// Discovery rides the transport's own gossip: every node's TyCOmon
// serves GET /peers — its node id, advertised address and monitor port
// plus the same for every peer it knows (monitor ports travel in the
// kHello/kPeers frames, net/tcp.hpp). discover() walks that graph
// transitively, so one `--join`-style seed URL reaches the whole fleet.
//
// Trace stitching is the hard part: TraceRing timestamps are
// steady_clock, which is meaningless across OS processes. Each node's
// /trace document therefore carries a clock anchor in "otherData"
// (obs::ExportMeta): the steady-clock and wall-clock readings taken at
// the same instant, plus the base subtracted from every ts. merge()
// rebases every event onto the shared wall clock
//   wall_us(ev) = wall_now_us - (steady_now_ns - ts_base_ns)/1000 + ts
// drops each node's local flow arrows, and regenerates s/t/f flow
// chains globally — an id that appears on two nodes (a FETCH's request
// and serve sides) becomes one arrow crossing process boundaries.
//
// Everything here is dependency-free (a hand-rolled blocking HTTP GET
// and a small recursive-descent JSON reader) and synchronous: callers
// are tools (tycotop, tycosh :fleet) and tests, not hot paths.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dityco::obs::fleet {

// -- tiny JSON reader ---------------------------------------------------

/// A parsed JSON value. Numbers keep their raw spelling so 64-bit
/// nanosecond anchors survive the trip (doubles alone would round).
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string raw;  // number spelling, or string value
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  double num() const;
  std::uint64_t u64() const;
  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  /// Convenience: find(key)->num() with a default.
  double num_or(const std::string& key, double def) const;
  std::uint64_t u64_or(const std::string& key, std::uint64_t def) const;
  std::string str_or(const std::string& key,
                     const std::string& def = "") const;
};

/// Parse a complete JSON document. Returns false (out untouched beyond
/// partial state) on malformed input.
bool parse_json(const std::string& text, Json& out);

// -- HTTP ---------------------------------------------------------------

/// Blocking GET http://host:port/path (HTTP/1.0, read to EOF). Returns
/// the response body, or empty on connect/read/status failure.
std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms = 5000);

/// Split "http://host:port[/...]" or bare "host:port" into host + port;
/// returns false on malformed input.
bool parse_url(const std::string& url, std::string& host,
               std::uint16_t& port);

// -- discovery ------------------------------------------------------------

/// One node's monitor endpoint, as discovered via /peers.
struct NodeEndpoint {
  std::uint32_t node = 0;
  std::string host;            // monitor host (from the transport address)
  std::uint16_t monitor = 0;   // TyCOmon port
  std::string hostport;        // transport address ("" for the seed self)
};

/// Walk /peers transitively from a seed monitor URL until no new
/// monitors appear. Unreachable peers are skipped; the seed itself is
/// always first when reachable. Returns empty on a dead seed.
///
/// A peer that gossips monitor port 0 runs without a TyCOmon (tycod
/// --monitor off) — it cannot be scraped but it IS part of the fleet:
/// it is skipped, never an error, and with `unmonitored` non-null its
/// node id is reported so aggregators (tycotop, the audit plane) can
/// mark the fleet view incomplete instead of silently under-counting.
std::vector<NodeEndpoint> discover(const std::string& seed_url,
                                   std::vector<std::uint32_t>* unmonitored =
                                       nullptr);

// -- stitching ------------------------------------------------------------

/// One event of the merged fleet timeline (exposed so tools can compute
/// cross-process operation latency without re-parsing the JSON).
struct FleetEvent {
  std::string ph;        // B E i b e
  std::string name;
  std::string cat;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double ts_us = 0;      // rebased onto the fleet-wide axis
  std::uint64_t trace_id = 0;
  std::uint64_t arg = 0;
};

struct MergedTrace {
  std::string json;               // one Chrome trace-event document
  std::vector<FleetEvent> events; // every event, rebased, in doc order
  std::size_t nodes = 0;          // documents merged
  std::size_t anchored = 0;       // documents that carried a clock anchor
};

/// Merge per-node /trace documents (see file header). Documents without
/// an anchor keep their local time base (offset 0) — fine for a single
/// process, skewed across several.
MergedTrace merge_traces(const std::vector<std::string>& docs);

/// Federate Prometheus text expositions: inject a node="N" label into
/// every sample line and concatenate. Input: (node id, /metrics body).
std::string federate_metrics(
    const std::vector<std::pair<std::uint32_t, std::string>>& texts);

/// Federate JSON expositions: {"nodes":[{"node":N,"metrics":<doc>}...]}.
/// Bodies are embedded verbatim (they are already JSON).
std::string federate_metrics_json(
    const std::vector<std::pair<std::uint32_t, std::string>>& docs);

// -- credit audit ---------------------------------------------------------
//
// Joins per-node /gc and /names documents by (owner node, owner site,
// kind, heap id) and checks the conservation invariant of the
// credit-based GC (DESIGN.md §GC invariants): for every export entry,
//
//   minted = returned + released_applied + Σ held + lag + in-flight
//
// where `held` sums remote netref balances plus name-service credit,
// and `lag` is Σ max(0, declared_releaser_cum - applied_slot) — credit a
// releaser has cumulatively RELed that the owner has not yet applied (a
// dropped REL, healed by gc_resend_ms). On an idle fleet in-flight is
// zero, so residual = outstanding - held - lag must be zero too.

/// One out-of-balance export entry, worst first in AuditReport.
struct AuditOffender {
  std::uint32_t owner_node = 0, owner_site = 0;
  int kind = 0;                  // 0 chan, 1 class
  std::uint64_t heap_id = 0;
  std::string ns_name;           // "site/name" when NS-bound, else ""
  std::uint64_t minted = 0, outstanding = 0, held = 0, lag = 0;
  std::int64_t residual = 0;     // outstanding - held - lag
  double age_ms = 0;             // since the entry's ledger last moved
  std::uint64_t trace = 0;       // trace id of the minting operation
  std::string why;               // "rel_lost" | "leak" | "over_release"
};

struct AuditReport {
  bool balanced = true;      // no confirmed anomaly of any class
  bool verifiable = true;    // every referenced node was scraped, fresh
  std::size_t nodes = 0;     // /gc documents joined
  std::size_t sites = 0;     // site snapshots joined (stale ones excluded)
  std::size_t entries = 0;   // credit-bearing export entries audited
  std::uint64_t outstanding = 0, held = 0, lag = 0;
  std::vector<AuditOffender> offenders;
  /// Imports holding credit for an export the (scraped) owner no longer
  /// has — over-released or corrupted ledgers.
  std::vector<std::string> orphan_imports;
  /// Name-service credit for an export the (scraped) owner no longer
  /// has, or an NS ledger that disagrees with the origin's export table.
  std::vector<std::string> ns_mismatches;
  /// Expected-but-missing node ids, plus stale site snapshots; anything
  /// here clears `verifiable`.
  std::vector<std::string> gaps;
  std::string to_json() const;
  std::string to_text() const;
};

/// Audit parsed /gc and /names documents. `expected_nodes` lists every
/// node id the fleet should contain (discovery view); nodes referenced
/// by any ledger but absent from the scrape make the report
/// unverifiable rather than imbalanced. Anomalies that depend only on
/// scraped data (REL lag, over-release, orphans) are confirmed
/// regardless of gaps.
AuditReport audit(const std::vector<Json>& gc_docs,
                  const std::vector<Json>& names_docs,
                  const std::vector<std::uint32_t>& expected_nodes = {});

}  // namespace dityco::obs::fleet
