// VM tests: compile-and-run of local programs, interpreter semantics,
// stats, error handling, segment serialisation, and a fake backend for
// the park/resume import machinery.
#include <gtest/gtest.h>

#include <algorithm>

#include "calculus/reducer.hpp"
#include "compiler/codegen.hpp"
#include "compiler/parser.hpp"
#include "vm/machine.hpp"

namespace dityco::vm {
namespace {

using comp::compile_source;

/// Run a single-site program to completion; returns the machine.
Machine run_local(std::string_view src, std::uint64_t budget = 1'000'000) {
  Machine m("main");
  m.spawn_program(compile_source(src));
  m.run(budget);
  return m;
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Vm, PrintLiterals) {
  auto m = run_local("print[1, true, \"hi\", 2.5]");
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"1 true hi 2.5"});
}

TEST(Vm, PrintContinuation) {
  auto m = run_local("print[1]; print[2]; print[3]");
  EXPECT_EQ(m.output(), (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Vm, Arithmetic) {
  auto m = run_local(
      "print[1 + 2 * 3, 10 % 3, 7 / 2, -4, 2.5 + 1, \"a\" ++ \"b\", "
      "1 < 2, 2 <= 1, true && false, true || false, !true, 3 == 3, 3 != 3]");
  ASSERT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output()[0],
            "7 1 3 -4 3.5 ab true false false true false true false");
}

TEST(Vm, LargeIntImmediates) {
  auto m = run_local("print[1234567890123, -9876543210]");
  EXPECT_EQ(m.output(), std::vector<std::string>{"1234567890123 -9876543210"});
}

TEST(Vm, BasicCommunication) {
  auto m = run_local("new x (x!greet[41] | x?{ greet(v) = print[v + 1] })");
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"42"});
  EXPECT_EQ(m.stats().comm_reductions, 1u);
}

TEST(Vm, ObjectBeforeMessage) {
  auto m = run_local("new x (x?(v) = print[v] | x![5])");
  EXPECT_EQ(m.output(), std::vector<std::string>{"5"});
}

TEST(Vm, MethodSelection) {
  auto m = run_local(
      "new x (x!b[2] | x?{ a(v) = print[\"a\", v], b(v) = print[\"b\", v] })");
  EXPECT_EQ(m.output(), std::vector<std::string>{"b 2"});
}

TEST(Vm, PaperCellExample) {
  auto m = run_local(
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
      "write(u) = Cell[self, u] } in "
      "new x (Cell[x, 9] | new z (x!read[z] | z?(w) = print[w]))");
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"9"});
  EXPECT_EQ(m.stats().inst_reductions, 2u);
  EXPECT_EQ(m.stats().comm_reductions, 2u);
}

TEST(Vm, PolymorphicCells) {
  auto m = run_local(
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
      "write(u) = Cell[self, u] } in "
      "new x, y (Cell[x, 9] | Cell[y, true] "
      "| new z (x!read[z] | z?(w) = print[w]) "
      "| new t (y!read[t] | t?(w) = print[w]))");
  EXPECT_EQ(sorted(m.output()), (std::vector<std::string>{"9", "true"}));
}

TEST(Vm, MutualRecursion) {
  auto m = run_local(
      "def Even(n, r) = if n == 0 then r![true] else Odd[n - 1, r] "
      "and Odd(n, r) = if n == 0 then r![false] else Even[n - 1, r] "
      "in new out (Even[8, out] | out?(b) = print[b])");
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"true"});
  EXPECT_EQ(m.stats().inst_reductions, 9u);
}

TEST(Vm, NestedObjectsCaptureEnvironment) {
  auto m = run_local(
      "new a, b (a![10] | a?(x) = b?{ get(r) = r![x * x] } | "
      "new r (b!get[r] | r?(v) = print[v]))");
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"100"});
}

TEST(Vm, SiblingClassFromNestedObject) {
  // Cell's method body instantiates the enclosing class from inside an
  // object: the class value is captured into the object closure.
  auto m = run_local(
      "def Count(self, n) = self?{ tick(r) = (r![n] | Count[self, n + 1]) } "
      "in new c (Count[c, 0] | "
      "new r1 (c!tick[r1] | r1?(a) = new r2 (c!tick[r2] | r2?(b) = "
      "print[a, b])))");
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"0 1"});
}

TEST(Vm, FreeNamesAreSiteGlobals) {
  Machine m("main");
  m.spawn_program(compile_source("x![5]"));
  m.spawn_program(compile_source("x?(v) = print[v]"));
  m.run(10'000);
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"5"});
}

TEST(Vm, IoPortFeedsRunningPrograms) {
  // The paper's per-site I/O port: users provide data to running
  // programs. The program listens on the free name `io`; the host
  // injects values into it.
  Machine m("main");
  m.spawn_program(compile_source(
      "def Echo(self) = self?{ val(v) = (print[\"in:\", v] | Echo[self]) } "
      "in Echo[io]"));
  m.run(10'000);
  EXPECT_TRUE(m.output().empty());
  m.io_send("io", "val", {Value::make_int(7)});
  m.io_send("io", "val", {Value::make_str(m.intern_string("hello"))});
  m.run(10'000);
  EXPECT_EQ(m.output(), (std::vector<std::string>{"in: 7", "in: hello"}));
}

TEST(Vm, IoPortCreatesChannelWhenProgramNotYetListening) {
  Machine m("main");
  m.io_send("io", "val", {Value::make_bool(true)});
  m.spawn_program(compile_source("io?(v) = print[v]"));
  m.run(10'000);
  EXPECT_EQ(m.output(), std::vector<std::string>{"true"});
}

TEST(Vm, IfBranchScopes) {
  // Bindings materialised in one branch must not corrupt the other.
  auto m = run_local(
      "if 1 < 2 then (new a (a![1] | a?(v) = print[\"t\", v])) "
      "else (new b (b![2] | b?(v) = print[\"e\", v]))");
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"t 1"});
}

TEST(Vm, DeepParFanout) {
  // Three messages race toward a chain of ephemeral objects; each object
  // consumes exactly one message (objects are linear in TyCO).
  auto m = run_local(
      "new x (x?{ v(a) = (print[a] | x?{ v(b) = (print[b] | x?{ v(c) = 0 }) "
      "}) } | x!v[1] | x!v[2] | x!v[3])");
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output().size(), 2u);
  auto out = sorted(m.output());
  EXPECT_TRUE(out == (std::vector<std::string>{"1", "2"}) ||
              out == (std::vector<std::string>{"1", "3"}) ||
              out == (std::vector<std::string>{"2", "3"}));
}

// ---- counters / introspection ----------------------------------------

TEST(Vm, PendingCountsTracked) {
  auto m = run_local("new x (x![1] | x![2] | new y y?(v) = 0)");
  EXPECT_EQ(m.pending_messages(), 2u);
  EXPECT_EQ(m.pending_objects(), 1u);
  EXPECT_TRUE(m.idle());
}

TEST(Vm, InstructionBudgetPreemption) {
  Machine m("main");
  m.spawn_program(compile_source("def Loop(n) = Loop[n + 1] in Loop[0]"));
  const auto ran = m.run(1000);
  EXPECT_LE(ran, 1000u);
  EXPECT_FALSE(m.idle()) << "loop must survive preemption";
  m.run(1000);
  EXPECT_FALSE(m.idle());
  EXPECT_GE(m.stats().inst_reductions, 10u);
}

TEST(Vm, ForkCounted) {
  auto m = run_local("print[1] | print[2] | print[3]");
  EXPECT_EQ(m.stats().forks, 2u);
  EXPECT_EQ(m.stats().prints, 3u);
}

// ---- error handling ----------------------------------------------------

TEST(Vm, MethodNotUnderstood) {
  auto m = run_local("new x (x!nosuch[] | x?{ l(v) = 0 })");
  ASSERT_EQ(m.errors().size(), 1u);
  EXPECT_NE(m.errors()[0].find("nosuch"), std::string::npos);
  EXPECT_EQ(m.pending_objects(), 1u);
}

TEST(Vm, ArityMismatch) {
  auto m = run_local("new x (x!l[1, 2] | x?{ l(v) = 0 })");
  ASSERT_EQ(m.errors().size(), 1u);
  EXPECT_NE(m.errors()[0].find("arity"), std::string::npos);
}

TEST(Vm, DivisionByZero) {
  auto m = run_local("print[1 / 0]");
  ASSERT_EQ(m.errors().size(), 1u);
  EXPECT_TRUE(m.output().empty());
}

TEST(Vm, MessageToNonChannel) {
  auto m = run_local("new x (x![1] | x?(v) = v!go[])");
  ASSERT_EQ(m.errors().size(), 1u);
  EXPECT_NE(m.errors()[0].find("target"), std::string::npos);
}

TEST(Vm, RemoteWithoutBackendErrors) {
  auto m = run_local("import p from elsewhere in p![1]");
  ASSERT_EQ(m.errors().size(), 1u);
  EXPECT_NE(m.errors()[0].find("backend"), std::string::npos);
}

TEST(CompileErrors, UnboundClass) {
  EXPECT_THROW(compile_source("Ghost[1]"), comp::CompileError);
}

TEST(CompileErrors, LocatedIdentifierRejected) {
  EXPECT_THROW(compile_source("s.x![1]"), comp::CompileError);
  EXPECT_THROW(compile_source("s.X[1]"), comp::CompileError);
}

TEST(CompileErrors, DuplicateMethodLabel) {
  EXPECT_THROW(compile_source("new x x?{ l(a) = 0, l(b) = 0 }"),
               comp::CompileError);
}

TEST(CompileErrors, DuplicateClass) {
  EXPECT_THROW(compile_source("def A() = 0 and A() = 0 in 0"),
               comp::CompileError);
}

TEST(CompileErrors, DuplicateParam) {
  EXPECT_THROW(compile_source("def A(x, x) = 0 in 0"), comp::CompileError);
}

// ---- fake backend: park/resume and export routing ----------------------

class FakeBackend : public RemoteBackend {
 public:
  void ship_message(Machine&, const NetRef&, const std::string&,
                    std::vector<Value>) override {
    ++ships;
  }
  void ship_object(Machine&, const NetRef&, std::uint32_t,
                   std::vector<Value>) override {
    ++ships;
  }
  void fetch_instantiate(Machine&, const NetRef&, std::vector<Value>) override {
    ++fetches;
  }
  void export_name(Machine& m, const std::string& name, Value chan) override {
    exported[name] = m.export_chan(chan.idx);
  }
  void export_class(Machine& m, const std::string& name, Value cls) override {
    exported[name] = m.export_class_value(cls);
  }
  void import_name(Machine& m, const std::string&, const std::string& name,
                   std::uint64_t token) override {
    if (synchronous) {
      // Resolve to the locally exported channel (loopback).
      m.resume_import(token, m.resolve_exported_chan(exported.at(name)));
    } else {
      pending.emplace_back(token, name);
    }
  }
  void import_class(Machine& m, const std::string& s, const std::string& n,
                    std::uint64_t t) override {
    import_name(m, s, n, t);
  }

  bool synchronous = true;
  int ships = 0;
  int fetches = 0;
  std::map<std::string, std::uint64_t> exported;
  std::vector<std::pair<std::uint64_t, std::string>> pending;
};

TEST(VmBackend, LoopbackImportExport) {
  FakeBackend be;
  Machine m("main", 0, 0, &be);
  m.spawn_program(compile_source(
      "export new p in p?{ val(x, r) = r![x * 2] } | "
      "import p from main in let z = p![21] in print[z]"));
  m.run(100'000);
  EXPECT_TRUE(m.errors().empty());
  EXPECT_EQ(m.output(), std::vector<std::string>{"42"});
}

TEST(VmBackend, AsynchronousImportParksFrame) {
  FakeBackend be;
  be.synchronous = false;
  Machine m("main", 0, 0, &be);
  m.spawn_program(compile_source(
      "export new p in p?{ val(r) = r![7] } | "
      "import p from main in let z = p![] in print[z]"));
  m.run(100'000);
  EXPECT_TRUE(m.idle());
  EXPECT_EQ(m.parked(), 1u);
  ASSERT_EQ(be.pending.size(), 1u);
  // Deliver the lookup reply; the frame resumes and completes the RPC.
  m.resume_import(be.pending[0].first,
                  m.resolve_exported_chan(be.exported.at("p")));
  m.run(100'000);
  EXPECT_EQ(m.parked(), 0u);
  EXPECT_EQ(m.output(), std::vector<std::string>{"7"});
}

TEST(VmBackend, ShipMessageInvokedForNetRef) {
  FakeBackend be;
  Machine m("main", 0, 0, &be);
  const std::uint32_t ref =
      m.intern_netref(NetRef{NetRef::Kind::kChan, 9, 9, 1});
  Frame f;
  f.seg = m.load_program(compile_source("x!go[1]"));
  f.locals.push_back(Value::make_netref(ref));
  // Overwrite the global x binding: run the frame at pc past kGlobal.
  // Simpler: send via channel_send path is local; instead check that a
  // netref-valued target routes to the backend by delivering it through
  // an object parameter.
  Machine m2("main", 0, 0, &be);
  m2.spawn_program(compile_source("new c (c?(t) = t!go[1])"));
  m2.run(1000);
  const std::uint32_t ref2 =
      m2.intern_netref(NetRef{NetRef::Kind::kChan, 9, 9, 1});
  // Feed the netref to the waiting object via the exported channel path.
  // The object waits at channel c (index 0 in the heap).
  m2.channel_send(0, m2.intern_label("val"),
                  {Value::make_netref(ref2)});
  m2.run(1000);
  EXPECT_EQ(be.ships, 1);
  EXPECT_TRUE(m2.errors().empty());
}

// ---- segments -----------------------------------------------------------

TEST(Segments, SerializeRoundTrip) {
  auto prog = compile_source(
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]) } in "
      "new x (Cell[x, 2.5] | x!read[x])");
  for (const auto& seg : prog.segments) {
    Writer w;
    seg.serialize(w);
    Reader r(w.data());
    Segment back = Segment::deserialize(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(back.guid, seg.guid);
    EXPECT_EQ(back.code, seg.code);
    EXPECT_EQ(back.labels, seg.labels);
    EXPECT_EQ(back.strings, seg.strings);
    EXPECT_EQ(back.floats, seg.floats);
    EXPECT_EQ(back.deps, seg.deps);
  }
}

TEST(Segments, ProgramByteSizeNonTrivial) {
  auto prog = compile_source("print[1]");
  EXPECT_GT(prog.byte_size(), 0u);
}

TEST(Segments, DisassemblerCoversAllOps) {
  auto prog = compile_source(
      "def C(x) = x![1] in new a (C[a] | a?(v) = "
      "(if v == 1 then print[\"one\" ++ \"!\"] else print[2.5] | a![-v]))");
  const std::string dis = comp::disassemble(prog);
  EXPECT_NE(dis.find("mkblock"), std::string::npos);
  EXPECT_NE(dis.find("instof"), std::string::npos);
  EXPECT_NE(dis.find("trobj"), std::string::npos);
  EXPECT_NE(dis.find("fork"), std::string::npos);
  EXPECT_NE(dis.find("jmpf"), std::string::npos);
}

TEST(Segments, ClosureCollection) {
  Machine m("main");
  auto prog = compile_source(
      "def C() = new x (x?{ l() = 0 } | x!l[]) in C[]");
  const std::uint32_t root = m.load_program(prog);
  std::vector<Segment> closure;
  m.collect_closure(root, closure);
  EXPECT_EQ(closure.size(), prog.segments.size())
      << "root closure must cover the whole program here";
}

// ---- differential tests against the reference reducer -------------------

class Differential : public ::testing::TestWithParam<const char*> {};

TEST_P(Differential, VmMatchesReducer) {
  const char* src = GetParam();

  calc::Reducer red;
  red.add_program("main", comp::parse_program(src));
  auto rres = red.run();
  ASSERT_TRUE(rres.errors.empty()) << rres.errors[0];

  auto m = run_local(src);
  ASSERT_TRUE(m.errors().empty()) << m.errors()[0];

  EXPECT_EQ(sorted(m.output()), sorted(red.output("main"))) << src;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, Differential,
    ::testing::Values(
        "print[42]",
        "print[1]; print[2]",
        "new x (x![1] | x?(v) = print[v])",
        "new x (x?(v) = print[v] | x![1])",
        "new x (x!a[1] | x!a[2] | x?{ a(v) = (print[v] | x?{ a(w) = print[w] "
        "}) })",
        "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
        "write(u) = Cell[self, u] } in "
        "new x (Cell[x, 9] | new z (x!read[z] | z?(w) = print[w]))",
        "def F(n, acc, r) = if n == 0 then r![acc] else F[n - 1, acc * n, r] "
        "in new out (F[10, 1, out] | out?(v) = print[v])",
        "def Even(n, r) = if n == 0 then r![true] else Odd[n - 1, r] "
        "and Odd(n, r) = if n == 0 then r![false] else Even[n - 1, r] "
        "in new o (Even[5, o] | o?(b) = print[b])",
        "x![3] | x?(v) = print[v * v]",
        "new a, b (a![1] | b![2] | a?(x) = b?(y) = print[x + y])",
        "print[\"s\" ++ \"t\", 1.5 * 2, 7 % 4, -(3 - 5)]",
        "if 2 > 1 then (if false then print[0] else print[1]) else print[2]",
        "let z = c![] in print[z] | c?(r) = r![99]"));

}  // namespace
}  // namespace dityco::vm
