// Chrome trace-event / Perfetto export (observability layer, part 3 of 3).
//
// Merges per-site and per-node TraceRing snapshots into one JSON timeline
// in the Chrome trace-event format (load it in chrome://tracing or
// https://ui.perfetto.dev). Mapping:
//
//   * pid  = node id (one "process" per cluster node),
//   * tid  = a thread line per site (and one for the node daemon),
//   * run-slices  -> "B"/"E" duration events,
//   * everything else -> "i" instant events,
//   * events sharing a non-zero trace id -> an "s"/"t"/"f" flow chain,
//     which Perfetto draws as arrows following a SHIPM/SHIPO/FETCH/NS
//     operation across sites.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dityco::obs {

/// One thread line of the merged timeline.
struct ThreadTrace {
  std::string name;        // e.g. "site client" or "daemon"
  std::uint32_t pid = 0;   // node id
  std::uint32_t tid = 0;   // line within the node
  std::vector<TraceEvent> events;
};

/// Render the merged timeline as a Chrome trace-event JSON document.
std::string chrome_trace_json(const std::vector<ThreadTrace>& traces);

}  // namespace dityco::obs
