#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace dityco::obs {

const char* event_name(EventType t) {
  switch (t) {
    case EventType::kComm: return "COMM";
    case EventType::kInst: return "INST";
    case EventType::kShipMsgOut: return "SHIPM-out";
    case EventType::kShipMsgIn: return "SHIPM-in";
    case EventType::kShipObjOut: return "SHIPO-out";
    case EventType::kShipObjIn: return "SHIPO-in";
    case EventType::kFetchReq: return "FETCH-req";
    case EventType::kFetchHit: return "FETCH-hit";
    case EventType::kFetchServed: return "FETCH-served";
    case EventType::kFetchReply: return "FETCH-reply";
    case EventType::kNsExport: return "NS-export";
    case EventType::kNsLookup: return "NS-lookup";
    case EventType::kNsReply: return "NS-reply";
    case EventType::kPacketSend: return "packet-send";
    case EventType::kPacketRecv: return "packet-recv";
    case EventType::kSliceBegin: return "run-slice";
    case EventType::kSliceEnd: return "run-slice";
    case EventType::kRelOut: return "REL-out";
    case EventType::kRelIn: return "REL-in";
    case EventType::kTcpSend: return "tcp-send";
    case EventType::kTcpRecv: return "tcp-recv";
    case EventType::kTcpReconnect: return "tcp-reconnect";
    case EventType::kTcpPeerDead: return "tcp-peer-dead";
  }
  return "?";
}

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool trace_id_sampled(std::uint64_t id, std::uint64_t every,
                      std::uint64_t seed) {
  if (every <= 1) return true;
  // splitmix64 finaliser: decorrelates the decision from the monotonic
  // id sequence so 1-in-N means a uniform N-th of ids, not id % N.
  std::uint64_t z = id ^ seed;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z % every == 0;
}

void TraceRing::enable(std::size_t capacity, std::uint32_t node,
                       std::uint32_t site) {
  std::size_t cap = 1;
  while (cap < capacity) cap <<= 1;
  slots_ = std::make_unique<Slot[]>(cap);
  capacity_ = cap;
  node_ = node;
  site_ = site;
  head_.store(0, std::memory_order_release);
  mask_ = cap - 1;
}

void TraceRing::record_at(std::uint64_t ts_ns, EventType t,
                          std::uint64_t trace_id, std::uint64_t arg) {
  if (mask_ == 0) return;
  // Single producer: a plain load + release store beats fetch_add and
  // keeps the slot writes strictly before the published head.
  const std::uint64_t seq = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[seq & mask_];
  s.type.store(static_cast<std::uint64_t>(t), std::memory_order_relaxed);
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.ts_ns.store(ts_ns, std::memory_order_relaxed);
  head_.store(seq + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  if (mask_ == 0) return out;
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t lo = h > capacity_ ? h - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(h - lo));
  for (std::uint64_t i = lo; i < h; ++i) {
    const Slot& s = slots_[i & mask_];
    TraceEvent e;
    e.type = static_cast<EventType>(s.type.load(std::memory_order_relaxed));
    e.node = node_;
    e.site = site_;
    e.trace_id = s.trace_id.load(std::memory_order_relaxed);
    e.arg = s.arg.load(std::memory_order_relaxed);
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    out.push_back(e);
  }
  // If the producer lapped us mid-copy, the overtaken entries were
  // overwritten under our feet: drop them (best-effort live snapshot).
  const std::uint64_t h2 = head_.load(std::memory_order_acquire);
  if (h2 > capacity_ && h2 - capacity_ > lo) {
    const std::uint64_t stale = std::min<std::uint64_t>(
        h2 - capacity_ - lo, out.size());
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(stale));
  }
  return out;
}

}  // namespace dityco::obs
