// A DiTyCO node (paper, section 5, fig. 4): a pool of sites plus the
// communication daemon TyCOd. One Node corresponds to one IP node of the
// cluster. The daemon logic is exposed as pump functions so that the
// three drivers (sequential, threaded, simulated) can execute it on their
// own schedule; in the threaded driver a dedicated daemon thread runs
// them, exactly as in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/nameservice.hpp"
#include "core/site.hpp"
#include "net/transport.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace dityco::ns {
class LeaseCache;
class ShardRouter;
}  // namespace dityco::ns

namespace dityco::core {

/// Destination site id encoded in a packet header (for routing and for
/// the sim driver's clock accounting).
std::uint32_t packet_dst_site(const net::Packet& p);
/// True for packets addressed to the name service rather than a site.
bool packet_is_ns(const net::Packet& p);

class Node {
 public:
  Node(std::uint32_t id, NameService& ns, obs::Registry* metrics = nullptr)
      : id_(id), ns_(&ns), metrics_(metrics) {}

  std::uint32_t id() const { return id_; }

  /// Switch this node to a local name-service replica (the distributed
  /// name service the paper lists as future work): lookups are answered
  /// on-node and exports are broadcast to every other node's replica.
  void enable_local_ns(std::uint32_t n_nodes);

  /// Decentralise the directory (src/ns): this node hosts a local
  /// NameService instance holding only the shard slice the rendezvous
  /// `router` assigns it (plus weak follower copies of its neighbour's
  /// slice). Sites route per-key via the router; `cache`, when non-null,
  /// is this node's lease cache and `lease_tracking` makes the hosted
  /// slice record lease holders so rebinds push kNsInvalidate frames.
  void enable_sharded_ns(ns::ShardRouter* router, ns::LeaseCache* cache,
                         bool lease_tracking);
  ns::ShardRouter* ns_router() { return router_; }
  ns::LeaseCache* lease_cache() { return ns_cache_; }
  /// Fold gossiped death advisories into the shard map (sharded NS over
  /// TCP; called by the daemon thread when the transport's advisory set
  /// changes). Moves shard ownership and re-replicates our slice, but
  /// never evicts bindings or writes off credit — those wait for the
  /// local detector's own kPeerDown verdict.
  void ns_merge_dead(const std::vector<std::uint32_t>& dead,
                     net::Transport& t, double now_us);
  NameService& name_service() { return *ns_; }
  const NameService& name_service() const { return *ns_; }

  Site& add_site(const std::string& name);
  std::vector<std::unique_ptr<Site>>& sites() { return sites_; }
  const std::vector<std::unique_ptr<Site>>& sites() const { return sites_; }

  /// TyCOd, outbound half: drain one site's outgoing queue. Local
  /// destinations (same node) are delivered directly — the paper's
  /// shared-memory optimisation — while remote ones go to the transport.
  /// Returns packets moved.
  std::size_t pump_site_outgoing(net::Transport& t, std::size_t site_idx,
                                 double now_us);
  std::size_t pump_outgoing(net::Transport& t, double now_us);

  /// TyCOd, inbound half: drain the transport inbox and route. Returns
  /// packets moved.
  std::size_t pump_incoming(net::Transport& t, double now_us);

  /// Route one packet addressed to this node (from the transport or from
  /// a local site). Needs the transport to forward name-service replies.
  void route(net::Packet p, net::Transport& t, double now_us);

  /// Packets delivered site-to-site within this node without touching the
  /// transport (the shared-memory optimisation of section 5).
  std::uint64_t local_deliveries() const { return local_deliveries_; }

  // -- observability --

  /// Enable event tracing on every current and future site of this node,
  /// plus a daemon-side ring recording packet send/recv and name-service
  /// traffic. The daemon ring is written only by whichever thread runs
  /// the pump functions (one thread per node in the threaded driver).
  /// `sample_every` > 1 keeps 1-in-N trace ids (see obs::trace_id_sampled);
  /// hops honour the wire-carried decision, so every site/daemon of the
  /// network agrees on the sampled id set regardless of who allocated it.
  void enable_tracing(std::size_t capacity, std::uint64_t sample_every = 1,
                      std::uint64_t sample_seed = 0);
  obs::TraceRing& daemon_ring() { return ring_; }
  const obs::TraceRing& daemon_ring() const { return ring_; }

  /// Tail-based retention: record *all* trace ids into the rings (the
  /// flight recorder decides post-hoc which survive) and attach the
  /// recorder to every current and future site. /trace re-filters to the
  /// sampled subset, so head sampling semantics are preserved.
  void set_flight(obs::FlightRecorder* f);
  /// Attach the SLO plane's request ledger to every current and future
  /// site (obs/slo.hpp; the Network owns the plane).
  void set_slo(obs::SloPlane* s);
  /// Enable the sampled VM profiler on every current and future site.
  void enable_profiling(std::uint64_t period);

 private:
  /// Sharded failover: confirm `dead` in the shard map, evict its
  /// bindings from the local slice (pushing lease invalidations), and
  /// re-replicate every binding this node now owns as primary to its
  /// new follower.
  void ns_handle_dead(std::uint32_t dead, net::Transport& t, double now_us);
  /// Push a weak copy of every binding this node serves as primary to
  /// its current follower (replication repair after a map change).
  void ns_reshard(net::Transport& t, double now_us);

  std::uint64_t local_deliveries_ = 0;
  std::uint32_t id_;
  NameService* ns_;
  obs::Registry* metrics_ = nullptr;
  std::unique_ptr<NameService> replica_;  // set by enable_local/sharded_ns
  std::uint32_t broadcast_nodes_ = 0;     // >0 when replicated
  ns::ShardRouter* router_ = nullptr;     // set by enable_sharded_ns
  ns::LeaseCache* ns_cache_ = nullptr;    // this node's lease cache
  std::vector<std::unique_ptr<Site>> sites_;
  std::size_t trace_capacity_ = 0;  // 0 = tracing off for new sites
  std::uint64_t sample_every_ = 1, sample_seed_ = 0;
  obs::FlightRecorder* flight_ = nullptr;  // set by set_flight
  obs::SloPlane* slo_ = nullptr;           // set by set_slo
  std::uint64_t prof_period_ = 0;          // 0 = profiling off
  obs::TraceRing ring_;             // daemon-side events
};

}  // namespace dityco::core
