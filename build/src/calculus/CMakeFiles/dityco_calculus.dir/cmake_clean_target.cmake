file(REMOVE_RECURSE
  "libdityco_calculus.a"
)
