// Sampled VM execution profiler: obs::Profiler unit behaviour (key
// packing, probe-limit overflow, names, concurrent snapshots) and its
// integration into vm::Machine — instruction-count-triggered samples
// attributed to (opcode, definition), folded-stack rendering, the
// run-queue wait histogram, and a threaded run scraped mid-flight
// (exercised under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "compiler/codegen.hpp"
#include "compiler/parser.hpp"
#include "core/network.hpp"
#include "obs/profile.hpp"
#include "vm/machine.hpp"

namespace dityco {
namespace {

// ---------------------------------------------------------------------
// obs::Profiler
// ---------------------------------------------------------------------

TEST(Profiler, DisabledByDefaultAndAfterZeroPeriod) {
  obs::Profiler p;
  EXPECT_FALSE(p.enabled());
  p.enable(4);
  EXPECT_TRUE(p.enabled());
  EXPECT_EQ(p.period(), 4u);
}

TEST(Profiler, SamplesAccumulatePerOpcodeContextPair) {
  obs::Profiler p;
  p.enable(1);
  p.sample(/*op=*/3, /*ctx=*/0);
  p.sample(3, 0);
  p.sample(7, 0);
  p.sample(3, 1);
  EXPECT_EQ(p.total(), 4u);
  const auto snap = p.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  std::uint64_t seen_3_0 = 0;
  for (const auto& s : snap)
    if (s.op == 3 && s.ctx == 0) seen_3_0 = s.count;
  EXPECT_EQ(seen_3_0, 2u);
}

TEST(Profiler, OpcodeZeroInContextZeroIsNotLostAsEmpty) {
  // make_key sets bit 63, so (op=0, ctx=0) must be distinguishable
  // from an empty cell.
  obs::Profiler p;
  p.enable(1);
  p.sample(0, 0);
  const auto snap = p.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].op, 0u);
  EXPECT_EQ(snap[0].ctx, 0u);
  EXPECT_EQ(snap[0].count, 1u);
}

TEST(Profiler, ContextNamesRoundTrip) {
  obs::Profiler p;
  p.set_context_name(5, "Serve");
  EXPECT_EQ(p.context_name(5), "Serve");
  EXPECT_FALSE(p.context_name(6).empty()) << "unknown slots get a fallback";
}

TEST(Profiler, OverflowIsCountedNotCrashed) {
  obs::Profiler p;
  p.enable(1);
  // Far more distinct keys than the 2048-cell table can hold: the
  // spill must land in overflow(), never corrupt existing cells.
  for (std::uint32_t ctx = 0; ctx < 5000; ++ctx) p.sample(1, ctx);
  EXPECT_GT(p.overflow(), 0u);
  // total() counts kept samples; every attempt is either kept or spilt.
  EXPECT_EQ(p.total() + p.overflow(), 5000u);
  std::uint64_t kept = 0;
  for (const auto& s : p.snapshot()) kept += s.count;
  EXPECT_EQ(kept, p.total());
}

TEST(Profiler, SnapshotRacesWriterCleanly) {
  obs::Profiler p;
  p.enable(1);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& s : p.snapshot()) {
        // A snapshot cell must always decode to the key it was
        // published under (counts may lag; pairs may not tear).
        EXPECT_LT(s.op, 64u);
        EXPECT_LT(s.ctx, 64u);
      }
    }
  });
  for (int i = 0; i < 200'000; ++i)
    p.sample(static_cast<std::uint32_t>(i % 64),
             static_cast<std::uint32_t>((i / 64) % 64));
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(p.total() + p.overflow(), 200'000u);
}

// ---------------------------------------------------------------------
// vm::Machine integration
// ---------------------------------------------------------------------

TEST(MachineProfile, FoldedStacksNameTheHotDefinition) {
  vm::Machine m("main");
  m.enable_profiling(/*period=*/8);
  m.spawn_program(comp::compile_source(
      "def Spin(i) = if i == 0 then print[\"done\"] else Spin[i - 1] in "
      "Spin[2000]"));
  m.run(1'000'000);
  EXPECT_TRUE(m.errors().empty());
  EXPECT_GT(m.profiler().total(), 0u);
  const std::string folded = m.profile_folded();
  ASSERT_FALSE(folded.empty());
  EXPECT_NE(folded.find("main;"), std::string::npos) << folded;
  EXPECT_NE(folded.find(";Spin;"), std::string::npos)
      << "the compiler-stamped definition name must reach the fold:\n"
      << folded;
}

TEST(MachineProfile, DisabledMachineEmitsNothing) {
  vm::Machine m("main");
  m.spawn_program(comp::compile_source("print[1 + 1]"));
  m.run(100'000);
  EXPECT_EQ(m.profiler().total(), 0u);
  EXPECT_TRUE(m.profile_folded().empty());
}

TEST(MachineProfile, RunWaitHistogramFillsWhenProfiling) {
  vm::Machine m("main");
  m.enable_profiling(16);
  m.spawn_program(comp::compile_source(
      "def Ping(n) = if n == 0 then 0 else new a (a![n] | a?(v) = "
      "Ping[v - 1]) in Ping[300]"));
  m.run(1'000'000);
  EXPECT_TRUE(m.errors().empty());
  // Each reduction re-enqueues a frame; its queue-wait must have been
  // observed.
  EXPECT_GT(m.run_wait_histogram().snapshot().total, 0u);
}

// ---------------------------------------------------------------------
// Network plumbing: scrape-while-running (the TSan target)
// ---------------------------------------------------------------------

TEST(NetworkProfile, ThreadedRunSnapshotsProfilerConcurrently) {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kThreaded;
  cfg.timeout_ms = 10'000;
  core::Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.enable_profiling(/*period=*/32);
  net.submit_source("server",
                    "def S(self) = self?{ val(x, r) = (r![x + 1] | S[self]) } "
                    "in export new p in S[p]");
  net.submit_source(
      "client",
      "import p from server in "
      "def Drive(n) = if n == 0 then print[\"done\"] else "
      "new a (p![n, a] | a?(v) = Drive[n - 1]) in Drive[200]");
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string folded = net.profile_folded();
      (void)folded;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto res = net.run();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"done"});
  const std::string folded = net.profile_folded();
  EXPECT_NE(folded.find(";Drive;"), std::string::npos) << folded;
}

}  // namespace
}  // namespace dityco
