#!/usr/bin/env bash
# Sharded name-service smoke test (docs/NAMESERVICE.md): launch FOUR
# tycod daemons on loopback with the directory sharded across all of
# them (--ns-shards 4 --ns-replicas 1), each exporting a persistent
# echo service so real bindings land on several shard slices, then
# drive a register/lookup/unregister storm with
# `tycoload --scenario fetch-churn` — SIGKILLing node 2 (a shard
# primary) mid-run — and assert the failover path end to end:
#
#   * tycoload survives the kill (exit 0, completions on both sides
#     of it): the generator's own rendezvous router re-aims churn
#     names at the promoted owners, so lookups KEEP RESOLVING;
#   * every survivor's /names reports the sharded directory with
#     node 2 in the confirmed-dead set (the shard map converged);
#   * `tycotop --names` federates the per-shard slices from one seed
#     monitor and exits 0 (the PR 10 shard-aware fleet view);
#   * the fleet audits BALANCED after the handoff (`tycotop --audit`
#     exit 0) and no survivor ever counted a credit imbalance
#     (gc_audit_imbalance == 0 on every live node): the dead
#     primary's held credit was written off and its bindings
#     re-replicated without losing or double-counting a unit.
#
# Used by CI; run locally as
#   tools/ns_smoke.sh [tycod] [tycoload] [tycotop]
set -u

TYCOD="${1:-build/tools/tycod}"
TYCOLOAD="${2:-build/tools/tycoload}"
TYCOTOP="${3:-build/tools/tycotop}"
for bin in "$TYCOD" "$TYCOLOAD" "$TYCOTOP"; do
  if [ ! -x "$bin" ]; then
    echo "ns_smoke: no binary at $bin" >&2
    exit 2
  fi
done

OUT0="$(mktemp)"
OUT1="$(mktemp)"
OUT2="$(mktemp)"
OUT3="$(mktemp)"
LOAD="$(mktemp)"
NAMES="$(mktemp)"
AUDIT="$(mktemp)"
trap 'kill -9 "$PID0" "$PID1" "$PID2" "$PID3" 2>/dev/null;
      rm -f "$OUT0" "$OUT1" "$OUT2" "$OUT3" "$LOAD" "$NAMES" "$AUDIT"' EXIT

fail=0

scrape() {
  # First match of sed pattern $2 in log $1 while pid $3 stays alive.
  local log="$1" pat="$2" pid="$3" got=""
  for _ in $(seq 1 100); do
    got="$(sed -n "$pat" "$log" | head -n 1)"
    [ -n "$got" ] && { echo "$got"; return 0; }
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

wait_port() {
  scrape "$1" 's#^tycod node[0-9]* listening on 127\.0\.0\.1:\([0-9]*\)$#\1#p' "$2"
}

wait_mon() {
  scrape "$1" 's#^tycomon listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$2"
}

# ---------------------------------------------------------------------
# Four daemons, one shard slice each, one follower per slice
# ---------------------------------------------------------------------

SRV='export new svc in def Serve(self) = self?{ val(x, r) = (r![x + 1] | Serve[self]) } in Serve[svc]'
COMMON="--monitor 0 --ns-shards 4 --ns-replicas 1 \
  --gc-resend-ms 1200 --audit-ms 250 \
  --idle-exit-ms 8000 --serve-ms 60000"

# shellcheck disable=SC2086
"$TYCOD" --node 0 $COMMON -e "site server0 { $SRV }" >"$OUT0" 2>&1 &
PID0=$!
PORT0="$(wait_port "$OUT0" "$PID0")" || {
  echo "ns_smoke: node 0 never announced a port:" >&2
  cat "$OUT0" >&2
  exit 1
}
MON0="$(wait_mon "$OUT0" "$PID0")" || {
  echo "ns_smoke: node 0 never announced a monitor:" >&2
  cat "$OUT0" >&2
  exit 1
}

# shellcheck disable=SC2086
"$TYCOD" --node 1 --join "127.0.0.1:$PORT0" $COMMON \
  -e "site server1 { $SRV }" >"$OUT1" 2>&1 &
PID1=$!
# shellcheck disable=SC2086
"$TYCOD" --node 2 --join "127.0.0.1:$PORT0" $COMMON \
  -e "site server2 { $SRV }" >"$OUT2" 2>&1 &
PID2=$!
# shellcheck disable=SC2086
"$TYCOD" --node 3 --join "127.0.0.1:$PORT0" $COMMON \
  -e "site server3 { $SRV }" >"$OUT3" 2>&1 &
PID3=$!
MON1="$(wait_mon "$OUT1" "$PID1")" || {
  echo "ns_smoke: node 1 never announced a monitor:" >&2
  cat "$OUT1" >&2; exit 1
}
wait_mon "$OUT2" "$PID2" >/dev/null || {
  echo "ns_smoke: node 2 never announced a monitor:" >&2
  cat "$OUT2" >&2; exit 1
}
MON3="$(wait_mon "$OUT3" "$PID3")" || {
  echo "ns_smoke: node 3 never announced a monitor:" >&2
  cat "$OUT3" >&2; exit 1
}
echo "ns_smoke: fleet up (transport :$PORT0, 4 shard slices, 1 replica)"
# Let the gossip mesh close before the storm: churn frames go straight
# to whichever node owns each name's slice, not through the seed.
sleep 1

# ---------------------------------------------------------------------
# Register/lookup/unregister storm; SIGKILL shard primary node 2 mid-run
# ---------------------------------------------------------------------

"$TYCOLOAD" --join "127.0.0.1:$PORT0" \
  --scenario fetch-churn --ns-shards 4 --ns-replicas 1 \
  --rate 1500 --duration-ms 4000 --timeout-ms 1500 \
  --kill-node 2 --kill-pid "$PID2" --at 2000 --json >"$LOAD" 2>&1
LOADRC=$?
if [ "$LOADRC" -ne 0 ]; then
  echo "ns_smoke: tycoload exited $LOADRC:" >&2
  cat "$LOAD" >&2
  exit 1
fi

python3 - "$LOAD" <<'EOF' || fail=1
import json, sys
rep = json.loads(open(sys.argv[1]).read().strip().splitlines()[-1])
assert rep["schema"] == "tycoload-report-v1", rep
assert rep["completed"] > 0, "no churn cycle ever completed"
assert "failover" in rep, "kill drill produced no failover histogram"
assert rep["failover"]["count"] > 0, \
    "no name resolved after the shard primary died"
print(f"ns_smoke: tycoload ok ({rep['completed']} churn cycles, "
      f"{rep['failed']} failed, "
      f"{rep['failover']['count']} resolved through failover)")
EOF

# ---------------------------------------------------------------------
# Survivors' shard maps converged on the death
# ---------------------------------------------------------------------

http_get() {
  python3 - "$1" <<'EOF'
import sys, urllib.request
print(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())
EOF
}

for mon in "$MON0" "$MON1" "$MON3"; do
  converged=0
  for _ in $(seq 1 100); do
    if http_get "http://127.0.0.1:$mon/names" >"$NAMES" 2>/dev/null &&
       python3 - "$NAMES" <<'EOF' 2>/dev/null
import json, sys
doc = json.load(open(sys.argv[1]))
sh = doc["sharding"]
assert sh["shards"] == 4 and sh["replicas"] == 1, sh
assert 2 in sh["dead"], f"node 2 not yet confirmed dead: {sh}"
EOF
    then converged=1; break; fi
    sleep 0.1
  done
  if [ "$converged" -ne 1 ]; then
    echo "ns_smoke: :$mon shard map never marked node 2 dead:" >&2
    cat "$NAMES" >&2
    exit 1
  fi
done
echo "ns_smoke: all survivors confirmed node 2 dead in the shard map"

# ---------------------------------------------------------------------
# tycotop --names: shard-aware fleet directory from one seed
# ---------------------------------------------------------------------

"$TYCOTOP" --names --json "http://127.0.0.1:$MON0" >"$NAMES" || {
  echo "ns_smoke: tycotop --names failed:" >&2
  cat "$NAMES" >&2
  exit 1
}
python3 - "$NAMES" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tycotop-names-v1", doc.get("schema")
nodes = sorted(n["node"] for n in doc["nodes"])
assert set(nodes) >= {0, 1, 3}, f"federation missing a survivor: {nodes}"
sharded = [n["node"] for n in doc["nodes"]
           if n["names"].get("sharding", {}).get("shards") == 4]
assert set(sharded) >= {0, 1, 3}, f"slices not shard-aware: {sharded}"
slices = {n["node"]: sorted(s for s in n["names"]
                            if s.startswith("shard"))
          for n in doc["nodes"]}
owners = [n for n, s in slices.items() if s]
assert len(owners) >= 2, f"directory not spread across nodes: {slices}"
print(f"ns_smoke: tycotop --names ok (nodes {nodes}, "
      f"slices on {sorted(owners)})")
EOF

# ---------------------------------------------------------------------
# Credit conservation across the handoff
# ---------------------------------------------------------------------

# The write-off of the dead slice's held credit and the re-replication
# of its bindings are asynchronous; poll until the fleet audit joins
# balanced from one seed monitor.
balanced=0
for _ in $(seq 1 150); do
  if "$TYCOTOP" --audit "http://127.0.0.1:$MON0" >"$AUDIT" 2>/dev/null; then
    balanced=1
    break
  fi
  sleep 0.1
done
if [ "$balanced" -ne 1 ]; then
  echo "ns_smoke: fleet never audited balanced after the handoff:" >&2
  cat "$AUDIT" >&2
  exit 1
fi
echo "ns_smoke: fleet audit balanced after shard handoff"

# And no survivor's own audit tick ever saw an imbalance: the handoff
# conserved credit at every observation point, not just at the end.
"$TYCOTOP" --metrics - "http://127.0.0.1:$MON0" 2>/dev/null |
  grep 'gc_audit_imbalance' >"$AUDIT" || true
if grep -v ' 0$' "$AUDIT" | grep -q .; then
  echo "ns_smoke: a survivor counted a credit imbalance:" >&2
  cat "$AUDIT" >&2
  fail=1
else
  echo "ns_smoke: gc_audit_imbalance 0 on every survivor"
fi

if [ "$fail" -eq 0 ]; then
  echo "ns_smoke: OK (sharded failover drill, lookups resolved, credit conserved)"
fi
exit "$fail"
