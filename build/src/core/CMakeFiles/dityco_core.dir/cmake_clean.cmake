file(REMOVE_RECURSE
  "CMakeFiles/dityco_core.dir/nameservice.cpp.o"
  "CMakeFiles/dityco_core.dir/nameservice.cpp.o.d"
  "CMakeFiles/dityco_core.dir/network.cpp.o"
  "CMakeFiles/dityco_core.dir/network.cpp.o.d"
  "CMakeFiles/dityco_core.dir/node.cpp.o"
  "CMakeFiles/dityco_core.dir/node.cpp.o.d"
  "CMakeFiles/dityco_core.dir/site.cpp.o"
  "CMakeFiles/dityco_core.dir/site.cpp.o.d"
  "CMakeFiles/dityco_core.dir/wire.cpp.o"
  "CMakeFiles/dityco_core.dir/wire.cpp.o.d"
  "libdityco_core.a"
  "libdityco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dityco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
