// Byte-code verification.
//
// Code segments arrive over the network (rules SHIPO and FETCH), so a
// site must not trust them: before linking, every segment is checked for
// structural integrity — decodable instruction stream, in-range jump
// targets, constant-pool and dependency indices, and well-formed
// method/class tables. A verified segment cannot make the interpreter
// read out of bounds (locals are still checked dynamically; values are
// checked by the marshaller).
#pragma once

#include <string>
#include <vector>

#include "vm/segment.hpp"

namespace dityco::vm {

/// How a segment is entered, which determines its leading table.
enum class SegmentRole {
  kEntry,   // root or fork target: code from offset 0
  kObject,  // starts with [nmethods, (labelidx, nparams, offset)*]
  kClass,   // starts with [nclasses, (nparams, offset)*]
  kAny,     // role unknown (e.g. shipped): accept any consistent reading
};

/// Verify one segment. Returns the list of problems (empty = valid).
/// `ndeps` entries of the dependency table are assumed resolvable; the
/// linker enforces that separately.
std::vector<std::string> verify_segment(const Segment& seg, SegmentRole role);

/// Verify a whole compiled program (root = entry, dependencies classified
/// by how they are referenced).
std::vector<std::string> verify_program(const Program& p);

/// Classify each segment of a compiled program by how it is referenced
/// (kTrObj dependency -> object, kMkBlock dependency -> class, root ->
/// entry; unreferenced -> kAny). Shared by the verifier, the assembler
/// and the peephole optimiser.
std::vector<SegmentRole> classify_roles(const Program& p);

/// Offset of the first instruction in a segment under the given role
/// (skips the object/class table).
std::size_t code_start(const Segment& seg, SegmentRole role);

}  // namespace dityco::vm
