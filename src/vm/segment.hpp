// Code segments: the unit of code mobility.
//
// The paper (section 5) requires byte-code whose "nested structure of the
// source program is preserved", allowing "the efficient dynamic selection
// of byte-code blocks that have to be moved between sites". We realise
// this with *segments*: position-independent code blocks carrying their
// own label table, string/float constant pools and a dependency list of
// other segments (nested objects and definition blocks). Shipping code
// (rules SHIPO and FETCH) serialises a segment's transitive closure;
// the receiving site dynamically links it, deduplicating by GUID.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace dityco::vm {

/// Globally unique code identity: assigned when a compiled program is
/// loaded into a site; preserved verbatim when the segment travels, so a
/// site never links the same code twice.
struct SegmentGuid {
  std::uint32_t node = 0;
  std::uint32_t site = 0;
  std::uint32_t index = 0;

  bool operator==(const SegmentGuid&) const = default;
  auto operator<=>(const SegmentGuid&) const = default;
};

/// Opcodes of the extended TyCO virtual machine. One 32-bit word each,
/// followed by the listed operand words. Jump targets and code offsets
/// are segment-relative (position independence). Constant/label/dep
/// operands index the segment's own tables, mapped to site-global ids at
/// link time.
enum class Op : std::uint32_t {
  kHalt = 0,       // []               end of thread
  kPushInt,        // [lo, hi]         push int64 immediate
  kPushFloat,      // [fidx]           push float constant
  kPushStr,        // [sidx]           push string constant
  kPushBool,       // [0|1]
  kLoad,           // [slot]           push locals[slot]
  kStore,          // [slot]           locals[slot] = pop
  // Builtin expression operators (operate on the frame's operand stack).
  kAdd, kSub, kMul, kDiv, kMod,        // []
  kLt, kLe, kGt, kGe, kEq, kNe,        // []
  kAndB, kOrB, kConcat,                // []
  kNeg, kNot,                          // []
  kJmp,            // [target]
  kJmpIfFalse,     // [target]         pops a bool
  kNewChan,        // [slot]           allocate channel into locals[slot]
  kGlobal,         // [slot, name_sidx] site-wide named channel (free names
                   //                   are implicitly located at the site)
  kTrMsg,          // [labelidx, nargs]  pop target, then nargs args
  kTrObj,          // [depidx, nfree]    pop target, then nfree captures
  kInstOf,         // [nargs]            pop class value, then nargs args
  kFork,           // [target, nfree]    spawn frame at target with captures
  kMkBlock,        // [depidx, nfree, nclasses, firstdst]
  kLoadSibling,    // [classidx]       push sibling class of current block
  kPrint,          // [nargs]
  kExportName,     // [slot, name_sidx]
  kExportClass,    // [slot, name_sidx]
  kImportName,     // [dst, site_sidx, name_sidx]   parks the frame
  kImportClass,    // [dst, site_sidx, name_sidx]   parks the frame
};

/// Number of operand words following each opcode.
int op_arity(Op op);
const char* op_name(Op op);

/// A position-independent code block.
///
/// Object segments start with a method table:
///   [nmethods, (labelidx, nparams, offset)*]
/// Definition-block segments start with a class table:
///   [nclasses, (nparams, offset)*]
/// Plain fork/root segments start directly with code at offset 0.
struct Segment {
  SegmentGuid guid;
  std::vector<std::uint32_t> code;
  std::vector<std::string> labels;   // method labels (seg-local index)
  std::vector<std::string> strings;  // string constants
  std::vector<double> floats;        // float constants
  std::vector<SegmentGuid> deps;     // referenced segments (seg-local index)
  // Debug-only: the source-level definition(s) this segment compiles
  // (e.g. "Serve" for a def block, "{get}" for an object). NOT
  // serialized — shipped code arrives anonymous and the profiler falls
  // back to a slot label; the wire layout stays pinned by test_net.
  std::string name;

  void serialize(Writer& w) const;
  static Segment deserialize(Reader& r);
};

/// A compiled program: the output of the code generator. `root` is the
/// index of the segment whose offset 0 is the program entry point.
/// Segment GUIDs are placeholders until the program is loaded into a site
/// (which re-stamps them with its own identity).
struct Program {
  std::vector<Segment> segments;
  std::uint32_t root = 0;

  /// Total byte-code size (words * 4 + constant pools), the compactness
  /// metric of bench C1.
  std::size_t byte_size() const;
};

}  // namespace dityco::vm
