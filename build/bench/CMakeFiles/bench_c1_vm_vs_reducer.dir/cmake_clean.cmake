file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_vm_vs_reducer.dir/bench_c1_vm_vs_reducer.cpp.o"
  "CMakeFiles/bench_c1_vm_vs_reducer.dir/bench_c1_vm_vs_reducer.cpp.o.d"
  "bench_c1_vm_vs_reducer"
  "bench_c1_vm_vs_reducer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_vm_vs_reducer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
