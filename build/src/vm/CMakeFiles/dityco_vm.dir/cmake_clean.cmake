file(REMOVE_RECURSE
  "CMakeFiles/dityco_vm.dir/machine.cpp.o"
  "CMakeFiles/dityco_vm.dir/machine.cpp.o.d"
  "CMakeFiles/dityco_vm.dir/segment.cpp.o"
  "CMakeFiles/dityco_vm.dir/segment.cpp.o.d"
  "CMakeFiles/dityco_vm.dir/verify.cpp.o"
  "CMakeFiles/dityco_vm.dir/verify.cpp.o.d"
  "libdityco_vm.a"
  "libdityco_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dityco_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
