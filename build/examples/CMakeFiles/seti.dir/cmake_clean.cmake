file(REMOVE_RECURSE
  "CMakeFiles/seti.dir/seti.cpp.o"
  "CMakeFiles/seti.dir/seti.cpp.o.d"
  "seti"
  "seti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
