// Wire protocol between communication daemons (TyCOd), and the
// marshalling of values across node boundaries.
//
// Marshalling implements the paper's two-step identifier translation
// (section 5, "Mapping between Local and Network References"):
//   step 1 (sender):  local heap references -> network references via the
//                     export table (registering on first export); all
//                     other values pass through;
//   step 2 (receiver): network references that point into the receiving
//                     site's heap -> local references via its export
//                     table; all others are interned as foreign netrefs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "vm/machine.hpp"

namespace dityco::core {

/// Packet types exchanged between daemons.
enum class MsgType : std::uint8_t {
  kShipMsg = 1,       // SHIPM: remote method invocation
  kShipObj = 2,       // SHIPO: object migration (carries a code closure)
  kFetchReq = 3,      // FETCH: request for class code
  kFetchRep = 4,      // FETCH reply: code closure + captured environment
  kNsExport = 5,      // register an exported identifier with the name service
  kNsLookup = 6,      // import: look up an exported identifier
  kNsReply = 7,       // name-service answer (sent once the name exists)
  kRelease = 8,       // REL: cumulative credit release back to the owner
  kNsUnregister = 9,  // drop an IdTable binding (final GC epoch)
  kPeerDown = 10,     // synthetic death notice from a failure detector
  kCreditMoved = 11,  // NS moved part of its credit share to a new holder
  kNsInvalidate = 12, // NS pushed a lease-cache invalidation for one key
};

// -- packet header (wire format v2) -----------------------------------
//
// v1 frames are [type u8][dst_site u32][payload]. v2 sets kTraceFlag on
// the type byte and inserts a causal trace id after the routing word:
// [type|0x80 u8][dst_site u32][trace_id u64][payload]. The flag keeps
// the change backward-compatible (v1 frames still decode, trace id 0)
// and leaves dst_site at a fixed offset for daemon routing. Trace ids
// correlate the departure and arrival events of one mobility operation
// across sites (see obs/trace.hpp); they are only emitted when the
// sending site has tracing enabled, so an untraced run's wire bytes are
// identical to v1.
//
// Sampled tracing adds a second type-byte flag, kSampledFlag: a v2
// frame with the flag set belongs to a sampled operation and every hop
// records it; without the flag the id still rides along (reply routing
// and causality need it) but hops skip recording. v1 frames and frames
// predating the flag decode as sampled — the pre-sampling behaviour.
//
// Distributed GC adds a third type-byte flag, kGcFlag: a frame with the
// flag set carries a u64 credit field after every netref in its payload
// (and, for NS export/reply frames, a trailing credit balance). The
// flag adds no header bytes, so dst_site and the trace id stay at their
// fixed offsets; frames without the flag — v1 frames and frames from
// non-GC peers — decode exactly as before, with zero (weak) credit.

/// Type-byte flag marking a v2 frame that carries a trace id.
constexpr std::uint8_t kTraceFlag = 0x80;
/// Type-byte flag (v2 only): this operation's trace id was sampled in.
constexpr std::uint8_t kSampledFlag = 0x40;
/// Type-byte flag: payload netrefs carry distributed-GC credit fields.
constexpr std::uint8_t kGcFlag = 0x20;

struct PacketHeader {
  MsgType type = MsgType::kShipMsg;
  std::uint32_t dst_site = 0;
  std::uint64_t trace_id = 0;  // 0 = untraced (v1 frame)
  bool sampled = true;         // hops should record this operation
  bool gc = false;             // payload netrefs carry credit fields
};

/// Write a frame header; emits the v1 layout when trace_id == 0 (the gc
/// flag is orthogonal to the trace id and valid on both layouts).
void write_header(Writer& w, MsgType t, std::uint32_t dst_site,
                  std::uint64_t trace_id = 0, bool sampled = true,
                  bool gc = false);
/// Read either header version; throws DecodeError on an unknown type.
PacketHeader read_header(Reader& r);

/// Peek the message type of a framed packet (flags masked off).
MsgType packet_type(const std::vector<std::uint8_t>& bytes);
/// Peek a framed packet's trace id (0 for v1 frames).
std::uint64_t packet_trace_id(const std::vector<std::uint8_t>& bytes);
/// Peek whether a framed packet's operation was sampled (true for v1).
bool packet_sampled(const std::vector<std::uint8_t>& bytes);

/// Marshal one value leaving `m` (sender side, step 1). With `gc`, every
/// netref written is followed by a u64 credit field: marshalling an
/// owned reference mints kMintCredit against its export-table entry,
/// forwarding a foreign reference ships half the local balance.
void marshal_value(vm::Machine& m, const vm::Value& v, Writer& w,
                   bool gc = false);
void marshal_values(vm::Machine& m, const std::vector<vm::Value>& vs,
                    Writer& w, bool gc = false);

/// Unmarshal one value arriving at `m` (receiver side, step 2). With
/// `gc` (from the frame header), credit fields are consumed: credit on a
/// reference owned by `m` returns to its export entry, credit on a
/// foreign reference adds to the local balance.
vm::Value unmarshal_value(vm::Machine& m, Reader& r, bool gc = false);
std::vector<vm::Value> unmarshal_values(vm::Machine& m, Reader& r,
                                        bool gc = false);

/// Build a REL frame: releaser (rel_node, rel_site) tells `ref`'s owner
/// that its *cumulative* released credit for this reference is `cum`.
/// Cumulative totals make REL idempotent: duplicates and reordered
/// deliveries max-merge at the owner, dropped ones are healed by
/// retransmission.
/// `trace_id`/`sampled` ride the standard v2 header bits so traced
/// sites can follow REL frames too; the defaults keep untraced frames
/// byte-identical to v1+kGcFlag (pinned by test_net).
std::vector<std::uint8_t> make_release(const vm::NetRef& ref,
                                       std::uint32_t rel_node,
                                       std::uint32_t rel_site,
                                       std::uint64_t cum,
                                       std::uint64_t trace_id = 0,
                                       bool sampled = true);

/// Build a PEER-DOWN frame: a local failure detector confirmed
/// `dead_node` dead. Never sent over the network — the transport injects
/// it into its own inbox so the node routes it like any delivery and
/// write-off runs on an executor thread, not the I/O thread. dst_site is
/// a broadcast sentinel (every site on the node must write off).
std::vector<std::uint8_t> make_peer_down(std::uint32_t dead_node);
/// Read the dead node id from a PEER-DOWN payload (after the header).
std::uint32_t read_peer_down(Reader& r);

/// Build a CREDIT-MOVED frame: the name service (or another
/// intermediary) handed `amount` of its held credit for `ref` to
/// `to_node`; `ref`'s owner should re-attribute that slice of its
/// outstanding balance so a write-off of `to_node` can forgive it.
std::vector<std::uint8_t> make_credit_moved(const vm::NetRef& ref,
                                            std::uint32_t to_node,
                                            std::uint64_t amount);
struct CreditMoved {
  vm::NetRef ref;
  std::uint32_t to_node = 0;
  std::uint64_t amount = 0;
};
CreditMoved read_credit_moved(Reader& r);

/// Build an NS-INVALIDATE frame: the shard owning directory key
/// (site, name) rebound, dropped or evicted the binding; every node
/// holding a lease on it must drop its cached entry. Node-addressed
/// (dst_site is the broadcast sentinel): the receiving daemon feeds its
/// lease cache, no site ever sees the frame.
std::vector<std::uint8_t> make_ns_invalidate(const std::string& site,
                                             const std::string& name);
struct NsInvalidate {
  std::string site, name;
};
NsInvalidate read_ns_invalidate(Reader& r);

void write_netref(Writer& w, const vm::NetRef& r);
vm::NetRef read_netref(Reader& r);

/// Serialise a segment closure (root first).
void write_closure(Writer& w, const std::vector<vm::Segment>& segs);
/// Read a closure into a guid-keyed pool plus the root guid.
std::map<vm::SegmentGuid, vm::Segment> read_closure(Reader& r,
                                                    vm::SegmentGuid& root);

}  // namespace dityco::core
