// The network level: a set of DiTyCO nodes, the name service, a
// transport, and three execution drivers.
//
//   * kSequential — deterministic round-robin over sites; the default for
//     tests and the reference for differential checks.
//   * kThreaded   — one executor thread per site plus one daemon thread
//     per node (the paper's architecture: sites and TyCOd are threads
//     sharing the node's address space).
//   * kSim        — conservative virtual-time execution over a
//     SimTransport: site execution is metered in instructions per
//     microsecond and packets cost latency + size/bandwidth. Used by the
//     cluster experiments (Myrinet vs Fast Ethernet).
//
// run() implements the global quiescence/termination detection the paper
// lists as future work: it distinguishes *quiescent* (no runnable work,
// no packets in flight, nothing parked) from *stalled* (imports waiting
// on exports that never happened).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "calculus/ast.hpp"
#include "core/node.hpp"
#include "net/tcp.hpp"
#include "ns/cache.hpp"
#include "ns/shard.hpp"
#include "net/transport.hpp"
#include "obs/export.hpp"
#include "obs/fleet.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"

namespace dityco::core {

class Network {
 public:
  enum class Mode { kSequential, kThreaded, kSim };

  /// Which wire carries inter-node packets. kInProc is the default
  /// shared-memory queueing; kSim is forced by Mode::kSim; kTcp routes
  /// every inter-node packet over real loopback/LAN sockets — either an
  /// in-process mesh (one TcpTransport per node; benches, tests) or,
  /// with tcp.multiprocess, a single socket endpoint for this process's
  /// one node (the tycod daemon).
  enum class TransportKind { kInProc, kSim, kTcp };

  struct Config {
    Mode mode = Mode::kSequential;
    /// Transport selector. kInProc auto-upgrades to kSim under
    /// Mode::kSim (the sim driver requires virtual-time delivery);
    /// combining kTcp with Mode::kSim is an error.
    TransportKind transport = TransportKind::kInProc;
    /// TCP parameters (TransportKind::kTcp). With multiprocess set, the
    /// network hosts exactly one node whose id is tcp.self and peers
    /// are other OS processes; otherwise an in-process loopback mesh of
    /// nodes_.size() endpoints is built and tcp.self is ignored.
    net::TcpConfig tcp;
    net::LinkModel link = net::myrinet();
    /// VM speed for the simulated cluster (byte-code instructions per µs).
    double instr_per_us = 100.0;
    /// Scheduling slice (instructions) per site turn.
    std::uint64_t slice = 256;
    /// Global instruction budget (guards against divergent programs).
    std::uint64_t max_instructions = 100'000'000;
    /// Wall-clock cap for the threaded driver (ms).
    std::uint64_t timeout_ms = 10'000;
    /// Simulated service time per name-service request (µs). The NS is a
    /// single centralised server (paper, section 5), so its requests
    /// queue: this is what the C6 contention experiment measures.
    double ns_service_us = 0.5;
    /// Replicate the name service onto every node (the paper's
    /// future-work item): lookups are answered by the local replica and
    /// exports are broadcast, removing the central bottleneck.
    bool distributed_ns = false;
    /// Shard the name service across the fleet (src/ns): each directory
    /// key lives on the node rendezvous-hashing assigns it, with one
    /// follower copy for failover. 0 = off (central, or distributed_ns
    /// when that is set). In-process runs clamp this to the node count;
    /// a multiprocess daemon passes the fleet size.
    std::uint32_t ns_shards = 0;
    /// Follower copies per shard entry (0 disables replication).
    std::uint32_t ns_replicas = 1;
    /// Lease TTL for client-side caching of positive lookups, in
    /// milliseconds; 0 disables the cache. Sharded mode only.
    std::uint64_t ns_lease_ms = 0;
    /// Run Damas-Milner inference on every submitted program; attach the
    /// inferred export signatures and import requirements to the site so
    /// remote interactions are checked dynamically (paper, section 7).
    bool typecheck = false;
    /// Distributed GC for network references (credit-based reference
    /// counting; DESIGN.md §GC). Sites stamp kGcFlag on their frames and
    /// reclaim export-table entries once every minted unit of credit has
    /// returned. The sequential and threaded drivers run collection
    /// passes at quiescence; sim mode defers GC entirely to
    /// collect_garbage() so virtual-time results are unaffected.
    bool gc = true;
    /// Threaded driver: every `gc_resend_ms` milliseconds each site
    /// retransmits its non-zero cumulative releases (Site::collect with
    /// resend), healing RELs a lossy transport dropped — the owner's
    /// max-merge makes the retransmission idempotent. 0 (default)
    /// disables the timer. collect_garbage()'s first epoch also resends
    /// when this is set, so a drop is healed even by a short run.
    std::uint64_t gc_resend_ms = 0;
  };

  struct Result {
    bool quiescent = false;
    bool stalled = false;           // parked imports that never resolved
    bool budget_exhausted = false;
    double virtual_time_us = 0.0;   // sim mode: makespan
    std::uint64_t instructions = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  Network() : Network(Config{}) {}
  explicit Network(Config cfg);
  ~Network();
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  Node& add_node();
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  /// Create a site on node `node_idx` and register it with the name
  /// service.
  Site& add_site(std::size_t node_idx, const std::string& name);
  Site* find_site(const std::string& name);

  /// TyCOsh/TyCOi: compile and submit a program at a site.
  void submit(const std::string& site_name, const calc::ProcPtr& prog);
  void submit_source(const std::string& site_name, std::string_view src);
  /// Submit a whole `site name { P }` network file; sites must exist.
  void submit_network_source(std::string_view src);

  /// Drive the network to quiescence (per the configured mode).
  Result run();

  /// Totals after the final GC epoch (see collect_garbage).
  struct GcReport {
    std::uint64_t rounds = 0;        // collection rounds executed
    std::size_t exports_live = 0;    // Σ export-table entries, all sites
    std::size_t netrefs_live = 0;    // Σ live netref slots, all sites
    std::size_t ns_ids = 0;          // IdTable bindings still registered
  };
  /// Final GC epoch, to be called after run(): unregisters every
  /// name-service binding, then alternates collection passes with packet
  /// drains until no site queues further RELs (or `max_rounds` is hit).
  /// After this, a leak-free program leaves every export table and the
  /// IdTable empty. Works in every mode (sim uses a far-future virtual
  /// clock so in-flight RELs arrive). No-op report unless cfg.gc.
  GcReport collect_garbage(int max_rounds = 8);

  const std::vector<std::string>& output(const std::string& site_name);
  NameService& name_service() { return *ns_; }
  /// Sharded-NS state (null / empty until run() with cfg.ns_shards > 0).
  ns::ShardRouter* ns_router() { return ns_router_.get(); }
  /// Node `node_idx`'s lease cache; null when caching is off.
  ns::LeaseCache* lease_cache(std::size_t node_idx) {
    return node_idx < ns_caches_.size() ? ns_caches_[node_idx].get() : nullptr;
  }
  net::Transport& transport();
  /// The transport as a TcpTransport (TransportKind::kTcp, multiprocess
  /// mode only); nullptr otherwise. For tycod: port discovery, peer
  /// bootstrap, death-frame wiring checks.
  net::TcpTransport* tcp_transport();
  const Config& config() const { return cfg_; }

  /// All runtime errors across sites and machines.
  std::vector<std::string> all_errors() const;

  // -- observability --

  /// The network's metrics registry. Every site, VM and name service
  /// (central and replicas) registers here; snapshot()/expose_text()/
  /// expose_json() give the unified view.
  obs::Registry& metrics() { return *metrics_; }
  const obs::Registry& metrics() const { return *metrics_; }

  /// Enable causal event tracing on every current and future node (site
  /// executor rings plus daemon rings). Call before run().
  /// `sample_every` > 1 records only 1-in-N trace ids — the decision is a
  /// deterministic hash of the id (see obs::trace_id_sampled) made at
  /// allocation and carried on the wire, so a sampled operation is
  /// captured at every hop and an unsampled one costs a branch per hop.
  void enable_tracing(std::size_t capacity = 1 << 14,
                      std::uint64_t sample_every = 1,
                      std::uint64_t sample_seed = 0);
  bool tracing_enabled() const { return trace_capacity_ > 0; }

  /// Tail-based trace retention (obs/flight.hpp): switches every ring —
  /// current and future — into record-all mode, attaches a flight
  /// recorder to every site, and registers its counters with the
  /// metrics registry. Implies enable_tracing() (with defaults) when
  /// tracing is off. GET /trace keeps its 1-in-N sampled view — the
  /// exporter re-filters — while GET /flight serves the promoted tail.
  /// Call before run(); callable again to adjust the policy.
  void enable_flight(const obs::FlightPolicy& policy = {});
  bool flight_enabled() const { return flight_ != nullptr; }
  obs::FlightRecorder& flight() { return *flight_; }
  /// The promoted traces as Chrome trace-event JSON (TyCOmon /flight).
  std::string flight_json() const;

  /// Workload SLO plane (obs/slo.hpp): attach a request ledger to every
  /// current and future site — SHIPM/SHIPO/FETCH departures/completions
  /// plus the transport's tcp-send/tcp-recv hops decompose into
  /// per-stage latency histograms — and evaluate `cfg.objective` with
  /// multi-window burn-rate state (ok/warn/page). Implies
  /// enable_tracing() (the ledger keys on propagated trace ids); with
  /// the flight recorder enabled (either order), objective-violating
  /// trace ids are promoted so /flight holds the offending timeline.
  /// TyCOmon serves the plane at GET /slo; slo_* metrics land in the
  /// registry. Call before run(); callable again to adjust objectives.
  void enable_slo(const obs::SloPlane::Config& cfg = {});
  bool slo_enabled() const { return slo_ != nullptr; }
  obs::SloPlane& slo() { return *slo_; }
  /// The /slo payload (empty object when the plane is off).
  std::string slo_json();

  /// Enable the sampled VM execution profiler (obs/profile.hpp) on every
  /// current and future site: one sample per `period` executed
  /// instructions, attributed to (opcode, definition).
  void enable_profiling(std::uint64_t period = 1024);
  bool profiling_enabled() const { return prof_period_ > 0; }
  /// All sites' samples as folded stacks — `site;definition;opcode N`
  /// lines, highest count first per site (TyCOmon /profile; feed to
  /// flamegraph tools).
  std::string profile_folded() const;

  // -- TyCOmon: the per-network monitoring daemon --

  /// Start the TyCOmon scrape server on 127.0.0.1:`port` (0 picks an
  /// ephemeral port). Serves GET /metrics (Prometheus text),
  /// /metrics.json, /trace (Chrome trace JSON of the current rings) and
  /// /healthz (per-site queue depths and the run's progress clock), all
  /// safe to hit while run() executes. Returns the bound port, 0 on
  /// failure. The Network must not be moved once the monitor is started
  /// (handlers capture `this`).
  /// `bind_addr` other than 127.0.0.1 exposes the endpoints off-host —
  /// plain text, unauthenticated; the server prints a warning.
  std::uint16_t start_monitor(std::uint16_t port = 0,
                              const std::string& bind_addr = "127.0.0.1");
  void stop_monitor();
  /// Bound port, or 0 when the monitor is not running.
  std::uint16_t monitor_port() const {
    return monitor_ ? monitor_->port() : 0;
  }

  /// The /healthz payload: liveness + per-site queue/trace state (plus,
  /// on a TCP network, per-peer transport state). Public for tests and
  /// tools; always safe to call.
  std::string health_json() const;

  /// The /peers payload: this node's identity (node id, advertised
  /// address, monitor port) plus every known peer's transport state —
  /// gossip view, phi, last-heard age, queue depth, reconnects, RTT and
  /// the peer's gossiped TyCOmon port. A fleet aggregator walks these
  /// monitor ports transitively to discover every node from one seed
  /// (obs/fleet.hpp). Empty peer list on non-TCP networks.
  std::string peers_json() const;

  /// The /gc payload: every site's export-table snapshot — per-entry
  /// minted/returned/released ledgers, applied releaser slots, debt,
  /// pins — plus import balances, declared cumulative RELs and
  /// free-list sizes. At rest the snapshots are built fresh under
  /// scrape_mu (executors cannot start mid-build); while run() executes
  /// the last snapshots published by the executor threads are served
  /// (sites that never published are marked "stale").
  std::string gc_json() const;

  /// The /names payload: the name service's Site/Id tables with
  /// ownership, held credit and its REL ledger — the central service
  /// when this process hosts its home node, plus every per-node replica
  /// in distributed-NS mode. Same at-rest/published discipline as /gc.
  std::string names_json() const;

  /// Run the GC credit audit (obs/fleet.hpp) over this process's own
  /// /gc + /names documents — and, with `include_fleet` on a monitored
  /// TCP network, over every peer TyCOmon discovered via /peers.
  /// Every call bumps the `gc_audits` counter; each confirmed anomaly
  /// bumps `gc_audit_imbalance` and promotes the offending entry's
  /// minting trace into the flight recorder (kRelAnomaly).
  obs::fleet::AuditReport self_audit(bool include_fleet = false);

  /// At-rest REL heal: resend every site's cumulative releases and pump
  /// until quiet (the executor-thread heal timer only runs inside
  /// run()). Returns REL packets queued; no-op while run() executes or
  /// when GC is off. Used by tycod's --audit-ms loop so a REL dropped
  /// after the last run still heals within one interval.
  std::size_t heal_releases();

  /// Merge every enabled ring into per-thread event lists (one per site,
  /// one per node daemon). Call after run(); rings are left intact.
  std::vector<obs::ThreadTrace> collect_traces() const;
  /// The merged timeline as Chrome trace-event JSON (open in Perfetto or
  /// chrome://tracing).
  std::string trace_json() const;

 private:
  Result run_sequential();
  Result run_threaded();
  Result run_sim();
  bool anything_parked() const;
  Result finish(Result r) const;
  /// One distributed-GC collection pass over every site; returns the
  /// number of packets (RELs, unregisters) the pass queued.
  std::size_t gc_pass(bool final, bool resend = false);
  /// Publish a TcpTransport's counters/gauges into the registry.
  void register_tcp_metrics(net::TcpTransport& t, const std::string& label);
  /// The TCP endpoints already constructed, without forcing the lazy
  /// transport factory (safe to call before add_node()): the single
  /// multiprocess transport, or every part of an in-process mesh.
  std::vector<net::TcpTransport*> tcp_parts() const;
  /// Attach a transport's ring to the flight recorder, switch it to
  /// record-all, and promote reconnect/peer-death events as kNetwork.
  void wire_tcp_flight(net::TcpTransport& t);
  /// Feed a transport's tcp-send/tcp-recv hops into the SLO ledger.
  void wire_tcp_slo(net::TcpTransport& t);
  /// The sequential pump loop: round-robin sites until quiescent (with
  /// cfg.gc, quiescence triggers collection passes until no RELs flow).
  void sequential_drain(net::Transport& t, Result& res);

  /// Live run state shared between the drivers and TyCOmon's handlers.
  /// Heap-allocated (atomics are immovable, Network is movable); the
  /// threaded driver's progress clock lives here so /healthz can show it.
  struct LiveStatus {
    std::atomic<bool> running{false};
    std::atomic<std::uint64_t> instructions{0};  // cumulative, all runs
    std::atomic<std::uint64_t> progress{0};      // queue movements
    // 0 = never ran, 1 = quiescent, 2 = stalled, 3 = budget exhausted.
    std::atomic<int> outcome{0};
    // Audit plane: self-audits run and confirmed anomalies they found
    // (exported as gc_audits / gc_audit_imbalance; live-safe).
    obs::Counter gc_audits;
    obs::Counter gc_audit_imbalance;
    // Serialises a scrape's "at rest → full snapshot" decision against
    // the running transitions: run() flips `running` under this mutex,
    // and a scrape that saw false keeps holding it through the full
    // (non-live-safe) exposition, so executor threads can never start
    // mid-snapshot. Scrapes while running use live-only paths and
    // release it immediately.
    std::mutex scrape_mu;
  };

  Config cfg_;
  // Declared first so it is destroyed last: sites/NS hold collector
  // registrations that must unregister before the registry dies.
  // Heap-allocated so collector lambdas survive Network moves.
  std::unique_ptr<obs::Registry> metrics_;
  // Declared before nodes_ so sites' raw FlightRecorder pointers never
  // outlive the recorder.
  std::unique_ptr<obs::FlightRecorder> flight_;
  // Same lifetime discipline as flight_: sites hold raw pointers.
  std::unique_ptr<obs::SloPlane> slo_;
  // Heap-allocated so that Nodes' pointers into it survive moves.
  std::unique_ptr<NameService> ns_;
  // Sharded NS (cfg.ns_shards): one shared map, one cache per node.
  std::unique_ptr<ns::ShardRouter> ns_router_;
  std::vector<std::unique_ptr<ns::LeaseCache>> ns_caches_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<net::Transport> transport_;
  std::uint64_t instructions_run_ = 0;
  bool ns_distributed_ = false;
  bool ns_sharded_ = false;
  std::size_t trace_capacity_ = 0;
  std::uint64_t sample_every_ = 1, sample_seed_ = 0;
  std::uint64_t prof_period_ = 0;  // 0 = profiling off
  obs::Registry::Registration flight_reg_;
  obs::Registry::Registration slo_reg_;
  obs::Registry::Registration tcp_metrics_reg_;
  obs::Registry::Registration audit_reg_;
  std::unique_ptr<LiveStatus> live_ = std::make_unique<LiveStatus>();
  // Declared last: the server thread reads everything above, so it must
  // be stopped (destroyed) first.
  std::unique_ptr<obs::MonitorServer> monitor_;
};

}  // namespace dityco::core
