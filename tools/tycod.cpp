// tycod — the DiTyCO node daemon as an OS process (paper, section 5:
// "each node runs a daemon, TyCOd, that holds the node's sites and
// exchanges messages with its peers").
//
// One tycod process hosts exactly one node (its sites come from the
// program file's `site name { P }` blocks) and speaks the v2 daemon
// wire format to other tycod processes over TCP (docs/NETWORKING.md).
// By default node 0 hosts the network name service; every other node
// needs --join (or --peer 0=...) to reach it. With --ns-shards the
// directory is sharded across the fleet instead (docs/NAMESERVICE.md):
// every node hosts a slice, each slice is replicated to a follower, and
// a confirmed-dead primary fails over without losing bindings.
//
// Usage:
//   tycod --node 0 --listen 127.0.0.1:7100 a.dtc
//   tycod --node 1 --join 127.0.0.1:7100 b.dtc
//
// Options:
//   --node N             this process's node id (default 0)
//   --listen HOST:PORT   bind address (default 127.0.0.1:0 = ephemeral;
//                        the bound port is printed as
//                        `tycod nodeN listening on HOST:PORT`)
//   --advertise HOST     reach-back host gossiped to peers (required for
//                        routability when binding a wildcard address;
//                        defaults to the listen host, wildcards falling
//                        back to 127.0.0.1)
//   --join HOST:PORT     address of node 0 (shorthand for --peer 0=...)
//   --peer N=HOST:PORT   static peer address (repeatable; others are
//                        learnt from gossip)
//   -e SRC               run SRC instead of a file
//   --typecheck          infer types; check remote signatures
//   --stats              print the metrics registry before exiting
//   --monitor PORT       start TyCOmon (0 = ephemeral)
//   --trace              enable causal event tracing (site, daemon and
//                        socket rings; serve via TyCOmon /trace — each
//                        document carries a wall-clock anchor so
//                        tycotop can stitch a fleet-wide timeline)
//   --trace-sample N     keep 1-in-N trace ids (default 1 = all)
//   --slo                enable the workload SLO plane (request ledger,
//                        per-stage latency histograms, burn-rate state;
//                        served at TyCOmon /slo). Implies --trace and a
//                        flight recorder, so objective-violating trace
//                        ids land in /flight
//   --slo-p99-us N       objective latency threshold in microseconds
//                        (default 5000 = 5ms)
//   --slo-budget F       error budget as a fraction (default 0.001)
//   --slo-windows S,L    short,long burn windows in seconds
//                        (default 30,300)
//   --heartbeat-ms N     heartbeat period (default 100)
//   --flush-bytes N      writev coalescing byte budget (default 256K)
//   --flush-frames N     writev coalescing frame budget (default 64;
//                        1 = one write per frame, coalescing off)
//   --busy-poll-us N     spin the I/O thread this long before falling
//                        back to a blocking poll (default 0 = off)
//   --phi T              failure-detector suspicion threshold (default 6)
//   --confirm-ms N       suspicion must persist this long before the
//                        peer is declared dead (default 500)
//   --no-detect          disable the failure detector entirely
//   --idle-exit-ms N     exit after N ms with no inbound work once the
//                        local program is quiescent (default 2000)
//   --serve-ms N         hard cap on total serve time (default 60000)
//   --timeout-ms N       per-run wall-clock cap (default 10000)
//   --ns-shards N        shard the name service N ways by name hash
//                        (default 0 = centralized on node 0; pass the
//                        same value to every daemon in the fleet)
//   --ns-replicas N      followers per shard slice (default 1)
//   --ns-lease-ms N      lease-based client-side lookup caching with
//                        this TTL (default 0 = off); rebinds and
//                        evictions push kNsInvalidate to lease holders
//   --gc-resend-ms N     periodic cumulative-REL retransmission
//   --audit-ms N         continuous self-audit: every N ms of idle time
//                        run the GC credit audit (fleet-wide when
//                        --monitor is on), print a line whenever the
//                        verdict flips, and — with --gc-resend-ms —
//                        retransmit cumulative RELs so a dropped REL
//                        heals during the idle window too
//   --drop-rel N         fault injection: silently drop the first N
//                        outbound REL frames (exercises the audit
//                        plane and the resend path; tests/CI only)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/parser.hpp"
#include "core/network.hpp"
#include "core/wire.hpp"

namespace {

int usage() {
  std::cerr <<
      "usage: tycod [options] program.dtc\n"
      "       tycod [options] -e 'site a { ... }'\n"
      "options: --node N  --listen HOST:PORT  --advertise HOST\n"
      "         --join HOST:PORT\n"
      "         --peer N=HOST:PORT (repeatable)  --typecheck  --stats\n"
      "         --monitor PORT  --trace  --trace-sample N\n"
      "         --slo  --slo-p99-us N  --slo-budget F  --slo-windows S,L\n"
      "         --heartbeat-ms N  --phi T  --confirm-ms N\n"
      "         --flush-bytes N  --flush-frames N  --busy-poll-us N\n"
      "         --no-detect  --idle-exit-ms N  --serve-ms N\n"
      "         --ns-shards N  --ns-replicas N  --ns-lease-ms N\n"
      "         --timeout-ms N  --gc-resend-ms N  --audit-ms N\n"
      "         --drop-rel N\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  std::string source, path;
  dityco::core::Network::Config cfg;
  cfg.mode = dityco::core::Network::Mode::kThreaded;
  cfg.transport = dityco::core::Network::TransportKind::kTcp;
  cfg.tcp.multiprocess = true;
  bool stats = false;
  bool monitor = false;
  bool trace = false;
  bool slo = false;
  dityco::obs::SloPlane::Config slo_cfg;
  long trace_sample = 1;
  int monitor_port = 0;
  long idle_exit_ms = 2000;
  long serve_ms = 60'000;
  long audit_ms = 0;
  long drop_rel = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-e" && i + 1 < argc) {
      source = argv[++i];
    } else if (arg == "--node" && i + 1 < argc) {
      cfg.tcp.self = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--listen" && i + 1 < argc) {
      const auto [host, port] = dityco::net::parse_hostport(argv[++i]);
      cfg.tcp.listen_host = host;
      cfg.tcp.listen_port = port;
    } else if (arg == "--advertise" && i + 1 < argc) {
      cfg.tcp.advertise_host = argv[++i];
    } else if (arg == "--join" && i + 1 < argc) {
      cfg.tcp.peers[0] = argv[++i];
    } else if (arg == "--peer" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto eq = spec.find('=');
      if (eq == std::string::npos) return usage();
      cfg.tcp.peers[static_cast<std::uint32_t>(
          std::atoi(spec.substr(0, eq).c_str()))] = spec.substr(eq + 1);
    } else if (arg == "--typecheck") {
      cfg.typecheck = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--monitor" && i + 1 < argc) {
      monitor = true;
      monitor_port = std::atoi(argv[++i]);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-sample" && i + 1 < argc) {
      trace = true;
      trace_sample = std::atol(argv[++i]);
    } else if (arg == "--slo") {
      slo = true;
    } else if (arg == "--slo-p99-us" && i + 1 < argc) {
      slo = true;
      slo_cfg.objective.threshold_ns =
          static_cast<std::uint64_t>(std::atof(argv[++i]) * 1000.0);
    } else if (arg == "--slo-budget" && i + 1 < argc) {
      slo = true;
      slo_cfg.objective.budget = std::atof(argv[++i]);
    } else if (arg == "--slo-windows" && i + 1 < argc) {
      slo = true;
      const std::string spec = argv[++i];
      const auto comma = spec.find(',');
      if (comma == std::string::npos) return usage();
      slo_cfg.objective.short_window_s = static_cast<std::uint32_t>(
          std::atol(spec.substr(0, comma).c_str()));
      slo_cfg.objective.long_window_s = static_cast<std::uint32_t>(
          std::atol(spec.substr(comma + 1).c_str()));
    } else if (arg == "--heartbeat-ms" && i + 1 < argc) {
      cfg.tcp.heartbeat_ms = std::atol(argv[++i]);
    } else if (arg == "--flush-bytes" && i + 1 < argc) {
      cfg.tcp.flush_bytes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--flush-frames" && i + 1 < argc) {
      cfg.tcp.flush_frames = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--busy-poll-us" && i + 1 < argc) {
      cfg.tcp.busy_poll_us = static_cast<std::uint64_t>(std::atol(argv[++i]));
    } else if (arg == "--phi" && i + 1 < argc) {
      cfg.tcp.phi_threshold = std::atof(argv[++i]);
    } else if (arg == "--confirm-ms" && i + 1 < argc) {
      cfg.tcp.confirm_ms = std::atol(argv[++i]);
    } else if (arg == "--no-detect") {
      cfg.tcp.detect_failures = false;
    } else if (arg == "--idle-exit-ms" && i + 1 < argc) {
      idle_exit_ms = std::atol(argv[++i]);
    } else if (arg == "--serve-ms" && i + 1 < argc) {
      serve_ms = std::atol(argv[++i]);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      cfg.timeout_ms = static_cast<std::uint64_t>(std::atol(argv[++i]));
    } else if (arg == "--ns-shards" && i + 1 < argc) {
      cfg.ns_shards = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (arg == "--ns-replicas" && i + 1 < argc) {
      cfg.ns_replicas = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (arg == "--ns-lease-ms" && i + 1 < argc) {
      cfg.ns_lease_ms = static_cast<std::uint64_t>(std::atol(argv[++i]));
    } else if (arg == "--gc-resend-ms" && i + 1 < argc) {
      cfg.gc_resend_ms = static_cast<std::uint64_t>(std::atol(argv[++i]));
    } else if (arg == "--audit-ms" && i + 1 < argc) {
      audit_ms = std::atol(argv[++i]);
    } else if (arg == "--drop-rel" && i + 1 < argc) {
      drop_rel = std::atol(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }
  if (source.empty() && path.empty()) return usage();
  if (source.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "tycod: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  try {
    auto programs = dityco::comp::parse_network(source);
    dityco::core::Network net(cfg);
    net.add_node();
    for (const auto& [site, prog] : programs) {
      net.add_site(0, site);
      net.submit(site, prog);
    }
    // Before the monitor and the transport bind: the rings must exist
    // when the first traced packet crosses the socket.
    if (trace)
      net.enable_tracing(1 << 14,
                         static_cast<std::uint64_t>(
                             trace_sample < 1 ? 1 : trace_sample));
    if (slo) {
      // Flight first so violating trace ids have somewhere to land
      // (/flight shows the offending timeline); then the plane itself,
      // which also implies tracing when --trace was not given.
      net.enable_flight();
      net.enable_slo(slo_cfg);
    }
    if (monitor) {
      const std::uint16_t mp = net.start_monitor(
          static_cast<std::uint16_t>(monitor_port));
      if (mp == 0) {
        std::cerr << "tycod: cannot start TyCOmon on port " << monitor_port
                  << "\n";
        return 1;
      }
      std::cout << "tycomon listening on http://127.0.0.1:" << mp
                << std::endl;
    }
    // Bind now (transport() is lazy) and advertise the port: scripts
    // parse this line to wire up --join/--peer for later processes.
    dityco::net::TcpTransport* tcp = net.tcp_transport();
    std::cout << "tycod node" << cfg.tcp.self << " listening on "
              << cfg.tcp.listen_host << ":" << tcp->port() << std::endl;
    if (drop_rel > 0) {
      // Fault injection: eat the first N outbound RELs before framing,
      // as if the wire lost them. The audit plane must flag the owner's
      // imbalance and the cumulative-REL resend must heal it.
      auto left = std::make_shared<std::atomic<long>>(drop_rel);
      tcp->set_drop_filter([left](const dityco::net::Packet& p) {
        if (dityco::core::packet_type(p.bytes) !=
            dityco::core::MsgType::kRelease)
          return false;
        return left->fetch_sub(1, std::memory_order_relaxed) > 0;
      });
      std::cout << "tycod node" << cfg.tcp.self << " dropping first "
                << drop_rel << " REL frame(s)" << std::endl;
    }

    // Serve loop: drive the local program to quiescence, then stay up —
    // peers keep sending lookups, FETCHes and RELs — until the node has
    // been idle for idle_exit_ms (or the serve budget runs out).
    const auto hard_deadline = Clock::now() +
                               std::chrono::milliseconds(serve_ms);
    dityco::core::Network::Result res;
    std::uint64_t total_instructions = 0;
    // Continuous self-audit (--audit-ms): ticks only on the quiescence
    // path below — while a run is live the executor owns the sites and
    // /gc serves published snapshots instead. Healing runs on its own
    // timer (gc_resend_ms, mirroring the executor's in-run resend), so
    // an observed anomaly is counted strictly before it is repaired.
    auto next_audit = Clock::now() + std::chrono::milliseconds(audit_ms);
    auto next_heal = Clock::now() +
                     std::chrono::milliseconds(
                         static_cast<long>(cfg.gc_resend_ms));
    bool last_balanced = true;
    std::uint64_t audit_rounds = 0;
    for (;;) {
      res = net.run();
      total_instructions += res.instructions;
      if (res.budget_exhausted) break;
      const auto idle_deadline = Clock::now() +
                                 std::chrono::milliseconds(idle_exit_ms);
      bool more = false;
      while (Clock::now() < idle_deadline && Clock::now() < hard_deadline) {
        if (net.transport().in_flight() > 0) {
          more = true;
          break;
        }
        if (audit_ms > 0 && Clock::now() >= next_audit) {
          next_audit = Clock::now() + std::chrono::milliseconds(audit_ms);
          const auto rep = net.self_audit(/*include_fleet=*/true);
          ++audit_rounds;
          if (rep.balanced != last_balanced) {
            std::cout << "-- audit: "
                      << (rep.balanced ? "balanced" : "IMBALANCED")
                      << " entries=" << rep.entries
                      << " offenders=" << rep.offenders.size()
                      << " lag=" << rep.lag
                      << (rep.verifiable ? "" : " (unverifiable)")
                      << std::endl;
            last_balanced = rep.balanced;
          }
        }
        if (cfg.gc_resend_ms > 0 && Clock::now() >= next_heal) {
          // Between runs the executor's resend timer is not ticking;
          // the idle window retransmits cumulative RELs here instead.
          next_heal = Clock::now() +
                      std::chrono::milliseconds(
                          static_cast<long>(cfg.gc_resend_ms));
          net.heal_releases();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!more || Clock::now() >= hard_deadline) break;
    }

    // Final GC epoch. Cross-process convergence needs the peers' RELs,
    // which arrive on their own schedule: retry while export tables
    // still hold entries and the serve budget allows.
    auto gc = net.collect_garbage();
    for (int retry = 0; retry < 20 && gc.exports_live > 0 &&
                        Clock::now() < hard_deadline;
         ++retry) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      gc = net.collect_garbage();
    }

    for (const auto& [site, _] : programs)
      for (const auto& line : net.output(site))
        std::cout << "[" << site << "] " << line << "\n";
    for (const auto& err : net.all_errors())
      std::cerr << "error: " << err << "\n";

    std::uint64_t written_off = 0;
    std::size_t peers_down = 0;
    for (const auto& n : net.nodes())
      for (const auto& s : n->sites()) {
        written_off += s->machine().gc_stats().credit_written_off.value();
        peers_down = std::max(peers_down, s->dead_peers().size());
      }
    std::cout << "-- " << (res.quiescent ? "quiescent" : res.stalled
                               ? "STALLED (import waiting on a missing export)"
                               : "BUDGET EXHAUSTED")
              << ", " << total_instructions << " instructions\n";
    std::cout << "-- gc: rounds=" << gc.rounds
              << " exports_live=" << gc.exports_live
              << " netrefs_live=" << gc.netrefs_live
              << " credit_written_off=" << written_off
              << " peers_down=" << peers_down << "\n";
    if (audit_ms > 0) {
      // Exit-time verdict over the local tables only: the peers may
      // already be gone, so a fleet scrape here would just time out.
      const auto rep = net.self_audit(/*include_fleet=*/false);
      std::cout << "-- audit: rounds=" << (audit_rounds + 1) << " final="
                << (rep.balanced ? "balanced" : "IMBALANCED")
                << " entries=" << rep.entries << " outstanding="
                << rep.outstanding << "\n";
    }
    if (stats) std::cout << net.metrics().expose_text();
    std::cout.flush();
    return net.all_errors().empty() && gc.exports_live == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "tycod: " << e.what() << "\n";
    return 1;
  }
}
