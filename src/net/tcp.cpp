#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "support/bytes.hpp"

namespace dityco::net {

// -- framing ----------------------------------------------------------

std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool FrameParser::feed(const std::uint8_t* data, std::size_t n,
                       std::vector<std::vector<std::uint8_t>>& out) {
  return feed(data, n, [&out](const std::uint8_t* p, std::size_t len) {
    out.emplace_back(p, p + len);
    return true;
  });
}

std::size_t gather_frames(const std::deque<BufPtr>& q, std::size_t wr_off,
                          std::size_t flush_bytes, std::size_t flush_frames,
                          struct iovec* iov, std::size_t iov_max) {
  std::size_t cnt = 0, bytes = 0;
  for (const auto& f : q) {
    if (cnt == iov_max) break;
    const std::size_t skip = cnt == 0 ? wr_off : 0;
    iov[cnt].iov_base = const_cast<std::uint8_t*>(f->data() + skip);
    iov[cnt].iov_len = f->size() - skip;
    bytes += iov[cnt].iov_len;
    ++cnt;
    if (cnt >= flush_frames || bytes >= flush_bytes) break;
  }
  return cnt;
}

void consume_written(std::deque<BufPtr>& q, std::size_t& wr_off,
                     std::size_t n, BufferPool& pool) {
  wr_off += n;
  while (!q.empty() && wr_off >= q.front()->size()) {
    wr_off -= q.front()->size();
    pool.release(std::move(q.front()));
    q.pop_front();
  }
}

std::pair<std::string, std::uint16_t> parse_hostport(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size())
    throw std::invalid_argument("expected host:port, got '" + s + "'");
  const std::string host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535)
    throw std::invalid_argument("bad port in '" + s + "'");
  return {host, static_cast<std::uint16_t>(port)};
}

// -- small socket helpers ---------------------------------------------

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::invalid_argument("bad IPv4 address '" + host + "'");
  return addr;
}

// Peek at a daemon packet's v2 trace header without decoding it. This
// mirrors core/wire.hpp — which net/ cannot include (packets are opaque
// at this layer) — so the socket hops of a traced operation carry the
// same id and sampling decision as every other hop.
constexpr std::uint8_t kPeekTraceFlag = 0x80;
constexpr std::uint8_t kPeekSampledFlag = 0x40;

std::uint64_t peek_trace_id(const std::vector<std::uint8_t>& b) {
  if (b.size() < 13 || !(b[0] & kPeekTraceFlag)) return 0;
  std::uint64_t id;
  std::memcpy(&id, b.data() + 5, sizeof id);
  return id;
}

bool peek_sampled(const std::vector<std::uint8_t>& b) {
  // v1 packets (no trace header) count as sampled, like packet_sampled.
  return b.empty() || !(b[0] & kPeekTraceFlag) || (b[0] & kPeekSampledFlag);
}

void append_u32(Buf& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Read buffer drained per poll() wakeup; large enough that a batch of
/// tiny frames is dispatched in one read.
constexpr std::size_t kReadChunk = 256u << 10;

}  // namespace

// -- TcpTransport -----------------------------------------------------

TcpTransport::TcpTransport(TcpConfig cfg)
    : cfg_(std::move(cfg)), epoch_(std::chrono::steady_clock::now()) {
  rng_ ^= static_cast<std::uint64_t>(::getpid()) << 17 ^ cfg_.self;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("tcp: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(cfg_.listen_host, cfg_.listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    close_quietly(listen_fd_);
    throw std::runtime_error("tcp: cannot bind " + cfg_.listen_host + ":" +
                             std::to_string(cfg_.listen_port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    close_quietly(listen_fd_);
    throw std::runtime_error("tcp: listen() failed");
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    close_quietly(listen_fd_);
    throw std::runtime_error("tcp: pipe() failed");
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);

  for (const auto& [node, hp] : cfg_.peers)
    if (node != cfg_.self) peers_[node].hostport = hp;

  io_ = std::thread([this] { io_loop(); });
}

TcpTransport::~TcpTransport() { shutdown(); }

double TcpTransport::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t TcpTransport::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TcpTransport::shutdown() {
  if (stop_.exchange(true)) {
    if (io_.joinable()) io_.join();
    return;
  }
  // Unblock any sender stuck in backpressure, then stop the loop.
  backpressure_cv_.notify_all();
  if (wake_w_ >= 0) {
    const char b = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_w_, &b, 1);
  }
  if (io_.joinable()) io_.join();
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [node, p] : peers_) {
    close_quietly(p.fd);
    p.fd = -1;
    // Return undelivered frames so the pool gauge drains to baseline —
    // the ASan leak check (and /peers) can then prove nothing escaped.
    for (auto& f : p.outq) pool_.release(std::move(f));
    p.outq.clear();
    p.out_bytes = 0;
    p.wr_off = 0;
  }
  for (auto& [fd, in] : inbound_) close_quietly(fd);
  inbound_.clear();
  close_quietly(listen_fd_);
  close_quietly(wake_r_);
  close_quietly(wake_w_);
  listen_fd_ = wake_r_ = wake_w_ = -1;
}

void TcpTransport::add_peer(std::uint32_t node, const std::string& hostport) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    peers_[node].hostport = hostport;
  }
  const char b = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_w_, &b, 1);
}

std::size_t TcpTransport::connected_peers() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& [node, p] : peers_)
    if (p.fd >= 0 && !p.connecting) ++n;
  return n;
}

std::size_t TcpTransport::queued_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& [node, p] : peers_) n += p.out_bytes - p.wr_off;
  return n;
}

bool TcpTransport::peer_dead(std::uint32_t node) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = peers_.find(node);
  return it != peers_.end() && it->second.dead;
}

std::vector<std::uint32_t> TcpTransport::dead_peers() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::uint32_t> out;
  for (const auto& [node, p] : peers_)
    if (p.dead) out.push_back(node);
  return out;
}

std::vector<std::uint32_t> TcpTransport::advisory_dead() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {advisory_dead_.begin(), advisory_dead_.end()};
}

std::vector<TcpTransport::PeerInfo> TcpTransport::peer_info() const {
  std::lock_guard<std::mutex> lk(mu_);
  const double now = now_ms();
  std::vector<PeerInfo> out;
  out.reserve(peers_.size());
  for (const auto& [node, p] : peers_) {
    PeerInfo pi;
    pi.node = node;
    pi.hostport = p.hostport;
    pi.monitor_port = p.monitor_port;
    pi.connected = p.fd >= 0 && !p.connecting;
    pi.connecting = p.connecting;
    pi.suspected = p.suspect_since_ms >= 0;
    pi.dead = p.dead;
    pi.phi = p.detector.started() ? p.detector.phi(now) : 0;
    pi.last_heard_age_ms = p.last_heard_ms >= 0 ? now - p.last_heard_ms : -1;
    pi.queue_bytes = p.out_bytes - p.wr_off;
    pi.queued_frames = p.queued_frames;
    pi.reconnects = p.reconnects;
    pi.backoff_ms = p.backoff_ms;
    pi.last_rtt_us = p.last_rtt_us;
    pi.rtt_us = p.rtt_hist.snapshot();
    out.push_back(std::move(pi));
  }
  return out;
}

void TcpTransport::set_monitor_port(std::uint16_t port) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cfg_.monitor_port = port;
    // Re-gossip so already-connected peers learn the (possibly late-
    // bound) monitor port without waiting for new address traffic.
    broadcast_peers_locked();
  }
  const char b = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_w_, &b, 1);
}

void TcpTransport::enable_trace(std::size_t capacity,
                                std::uint64_t sample_every,
                                std::uint64_t sample_seed) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.enable(capacity, cfg_.self, obs::kTcpSite);
  ring_.set_sampling(sample_every, sample_seed);
}

void TcpTransport::set_trace_record_all(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.set_record_all(on);
}

void TcpTransport::send(Packet p, double /*now_us: wall clock rules*/) {
  if (stop_.load(std::memory_order_relaxed)) return;
  {
    // Fault injection: a filtered packet vanishes before framing, as if
    // the wire lost it.
    std::lock_guard<std::mutex> lk(mu_);
    if (drop_filter_ && drop_filter_(p)) {
      stats_.frames_filtered.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const std::size_t wire = p.bytes.size();
  if (p.dst_node == cfg_.self) {
    // Loopback: a daemon packet addressed to this very node (rare — the
    // node's shared-memory fast path catches most) skips the socket.
    std::lock_guard<std::mutex> lk(mu_);
    packets_out_.fetch_add(1, std::memory_order_relaxed);
    bytes_out_.fetch_add(wire, std::memory_order_relaxed);
    if (ring_.should_record(peek_sampled(p.bytes)))
      ring_.record(obs::EventType::kTcpSend, peek_trace_id(p.bytes),
                   p.dst_node);
    if (slo_hook_) {
      const std::uint64_t tid = peek_trace_id(p.bytes);
      if (tid != 0) slo_hook_(tid, true, obs::trace_now_ns());
    }
    inbox_.push_back(std::move(p));
    return;
  }
  // Encode straight into a pooled buffer — the steady-state hot path
  // allocates nothing: [len u32][kData u8][src u32][dst u32][packet].
  const std::uint32_t body_len = static_cast<std::uint32_t>(9 + wire);
  BufPtr frame = pool_.acquire(4 + body_len);
  append_u32(*frame, body_len);
  frame->push_back(static_cast<std::uint8_t>(FrameKind::kData));
  append_u32(*frame, p.src_node);
  append_u32(*frame, p.dst_node);
  frame->insert(frame->end(), p.bytes.begin(), p.bytes.end());

  std::unique_lock<std::mutex> lk(mu_);
  Peer& peer = peers_[p.dst_node];  // unknown peers wait for an address
  if (peer.dead) {
    stats_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
    pool_.release(std::move(frame));
    return;
  }
  if (peer.out_bytes - peer.wr_off > cfg_.max_queue_bytes) {
    stats_.backpressure_waits.fetch_add(1, std::memory_order_relaxed);
    const auto drained = [&] {
      return stop_.load(std::memory_order_relaxed) || peer.dead ||
             peer.out_bytes - peer.wr_off <= cfg_.max_queue_bytes;
    };
    bool ok = true;
    if (cfg_.send_timeout_ms == 0) {
      backpressure_cv_.wait(lk, drained);
    } else {
      ok = backpressure_cv_.wait_for(
          lk, std::chrono::milliseconds(cfg_.send_timeout_ms), drained);
    }
    if (stop_.load(std::memory_order_relaxed)) {
      pool_.release(std::move(frame));
      return;
    }
    if (!ok) {
      // The queue never drained: drop this frame rather than wedge an
      // executor thread forever on a peer that cannot keep up (or whose
      // address is simply wrong — see connect_deadline_ms).
      stats_.send_timeouts.fetch_add(1, std::memory_order_relaxed);
      stats_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
      pool_.release(std::move(frame));
      return;
    }
    if (peer.dead) {
      stats_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
      pool_.release(std::move(frame));
      return;
    }
  }
  if (!peer.ever_connected && peer.demand_since_ms < 0)
    peer.demand_since_ms = now_ms();
  const bool was_empty = peer.outq.empty();
  peer.out_bytes += frame->size();
  peer.outq.push_back(std::move(frame));
  ++peer.queued_frames;
  stats_.send_queue_bytes.observe(
      static_cast<double>(peer.out_bytes - peer.wr_off));
  if (ring_.should_record(peek_sampled(p.bytes)))
    ring_.record(obs::EventType::kTcpSend, peek_trace_id(p.bytes),
                 p.dst_node);
  if (slo_hook_) {
    const std::uint64_t tid = peek_trace_id(p.bytes);
    if (tid != 0) slo_hook_(tid, true, obs::trace_now_ns());
  }
  packets_out_.fetch_add(1, std::memory_order_relaxed);
  bytes_out_.fetch_add(wire, std::memory_order_relaxed);
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  lk.unlock();
  // Wake elision: the I/O loop rebuilds its fd set — arming POLLOUT for
  // every peer with a non-empty queue — under mu_, so appending to an
  // already non-empty queue never needs a poke (either POLLOUT is armed
  // for the in-flight poll(), or the queue was non-empty at the last
  // rebuild and still is). Only the empty→non-empty transition can find
  // the loop parked without POLLOUT; that's the one syscall we pay.
  if (was_empty) {
    const char b = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_w_, &b, 1);
  }
}

bool TcpTransport::recv(std::uint32_t node, Packet& out, double /*now_us*/) {
  std::lock_guard<std::mutex> lk(mu_);
  if (node != cfg_.self || inbox_.empty()) return false;
  out = std::move(inbox_.front());
  inbox_.pop_front();
  if (ring_.should_record(peek_sampled(out.bytes)))
    ring_.record(obs::EventType::kTcpRecv, peek_trace_id(out.bytes),
                 out.src_node);
  if (slo_hook_) {
    const std::uint64_t tid = peek_trace_id(out.bytes);
    if (tid != 0) slo_hook_(tid, false, obs::trace_now_ns());
  }
  return true;
}

std::size_t TcpTransport::in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = inbox_.size();
  for (const auto& [node, p] : peers_) n += p.queued_frames;
  return n;
}

// -- I/O loop ---------------------------------------------------------

void TcpTransport::queue_frame(Peer& p, FrameKind kind,
                               const std::vector<std::uint8_t>& body) {
  BufPtr f = pool_.acquire(4 + 1 + body.size());
  append_u32(*f, static_cast<std::uint32_t>(1 + body.size()));
  f->push_back(static_cast<std::uint8_t>(kind));
  f->insert(f->end(), body.begin(), body.end());
  p.out_bytes += f->size();
  p.outq.push_back(std::move(f));
}

void TcpTransport::start_connect(std::uint32_t node, Peer& p, double now) {
  std::string host;
  std::uint16_t port = 0;
  try {
    std::tie(host, port) = parse_hostport(p.hostport);
  } catch (const std::invalid_argument&) {
    return;  // unusable address; wait for gossip to replace it
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr;
  try {
    addr = make_addr(host, port);
  } catch (const std::invalid_argument&) {
    close_quietly(fd);
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc == 0) {
    p.fd = fd;
    p.connecting = false;
    finish_connect(node, p, now);
  } else if (errno == EINPROGRESS) {
    p.fd = fd;
    p.connecting = true;
  } else {
    close_quietly(fd);
    fail_connect(node, p, now);
  }
}

void TcpTransport::finish_connect(std::uint32_t node, Peer& p, double now) {
  p.connecting = false;
  if (p.ever_connected) {
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
    ++p.reconnects;
    // A reconnect is a path anomaly worth keeping: stamp the trace event
    // with a fresh id so a flight recorder can promote exactly it.
    if (ring_.enabled() || peer_event_hook_) {
      const std::uint64_t id = obs::next_trace_id();
      if (ring_.enabled())
        ring_.record(obs::EventType::kTcpReconnect, id, node);
      if (peer_event_hook_) peer_event_hook_(PeerEvent::kReconnect, node, id);
    }
  }
  stats_.connects.fetch_add(1, std::memory_order_relaxed);
  p.ever_connected = true;
  p.demand_since_ms = -1;
  p.backoff_ms = 0;
  p.parser = FrameParser{};
  // Identity first: the hello must precede any queued data so the
  // acceptor can tag the connection (and learn our reach-back address)
  // before payloads arrive. Prepending at the queue head is
  // frame-aligned: wr_off is 0 here (fresh peers start there,
  // fail_connect rewinds).
  Writer hello;
  hello.u8(static_cast<std::uint8_t>(FrameKind::kHello));
  hello.u32(cfg_.self);
  hello.u16(port_);
  hello.u16(cfg_.monitor_port);
  const auto body = hello.take();
  BufPtr frame = pool_.acquire(4 + body.size());
  append_u32(*frame, static_cast<std::uint32_t>(body.size()));
  frame->insert(frame->end(), body.begin(), body.end());
  p.out_bytes += frame->size();
  p.outq.push_front(std::move(frame));
  p.next_hb_ms = now + static_cast<double>(cfg_.heartbeat_ms);
}

void TcpTransport::fail_connect(std::uint32_t node, Peer& p, double now) {
  close_quietly(p.fd);
  p.fd = -1;
  p.connecting = false;
  // Rewind to the start of the partially-written head frame: the broken
  // connection's receiver discarded its partial bytes with the socket,
  // so the next connection must carry the frame whole (after the hello),
  // never the leftover tail.
  p.wr_off = 0;
  // Exponential backoff with up to 50% jitter (xorshift — cheap, seeded
  // per process so restarted fleets spread out).
  p.backoff_ms = p.backoff_ms == 0
                     ? cfg_.backoff_min_ms
                     : std::min(p.backoff_ms * 2, cfg_.backoff_max_ms);
  stats_.reconnect_backoff_ms.observe(static_cast<double>(p.backoff_ms));
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  const std::uint64_t jitter = p.backoff_ms > 1 ? rng_ % (p.backoff_ms / 2 + 1) : 0;
  p.next_connect_ms = now + static_cast<double>(p.backoff_ms + jitter);
  (void)node;
}

void TcpTransport::feed_liveness(std::uint32_t node, double now) {
  auto it = peers_.find(node);
  if (it == peers_.end()) return;
  it->second.detector.heartbeat(now);
  it->second.suspect_since_ms = -1;
  it->second.last_heard_ms = now;
}

void TcpTransport::mark_dead(std::uint32_t node, Peer& p) {
  p.dead = true;
  close_quietly(p.fd);
  p.fd = -1;
  p.connecting = false;
  stats_.frames_dropped.fetch_add(p.queued_frames,
                                  std::memory_order_relaxed);
  p.queued_frames = 0;
  for (auto& f : p.outq) pool_.release(std::move(f));
  p.outq.clear();
  p.out_bytes = 0;
  p.wr_off = 0;
  for (auto it = inbound_.begin(); it != inbound_.end();) {
    if (it->second.node == node) {
      close_quietly(it->first);
      it = inbound_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.peers_dead.fetch_add(1, std::memory_order_relaxed);
  // Our confirmed verdict joins the advisory gossip: the next kPeers
  // broadcast carries it, so survivors that have not yet confirmed can
  // move shard ownership early (they still write off only on their own
  // detector's verdict).
  if (advisory_dead_.insert(node).second) {
    advisory_gen_.fetch_add(1, std::memory_order_release);
    broadcast_peers_locked();
  }
  if (ring_.enabled() || peer_event_hook_) {
    const std::uint64_t id = obs::next_trace_id();
    if (ring_.enabled())
      ring_.record(obs::EventType::kTcpPeerDead, id, node);
    if (peer_event_hook_) peer_event_hook_(PeerEvent::kDead, node, id);
  }
  if (death_frame_) {
    Packet obit;
    obit.src_node = node;
    obit.dst_node = cfg_.self;
    obit.bytes = death_frame_(node);
    inbox_.push_back(std::move(obit));
  }
  backpressure_cv_.notify_all();
}

void TcpTransport::check_liveness(double now) {
  if (!cfg_.detect_failures) return;
  for (auto& [node, p] : peers_) {
    if (p.dead) continue;
    // Phi is blind to a peer that never spoke: a wrong or unreachable
    // address would otherwise queue (and block senders) forever. Demand
    // that never yields a connection — or any inbound traffic — for
    // connect_deadline_ms is a death verdict of its own.
    if (cfg_.connect_deadline_ms > 0 && !p.ever_connected &&
        !p.detector.started() && p.demand_since_ms >= 0 &&
        now - p.demand_since_ms >=
            static_cast<double>(cfg_.connect_deadline_ms)) {
      mark_dead(node, p);
      continue;
    }
    if (!p.detector.started()) continue;
    if (p.detector.phi(now) > cfg_.phi_threshold) {
      if (p.suspect_since_ms < 0) {
        p.suspect_since_ms = now;
        stats_.peers_suspected.fetch_add(1, std::memory_order_relaxed);
      } else if (now - p.suspect_since_ms >=
                 static_cast<double>(cfg_.confirm_ms)) {
        mark_dead(node, p);
      }
    } else {
      p.suspect_since_ms = -1;
    }
  }
}

bool TcpTransport::handle_payload(int fd, std::uint32_t tagged_node,
                                  const std::uint8_t* payload,
                                  std::size_t len, double now) {
  // Frame bodies come off the network and must never be trusted: every
  // Reader access is bounds-checked and throws DecodeError on truncated
  // input. Catch it here — an escaped exception would terminate the I/O
  // thread (and the process) on the first malformed frame from a peer.
  try {
  Reader r(std::span<const std::uint8_t>(payload, len));
  const auto kind = static_cast<FrameKind>(r.u8());
  switch (kind) {
    case FrameKind::kHello: {
      const std::uint32_t node = r.u32();
      const std::uint16_t lport = r.u16();
      // Monitor port is an additive field: old hellos simply end here.
      const std::uint16_t mport = r.remaining() >= 2 ? r.u16() : 0;
      auto in = inbound_.find(fd);
      if (in != inbound_.end()) in->second.node = node;
      Peer& p = peers_[node];
      if (p.dead) {
        // The peer restarted under the same node id: resurrect it (fresh
        // detector, reconnect allowed again).
        p.dead = false;
        p.detector.reset();
        p.suspect_since_ms = -1;
        p.demand_since_ms = -1;
        p.backoff_ms = 0;
        p.next_connect_ms = 0;
      }
      if (p.hostport.empty()) {
        // Learn the reach-back address: the peer's observed IP plus its
        // advertised listen port (the --join bootstrap).
        sockaddr_in addr{};
        socklen_t alen = sizeof addr;
        char ip[INET_ADDRSTRLEN] = "127.0.0.1";
        if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &alen) == 0)
          ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
        p.hostport = std::string(ip) + ":" + std::to_string(lport);
        broadcast_peers_locked();
      }
      if (mport != 0) p.monitor_port = mport;
      feed_liveness(node, now);
      return true;
    }
    case FrameKind::kData: {
      const std::uint32_t src = r.u32();
      const std::uint32_t dst = r.u32();
      Packet p;
      p.src_node = src;
      p.dst_node = dst;
      p.bytes.assign(payload + 9, payload + len);
      stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_in.fetch_add(p.bytes.size(), std::memory_order_relaxed);
      const std::uint32_t liveness_node =
          tagged_node != kUnknownNode ? tagged_node : src;
      feed_liveness(liveness_node, now);
      inbox_.push_back(std::move(p));
      return true;
    }
    case FrameKind::kHeartbeat: {
      const std::uint32_t node = r.u32();
      r.u64();  // seq rides back in the echo below
      r.u64();
      feed_liveness(node, now);
      // Echo the body back on the same connection as an ACK.
      BufPtr frame = pool_.acquire(4 + len);
      append_u32(*frame, static_cast<std::uint32_t>(len));
      frame->push_back(static_cast<std::uint8_t>(FrameKind::kHeartbeatAck));
      frame->insert(frame->end(), payload + 1, payload + len);
      auto in = inbound_.find(fd);
      if (in != inbound_.end()) {
        if (in->second.node == kUnknownNode) in->second.node = node;
        in->second.outbuf.append(
            reinterpret_cast<const char*>(frame->data()), frame->size());
        pool_.release(std::move(frame));
      } else {
        // Heartbeat arrived on our own outbound connection (the peer
        // echoes through it too); answer there.
        auto pit = peers_.find(node);
        if (pit != peers_.end() && pit->second.fd == fd) {
          pit->second.out_bytes += frame->size();
          pit->second.outq.push_back(std::move(frame));
        } else {
          pool_.release(std::move(frame));
        }
      }
      return true;
    }
    case FrameKind::kHeartbeatAck: {
      r.u32();  // our own node id — the ack echoes our heartbeat body
      r.u64();  // seq
      const std::uint64_t sent_us = r.u64();
      const std::uint64_t rtt = now_us() - sent_us;
      stats_.last_rtt_us.store(rtt, std::memory_order_relaxed);
      stats_.rtt_us.observe(static_cast<double>(rtt));
      stats_.heartbeats_acked.fetch_add(1, std::memory_order_relaxed);
      // The body names us, not the responder: attribute the RTT to
      // whichever peer owns the connection the echo came back on.
      for (auto& [peer_node, p] : peers_) {
        if (p.fd != fd) continue;
        p.last_rtt_us = rtt;
        p.rtt_hist.observe(static_cast<double>(rtt));
        feed_liveness(peer_node, now);
        break;
      }
      return true;
    }
    case FrameKind::kPeers: {
      const std::uint32_t n = r.u32();
      bool changed = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t node = r.u32();
        const std::string hp = r.str();
        const std::uint16_t mport = r.remaining() >= 2 ? r.u16() : 0;
        if (node == cfg_.self) continue;
        Peer& p = peers_[node];
        if (p.hostport.empty() && !hp.empty()) {
          p.hostport = hp;
          changed = true;
        }
        if (mport != 0) p.monitor_port = mport;
      }
      // Additive trailing block: advisory deaths. Merge (grow-only; a
      // rumour that we ourselves died is ignored — we are demonstrably
      // here) and re-gossip on change so the set floods the fleet.
      bool deaths_changed = false;
      if (r.remaining() >= 4) {
        const std::uint32_t dead_n = r.u32();
        for (std::uint32_t i = 0; i < dead_n && r.remaining() >= 4; ++i) {
          const std::uint32_t node = r.u32();
          if (node == cfg_.self) continue;
          deaths_changed |= advisory_dead_.insert(node).second;
        }
      }
      if (deaths_changed) {
        advisory_gen_.fetch_add(1, std::memory_order_release);
        broadcast_peers_locked();
      }
      if (tagged_node != kUnknownNode) feed_liveness(tagged_node, now);
      (void)changed;
      return true;
    }
  }
  // Unknown frame kind: tolerate (forward compatibility), drop silently.
  return true;
  } catch (const DecodeError&) {
    stats_.frames_malformed.fetch_add(1, std::memory_order_relaxed);
    return false;  // caller drops the connection, like a framing error
  }
}

std::string TcpTransport::advertised_hostport() const {
  std::string host =
      !cfg_.advertise_host.empty() ? cfg_.advertise_host : cfg_.listen_host;
  // A wildcard bind is not routable from other hosts; without an
  // explicit advertise_host, loopback is the only address we can be
  // sure of. Non-loopback deployments must configure advertise_host.
  if (host.empty() || host == "0.0.0.0" || host == "::" || host == "*")
    host = "127.0.0.1";
  return host + ":" + std::to_string(port_);
}

void TcpTransport::broadcast_peers_locked() {
  // Address gossip: whenever a new address is learned, share the whole
  // table with every known peer so late joiners can reach each other
  // without static configuration.
  Writer w;
  std::uint32_t n = 1;
  for (const auto& [node, p] : peers_)
    if (!p.hostport.empty()) ++n;
  w.u32(n);
  w.u32(cfg_.self);
  w.str(advertised_hostport());
  w.u16(cfg_.monitor_port);
  for (const auto& [node, p] : peers_)
    if (!p.hostport.empty()) {
      w.u32(node);
      w.str(p.hostport);
      w.u16(p.monitor_port);
    }
  // Advisory death gossip rides the same frame as a trailing block (old
  // receivers stop at the entry list and ignore it).
  w.u32(static_cast<std::uint32_t>(advisory_dead_.size()));
  for (std::uint32_t d : advisory_dead_) w.u32(d);
  const auto body = w.take();
  for (auto& [node, p] : peers_)
    if (p.fd >= 0 && !p.connecting && !p.dead)
      queue_frame(p, FrameKind::kPeers, body);
}

void TcpTransport::flush_writes(int fd, std::string& buf) {
  // Inbound connections only (heartbeat ACKs): these sockets are never
  // reconnected, so consuming written bytes immediately is safe here.
  while (!buf.empty()) {
    const ssize_t n = ::write(fd, buf.data(), buf.size());
    if (n > 0) {
      buf.erase(0, static_cast<std::size_t>(n));
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // short write: the rest goes out on the next POLLOUT
    } else {
      return;  // hard error: the read side will notice and tear down
    }
  }
}

void TcpTransport::flush_peer_writes(Peer& p) {
  // Coalesced flush: gather up to flush_frames/flush_bytes of whole
  // frames into one writev(). Peer queues survive reconnects, so they
  // stay frame-aligned: bytes are consumed via wr_off and whole frames
  // recycled only once fully written (consume_written). A disconnect
  // mid-batch then rewinds wr_off to 0 (fail_connect) and the next
  // connection retransmits the head frame whole — never a dangling
  // tail after the hello.
  struct iovec iov[kIovMax];
  while (!p.outq.empty()) {
    const std::size_t cnt = gather_frames(
        p.outq, p.wr_off, cfg_.flush_bytes,
        std::max<std::size_t>(1, cfg_.flush_frames), iov, kIovMax);
    const ssize_t n = cnt == 1
                          ? ::write(p.fd, iov[0].iov_base, iov[0].iov_len)
                          : ::writev(p.fd, iov, static_cast<int>(cnt));
    if (n > 0) {
      stats_.writev_calls.fetch_add(1, std::memory_order_relaxed);
      stats_.writev_frames.fetch_add(cnt, std::memory_order_relaxed);
      stats_.flush_frames_per_call.observe(static_cast<double>(cnt));
      const std::size_t before = p.wr_off;
      consume_written(p.outq, p.wr_off, static_cast<std::size_t>(n), pool_);
      p.out_bytes -= before + static_cast<std::size_t>(n) - p.wr_off;
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // short write: the rest goes out on the next POLLOUT
    } else {
      return;  // hard error: the read side will notice and tear down
    }
  }
}

void TcpTransport::io_loop() {
  // Linux pads timed sleeps (poll included) by the thread's timer slack
  // — 50µs by default, the size of this loop's whole wakeup budget.
  // 1µs slack keeps idle-path latency at the timer's resolution.
  ::prctl(PR_SET_TIMERSLACK, 1000, 0, 0, 0);
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> fd_peer;  // parallel: peer node or kUnknownNode
  BufPtr rdbuf;  // pooled read buffer, held for the loop's lifetime
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    fd_peer.clear();
    {
      std::lock_guard<std::mutex> lk(mu_);
      const double now = now_ms();
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_peer.push_back(kUnknownNode);
      fds.push_back({wake_r_, POLLIN, 0});
      fd_peer.push_back(kUnknownNode);
      for (auto& [node, p] : peers_) {
        if (p.dead) continue;
        const bool want =
            !p.outq.empty() || !p.hostport.empty();
        if (p.fd < 0 && want && now >= p.next_connect_ms) {
          start_connect(node, p, now);
        }
        if (p.fd >= 0 && !p.connecting && now >= p.next_hb_ms &&
            cfg_.heartbeat_ms > 0) {
          p.next_hb_ms = now + static_cast<double>(cfg_.heartbeat_ms);
          Writer hb;
          hb.u32(cfg_.self);
          hb.u64(++p.hb_seq);
          hb.u64(now_us());
          queue_frame(p, FrameKind::kHeartbeat, hb.take());
          stats_.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
        }
        if (p.fd >= 0) {
          short ev = POLLIN;
          if (p.connecting || !p.outq.empty()) ev |= POLLOUT;
          fds.push_back({p.fd, ev, 0});
          fd_peer.push_back(node);
        }
      }
      for (auto& [fd, in] : inbound_) {
        short ev = POLLIN;
        if (!in.outbuf.empty()) ev |= POLLOUT;
        fds.push_back({fd, ev, 0});
        fd_peer.push_back(kUnknownNode);
      }
      check_liveness(now);
    }
    const int timeout_ms =
        cfg_.heartbeat_ms > 0
            ? static_cast<int>(std::min<std::uint64_t>(cfg_.heartbeat_ms, 20))
            : 20;
    if (cfg_.busy_poll_us == 0) {
      ::poll(fds.data(), fds.size(), timeout_ms);
    } else {
      // Opt-in busy-poll: spin on zero-timeout polls (yielding the core
      // between probes so executor threads still run) for up to
      // busy_poll_us before parking in a blocking poll. The fd set is
      // safe to reuse while spinning — any state change that matters
      // either arms an fd already polled or pokes the wake pipe.
      int nready = ::poll(fds.data(), fds.size(), 0);
      if (nready == 0) {
        const auto spin_until =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(cfg_.busy_poll_us);
        while (nready == 0 && !stop_.load(std::memory_order_relaxed) &&
               std::chrono::steady_clock::now() < spin_until) {
          std::this_thread::yield();
          nready = ::poll(fds.data(), fds.size(), 0);
        }
        if (nready == 0 && !stop_.load(std::memory_order_relaxed))
          ::poll(fds.data(), fds.size(), timeout_ms);
      }
    }
    if (stop_.load(std::memory_order_relaxed)) break;

    std::unique_lock<std::mutex> lk(mu_);
    const double now = now_ms();
    bool drained = false;
    // Read-side batching: drain each ready socket into a pooled
    // contiguous buffer and dispatch every complete frame it holds in
    // one pass (zero copies for frames that don't span reads).
    if (!rdbuf) {
      rdbuf = pool_.acquire(kReadChunk);
      rdbuf->resize(kReadChunk);
    }
    std::uint8_t* const buf = rdbuf->data();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& pf = fds[i];
      if (pf.revents == 0) continue;
      if (pf.fd == wake_r_) {
        ssize_t n;
        char sink[256];
        while ((n = ::read(wake_r_, sink, sizeof sink)) > 0) {
        }
        continue;
      }
      if (pf.fd == listen_fd_) {
        for (;;) {
          const int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          inbound_.emplace(cfd, Inbound{});
          stats_.accepts.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      const std::uint32_t pnode = fd_peer[i];
      if (pnode != kUnknownNode) {
        // Our outbound connection to `pnode`.
        auto pit = peers_.find(pnode);
        if (pit == peers_.end() || pit->second.fd != pf.fd) continue;
        Peer& p = pit->second;
        if (p.connecting && (pf.revents & (POLLOUT | POLLERR | POLLHUP))) {
          int err = 0;
          socklen_t elen = sizeof err;
          ::getsockopt(pf.fd, SOL_SOCKET, SO_ERROR, &err, &elen);
          if (err != 0) {
            fail_connect(pnode, p, now);
            continue;
          }
          finish_connect(pnode, p, now);
        }
        if (pf.revents & POLLIN) {
          for (;;) {
            const ssize_t n = ::read(pf.fd, buf, kReadChunk);
            if (n > 0) {
              const bool ok = p.parser.feed(
                  buf, static_cast<std::size_t>(n),
                  [&](const std::uint8_t* pl, std::size_t pl_len) {
                    return handle_payload(pf.fd, pnode, pl, pl_len, now);
                  });
              if (!ok) {
                if (p.parser.error())
                  stats_.frames_malformed.fetch_add(
                      1, std::memory_order_relaxed);
                fail_connect(pnode, p, now);
                break;
              }
            } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
              break;
            } else {
              // Peer closed (restart or crash): tear down and let the
              // backoff timer drive reconnection. Queued frames stay.
              fail_connect(pnode, p, now);
              break;
            }
          }
        }
        if (p.fd >= 0 && !p.connecting && (pf.revents & POLLOUT)) {
          const std::size_t before = p.out_bytes - p.wr_off;
          flush_peer_writes(p);
          if (p.out_bytes - p.wr_off < before) {
            drained = true;
            if (p.outq.empty()) p.queued_frames = 0;
          }
        }
        continue;
      }
      // An accepted (inbound) connection.
      auto iit = inbound_.find(pf.fd);
      if (iit == inbound_.end()) continue;
      bool dead_fd = false;
      if (pf.revents & POLLIN) {
        for (;;) {
          const ssize_t n = ::read(pf.fd, buf, kReadChunk);
          if (n > 0) {
            const bool ok = iit->second.parser.feed(
                buf, static_cast<std::size_t>(n),
                [&](const std::uint8_t* pl, std::size_t pl_len) {
                  return handle_payload(pf.fd, iit->second.node, pl, pl_len,
                                        now);
                });
            if (!ok) {
              if (iit->second.parser.error())
                stats_.frames_malformed.fetch_add(1,
                                                  std::memory_order_relaxed);
              dead_fd = true;
              break;
            }
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            dead_fd = true;
            break;
          }
        }
      }
      if (!dead_fd && (pf.revents & (POLLERR | POLLHUP))) dead_fd = true;
      if (!dead_fd && (pf.revents & POLLOUT))
        flush_writes(pf.fd, iit->second.outbuf);
      if (dead_fd) {
        close_quietly(pf.fd);
        inbound_.erase(iit);
      }
    }
    // queued_frames stays an estimate between drains (the queue mixes
    // data and control frames): in_flight only needs to reach zero
    // exactly when the queue is empty, which `queued_frames = 0` above
    // guarantees.
    if (drained) backpressure_cv_.notify_all();
  }
  pool_.release(std::move(rdbuf));
  backpressure_cv_.notify_all();
}

// -- TcpMeshTransport -------------------------------------------------

TcpMeshTransport::TcpMeshTransport(std::size_t nodes, TcpConfig base) {
  base.detect_failures = false;  // one process: peers cannot die alone
  for (std::size_t i = 0; i < nodes; ++i) {
    TcpConfig c = base;
    c.self = static_cast<std::uint32_t>(i);
    c.listen_host = "127.0.0.1";
    c.listen_port = 0;
    c.peers.clear();
    c.multiprocess = false;
    parts_.push_back(std::make_unique<TcpTransport>(c));
  }
  for (std::size_t i = 0; i < nodes; ++i)
    for (std::size_t j = 0; j < nodes; ++j)
      if (i != j)
        parts_[i]->add_peer(
            static_cast<std::uint32_t>(j),
            "127.0.0.1:" + std::to_string(parts_[j]->port()));
}

TcpMeshTransport::~TcpMeshTransport() { shutdown(); }

void TcpMeshTransport::shutdown() {
  for (auto& p : parts_) p->shutdown();
}

void TcpMeshTransport::send(Packet p, double now_us) {
  bytes_.fetch_add(p.bytes.size(), std::memory_order_relaxed);
  packets_.fetch_add(1, std::memory_order_relaxed);
  // Count before the socket write: the packet must be visible to
  // quiescence scans for its entire socket transit.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  parts_.at(p.src_node)->send(std::move(p), now_us);
}

bool TcpMeshTransport::recv(std::uint32_t node, Packet& out, double now_us) {
  if (!parts_.at(node)->recv(node, out, now_us)) return false;
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

}  // namespace dityco::net
