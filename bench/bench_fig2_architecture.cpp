// E2 (Figure 2): the DiTyCO architecture — a static IP topology of
// nodes, each holding a dynamic pool of sites; message passing and code
// mobility happen at the *site* level and the site-to-site communication
// topology changes dynamically.
//
// Harness: fixed total site count (8), laid out as 1x8, 2x4, 4x2 and 8x1
// (nodes x sites/node). Every site runs an echo server and pings every
// other site. The same site-level traffic maps to very different
// node-level traffic: packets crossing nodes pay the link, packets
// within a node take the daemon's shared-memory path.
#include "bench_util.hpp"

using namespace dityco;
using namespace dityco::benchutil;

namespace {

struct Outcome {
  double vtime_us = 0;
  std::uint64_t transport_packets = 0;
  std::uint64_t local_deliveries = 0;
  bool ok = false;
};

Outcome run_topology(int nodes, int sites_per_node, int pings) {
  auto net = make_cluster(nodes, sites_per_node, sim_config(net::myrinet()));
  std::vector<std::string> names;
  for (int n = 0; n < nodes; ++n)
    for (int s = 0; s < sites_per_node; ++s)
      names.push_back("s" + std::to_string(n) + "_" + std::to_string(s));

  for (const auto& me : names) {
    std::string prog = echo_server_src() + " | 0";
    net.submit_source(me, prog);
    // One client loop per peer, all concurrent.
    for (const auto& peer : names) {
      if (peer == me) continue;
      net.submit_source(me, chained_rpc_client_src(peer, pings));
    }
  }
  auto res = net.run();
  Outcome o;
  o.ok = res.quiescent;
  o.vtime_us = res.virtual_time_us;
  o.transport_packets = res.packets;
  for (const auto& n : net.nodes()) o.local_deliveries += n->local_deliveries();
  return o;
}

}  // namespace

int main() {
  const int total_sites = 8;
  const int pings = 8;

  header("E2: 8 sites, all-pairs RPC, by node layout (Myrinet)",
         {"nodes x sites", "virtual us", "transport packets",
          "shared-memory deliveries", "quiescent"});
  for (int nodes : {1, 2, 4, 8}) {
    const int spn = total_sites / nodes;
    const Outcome o = run_topology(nodes, spn, pings);
    row({fmt_int(nodes) + " x " + fmt_int(spn), fmt(o.vtime_us),
         fmt_int(o.transport_packets), fmt_int(o.local_deliveries),
         o.ok ? "yes" : "NO"});
  }
  std::printf(
      "\nshape check: as sites concentrate onto fewer nodes, transport\n"
      "packets shift to shared-memory deliveries and the virtual time\n"
      "drops — fig. 2's two-level architecture is what makes the\n"
      "same-node optimisation possible.\n");
  return 0;
}
