#include "obs/profile.hpp"

namespace dityco::obs {

void Profiler::enable(std::uint64_t period) {
  if (period != 0 && !cells_) cells_ = std::make_unique<Cell[]>(kSlots);
  period_ = period;
}

void Profiler::sample(std::uint32_t op, std::uint32_t ctx) {
  if (!cells_) return;
  const std::uint64_t key = make_key(op, ctx);
  // splitmix64-style scramble spreads (op, ctx) pairs over the table.
  std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  for (int probe = 0; probe < kMaxProbe; ++probe) {
    Cell& c = cells_[(h + static_cast<std::uint64_t>(probe)) & (kSlots - 1)];
    std::uint64_t k = c.key.load(std::memory_order_relaxed);
    if (k == 0) {
      // Single writer: claiming a cell is a plain store; concurrent
      // readers may momentarily see the key with count 0, which is a
      // harmless empty sample.
      c.key.store(key, std::memory_order_relaxed);
      k = key;
    }
    if (k == key) {
      c.count.store(c.count.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
      total_.store(total_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
      return;
    }
  }
  overflow_.store(overflow_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
}

void Profiler::set_context_name(std::uint32_t ctx, std::string name) {
  std::lock_guard<std::mutex> lk(names_mu_);
  names_[ctx] = std::move(name);
}

std::string Profiler::context_name(std::uint32_t ctx) const {
  std::lock_guard<std::mutex> lk(names_mu_);
  const auto it = names_.find(ctx);
  if (it != names_.end()) return it->second;
  return "seg" + std::to_string(ctx);
}

std::vector<Profiler::Sample> Profiler::snapshot() const {
  std::vector<Sample> out;
  if (!cells_) return out;
  for (std::size_t i = 0; i < kSlots; ++i) {
    const std::uint64_t k = cells_[i].key.load(std::memory_order_relaxed);
    if (k == 0) continue;
    const std::uint64_t n = cells_[i].count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    Sample s;
    s.op = static_cast<std::uint32_t>(k & 0xffffu);
    s.ctx = static_cast<std::uint32_t>((k >> 16) & 0xffffffffull);
    s.count = n;
    out.push_back(s);
  }
  return out;
}

}  // namespace dityco::obs
