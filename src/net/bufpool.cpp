#include "net/bufpool.hpp"

namespace dityco::net {

BufPtr BufferPool::acquire(std::size_t reserve) {
  BufPtr b;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++outstanding_;
    if (!free_.empty()) {
      ++hits_;
      b = std::move(free_.back());
      free_.pop_back();
    } else {
      ++misses_;
    }
  }
  if (!b) b = std::make_unique<Buf>();
  b->clear();
  if (b->capacity() < reserve) b->reserve(reserve);
  return b;
}

void BufferPool::release(BufPtr b) {
  if (!b) return;
  std::lock_guard<std::mutex> lk(mu_);
  ++releases_;
  if (outstanding_ > 0) --outstanding_;
  if (free_.size() >= opts_.max_free ||
      b->capacity() > opts_.max_buffer_bytes) {
    ++trimmed_;
    return;  // unique_ptr frees it
  }
  free_.push_back(std::move(b));
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lk(mu_);
  trimmed_ += free_.size();
  free_.clear();
}

BufferPool::StatsSnapshot BufferPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  StatsSnapshot s;
  s.hits = hits_;
  s.misses = misses_;
  s.releases = releases_;
  s.trimmed = trimmed_;
  s.outstanding = outstanding_;
  s.free_buffers = free_.size();
  for (const auto& b : free_) s.free_bytes += b->capacity();
  return s;
}

}  // namespace dityco::net
