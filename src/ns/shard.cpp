#include "ns/shard.hpp"

namespace dityco::ns {

namespace {

/// splitmix64 finalizer: decorrelates (key, node) pairs so HRW weights
/// are independent per node.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(std::uint32_t shards, std::uint32_t replicas)
    : shards_(shards == 0 ? 1 : shards), replicas_(replicas) {}

std::uint64_t ShardRouter::key_hash(const std::string& site,
                                    const std::string& name) {
  // FNV-1a over "site\0name": stable across processes and runs (never
  // std::hash, whose value is implementation-defined).
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto feed = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    h ^= 0;
    h *= 0x100000001b3ull;
  };
  feed(site);
  feed(name);
  return h;
}

ShardRouter::Owners ShardRouter::owners_locked(std::uint64_t h) const {
  Owners out;
  std::uint64_t best_w = 0, second_w = 0;
  for (std::uint32_t node = 0; node < shards_; ++node) {
    if (dead_.count(node) != 0) continue;
    const std::uint64_t w = mix(h ^ mix(node));
    if (out.primary == kNoNode || w > best_w) {
      second_w = best_w;
      out.replica = out.primary;
      best_w = w;
      out.primary = node;
    } else if (out.replica == kNoNode || w > second_w) {
      second_w = w;
      out.replica = node;
    }
  }
  if (replicas_ == 0) out.replica = kNoNode;
  return out;
}

ShardRouter::Owners ShardRouter::owners_of(const std::string& site,
                                           const std::string& name) const {
  const std::uint64_t h = key_hash(site, name);
  std::lock_guard<std::mutex> lk(mu_);
  return owners_locked(h);
}

std::uint32_t ShardRouter::primary_of(const std::string& site,
                                      const std::string& name) const {
  return owners_of(site, name).primary;
}

std::uint32_t ShardRouter::replica_of(const std::string& site,
                                      const std::string& name) const {
  return owners_of(site, name).replica;
}

bool ShardRouter::note_dead(std::uint32_t node) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!dead_.insert(node).second) return false;
  ++generation_;
  return true;
}

bool ShardRouter::merge_dead(const std::vector<std::uint32_t>& nodes) {
  std::lock_guard<std::mutex> lk(mu_);
  bool changed = false;
  for (const std::uint32_t n : nodes)
    if (dead_.insert(n).second) changed = true;
  if (changed) ++generation_;
  return changed;
}

bool ShardRouter::is_dead(std::uint32_t node) const {
  std::lock_guard<std::mutex> lk(mu_);
  return dead_.count(node) != 0;
}

std::uint32_t ShardRouter::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::uint32_t>(dead_.size());
}

std::uint64_t ShardRouter::generation() const {
  std::lock_guard<std::mutex> lk(mu_);
  return generation_;
}

std::vector<std::uint32_t> ShardRouter::dead() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::vector<std::uint32_t>(dead_.begin(), dead_.end());
}

}  // namespace dityco::ns
