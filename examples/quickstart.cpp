// Quickstart: the paper's polymorphic Cell (section 2) running on the
// TyCO virtual machine, plus a two-site RPC showing `export`/`import`.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>

#include "core/network.hpp"

int main() {
  using dityco::core::Network;

  // ---- 1. A single-site TyCO program: the polymorphic cell ------------
  {
    Network net;
    net.add_node();
    net.add_site(0, "main");
    net.submit_source("main", R"(
      -- A one-slot polymorphic cell: `read` answers the current value,
      -- `write` replaces it. Recursion keeps the cell alive.
      def Cell(self, v) =
        self?{ read(r)  = (r![v] | Cell[self, v]),
               write(u) = Cell[self, u] }
      in
      new x (
        Cell[x, 9]
        | new z (x!read[z] | z?(w) = print["cell holds", w])
      )
    )");
    auto res = net.run();
    std::cout << "--- polymorphic cell (site main) ---\n";
    for (const auto& line : net.output("main")) std::cout << line << "\n";
    std::cout << "quiescent: " << std::boolalpha << res.quiescent << "\n\n";
  }

  // ---- 2. Two sites on two nodes: remote procedure call ---------------
  {
    Network::Config cfg;
    cfg.typecheck = true;  // static inference + dynamic signature check
    Network net(cfg);
    net.add_node();
    net.add_node();
    net.add_site(0, "server");
    net.add_site(1, "client");
    net.submit_network_source(R"(
      site server {
        export new double in
          def Serve(self) =
            self?{ val(x, reply) = (reply![x * 2] | Serve[self]) }
          in Serve[double]
      }
      site client {
        import double from server in
        let a = double![21] in
        let b = double![a] in
        print["21 doubled twice is", b]
      }
    )");
    auto res = net.run();
    std::cout << "--- two-site RPC (client output) ---\n";
    for (const auto& line : net.output("client")) std::cout << line << "\n";
    std::cout << "quiescent: " << res.quiescent
              << ", packets: " << res.packets << ", bytes: " << res.bytes
              << "\n";
  }
  return 0;
}
