// C5: the applet server of section 4 in both mobility styles, measured.
//
//   * code FETCHING — the client instantiates a remote class; the code is
//     downloaded once and linked (subsequent instantiations hit the
//     dynamic-link cache);
//   * code SHIPPING — the server ships a fresh object closure to the
//     client for every request.
//
// We sweep the applet size (byte-code bytes) and the number of
// activations, and include ablation A2: the fetch path with the
// dynamic-link cache disabled (every activation re-downloads the code).
//
// Expected shape: for repeated activation, fetch-with-cache moves the
// code once (bytes on wire ~constant in K) while shipping moves it K
// times (bytes linear in K); with the cache disabled fetch degenerates
// to shipping-like cost plus an extra request leg. One-shot small
// applets favour shipping (no request round trip).
#include "bench_util.hpp"

using namespace dityco;
using namespace dityco::benchutil;

namespace {

/// An arithmetic expression with `size` operators (code bloat knob).
std::string big_expr(int size) {
  std::string e = "1";
  for (int i = 0; i < size; ++i) e += " + " + std::to_string(i % 97);
  return e;
}

struct Outcome {
  double vtime_us = 0;
  std::uint64_t bytes = 0;
  std::uint64_t fetches = 0;
  std::uint64_t ships = 0;
};

Outcome run_fetch(int size, int activations, bool cache,
                  MetricsJsonEmitter* mj, MonitorFlag* mon, ObsFlags* obsf,
                  const std::string& label,
                  obs::SloHistogram::Snapshot* e2e = nullptr) {
  auto net = core::Network(sim_config(net::myrinet()));
  net.add_node();
  net.add_site(0, "server");
  net.add_node();
  net.add_site(1, "client");
  net.find_site("client")->set_fetch_cache_enabled(cache);
  if (e2e) net.enable_slo();
  if (mon) mon->attach(net);
  if (obsf) obsf->attach(net);
  net.submit_source("server", "export def Applet(out) = out![" +
                                  big_expr(size) + "] in 0");
  net.submit_source("client",
                    "import Applet from server in "
                    "def Go(i) = if i == 0 then print[\"done\"] else "
                    "new p (Applet[p] | p?(v) = Go[i - 1]) "
                    "in Go[" + std::to_string(activations) + "]");
  auto res = net.run();
  if (mj) mj->record(label, net);
  if (obsf) obsf->report(label, net);
  if (e2e) *e2e = slo_e2e_all(net);
  Outcome o;
  o.vtime_us = res.virtual_time_us;
  o.bytes = res.bytes;
  o.fetches = net.find_site("client")->mobility().fetch_requests;
  return o;
}

Outcome run_ship(int size, int activations, MetricsJsonEmitter* mj,
                 MonitorFlag* mon, ObsFlags* obsf,
                 const std::string& label,
                 obs::SloHistogram::Snapshot* e2e = nullptr) {
  auto net = core::Network(sim_config(net::myrinet()));
  net.add_node();
  net.add_site(0, "server");
  net.add_node();
  net.add_site(1, "client");
  if (e2e) net.enable_slo();
  if (mon) mon->attach(net);
  if (obsf) obsf->attach(net);
  net.submit_source("server",
                    "def Srv(self) = self?{ get(p) = ((p?(r) = r![" +
                        big_expr(size) +
                        "]) | Srv[self]) } in export new srv in Srv[srv]");
  net.submit_source("client",
                    "import srv from server in "
                    "def Go(i) = if i == 0 then print[\"done\"] else "
                    "new p (srv!get[p] | let v = p![] in Go[i - 1]) "
                    "in Go[" + std::to_string(activations) + "]");
  auto res = net.run();
  if (mj) mj->record(label, net);
  if (obsf) obsf->report(label, net);
  if (e2e) *e2e = slo_e2e_all(net);
  Outcome o;
  o.vtime_us = res.virtual_time_us;
  o.bytes = res.bytes;
  o.ships = net.find_site("server")->mobility().objs_shipped;
  return o;
}

// Both mobility styles under the threaded driver on a real transport:
// the applet's byte-code crosses in-proc queues vs loopback TCP sockets
// (docs/NETWORKING.md). Wall clock, one size/activation point, best of
// `reps`; every repetition's duration lands in `samples`.
double run_wall_style(core::Network::TransportKind t, bool ship, int size,
                      int activations, int reps, MetricsJsonEmitter& mj,
                      ObsFlags& obsf, std::vector<double>& samples) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    core::Network net(wall_config(t));
    net.add_node();
    net.add_site(0, "server");
    net.add_node();
    net.add_site(1, "client");
    obsf.attach(net);
    if (ship) {
      net.submit_source("server",
                        "def Srv(self) = self?{ get(p) = ((p?(r) = r![" +
                            big_expr(size) +
                            "]) | Srv[self]) } in export new srv in Srv[srv]");
      net.submit_source("client",
                        "import srv from server in "
                        "def Go(i) = if i == 0 then print[\"done\"] else "
                        "new p (srv!get[p] | let v = p![] in Go[i - 1]) "
                        "in Go[" + std::to_string(activations) + "]");
    } else {
      net.submit_source("server", "export def Applet(out) = out![" +
                                      big_expr(size) + "] in 0");
      net.submit_source("client",
                        "import Applet from server in "
                        "def Go(i) = if i == 0 then print[\"done\"] else "
                        "new p (Applet[p] | p?(v) = Go[i - 1]) "
                        "in Go[" + std::to_string(activations) + "]");
    }
    core::Network::Result res;
    const double us = run_wall_us(net, &res);
    const std::string label = std::string("wall ") +
                              (ship ? "ship " : "fetch ") + transport_name(t);
    if (rep == 0) {
      mj.record(label, net);
      obsf.report(label, net);
    }
    if (!res.quiescent) std::printf("WARNING: %s did not quiesce\n",
                                    label.c_str());
    samples.push_back(us);
    if (best == 0 || us < best) best = us;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  MetricsJsonEmitter mj(argc, argv);
  MonitorFlag mon(argc, argv);
  ObsFlags obsf(argc, argv);
  BenchJson bj("bench_c5_mobility", argc, argv);
  const int sizes[] = {4, 64, 512};
  const int acts[] = {1, 8, 64};

  header("C5: applet mobility, fetch (cached) vs fetch (no cache) vs ship",
         {"applet size (ops)", "activations", "style", "virtual us",
          "wire bytes", "code moves"});
  for (int size : sizes) {
    for (int k : acts) {
      const std::string tag =
          "size=" + std::to_string(size) + " k=" + std::to_string(k);
      const std::string slug_tag =
          "_size" + std::to_string(size) + "_k" + std::to_string(k);
      // Each sim section keeps its synthesized single-sample form (byte
      // comparable with older baselines), plus a companion "_e2e"
      // section holding the per-operation latency histogram from a
      // second, SLO-instrumented run — real percentiles, no p50 == p99
      // collapse when the run has more than one mobility op.
      const auto e2e_section = [&](const std::string& name, double vtime_us,
                                   const obs::SloHistogram::Snapshot& e2e) {
        if (e2e.count > 0)
          bj.section_hist(name + "_e2e", "virtual_us", e2e, vtime_us);
      };
      obs::SloHistogram::Snapshot e2e;
      const Outcome f =
          run_fetch(size, k, true, &mj, &mon, &obsf, "fetch+cache " + tag);
      bj.section("c5_sim_fetch_cache" + slug_tag, "virtual_us", k,
                 {f.vtime_us});
      if (bj.enabled())
        run_fetch(size, k, true, nullptr, nullptr, nullptr, "", &e2e);
      e2e_section("c5_sim_fetch_cache" + slug_tag, f.vtime_us, e2e);
      row({fmt_int(size), fmt_int(k), "fetch+cache", fmt(f.vtime_us),
           fmt_int(f.bytes), fmt_int(f.fetches)});
      const Outcome fn =
          run_fetch(size, k, false, &mj, &mon, &obsf, "fetch-nocache " + tag);
      bj.section("c5_sim_fetch_nocache" + slug_tag, "virtual_us", k,
                 {fn.vtime_us});
      e2e = {};
      if (bj.enabled())
        run_fetch(size, k, false, nullptr, nullptr, nullptr, "", &e2e);
      e2e_section("c5_sim_fetch_nocache" + slug_tag, fn.vtime_us, e2e);
      row({fmt_int(size), fmt_int(k), "fetch-nocache (A2)", fmt(fn.vtime_us),
           fmt_int(fn.bytes), fmt_int(fn.fetches)});
      const Outcome s = run_ship(size, k, &mj, &mon, &obsf, "ship " + tag);
      bj.section("c5_sim_ship" + slug_tag, "virtual_us", k, {s.vtime_us});
      e2e = {};
      if (bj.enabled())
        run_ship(size, k, nullptr, nullptr, nullptr, "", &e2e);
      e2e_section("c5_sim_ship" + slug_tag, s.vtime_us, e2e);
      row({fmt_int(size), fmt_int(k), "ship", fmt(s.vtime_us),
           fmt_int(s.bytes), fmt_int(s.ships)});
    }
  }
  std::printf(
      "\nshape check: with the cache, fetch wire bytes stay ~flat as\n"
      "activations grow while ship bytes grow linearly; disabling the\n"
      "cache (A2) makes fetch bytes/time scale like ship plus a request\n"
      "leg. For one-shot applets, ship needs no request round trip.\n");

  header("C5-wall: mobility over a real transport (size=512, k=64, "
         "threaded, wall clock, best of 3)",
         {"transport", "style", "wall us"});
  using TK = core::Network::TransportKind;
  for (TK t : {TK::kInProc, TK::kTcp}) {
    for (bool ship : {false, true}) {
      std::vector<double> samples;
      const double us = run_wall_style(t, ship, 512, 64, 3, mj, obsf,
                                       samples);
      bj.section(std::string("c5_wall_") + (ship ? "ship" : "fetch") +
                     (t == TK::kTcp ? "_tcp_mesh" : "_inproc"),
                 "wall_us", 64, samples);
      row({transport_name(t), ship ? "ship" : "fetch+cache", fmt(us)});
    }
  }
  std::printf(
      "\nshape check: the fetch-vs-ship ordering must survive the move\n"
      "from in-proc queues to loopback sockets — TCP raises the constant\n"
      "per code move, so repeated shipping is hit hardest.\n");
  return 0;
}
