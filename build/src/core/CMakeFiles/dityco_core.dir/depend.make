# Empty dependencies file for dityco_core.
# This may be replaced when dependencies are built.
