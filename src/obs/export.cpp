#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"  // json_escape

namespace dityco::obs {

namespace {

std::string fmt_us(std::uint64_t ns, std::uint64_t base_ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(ns - base_ns) / 1000.0);
  return buf;
}

struct FlowPoint {
  std::uint64_t ts_ns;
  std::uint32_t pid, tid;
  const char* name;
};

}  // namespace

std::string chrome_trace_json(const std::vector<ThreadTrace>& traces) {
  return chrome_trace_json(traces, ExportMeta{});
}

std::string chrome_trace_json(const std::vector<ThreadTrace>& traces,
                              const ExportMeta& meta) {
  // Normalise timestamps so the timeline starts near zero.
  std::uint64_t base = UINT64_MAX;
  for (const auto& t : traces)
    for (const auto& e : t.events) base = std::min(base, e.ts_ns);
  if (base == UINT64_MAX) base = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };

  // Process/thread naming metadata.
  std::map<std::uint32_t, bool> named_pids;
  for (const auto& t : traces) {
    if (!named_pids[t.pid]) {
      named_pids[t.pid] = true;
      emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(t.pid) + ",\"args\":{\"name\":\"node " +
           std::to_string(t.pid) + "\"}}");
    }
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
         std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
         ",\"args\":{\"name\":\"" + json_escape(t.name) + "\"}}");
  }

  // Flow chains: every event carrying the same non-zero trace id, in
  // timestamp order, becomes start -> step* -> finish.
  std::map<std::uint64_t, std::vector<FlowPoint>> flows;

  for (const auto& t : traces) {
    const std::string pidtid = "\"pid\":" + std::to_string(t.pid) +
                               ",\"tid\":" + std::to_string(t.tid);
    for (const auto& e : t.events) {
      const std::string ts = fmt_us(e.ts_ns, base);
      switch (e.type) {
        case EventType::kSliceBegin:
          emit("{\"ph\":\"B\",\"name\":\"run-slice\",\"cat\":\"vm\"," +
               pidtid + ",\"ts\":" + ts + "}");
          break;
        case EventType::kSliceEnd:
          emit("{\"ph\":\"E\"," + pidtid + ",\"ts\":" + ts +
               ",\"args\":{\"instructions\":" + std::to_string(e.arg) + "}}");
          break;
        default: {
          // A traced FETCH round trip renders as an async span on the
          // requesting site — "b" at the request, "e" at the reply,
          // matched by (cat, id) — so its latency is a visible bar
          // rather than two instants. kFetchServed (the remote side)
          // stays an instant inside the span.
          const bool span = e.trace_id != 0 &&
                            (e.type == EventType::kFetchReq ||
                             e.type == EventType::kFetchReply);
          std::string obj;
          if (span) {
            obj = "{\"ph\":\"";
            obj += e.type == EventType::kFetchReq ? "b" : "e";
            obj += "\",\"name\":\"FETCH\",\"cat\":\"fetch\",\"id\":" +
                   std::to_string(e.trace_id) + "," + pidtid +
                   ",\"ts\":" + ts + ",\"args\":{\"arg\":" +
                   std::to_string(e.arg) + "}}";
          } else {
            obj = "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
            obj += event_name(e.type);
            obj += "\",\"cat\":\"mobility\"," + pidtid + ",\"ts\":" + ts +
                   ",\"args\":{\"arg\":" + std::to_string(e.arg) +
                   ",\"trace_id\":" + std::to_string(e.trace_id) + "}}";
          }
          emit(obj);
          if (e.trace_id != 0)
            flows[e.trace_id].push_back(
                FlowPoint{e.ts_ns, t.pid, t.tid, event_name(e.type)});
          break;
        }
      }
    }
  }

  for (auto& [id, points] : flows) {
    if (points.size() < 2) continue;  // nothing to connect
    std::stable_sort(points.begin(), points.end(),
                     [](const FlowPoint& a, const FlowPoint& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    for (std::size_t i = 0; i < points.size(); ++i) {
      const FlowPoint& p = points[i];
      const char* ph = i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
      std::string obj = "{\"ph\":\"";
      obj += ph;
      obj += "\",\"name\":\"flow\",\"cat\":\"mobility\",\"id\":" +
             std::to_string(id) + ",\"pid\":" + std::to_string(p.pid) +
             ",\"tid\":" + std::to_string(p.tid) +
             ",\"ts\":" + fmt_us(p.ts_ns, base);
      if (ph[0] == 'f') obj += ",\"bp\":\"e\"";
      obj += "}";
      emit(obj);
    }
  }

  out += "],\"displayTimeUnit\":\"ms\"";
  if (meta.has_anchor) {
    // ts values are (event_ts_ns - ts_base_ns)/1000; with the anchor a
    // reader recovers wall time (see ExportMeta in export.hpp).
    out += ",\"otherData\":{\"node\":" + std::to_string(meta.node) +
           ",\"ts_base_ns\":" + std::to_string(base) +
           ",\"steady_now_ns\":" + std::to_string(meta.steady_now_ns) +
           ",\"wall_now_us\":" + std::to_string(meta.wall_now_us) + "}";
  }
  out += "}";
  return out;
}

}  // namespace dityco::obs
