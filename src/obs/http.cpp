#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace dityco::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper that hangs up mid-response must not SIGPIPE
    // the whole process.
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

/// Case-insensitive "does this request head carry `Connection: <token>`?"
bool has_connection_token(const std::string& head, const char* token) {
  std::string lower(head);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const auto h = lower.find("connection:");
  if (h == std::string::npos) return false;
  const auto eol = lower.find('\n', h);
  return lower.substr(h, eol - h).find(token) != std::string::npos;
}

}  // namespace

void MonitorServer::route(std::string path, Handler h) {
  routes_[std::move(path)] = std::move(h);
}

std::uint16_t MonitorServer::start(std::uint16_t port,
                                   const std::string& bind_addr,
                                   int workers) {
  if (fd_ >= 0) return port_;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return 0;
  }
  if (ntohl(addr.sin_addr.s_addr) != INADDR_LOOPBACK) {
    // Opt-in only; the endpoints are unauthenticated telemetry.
    std::fprintf(stderr,
                 "tycomon: WARNING: binding %s — metrics, traces and "
                 "profiles will be readable from off-host with no "
                 "authentication\n",
                 bind_addr.c_str());
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return 0;
  }
  port_ = ntohs(addr.sin_port);
  fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  if (workers < 1) workers = 1;
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
  return port_;
}

void MonitorServer::stop() {
  if (fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  q_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  for (const int client : pending_) ::close(client);
  pending_.clear();
  ::close(fd_);
  fd_ = -1;
  port_ = 0;
}

void MonitorServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    // Short poll timeout keeps stop() latency bounded without a
    // self-pipe or shutdown() portability games.
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0 || !(pfd.revents & POLLIN)) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(q_mu_);
      if (pending_.size() >= kMaxPending) {
        // Shed load instead of queueing unboundedly.
        ::close(client);
        continue;
      }
      pending_.push_back(client);
    }
    q_cv_.notify_one();
  }
}

void MonitorServer::worker_loop() {
  for (;;) {
    int client = -1;
    {
      std::unique_lock<std::mutex> lk(q_mu_);
      q_cv_.wait(lk, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      client = pending_.front();
      pending_.pop_front();
    }
    handle_connection(client);
    ::close(client);
  }
}

void MonitorServer::handle_connection(int client) {
  // A scraper that connects but never writes must not wedge this worker
  // forever; the timeout doubles as the keep-alive idle limit.
  timeval tv{2, 0};
  ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  std::string buf;  // may hold pipelined follow-up requests
  char chunk[2048];
  for (int served = 0; served < kMaxRequestsPerConn; ++served) {
    if (stop_.load(std::memory_order_relaxed)) return;
    // Read until the end of the request head. GETs have no body, so the
    // next request (if any) starts right after the blank line.
    std::size_t head_end;
    while ((head_end = buf.find("\r\n\r\n")) == std::string::npos &&
           buf.size() < 16384) {
      const ssize_t n = ::recv(client, chunk, sizeof chunk, 0);
      if (n <= 0) return;  // idle timeout, EOF or error: drop connection
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    if (head_end == std::string::npos) return;  // oversized head
    const std::string head = buf.substr(0, head_end + 4);
    buf.erase(0, head_end + 4);

    const auto eol = head.find_first_of("\r\n");
    const std::string line = head.substr(0, eol);

    // HTTP/1.1 defaults to persistent; HTTP/1.0 must ask for it.
    const bool http11 = line.find("HTTP/1.1") != std::string::npos;
    bool keep_alive = http11 ? !has_connection_token(head, "close")
                             : has_connection_token(head, "keep-alive");
    if (served + 1 == kMaxRequestsPerConn) keep_alive = false;

    Response resp;
    const auto sp1 = line.find(' ');
    const auto sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
    if (sp1 == std::string::npos) {
      resp = {405, "text/plain; charset=utf-8", "malformed request\n"};
      keep_alive = false;
    } else {
      const std::string method = line.substr(0, sp1);
      std::string path = sp2 == std::string::npos
                             ? line.substr(sp1 + 1)
                             : line.substr(sp1 + 1, sp2 - sp1 - 1);
      const auto q = path.find('?');
      if (q != std::string::npos) path.resize(q);
      if (method != "GET") {
        resp = {405, "text/plain; charset=utf-8", "only GET is served\n"};
      } else if (auto it = routes_.find(path); it != routes_.end()) {
        resp = it->second();
      } else {
        std::string index = "not found; routes:\n";
        for (const auto& [p, h] : routes_) index += "  " + p + "\n";
        resp = {404, "text/plain; charset=utf-8", std::move(index)};
      }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      status_text(resp.status) +
                      "\r\nContent-Type: " + resp.content_type +
                      "\r\nContent-Length: " +
                      std::to_string(resp.body.size()) + "\r\nConnection: " +
                      (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
    send_all(client, out);
    send_all(client, resp.body);
    if (!keep_alive) return;
  }
}

}  // namespace dityco::obs
