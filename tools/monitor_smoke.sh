#!/usr/bin/env bash
# TyCOmon smoke test: launch tycosh with --monitor on an ephemeral port
# (plus :profile and tail-based flight retention), scrape /metrics,
# /healthz, /trace, /flight and /profile while (or right after) a
# threaded two-site RPC run executes — including two concurrent
# keep-alive scrapers — and assert each endpoint answers with real
# content. Used by CI; run locally as tools/monitor_smoke.sh [tycosh],
# default build/tools/tycosh.
set -u

TYCOSH="${1:-build/tools/tycosh}"
if [ ! -x "$TYCOSH" ]; then
  echo "monitor_smoke: no tycosh binary at $TYCOSH" >&2
  exit 2
fi

OUT="$(mktemp)"
trap 'kill "$PID" 2>/dev/null; rm -f "$OUT"' EXIT

PROG='site server { export new svc in
  def Serve(self) = self?{ val(x, r) = (r![x + 1] | Serve[self]) }
  in Serve[svc] }
site client { import svc from server in
  def Loop(i, acc) = if i == 0 then print["done", acc]
  else let v = svc![acc] in Loop[i - 1, v]
  in Loop[2000, 0] }'

"$TYCOSH" --mode threads --monitor 0 --linger 4000 :profile \
  --flight-slow-us 1 -e "$PROG" >"$OUT" 2>&1 &
PID=$!

# Wait for the "tycomon listening on http://127.0.0.1:<port>" line.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's#^tycomon listening on http://127.0.0.1:\([0-9]*\)$#\1#p' "$OUT")"
  [ -n "$PORT" ] && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "monitor_smoke: tycosh exited before announcing a port:" >&2
    cat "$OUT" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "monitor_smoke: no port announced" >&2
  cat "$OUT" >&2
  exit 1
fi
echo "monitor_smoke: scraping port $PORT"

fail=0

METRICS="$(curl -sf "http://127.0.0.1:$PORT/metrics")" || fail=1
if ! printf '%s' "$METRICS" | grep -q '^site_msgs_shipped'; then
  echo "monitor_smoke: /metrics missing site_msgs_shipped:" >&2
  printf '%s\n' "$METRICS" | head -20 >&2
  fail=1
fi

HEALTH="$(curl -sf "http://127.0.0.1:$PORT/healthz")" || fail=1
if ! printf '%s' "$HEALTH" | grep -q '"sites"'; then
  echo "monitor_smoke: /healthz missing sites array: $HEALTH" >&2
  fail=1
fi

TRACE="$(curl -sf "http://127.0.0.1:$PORT/trace")" || fail=1
if ! printf '%s' "$TRACE" | grep -q '"traceEvents"'; then
  echo "monitor_smoke: /trace is not Chrome trace JSON" >&2
  fail=1
fi

JSON="$(curl -sf "http://127.0.0.1:$PORT/metrics.json")" || fail=1
if ! printf '%s' "$JSON" | grep -q '"counters"'; then
  echo "monitor_smoke: /metrics.json missing counters object" >&2
  fail=1
fi

FLIGHT="$(curl -sf "http://127.0.0.1:$PORT/flight")" || fail=1
if ! printf '%s' "$FLIGHT" | grep -q '"traceEvents"'; then
  echo "monitor_smoke: /flight is not Chrome trace JSON" >&2
  fail=1
fi

PROFILE="$(curl -sf "http://127.0.0.1:$PORT/profile")" || fail=1
if ! printf '%s' "$PROFILE" | grep -q ';'; then
  echo "monitor_smoke: /profile has no folded stacks:" >&2
  printf '%s\n' "$PROFILE" | head -5 >&2
  fail=1
fi

# Keep-alive: two requests down one connection must both answer (the
# second would hang forever on a close-per-request server).
KEEP="$(curl -sf "http://127.0.0.1:$PORT/healthz" "http://127.0.0.1:$PORT/healthz")" || fail=1
if [ "$(printf '%s' "$KEEP" | grep -o '"sites"' | wc -l)" -ne 2 ]; then
  echo "monitor_smoke: keep-alive reuse did not answer twice" >&2
  fail=1
fi

# Worker pool: two concurrent scrapers, each holding its own persistent
# connection, must both complete.
curl -sf "http://127.0.0.1:$PORT/metrics" "http://127.0.0.1:$PORT/trace" >/dev/null &
C1=$!
curl -sf "http://127.0.0.1:$PORT/healthz" "http://127.0.0.1:$PORT/flight" >/dev/null &
C2=$!
wait "$C1" || { echo "monitor_smoke: concurrent scraper 1 failed" >&2; fail=1; }
wait "$C2" || { echo "monitor_smoke: concurrent scraper 2 failed" >&2; fail=1; }

wait "$PID"
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "monitor_smoke: tycosh exited with $STATUS:" >&2
  cat "$OUT" >&2
  fail=1
fi
if ! grep -q 'done 2000' "$OUT"; then
  echo "monitor_smoke: run did not finish the RPC loop:" >&2
  cat "$OUT" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "monitor_smoke: OK (metrics, metrics.json, healthz, trace, flight, profile, keep-alive)"
fi
exit "$fail"
