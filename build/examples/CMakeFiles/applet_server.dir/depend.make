# Empty dependencies file for applet_server.
# This may be replaced when dependencies are built.
