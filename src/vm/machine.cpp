#include "vm/machine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "support/fmt.hpp"
#include "vm/verify.hpp"

namespace dityco::vm {

const char* tag_name(Value::Tag t) {
  switch (t) {
    case Value::Tag::kInt: return "int";
    case Value::Tag::kBool: return "bool";
    case Value::Tag::kFloat: return "float";
    case Value::Tag::kStr: return "string";
    case Value::Tag::kChan: return "channel";
    case Value::Tag::kClass: return "class";
    case Value::Tag::kNetRef: return "netref";
  }
  return "?";
}

Machine::Machine(std::string name, std::uint32_t node_id, std::uint32_t site_id,
                 RemoteBackend* backend)
    : name_(std::move(name)),
      node_id_(node_id),
      site_id_(site_id),
      backend_(backend) {}

// ---------------------------------------------------------------------
// Loading and linking
// ---------------------------------------------------------------------

std::uint32_t Machine::link_loaded(std::shared_ptr<const Segment> seg,
                                   std::vector<std::uint32_t> dep_map) {
  LinkedSegment ls;
  ls.label_map.reserve(seg->labels.size());
  for (const auto& l : seg->labels) ls.label_map.push_back(labels_.intern(l));
  ls.string_map.reserve(seg->strings.size());
  for (const auto& s : seg->strings)
    ls.string_map.push_back(strings_.intern(s));
  ls.dep_map = std::move(dep_map);
  ls.seg = std::move(seg);
  const auto slot = static_cast<std::uint32_t>(linked_.size());
  guid_to_slot_[ls.seg->guid] = slot;
  linked_.push_back(std::move(ls));
  if (prof_.enabled() && !linked_.back().seg->name.empty())
    prof_.set_context_name(slot, linked_.back().seg->name);
  return slot;
}

std::uint32_t Machine::load_program(const Program& p) {
  // Stamp fresh, globally-unique GUIDs. Compiled programs reference their
  // own segments with placeholder GUIDs {0, 0, k} where k is the index
  // within the program.
  std::vector<SegmentGuid> fresh(p.segments.size());
  std::vector<std::uint32_t> slots(p.segments.size());
  for (std::size_t k = 0; k < p.segments.size(); ++k)
    fresh[k] = SegmentGuid{node_id_, site_id_, next_guid_index_++};
  // Segments are emitted in dependency-safe order by the code generator?
  // Not necessarily — link in two passes: pre-assign slots, then build.
  const auto base = static_cast<std::uint32_t>(linked_.size());
  for (std::size_t k = 0; k < p.segments.size(); ++k)
    slots[k] = base + static_cast<std::uint32_t>(k);
  for (std::size_t k = 0; k < p.segments.size(); ++k) {
    auto seg = std::make_shared<Segment>(p.segments[k]);
    seg->guid = fresh[k];
    std::vector<std::uint32_t> dep_map;
    dep_map.reserve(seg->deps.size());
    for (auto& d : seg->deps) {
      // Placeholder deps point inside this program by index.
      dep_map.push_back(slots.at(d.index));
      d = fresh[d.index];  // rewrite to the real GUID for future shipping
    }
    [[maybe_unused]] std::uint32_t got = link_loaded(std::move(seg),
                                                     std::move(dep_map));
    assert(got == slots[k]);
  }
  return slots.at(p.root);
}

void Machine::spawn_program(const Program& p) {
  const std::uint32_t root = load_program(p);
  Frame f;
  f.seg = root;
  f.pc = 0;
  spawn_frame(std::move(f));
}

std::uint32_t Machine::link(const SegmentGuid& guid,
                            const std::map<SegmentGuid, Segment>& pool) {
  auto it = guid_to_slot_.find(guid);
  if (it != guid_to_slot_.end()) return it->second;  // dynamic-link cache
  auto pit = pool.find(guid);
  if (pit == pool.end())
    throw DecodeError("missing segment in shipped closure");
  const Segment& seg = pit->second;
  // Shipped code is untrusted input: verify before linking.
  if (auto problems = verify_segment(seg, SegmentRole::kAny);
      !problems.empty())
    throw DecodeError("shipped segment failed verification: " + problems[0]);
  std::vector<std::uint32_t> dep_map;
  dep_map.reserve(seg.deps.size());
  for (const auto& d : seg.deps) dep_map.push_back(link(d, pool));
  return link_loaded(std::make_shared<Segment>(seg), std::move(dep_map));
}

void Machine::collect_closure(std::uint32_t slot,
                              std::vector<Segment>& out) const {
  const LinkedSegment& ls = linked_.at(slot);
  for (const auto& s : out)
    if (s.guid == ls.seg->guid) return;  // already collected
  out.push_back(*ls.seg);
  for (std::uint32_t dep : ls.dep_map) collect_closure(dep, out);
}

// ---------------------------------------------------------------------
// Channels and reductions
// ---------------------------------------------------------------------

std::uint32_t Machine::new_channel() {
  if (!free_chans_.empty()) {
    const std::uint32_t idx = free_chans_.back();
    free_chans_.pop_back();
    chan_freed_[idx] = 0;
    heap_[idx] = Channel{};
    return idx;
  }
  heap_.emplace_back();
  chan_freed_.push_back(0);
  return static_cast<std::uint32_t>(heap_.size() - 1);
}

void Machine::reduce(std::uint32_t chan, ObjClosure obj, PendingMsg msg) {
  const Segment& seg = *linked_.at(obj.seg).seg;
  const auto& lmap = linked_.at(obj.seg).label_map;
  // Method table: [nmethods, (labelidx, nparams, offset)*]
  const std::uint32_t nmethods = seg.code.at(0);
  for (std::uint32_t k = 0; k < nmethods; ++k) {
    const std::uint32_t labelidx = seg.code.at(1 + 3 * k);
    const std::uint32_t nparams = seg.code.at(2 + 3 * k);
    const std::uint32_t off = seg.code.at(3 + 3 * k);
    if (lmap.at(labelidx) != msg.label) continue;
    if (nparams != msg.args.size()) {
      error("arity mismatch on method " + labels_.name(msg.label));
      heap_[chan].objs.push_front(std::move(obj));
      ++pending_objs_;
      return;
    }
    Frame f;
    f.seg = obj.seg;
    f.pc = off;
    f.locals = std::move(obj.env);
    f.locals.insert(f.locals.end(), msg.args.begin(), msg.args.end());
    ++stats_.comm_reductions;
    if (ring_) ring_->record(obs::EventType::kComm, 0, msg.label);
    spawn_frame(std::move(f));
    return;
  }
  error("method not understood: " + labels_.name(msg.label));
  heap_[chan].objs.push_front(std::move(obj));
  ++pending_objs_;
}

void Machine::channel_send(std::uint32_t chan, std::uint32_t label,
                           std::vector<Value> args) {
  gc_dirty_ = true;
  Channel& ch = heap_.at(chan);
  if (!ch.objs.empty()) {
    ObjClosure obj = std::move(ch.objs.front());
    ch.objs.pop_front();
    --pending_objs_;
    reduce(chan, std::move(obj), PendingMsg{label, std::move(args)});
    return;
  }
  ch.msgs.push_back(PendingMsg{label, std::move(args)});
  ++pending_msgs_;
}

void Machine::channel_recv(std::uint32_t chan, ObjClosure obj) {
  gc_dirty_ = true;
  Channel& ch = heap_.at(chan);
  if (!ch.msgs.empty()) {
    PendingMsg msg = std::move(ch.msgs.front());
    ch.msgs.pop_front();
    --pending_msgs_;
    reduce(chan, std::move(obj), std::move(msg));
    return;
  }
  ch.objs.push_back(std::move(obj));
  ++pending_objs_;
}

std::uint32_t Machine::make_block(std::uint32_t seg_slot,
                                  std::vector<Value> env) {
  blocks_.push_back(Block{seg_slot, std::move(env)});
  return static_cast<std::uint32_t>(blocks_.size() - 1);
}

Value Machine::make_class_value(std::uint32_t block, std::uint32_t cls) {
  classes_.push_back(ClassEntry{block, cls});
  return Value::make_class(static_cast<std::uint32_t>(classes_.size() - 1));
}

void Machine::instantiate_class(Value cls, std::vector<Value> args) {
  if (cls.tag != Value::Tag::kClass) {
    error("instantiation of a non-class value");
    return;
  }
  const ClassEntry& entry = classes_.at(cls.idx);
  const Block& blk = blocks_.at(entry.block);
  const Segment& seg = *linked_.at(blk.seg).seg;
  // Class table: [nclasses, (nparams, offset)*]
  const std::uint32_t nclasses = seg.code.at(0);
  if (entry.cls >= nclasses) {
    error("class index out of range");
    return;
  }
  const std::uint32_t nparams = seg.code.at(1 + 2 * entry.cls);
  const std::uint32_t off = seg.code.at(2 + 2 * entry.cls);
  if (nparams != args.size()) {
    error("arity mismatch instantiating class");
    return;
  }
  Frame f;
  f.seg = blk.seg;
  f.pc = off;
  f.block = entry.block;
  f.locals = blk.env;
  f.locals.insert(f.locals.end(), args.begin(), args.end());
  ++stats_.inst_reductions;
  if (ring_) ring_->record(obs::EventType::kInst, 0, entry.cls);
  spawn_frame(std::move(f));
}

// ---------------------------------------------------------------------
// Deliveries (called by the communication daemon)
// ---------------------------------------------------------------------

void Machine::io_send(const std::string& chan_name, const std::string& label,
                      std::vector<Value> args) {
  auto [it, inserted] = globals_.try_emplace(chan_name, 0);
  if (inserted) it->second = new_channel();
  channel_send(it->second, labels_.intern(label), std::move(args));
}

void Machine::deliver_message(std::uint64_t heap_id, const std::string& label,
                              std::vector<Value> args) {
  Value chan = resolve_exported_chan(heap_id);
  channel_send(chan.idx, labels_.intern(label), std::move(args));
}

void Machine::deliver_object(std::uint64_t heap_id, std::uint32_t seg_slot,
                             std::vector<Value> env) {
  Value chan = resolve_exported_chan(heap_id);
  channel_recv(chan.idx, ObjClosure{seg_slot, std::move(env)});
}

void Machine::resume_import(std::uint64_t token, Value v) {
  gc_dirty_ = true;
  auto it = parked_.find(token);
  if (it == parked_.end()) {
    error("resume of unknown import token");
    return;
  }
  ParkedFrame pf = std::move(it->second);
  parked_.erase(it);
  if (pf.frame.locals.size() <= pf.dst) pf.frame.locals.resize(pf.dst + 1);
  pf.frame.locals[pf.dst] = v;
  spawn_frame(std::move(pf.frame));
}

// ---------------------------------------------------------------------
// Export table
// ---------------------------------------------------------------------

std::uint64_t Machine::export_chan(std::uint32_t chan_idx) {
  auto it = chan_to_heapid_.find(chan_idx);
  if (it != chan_to_heapid_.end()) return it->second;
  const std::uint64_t id = next_heap_id_++;
  chan_to_heapid_[chan_idx] = id;
  chan_exports_[id] = ExportEntry{chan_idx};
  return id;
}

std::uint64_t Machine::export_class_value(Value cls) {
  if (cls.tag != Value::Tag::kClass)
    throw DecodeError("export of a non-class value as class");
  auto it = class_to_heapid_.find(cls.idx);
  if (it != class_to_heapid_.end()) return it->second;
  const std::uint64_t id = next_heap_id_++;
  class_to_heapid_[cls.idx] = id;
  class_exports_[id] = ExportEntry{cls.idx};
  return id;
}

Value Machine::resolve_exported_chan(std::uint64_t heap_id) const {
  auto it = chan_exports_.find(heap_id);
  if (it == chan_exports_.end())
    throw DecodeError("unknown channel HeapId in network reference");
  return Value::make_chan(it->second.local);
}

Value Machine::resolve_exported_class(std::uint64_t heap_id) const {
  auto it = class_exports_.find(heap_id);
  if (it == class_exports_.end())
    throw DecodeError("unknown class HeapId in network reference");
  return Value::make_class(it->second.local);
}

// ---------------------------------------------------------------------
// Distributed GC: credit accounting (DESIGN.md §GC)
// ---------------------------------------------------------------------

namespace {

/// Releaser identity, packed for the per-entry cumulative-release map.
std::uint64_t releaser_key(std::uint32_t node, std::uint32_t site) {
  return (static_cast<std::uint64_t>(node) << 32) | site;
}

/// Synthetic releaser site for failure write-offs (no real site carries
/// this id, so forgiven credit cannot collide with a live REL stream).
constexpr std::uint32_t kWriteOffSite = 0xffffffffu;

/// Pay down a debtor's slot by up to `amount`; drops empty slots.
void pay_debt(std::map<std::uint32_t, std::uint64_t>& debt,
              std::uint32_t node, std::uint64_t amount) {
  auto it = debt.find(node);
  if (it == debt.end()) return;
  if (it->second <= amount)
    debt.erase(it);
  else
    it->second -= amount;
}

}  // namespace

Machine::ExportEntry* Machine::find_export(NetRef::Kind kind,
                                           std::uint64_t heap_id) {
  auto& tbl =
      kind == NetRef::Kind::kChan ? chan_exports_ : class_exports_;
  auto it = tbl.find(heap_id);
  return it == tbl.end() ? nullptr : &it->second;
}

bool Machine::maybe_reclaim(NetRef::Kind kind, std::uint64_t heap_id) {
  auto& tbl =
      kind == NetRef::Kind::kChan ? chan_exports_ : class_exports_;
  auto it = tbl.find(heap_id);
  if (it == tbl.end()) return false;
  const ExportEntry& e = it->second;
  // minted == 0 marks a legacy (credit-less) export: never reclaimed.
  if (e.minted == 0 || e.names > 0 || e.outstanding() > 0) return false;
  if (kind == NetRef::Kind::kChan)
    chan_to_heapid_.erase(e.local);
  else
    class_to_heapid_.erase(e.local);
  tbl.erase(it);
  ++gc_stats_.exports_reclaimed;
  // The local channel may now be garbage; let the next collection see it.
  gc_dirty_ = true;
  return true;
}

std::pair<std::uint64_t, std::uint64_t> Machine::export_chan_credit(
    std::uint32_t chan_idx) {
  const std::uint64_t id = export_chan(chan_idx);
  ExportEntry& e = chan_exports_[id];
  e.minted += kMintCredit;
  if (credit_peer_ != kNoPeer) e.debt[credit_peer_] += kMintCredit;
  e.touched_ns = obs::trace_now_ns();
  if (credit_trace_ != 0) e.last_trace = credit_trace_;
  ++gc_stats_.credit_mints;
  return {id, kMintCredit};
}

std::pair<std::uint64_t, std::uint64_t> Machine::export_class_credit(
    Value cls) {
  const std::uint64_t id = export_class_value(cls);
  ExportEntry& e = class_exports_[id];
  e.minted += kMintCredit;
  if (credit_peer_ != kNoPeer) e.debt[credit_peer_] += kMintCredit;
  e.touched_ns = obs::trace_now_ns();
  if (credit_trace_ != 0) e.last_trace = credit_trace_;
  ++gc_stats_.credit_mints;
  return {id, kMintCredit};
}

std::uint64_t Machine::mint_export_credit(const NetRef& ref) {
  ExportEntry* e = find_export(ref.kind, ref.heap_id);
  if (!e) return 0;
  e->minted += kMintCredit;
  if (credit_peer_ != kNoPeer) e->debt[credit_peer_] += kMintCredit;
  e->touched_ns = obs::trace_now_ns();
  if (credit_trace_ != 0) e->last_trace = credit_trace_;
  ++gc_stats_.credit_mints;
  return kMintCredit;
}

void Machine::return_export_credit(NetRef::Kind kind, std::uint64_t heap_id,
                                   std::uint64_t credit) {
  ExportEntry* e = find_export(kind, heap_id);
  if (!e) {
    ++gc_stats_.rel_stale;
    return;
  }
  e->returned += credit;
  if (credit_peer_ != kNoPeer) pay_debt(e->debt, credit_peer_, credit);
  e->touched_ns = obs::trace_now_ns();
  maybe_reclaim(kind, heap_id);
}

void Machine::attribute_export_credit(NetRef::Kind kind,
                                      std::uint64_t heap_id,
                                      std::uint32_t node,
                                      std::uint64_t amount) {
  ExportEntry* e = find_export(kind, heap_id);
  if (!e || amount == 0) return;
  // The share came out of the sender's hand. When the sender carries a
  // debt slot here (sharded NS: the mint was attributed to the shard
  // primary), drain it so Σ debt keeps tracking outstanding — without
  // the drain, writing off a dead primary would forgive credit that
  // importers still hold (the premature-free direction). An
  // unattributed sender (the centralized service's pool) has no slot
  // and the attribution only adds precision to a future write-off.
  if (credit_peer_ != kNoPeer && credit_peer_ != node)
    pay_debt(e->debt, credit_peer_, amount);
  e->debt[node] += amount;
}

std::uint64_t Machine::write_off_node(std::uint32_t node) {
  std::uint64_t total = 0;
  for (const auto kind : {NetRef::Kind::kChan, NetRef::Kind::kClass}) {
    auto& tbl = kind == NetRef::Kind::kChan ? chan_exports_ : class_exports_;
    std::vector<std::uint64_t> drained;
    for (auto& [id, e] : tbl) {
      auto it = e.debt.find(node);
      if (it == e.debt.end()) continue;
      const std::uint64_t forgiven = std::min(it->second, e.outstanding());
      e.debt.erase(it);
      if (forgiven == 0) continue;
      // Forgive via a synthetic cumulative-release slot so every other
      // invariant (max-merge, outstanding(), reclaim rule) is untouched.
      // Accumulating is safe: only write-offs touch this slot and each
      // addition reflects distinct forgiven credit.
      e.released[releaser_key(node, kWriteOffSite)] += forgiven;
      e.touched_ns = obs::trace_now_ns();
      total += forgiven;
      if (e.outstanding() == 0) drained.push_back(id);
    }
    for (const std::uint64_t id : drained) maybe_reclaim(kind, id);
  }
  if (total > 0) {
    gc_stats_.credit_written_off += total;
    gc_dirty_ = true;
  }
  return total;
}

void Machine::pin_name(const NetRef& ref) {
  if (ExportEntry* e = find_export(ref.kind, ref.heap_id)) {
    ++e->names;
    e->touched_ns = obs::trace_now_ns();
  }
}

void Machine::unpin_name(const NetRef& ref) {
  ExportEntry* e = find_export(ref.kind, ref.heap_id);
  if (!e || e->names == 0) return;
  --e->names;
  e->touched_ns = obs::trace_now_ns();
  maybe_reclaim(ref.kind, ref.heap_id);
}

Machine::ReleaseResult Machine::apply_release(NetRef::Kind kind,
                                              std::uint64_t heap_id,
                                              std::uint32_t rel_node,
                                              std::uint32_t rel_site,
                                              std::uint64_t cum) {
  ExportEntry* e = find_export(kind, heap_id);
  if (!e) {
    // Already reclaimed (heap ids are never reused, so this REL can only
    // be a retransmission that arrived after the entry drained).
    ++gc_stats_.rel_stale;
    return ReleaseResult::kStale;
  }
  std::uint64_t& slot = e->released[releaser_key(rel_node, rel_site)];
  if (cum <= slot) {
    // A duplicate (==) or a reordered older total (<): cumulative totals
    // only grow, so the max already merged covers this delivery.
    ++gc_stats_.rel_stale;
    return ReleaseResult::kStale;
  }
  pay_debt(e->debt, rel_node, cum - slot);
  slot = cum;
  e->touched_ns = obs::trace_now_ns();
  return maybe_reclaim(kind, heap_id) ? ReleaseResult::kReclaimed
                                      : ReleaseResult::kApplied;
}

std::uint64_t Machine::split_netref_credit(std::uint32_t idx) {
  std::uint64_t& bal = netref_credit_.at(idx);
  const std::uint64_t share = bal / 2;
  if (share == 0)
    ++gc_stats_.credit_starved;  // ships a weak handle (may leak, safe)
  bal -= share;
  return share;
}

std::uint32_t Machine::intern_netref_credit(const NetRef& r,
                                            std::uint64_t credit) {
  const std::uint32_t idx = intern_netref(r);
  netref_credit_[idx] += credit;
  return idx;
}

std::uint64_t Machine::exports_outstanding() const {
  std::uint64_t sum = 0;
  for (const auto& [id, e] : chan_exports_) sum += e.outstanding();
  for (const auto& [id, e] : class_exports_) sum += e.outstanding();
  return sum;
}

std::uint64_t Machine::netref_credit_total() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < netref_credit_.size(); ++i)
    if (!netref_freed_[i]) sum += netref_credit_[i];
  return sum;
}

std::vector<std::pair<NetRef, std::uint64_t>>
Machine::take_pending_releases() {
  std::vector<std::pair<NetRef, std::uint64_t>> out;
  out.reserve(pending_rel_.size());
  for (const NetRef& ref : pending_rel_) out.emplace_back(ref, rel_cum_[ref]);
  pending_rel_.clear();
  return out;
}

std::vector<std::pair<NetRef, std::uint64_t>> Machine::all_releases() const {
  std::vector<std::pair<NetRef, std::uint64_t>> out;
  for (const auto& [ref, cum] : rel_cum_)
    if (cum > 0) out.emplace_back(ref, cum);
  return out;
}

Machine::GcSnapshot Machine::gc_snapshot() const {
  GcSnapshot s;
  s.node = node_id_;
  s.site = site_id_;
  s.name = name_;
  s.steady_now_ns = obs::trace_now_ns();
  s.wall_now_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  auto copy_table = [&](NetRef::Kind kind,
                        const std::map<std::uint64_t, ExportEntry>& tbl) {
    for (const auto& [id, e] : tbl) {
      GcSnapshot::Entry out;
      out.kind = kind;
      out.heap_id = id;
      out.local = e.local;
      out.minted = e.minted;
      out.returned = e.returned;
      out.released = e.released_total();
      out.outstanding = e.outstanding();
      out.pins = e.names;
      out.touched_ns = e.touched_ns;
      out.last_trace = e.last_trace;
      out.releasers.assign(e.released.begin(), e.released.end());
      out.debt.assign(e.debt.begin(), e.debt.end());
      s.outstanding += out.outstanding;
      s.exports.push_back(std::move(out));
    }
  };
  copy_table(NetRef::Kind::kChan, chan_exports_);
  copy_table(NetRef::Kind::kClass, class_exports_);
  for (std::size_t i = 0; i < netrefs_.size(); ++i) {
    if (netref_freed_[i]) continue;
    GcSnapshot::Held h;
    h.ref = netrefs_[i];
    h.credit = netref_credit_[i];
    s.held += h.credit;
    s.imports.push_back(h);
  }
  for (const auto& [ref, cum] : rel_cum_)
    if (cum > 0) s.releases.push_back({ref, cum});
  s.live_channels = live_channels();
  s.free_channels = free_chans_.size();
  s.live_netrefs = live_netrefs();
  s.free_netrefs = free_netrefs_.size();
  return s;
}

void Machine::free_channel(std::uint32_t idx) {
  pending_msgs_ -= heap_[idx].msgs.size();
  pending_objs_ -= heap_[idx].objs.size();
  heap_[idx] = Channel{};
  chan_freed_[idx] = 1;
  free_chans_.push_back(idx);
  ++gc_stats_.channels_freed;
}

void Machine::free_netref(std::uint32_t idx) {
  const NetRef ref = netrefs_[idx];
  const std::uint64_t credit = netref_credit_[idx];
  if (credit > 0) {
    // The dropped balance joins this machine's cumulative release total
    // for the reference; the owning site learns via an async REL.
    rel_cum_[ref] += credit;
    pending_rel_.push_back(ref);
  }
  netref_ids_.erase(ref);
  netref_credit_[idx] = 0;
  netref_freed_[idx] = 1;
  free_netrefs_.push_back(idx);
  ++gc_stats_.netrefs_freed;
}

Machine::GcOutcome Machine::gc(const std::vector<Value>& extra_roots,
                               const std::vector<NetRef>& pinned) {
  gc_dirty_ = false;
  ++gc_stats_.collections;

  std::vector<std::uint8_t> cmark(heap_.size(), 0);
  std::vector<std::uint8_t> bmark(blocks_.size(), 0);
  std::vector<std::uint8_t> clmark(classes_.size(), 0);
  std::vector<std::uint8_t> nmark(netrefs_.size(), 0);
  std::vector<Value> work;

  auto mark_block = [&](std::uint32_t blk) {
    if (blk == Frame::kNoBlock || blk >= bmark.size() || bmark[blk]) return;
    bmark[blk] = 1;
    for (const Value& v : blocks_[blk].env) work.push_back(v);
  };
  auto mark_value = [&](const Value& v) {
    switch (v.tag) {
      case Value::Tag::kChan:
        if (v.idx < cmark.size() && !chan_freed_[v.idx] && !cmark[v.idx]) {
          cmark[v.idx] = 1;
          for (const auto& m : heap_[v.idx].msgs)
            for (const Value& a : m.args) work.push_back(a);
          for (const auto& o : heap_[v.idx].objs)
            for (const Value& e : o.env) work.push_back(e);
        }
        return;
      case Value::Tag::kClass:
        if (v.idx < clmark.size() && !clmark[v.idx]) {
          clmark[v.idx] = 1;
          mark_block(classes_[v.idx].block);
        }
        return;
      case Value::Tag::kNetRef:
        if (v.idx < nmark.size() && !netref_freed_[v.idx]) nmark[v.idx] = 1;
        return;
      default:
        return;
    }
  };
  auto mark_frame = [&](const Frame& f) {
    for (const Value& v : f.locals) work.push_back(v);
    for (const Value& v : f.stack) work.push_back(v);
    mark_block(f.block);
  };

  // Roots: runnable and parked frames, free-name channels, live export
  // entries (a remote holder may still reach them), caller-supplied
  // roots, and pinned netrefs.
  for (const Frame& f : queue_) mark_frame(f);
  for (const auto& [tok, pf] : parked_) mark_frame(pf.frame);
  for (const auto& [nm, idx] : globals_) work.push_back(Value::make_chan(idx));
  for (const auto& [id, e] : chan_exports_)
    work.push_back(Value::make_chan(e.local));
  for (const auto& [id, e] : class_exports_)
    work.push_back(Value::make_class(e.local));
  for (const Value& v : extra_roots) work.push_back(v);
  for (const NetRef& ref : pinned)
    if (auto it = netref_ids_.find(ref); it != netref_ids_.end())
      nmark[it->second] = 1;

  while (!work.empty()) {
    const Value v = work.back();
    work.pop_back();
    mark_value(v);
  }

  GcOutcome out;
  for (std::uint32_t i = 0; i < heap_.size(); ++i)
    if (!chan_freed_[i] && !cmark[i]) {
      free_channel(i);
      ++out.channels_freed;
    }
  for (std::uint32_t i = 0; i < netrefs_.size(); ++i)
    if (!netref_freed_[i] && !nmark[i]) {
      free_netref(i);
      ++out.netrefs_freed;
    }
  return out;
}

std::uint32_t Machine::intern_netref(const NetRef& r) {
  auto it = netref_ids_.find(r);
  if (it != netref_ids_.end()) return it->second;
  if (!free_netrefs_.empty()) {
    const std::uint32_t idx = free_netrefs_.back();
    free_netrefs_.pop_back();
    netref_freed_[idx] = 0;
    netrefs_[idx] = r;
    netref_credit_[idx] = 0;
    netref_ids_[r] = idx;
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(netrefs_.size());
  netrefs_.push_back(r);
  netref_credit_.push_back(0);
  netref_freed_.push_back(0);
  netref_ids_[r] = idx;
  return idx;
}

std::uint32_t Machine::intern_string(std::string_view s) {
  return strings_.intern(s);
}

void Machine::enable_profiling(std::uint64_t period) {
  prof_.enable(period);
  prof_countdown_ = period;
  if (period == 0) return;
  // Segments linked before enabling get their names registered
  // retroactively; link_loaded covers everything after.
  for (std::size_t slot = 0; slot < linked_.size(); ++slot)
    if (!linked_[slot].seg->name.empty())
      prof_.set_context_name(static_cast<std::uint32_t>(slot),
                             linked_[slot].seg->name);
}

std::string Machine::profile_folded() const {
  std::vector<obs::Profiler::Sample> samples = prof_.snapshot();
  std::sort(samples.begin(), samples.end(),
            [](const obs::Profiler::Sample& a, const obs::Profiler::Sample& b) {
              return a.count > b.count;
            });
  std::string out;
  for (const auto& smp : samples) {
    out += name_ + ";" + prof_.context_name(smp.ctx) + ";" +
           op_name(static_cast<Op>(smp.op)) + " " +
           std::to_string(smp.count) + "\n";
  }
  return out;
}

void Machine::register_metrics(obs::Registry& registry) {
  metrics_reg_ = registry.add_collector([this](obs::Collector& c) {
    const std::string l = "{site=\"" + name_ + "\"}";
    c.counter("vm_instructions" + l, stats_.instructions);
    c.counter("vm_comm_reductions" + l, stats_.comm_reductions);
    c.counter("vm_inst_reductions" + l, stats_.inst_reductions);
    c.counter("vm_forks" + l, stats_.forks);
    c.counter("vm_frames_run" + l, stats_.frames_run);
    c.counter("vm_prints" + l, stats_.prints);
    if (prof_.enabled()) {
      c.counter("vm_profile_samples" + l, prof_.total());
      c.counter("vm_profile_overflow" + l, prof_.overflow());
      c.histogram("vm_run_wait_us" + l, run_wait_us_.snapshot());
      for (const auto& smp : prof_.snapshot())
        c.counter("site_vm_opcode_samples{site=\"" + name_ + "\",def=\"" +
                      prof_.context_name(smp.ctx) + "\",op=\"" +
                      op_name(static_cast<Op>(smp.op)) + "\"}",
                  smp.count);
    }
  });
  // The gauges walk executor-owned containers, so they are exposed only
  // when the machine is at rest (skipped by live scrapes).
  gauges_reg_ = registry.add_collector(
      [this](obs::Collector& c) {
        const std::string l = "{site=\"" + name_ + "\"}";
        c.gauge("vm_runnable" + l, static_cast<std::int64_t>(queue_.size()));
        c.gauge("vm_parked" + l, static_cast<std::int64_t>(parked_.size()));
        c.gauge("vm_pending_messages" + l,
                static_cast<std::int64_t>(pending_msgs_));
        c.gauge("vm_pending_objects" + l,
                static_cast<std::int64_t>(pending_objs_));
      },
      /*live_safe=*/false);
}

std::string Machine::display(const Value& v) const {
  switch (v.tag) {
    case Value::Tag::kInt: return std::to_string(v.i);
    case Value::Tag::kBool: return v.b ? "true" : "false";
    case Value::Tag::kFloat: return format_f64(v.f);
    case Value::Tag::kStr: return strings_.name(v.idx);
    case Value::Tag::kChan: return "#chan";
    case Value::Tag::kClass: return "#class";
    case Value::Tag::kNetRef:
      return netrefs_.at(v.idx).kind == NetRef::Kind::kChan ? "#chan"
                                                            : "#class";
  }
  return "?";
}

// ---------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------

namespace {

bool is_num(const Value& v) {
  return v.tag == Value::Tag::kInt || v.tag == Value::Tag::kFloat;
}
double as_f(const Value& v) {
  return v.tag == Value::Tag::kInt ? static_cast<double>(v.i) : v.f;
}

}  // namespace

std::uint64_t Machine::run(std::uint64_t max_instructions) {
  const bool tracing = ring_ && ring_->enabled() && !queue_.empty();
  if (tracing) ring_->record(obs::EventType::kSliceBegin, 0);
  std::uint64_t executed = 0;
  while (!queue_.empty() && executed < max_instructions) {
    Frame f = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.frames_run;
    if (f.enq_ns != 0) {
      const std::uint64_t now = clock_ns();
      if (now > f.enq_ns)
        run_wait_us_.observe(static_cast<double>(now - f.enq_ns) / 1e3);
      f.enq_ns = 0;  // preempted frames are not re-measured
    }
    bool requeue = false;
    executed += exec(f, max_instructions - executed, requeue);
    if (requeue) queue_.push_front(std::move(f));
  }
  stats_.instructions += executed;
  if (executed > 0) gc_dirty_ = true;
  if (tracing) ring_->record(obs::EventType::kSliceEnd, 0, executed);
  return executed;
}

std::uint64_t Machine::exec(Frame& f, std::uint64_t budget, bool& requeue) {
  std::uint64_t n = 0;
  const LinkedSegment* ls = &linked_.at(f.seg);
  const std::vector<std::uint32_t>* code = &ls->seg->code;

  auto pop = [&]() -> Value {
    if (f.stack.empty()) throw VmError{"operand stack underflow"};
    Value v = f.stack.back();
    f.stack.pop_back();
    return v;
  };
  auto pop_n = [&](std::uint32_t k) {
    std::vector<Value> out(k);
    for (std::uint32_t i = k; i-- > 0;) out[i] = pop();
    return out;
  };
  auto store = [&](std::uint32_t slot, Value v) {
    if (f.locals.size() <= slot) f.locals.resize(slot + 1);
    f.locals[slot] = v;
  };
  // Backend calls may re-enter the machine and link new segments, which
  // can reallocate linked_; refresh the cached pointers afterwards.
  auto refresh = [&] {
    ls = &linked_.at(f.seg);
    code = &ls->seg->code;
  };

  try {
    for (;;) {
      if (n >= budget) {
        requeue = true;  // preempted: resume this frame next time
        return n;
      }
      // One bounds check per instruction; operand words read unchecked.
      if (f.pc >= code->size()) throw VmError{"pc out of range"};
      const std::uint32_t* cp = code->data() + f.pc;
      const Op op = static_cast<Op>(cp[0]);
      // Sampled profiler: prof_countdown_ stays 0 while profiling is
      // off, so the common case is a single not-taken branch.
      if (prof_countdown_ != 0 && --prof_countdown_ == 0) {
        prof_countdown_ = prof_.period();
        prof_.sample(static_cast<std::uint32_t>(op), f.seg);
      }
      const int arity = op_arity(op);
      if (f.pc + 1 + static_cast<std::uint32_t>(arity) > code->size())
        throw VmError{"truncated instruction"};
      const std::uint32_t a = arity >= 1 ? cp[1] : 0;
      const std::uint32_t b = arity >= 2 ? cp[2] : 0;
      const std::uint32_t c = arity >= 3 ? cp[3] : 0;
      const std::uint32_t d = arity >= 4 ? cp[4] : 0;
      if (trace_) {
        std::string line = std::to_string(f.seg) + "@" +
                           std::to_string(f.pc) + ": " + op_name(op);
        for (int k = 0; k < arity; ++k) line += " " + std::to_string(cp[1 + k]);
        trace_->push_back(std::move(line));
      }
      f.pc += 1 + static_cast<std::uint32_t>(arity);
      ++n;

      switch (op) {
        case Op::kHalt:
          return n;
        case Op::kPushInt: {
          const std::uint64_t lo = a, hi = b;
          f.stack.push_back(Value::make_int(
              static_cast<std::int64_t>(lo | (hi << 32))));
          break;
        }
        case Op::kPushFloat:
          f.stack.push_back(Value::make_float(ls->seg->floats.at(a)));
          break;
        case Op::kPushStr:
          f.stack.push_back(Value::make_str(ls->string_map.at(a)));
          break;
        case Op::kPushBool:
          f.stack.push_back(Value::make_bool(a != 0));
          break;
        case Op::kLoad:
          if (a >= f.locals.size()) throw VmError{"load of unset local"};
          f.stack.push_back(f.locals[a]);
          break;
        case Op::kStore:
          store(a, pop());
          break;

        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kDiv:
        case Op::kMod:
        case Op::kLt:
        case Op::kLe:
        case Op::kGt:
        case Op::kGe: {
          Value r = pop(), l = pop();
          if (l.tag == Value::Tag::kInt && r.tag == Value::Tag::kInt) {
            const std::int64_t x = l.i, y = r.i;
            switch (op) {
              case Op::kAdd: f.stack.push_back(Value::make_int(x + y)); break;
              case Op::kSub: f.stack.push_back(Value::make_int(x - y)); break;
              case Op::kMul: f.stack.push_back(Value::make_int(x * y)); break;
              case Op::kDiv:
                if (y == 0) throw VmError{"integer division by zero"};
                f.stack.push_back(Value::make_int(x / y));
                break;
              case Op::kMod:
                if (y == 0) throw VmError{"integer modulo by zero"};
                f.stack.push_back(Value::make_int(x % y));
                break;
              case Op::kLt: f.stack.push_back(Value::make_bool(x < y)); break;
              case Op::kLe: f.stack.push_back(Value::make_bool(x <= y)); break;
              case Op::kGt: f.stack.push_back(Value::make_bool(x > y)); break;
              case Op::kGe: f.stack.push_back(Value::make_bool(x >= y)); break;
              default: break;
            }
          } else if (is_num(l) && is_num(r)) {
            const double x = as_f(l), y = as_f(r);
            switch (op) {
              case Op::kAdd: f.stack.push_back(Value::make_float(x + y)); break;
              case Op::kSub: f.stack.push_back(Value::make_float(x - y)); break;
              case Op::kMul: f.stack.push_back(Value::make_float(x * y)); break;
              case Op::kDiv: f.stack.push_back(Value::make_float(x / y)); break;
              case Op::kMod: throw VmError{"modulo on floats"};
              case Op::kLt: f.stack.push_back(Value::make_bool(x < y)); break;
              case Op::kLe: f.stack.push_back(Value::make_bool(x <= y)); break;
              case Op::kGt: f.stack.push_back(Value::make_bool(x > y)); break;
              case Op::kGe: f.stack.push_back(Value::make_bool(x >= y)); break;
              default: break;
            }
          } else {
            throw VmError{std::string("non-numeric operands for ") +
                          op_name(op)};
          }
          break;
        }
        case Op::kEq:
        case Op::kNe: {
          Value r = pop(), l = pop();
          bool eq = false;
          if (l.tag == r.tag) {
            switch (l.tag) {
              case Value::Tag::kInt: eq = l.i == r.i; break;
              case Value::Tag::kBool: eq = l.b == r.b; break;
              case Value::Tag::kFloat: eq = l.f == r.f; break;
              case Value::Tag::kStr:
                eq = strings_.name(l.idx) == strings_.name(r.idx);
                break;
              case Value::Tag::kChan:
              case Value::Tag::kClass:
              case Value::Tag::kNetRef:
                eq = l.idx == r.idx;
                break;
            }
          } else if (is_num(l) && is_num(r)) {
            eq = as_f(l) == as_f(r);
          }
          f.stack.push_back(Value::make_bool(op == Op::kEq ? eq : !eq));
          break;
        }
        case Op::kAndB:
        case Op::kOrB: {
          Value r = pop(), l = pop();
          if (l.tag != Value::Tag::kBool || r.tag != Value::Tag::kBool)
            throw VmError{"non-boolean operands for logical operator"};
          f.stack.push_back(Value::make_bool(op == Op::kAndB ? (l.b && r.b)
                                                             : (l.b || r.b)));
          break;
        }
        case Op::kConcat: {
          Value r = pop(), l = pop();
          if (l.tag != Value::Tag::kStr || r.tag != Value::Tag::kStr)
            throw VmError{"non-string operands for ++"};
          f.stack.push_back(Value::make_str(
              strings_.intern(strings_.name(l.idx) + strings_.name(r.idx))));
          break;
        }
        case Op::kNeg: {
          Value v = pop();
          if (v.tag == Value::Tag::kInt)
            f.stack.push_back(Value::make_int(-v.i));
          else if (v.tag == Value::Tag::kFloat)
            f.stack.push_back(Value::make_float(-v.f));
          else
            throw VmError{"non-numeric operand for negation"};
          break;
        }
        case Op::kNot: {
          Value v = pop();
          if (v.tag != Value::Tag::kBool)
            throw VmError{"non-boolean operand for !"};
          f.stack.push_back(Value::make_bool(!v.b));
          break;
        }

        case Op::kJmp:
          f.pc = a;
          break;
        case Op::kJmpIfFalse: {
          Value v = pop();
          if (v.tag != Value::Tag::kBool)
            throw VmError{"non-boolean condition"};
          if (!v.b) f.pc = a;
          break;
        }

        case Op::kNewChan:
          store(a, Value::make_chan(new_channel()));
          break;
        case Op::kGlobal: {
          const std::string& nm = ls->seg->strings.at(b);
          auto [it, inserted] = globals_.try_emplace(nm, 0);
          if (inserted) it->second = new_channel();
          store(a, Value::make_chan(it->second));
          break;
        }

        case Op::kTrMsg: {
          Value target = pop();
          std::vector<Value> args = pop_n(b);
          if (target.tag == Value::Tag::kChan) {
            channel_send(target.idx, ls->label_map.at(a), std::move(args));
          } else if (target.tag == Value::Tag::kNetRef) {
            if (!backend_) throw VmError{"remote message without a backend"};
            backend_->ship_message(*this, netrefs_.at(target.idx),
                                   ls->seg->labels.at(a), std::move(args));
            refresh();
          } else {
            throw VmError{std::string("message target is a ") +
                          tag_name(target.tag)};
          }
          break;
        }
        case Op::kTrObj: {
          Value target = pop();
          std::vector<Value> env = pop_n(b);
          const std::uint32_t seg_slot = ls->dep_map.at(a);
          if (target.tag == Value::Tag::kChan) {
            channel_recv(target.idx, ObjClosure{seg_slot, std::move(env)});
          } else if (target.tag == Value::Tag::kNetRef) {
            if (!backend_) throw VmError{"remote object without a backend"};
            backend_->ship_object(*this, netrefs_.at(target.idx), seg_slot,
                                  std::move(env));
            refresh();
          } else {
            throw VmError{std::string("object location is a ") +
                          tag_name(target.tag)};
          }
          break;
        }
        case Op::kInstOf: {
          Value cls = pop();
          std::vector<Value> args = pop_n(a);
          if (cls.tag == Value::Tag::kClass) {
            instantiate_class(cls, std::move(args));
          } else if (cls.tag == Value::Tag::kNetRef) {
            if (!backend_)
              throw VmError{"remote instantiation without a backend"};
            backend_->fetch_instantiate(*this, netrefs_.at(cls.idx),
                                        std::move(args));
            refresh();
          } else {
            throw VmError{std::string("instantiation of a ") +
                          tag_name(cls.tag)};
          }
          break;
        }
        case Op::kFork: {
          Frame g;
          g.seg = f.seg;
          g.pc = a;
          g.block = f.block;
          g.locals = pop_n(b);
          ++stats_.forks;
          spawn_frame(std::move(g));
          break;
        }
        case Op::kMkBlock: {
          const std::uint32_t seg_slot = ls->dep_map.at(a);
          std::vector<Value> env = pop_n(b);
          const std::uint32_t blk = make_block(seg_slot, std::move(env));
          const Segment& bseg = *linked_.at(seg_slot).seg;
          if (bseg.code.at(0) != c) throw VmError{"class count mismatch"};
          for (std::uint32_t k = 0; k < c; ++k)
            store(d + k, make_class_value(blk, k));
          break;
        }
        case Op::kLoadSibling: {
          if (f.block == Frame::kNoBlock)
            throw VmError{"sibling class reference outside a def block"};
          f.stack.push_back(make_class_value(f.block, a));
          break;
        }
        case Op::kPrint: {
          std::vector<Value> args = pop_n(a);
          std::string line;
          for (std::size_t i = 0; i < args.size(); ++i) {
            if (i) line += ' ';
            line += display(args[i]);
          }
          output_.push_back(std::move(line));
          ++stats_.prints;
          break;
        }
        case Op::kExportName: {
          if (!backend_) throw VmError{"export without a backend"};
          if (a >= f.locals.size() ||
              f.locals[a].tag != Value::Tag::kChan)
            throw VmError{"export of a non-channel"};
          backend_->export_name(*this, ls->seg->strings.at(b), f.locals[a]);
          refresh();
          break;
        }
        case Op::kExportClass: {
          if (!backend_) throw VmError{"export without a backend"};
          if (a >= f.locals.size() ||
              f.locals[a].tag != Value::Tag::kClass)
            throw VmError{"export of a non-class"};
          backend_->export_class(*this, ls->seg->strings.at(b), f.locals[a]);
          refresh();
          break;
        }
        case Op::kImportName:
        case Op::kImportClass: {
          if (!backend_) throw VmError{"import without a backend"};
          const std::string& site = ls->seg->strings.at(b);
          const std::string& nm = ls->seg->strings.at(c);
          const std::uint64_t token = next_token_++;
          parked_[token] = ParkedFrame{std::move(f), a};
          // NOTE: `f` is moved from; we must not touch it again. The
          // backend may resume synchronously (re-entrantly) — that is
          // safe because resume only touches the parked table and queue.
          if (op == Op::kImportName)
            backend_->import_name(*this, site, nm, token);
          else
            backend_->import_class(*this, site, nm, token);
          return n;
        }
      }
    }
  } catch (const VmError& e) {
    error(e.what);
    return n;
  } catch (const std::exception& e) {
    // DecodeError from linking, out_of_range from a hostile segment that
    // slipped past verification, bad_alloc-adjacent failures: the frame
    // dies, the machine survives.
    error(e.what());
    return n;
  }
}

}  // namespace dityco::vm
