// Node-to-node transports.
//
// The paper's testbed (section 5, fig. 1) is a 4-node PC cluster with a
// 1 Gb/s Myrinet switch and a 100 Mb/s Fast-Ethernet uplink. We do not
// have that hardware, so two substitutes are provided:
//   * InProcTransport — immediate, thread-safe delivery between nodes in
//     one process; used by the sequential and threaded drivers for
//     functional execution;
//   * SimTransport — virtual-time delivery under a configurable link
//     model (latency + size/bandwidth), used by the discrete-event
//     cluster driver to reproduce the paper's performance claims
//     (latency hiding, granularity limits, local-vs-remote cost).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace dityco::net {

struct Packet {
  std::uint32_t src_node = 0;
  std::uint32_t dst_node = 0;
  std::vector<std::uint8_t> bytes;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueue a packet.
  ///
  /// Clock contract: `now_us` is the sender's *virtual* clock and is
  /// only meaningful to virtual-time transports (SimTransport uses it
  /// to stamp arrival times). Real transports — InProcTransport,
  /// TcpTransport — run on the wall clock and ignore the argument
  /// entirely; callers must not encode ordering or delay assumptions
  /// into it. The same holds for `recv`'s `now_us`.
  virtual void send(Packet p, double now_us) = 0;

  /// Pop one deliverable packet for `node`. `now_us` is the receiver's
  /// clock; packets still "in the wire" at that time are not returned.
  virtual bool recv(std::uint32_t node, Packet& out, double now_us) = 0;

  /// Packets sent but not yet received (for quiescence detection).
  virtual std::size_t in_flight() const = 0;

  /// Stop any background machinery (I/O threads, sockets) and release
  /// waiters blocked in send(). Idempotent; default is a no-op for
  /// passive transports. Drivers call this before tearing down nodes so
  /// a teardown-time quiescence scan cannot race a live I/O thread.
  virtual void shutdown() {}

  /// True when this transport reaches peers *outside* the current
  /// process (tycod over TCP). Remote transports make quiescence
  /// fundamentally approximate — packets can be on another machine's
  /// queue — so drivers extend their drain grace period and keep
  /// serving until the remote side goes idle too.
  virtual bool remote() const { return false; }

  /// Earliest arrival time of any undelivered packet for `node`
  /// (virtual-time transports only; nullopt when none or not simulated).
  virtual std::optional<double> next_arrival(std::uint32_t node) const {
    (void)node;
    return std::nullopt;
  }

  /// Total bytes ever sent (benchmark accounting).
  virtual std::uint64_t bytes_sent() const = 0;
  virtual std::uint64_t packets_sent() const = 0;
};

/// Immediate delivery with per-node FIFO inboxes; thread safe.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(std::size_t nodes) : inboxes_(nodes) {}

  void send(Packet p, double now_us) override;
  bool recv(std::uint32_t node, Packet& out, double now_us) override;
  std::size_t in_flight() const override;
  std::uint64_t bytes_sent() const override { return bytes_; }
  std::uint64_t packets_sent() const override { return packets_; }

  /// Fault injection: packets the filter claims are silently discarded
  /// at send time (a lossy link). The filter runs under the transport
  /// mutex, so it must not call back into the transport.
  void set_drop_filter(std::function<bool(const Packet&)> f);
  std::uint64_t dropped() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::deque<Packet>> inboxes_;
  std::function<bool(const Packet&)> drop_;
  std::size_t in_flight_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Point-to-point link cost model: one-way delivery time for a packet.
struct LinkModel {
  double latency_us = 10.0;       // per-packet switch + wire latency
  double bandwidth_mbps = 1000.0; // megabits per second
  double per_packet_cpu_us = 1.0; // daemon marshal/dispatch overhead

  double cost_us(std::size_t bytes) const {
    // 1 Mbit/s == 1 bit/us, so bits / Mbps yields microseconds.
    return latency_us + per_packet_cpu_us +
           static_cast<double>(bytes) * 8.0 / bandwidth_mbps;
  }
};

/// The paper's 1 Gb/s Myrinet switch: low single-digit-microsecond-class
/// latency, 1000 Mb/s.
LinkModel myrinet();
/// The paper's 100 Mb/s Fast Ethernet uplink: ~an order of magnitude
/// worse latency and a tenth of the bandwidth.
LinkModel fast_ethernet();

/// Virtual-time transport: packets become visible to the receiver when
/// its clock passes send_time + link cost. Single-threaded use only
/// (driven by the discrete-event driver).
class SimTransport : public Transport {
 public:
  SimTransport(std::size_t nodes, LinkModel model)
      : model_(model), inboxes_(nodes) {}

  void send(Packet p, double now_us) override;
  bool recv(std::uint32_t node, Packet& out, double now_us) override;
  std::size_t in_flight() const override { return in_flight_; }
  std::optional<double> next_arrival(std::uint32_t node) const override;
  std::uint64_t bytes_sent() const override { return bytes_; }
  std::uint64_t packets_sent() const override { return packets_; }

  /// Inspect the head of a node's inbox without removing it (drivers need
  /// the destination site before deciding whether it may be delivered).
  const Packet* peek(std::uint32_t node, double& arrival_us) const;

  const LinkModel& model() const { return model_; }

  /// Per-packet extra delivery cost in µs, added on top of the link
  /// model (fault/latency injection for deterministic slow-path tests).
  void set_extra_cost(std::function<double(const Packet&)> f) {
    extra_cost_ = std::move(f);
  }

 private:
  struct Timed {
    double arrival_us;
    Packet packet;
  };

  LinkModel model_;
  std::function<double(const Packet&)> extra_cost_;
  std::vector<std::deque<Timed>> inboxes_;  // kept sorted by arrival
  std::size_t in_flight_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace dityco::net
