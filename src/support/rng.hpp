// Deterministic PRNG (splitmix64) for workload generators and property
// tests. We do not use std::mt19937 so that generated programs are
// reproducible across standard libraries.
#pragma once

#include <cstdint>

namespace dityco {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace dityco
