
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/test_node.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/test_node.dir/test_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dityco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dityco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dityco_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dityco_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/dityco_types.dir/DependInfo.cmake"
  "/root/repo/build/src/calculus/CMakeFiles/dityco_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dityco_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
