// Integration tests for the DiTyCO distribution runtime: the paper's
// examples running across sites and nodes, marshalling, the name
// service, FETCH caching, and agreement between the three drivers.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/network.hpp"
#include "core/wire.hpp"

namespace dityco::core {
namespace {

using Mode = Network::Mode;

/// Standard 2-node / 2-site topology: "server" on node 0, "client" on 1.
Network two_nodes(Mode mode = Mode::kSequential) {
  Network::Config cfg;
  cfg.mode = mode;
  Network net(cfg);
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  return net;
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------
// The paper's examples, end to end over the byte-code runtime
// ---------------------------------------------------------------------

TEST(Core, RemoteProcedureCall) {
  auto net = two_nodes();
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent) << "stalled=" << res.stalled;
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"});
  // SHIPM there, SHIPM back.
  EXPECT_EQ(net.find_site("client")->mobility().msgs_shipped, 1u);
  EXPECT_EQ(net.find_site("server")->mobility().msgs_shipped, 1u);
}

TEST(Core, ClientSubmittedBeforeServer) {
  // The name service parks the lookup until the export arrives.
  auto net = two_nodes();
  net.submit_source("client",
                    "import p from server in let z = p![21] in print[z]");
  net.submit_source("server",
                    "export new p in p?{ val(x, rep) = rep![x * 2] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"});
}

TEST(Core, AppletServerCodeFetching) {
  auto net = two_nodes();
  net.submit_network_source(
      "site server { export def Applet(out) = out![7] in 0 }\n"
      "site client { import Applet from server in "
      "new p (Applet[p] | p?(v) = print[v]) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"7"});
  EXPECT_EQ(net.find_site("client")->mobility().fetch_requests, 1u);
  EXPECT_EQ(net.find_site("server")->mobility().fetch_served, 1u);
}

TEST(Core, FetchedCodeKeepsLexicalBindings) {
  // The σ discipline: the applet body's free name `log` stays bound to
  // the server's channel after the code moves.
  auto net = two_nodes();
  net.submit_network_source(
      "site server { export new log in "
      "(log?(m) = print[m] | export def Applet() = log![\"ran\"] in 0) }\n"
      "site client { import Applet from server in Applet[] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("server"), std::vector<std::string>{"ran"});
  EXPECT_TRUE(net.output("client").empty());
}

TEST(Core, AppletServerCodeShipping) {
  auto net = two_nodes();
  net.submit_network_source(
      "site server { def AppletServer(self) = self?{ "
      "applet(p) = (p?(x) = print[x * 2] | AppletServer[self]) } in "
      "export new appletserver in AppletServer[appletserver] }\n"
      "site client { import appletserver from server in "
      "new p (appletserver!applet[p] | p![21]) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"})
      << "shipped applet reduces at the client";
  EXPECT_EQ(net.find_site("server")->mobility().objs_shipped, 1u);
  EXPECT_EQ(net.find_site("client")->mobility().objs_received, 1u);
}

TEST(Core, SetiExample) {
  auto net = two_nodes();
  net.submit_network_source(
      "site server { new database ("
      "  def Db(self, n) = self?{ newChunk(r) = (r![n] | Db[self, n + 1]) } "
      "  in Db[database, 0] "
      "  | export def Install() = print[\"installed\"]; Go[0] "
      "    and Go(i) = if i == 3 then print[\"done\"] "
      "                else let d = database!newChunk[] in "
      "                     print[\"chunk\", d]; Go[i + 1] "
      "    in 0) }\n"
      "site client { import Install from server in Install[] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty()) << net.all_errors()[0];
  EXPECT_EQ(net.output("client"),
            (std::vector<std::string>{"installed", "chunk 0", "chunk 1",
                                      "chunk 2", "done"}));
  // Install[] is one FETCH; Go is in the same definition block and the
  // sibling instantiations happen locally at the client thereafter.
  EXPECT_EQ(net.find_site("client")->mobility().fetch_requests, 1u);
}

TEST(Core, ObjectMigratesToImportedName) {
  auto net = two_nodes();
  net.submit_network_source(
      "site server { export new x in x![10] }\n"
      "site client { import x from server in x?(v) = print[v + 1] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("server"), std::vector<std::string>{"11"})
      << "the object migrated to the server and reduced there";
  EXPECT_EQ(net.find_site("client")->mobility().objs_shipped, 1u);
}

TEST(Core, ChannelsTravelAndComeHome) {
  // A channel sent away and back must localise to the same heap object
  // (export-table round trip, netref pass-through at third parties).
  Network net;
  net.add_node();
  net.add_node();
  net.add_node();
  net.add_site(0, "a");
  net.add_site(1, "b");
  net.add_site(2, "c");
  net.submit_network_source(
      "site a { export new home in (home?(v) = print[v] | "
      "import fwd from b in fwd!pass[home, 5]) }\n"
      "site b { export new fwd in fwd?{ pass(ch, v) = "
      "(import sink from c in sink!dump[ch, v + 1]) } }\n"
      "site c { export new sink in sink?{ dump(ch, v) = ch![v * 10] } }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("a"), std::vector<std::string>{"60"});
}

TEST(Core, TwoSitesSameNodeUseSharedMemoryPath) {
  Network net;
  net.add_node();
  net.add_site(0, "server");
  net.add_site(0, "client");
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x + 1] } }\n"
      "site client { import p from server in let z = p![1] in print[z] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"2"});
  EXPECT_EQ(res.packets, 0u)
      << "same-node interactions must bypass the transport";
}

TEST(Core, ManyClientsOneServer) {
  Network net;
  net.add_node();
  net.add_site(0, "server");
  std::vector<std::string> clients;
  for (int i = 0; i < 8; ++i) {
    net.add_node();
    clients.push_back("c" + std::to_string(i));
    net.add_site(1 + static_cast<std::size_t>(i), clients.back());
  }
  net.submit_source("server",
                    "def Serve(self) = self?{ val(x, rep) = (rep![x * x] | "
                    "Serve[self]) } in export new sq in Serve[sq]");
  for (int i = 0; i < 8; ++i)
    net.submit_source(clients[static_cast<std::size_t>(i)],
                      "import sq from server in let z = sq![" +
                          std::to_string(i + 2) + "] in print[z]");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(net.output(clients[static_cast<std::size_t>(i)]),
              std::vector<std::string>{std::to_string((i + 2) * (i + 2))});
}

// ---------------------------------------------------------------------
// FETCH caching (dynamic linking) and its ablation
// ---------------------------------------------------------------------

TEST(Core, ConcurrentFetchesCoalesceIntoOneRequest) {
  // Three instantiations race before the code arrives: one FETCH round
  // trip serves all of them (pending-instantiation table).
  auto net = two_nodes();
  net.submit_network_source(
      "site server { export def A(out) = out![1] in 0 }\n"
      "site client { import A from server in "
      "new p (A[p] | A[p] | A[p] | p?(a) = p?(b) = p?(c) = print[a + b + c]) "
      "}");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"3"});
  const auto& mob = net.find_site("client")->mobility();
  EXPECT_EQ(mob.fetch_requests, 1u) << "code downloaded once";
  EXPECT_EQ(net.find_site("server")->mobility().fetch_served, 1u);
}

TEST(Core, FetchCacheAvoidsRefetch) {
  // Sequential re-instantiation after the code arrived: served from the
  // dynamic-link cache, no second round trip.
  auto net = two_nodes();
  net.submit_network_source(
      "site server { export def A(out) = out![1] in 0 }\n"
      "site client { import A from server in "
      "new p (A[p] | p?(a) = (print[a] | A[p] | p?(b) = print[b])) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), (std::vector<std::string>{"1", "1"}));
  const auto& mob = net.find_site("client")->mobility();
  EXPECT_EQ(mob.fetch_requests, 1u);
  EXPECT_EQ(mob.fetch_cache_hits, 1u);
}

TEST(Core, FetchCacheDisabledRefetches) {
  auto net = two_nodes();
  net.find_site("client")->set_fetch_cache_enabled(false);
  net.submit_network_source(
      "site server { export def A(out) = out![1] in 0 }\n"
      "site client { import A from server in "
      "new p (A[p] | p?(a) = (print[a] | A[p] | p?(b) = print[b])) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), (std::vector<std::string>{"1", "1"}));
  EXPECT_EQ(net.find_site("client")->mobility().fetch_requests, 2u);
}

TEST(Core, ShippedCodeLinkedOncePerSite) {
  // The same object segment shipped twice must not be re-linked: the GUID
  // dedup in Machine::link is the paper's dynamic-link cache.
  auto net = two_nodes();
  net.submit_network_source(
      "site server { export new x, y in (x![1] | y![2]) }\n"
      "site client { import x from server in import y from server in "
      "def Probe(c) = c?(v) = print[v] in (Probe[x] | Probe[y]) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(sorted(net.output("server")),
            (std::vector<std::string>{"1", "2"}));
}

// ---------------------------------------------------------------------
// Name service behaviour
// ---------------------------------------------------------------------

TEST(Core, StallOnMissingExport) {
  auto net = two_nodes();
  net.submit_source("client", "import ghost from server in ghost![1]");
  auto res = net.run();
  EXPECT_FALSE(res.quiescent);
  EXPECT_TRUE(res.stalled);
  EXPECT_EQ(net.name_service().parked(), 1u);
}

TEST(Core, StallResolvedByLaterSubmission) {
  auto net = two_nodes();
  net.submit_source("client", "import p from server in p?(v) = print[v]");
  auto r1 = net.run();
  EXPECT_TRUE(r1.stalled);
  net.submit_source("server", "export new p in p![9]");
  auto r2 = net.run();
  EXPECT_TRUE(r2.quiescent);
  EXPECT_EQ(net.output("server"), std::vector<std::string>{"9"});
}

TEST(Core, KindMismatchRejectedByNameService) {
  // The surface syntax cannot express this (case separates names from
  // class variables), so exercise the protocol check directly: an entry
  // exported as a channel must not satisfy a class lookup.
  NameService ns(0);
  std::vector<net::Packet> replies;
  ns.register_id("server", "x",
                 vm::NetRef{vm::NetRef::Kind::kChan, 0, 0, 1}, "", replies);
  Writer lookup;
  {
    auto bytes = NameService::make_lookup("server", "x",
                                          vm::NetRef::Kind::kClass, 1, 0, 77);
    Reader r(bytes);
    r.u8();   // type
    r.u32();  // dst_site
    ns.handle_lookup(r, replies);
  }
  ASSERT_EQ(replies.size(), 1u);
  Reader r(replies[0].bytes);
  EXPECT_EQ(static_cast<MsgType>(r.u8()), MsgType::kNsReply);
  r.u32();  // dst site
  EXPECT_EQ(r.u64(), 77u);  // token
  EXPECT_FALSE(r.boolean()) << "kind mismatch must be flagged not-ok";
}

TEST(Core, NameServiceStats) {
  auto net = two_nodes();
  net.submit_network_source(
      "site server { export new a, b in 0 }\n"
      "site client { import a from server in import b from server in 0 }");
  net.run();
  EXPECT_EQ(net.name_service().stats().exports, 2u);
  EXPECT_EQ(net.name_service().stats().lookups, 2u);
  EXPECT_EQ(net.name_service().stats().replies, 2u);
}

TEST(Core, TypeSignatureMismatchDetected) {
  auto net = two_nodes();
  net.find_site("server")->set_export_signature("p", "![int]");
  net.find_site("client")->expect_import_signature("server", "p", "![bool]");
  net.submit_network_source(
      "site server { export new p in 0 }\n"
      "site client { import p from server in p![1] }");
  auto res = net.run();
  EXPECT_TRUE(res.stalled);
  auto errs = net.all_errors();
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("type mismatch"), std::string::npos);
}

TEST(Core, TypeSignatureMatchProceeds) {
  auto net = two_nodes();
  net.find_site("server")->set_export_signature("p", "![int]");
  net.find_site("client")->expect_import_signature("server", "p", "![int]");
  net.submit_network_source(
      "site server { export new p in p?(v) = print[v] }\n"
      "site client { import p from server in p![1] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("server"), std::vector<std::string>{"1"});
}

// ---------------------------------------------------------------------
// Drivers agree
// ---------------------------------------------------------------------

const char* kDriverProgram =
    "site server { export new p in "
    "def Serve(self) = self?{ val(x, rep) = (rep![x * 2] | Serve[self]) } "
    "in Serve[p] }\n"
    "site client { import p from server in "
    "let a = p![1] in let b = p![a] in let c = p![b] in print[c] }";

TEST(Core, SequentialDriver) {
  auto net = two_nodes(Mode::kSequential);
  net.submit_network_source(kDriverProgram);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"8"});
}

TEST(Core, ThreadedDriver) {
  auto net = two_nodes(Mode::kThreaded);
  net.submit_network_source(kDriverProgram);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"8"});
}

TEST(Core, SimDriver) {
  auto net = two_nodes(Mode::kSim);
  net.submit_network_source(kDriverProgram);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"8"});
  EXPECT_GT(res.virtual_time_us, 0.0);
}

TEST(Core, SimMyrinetFasterThanEthernet) {
  // Three chained RPCs: the Fast-Ethernet cluster must take longer in
  // virtual time (the shape claim behind the paper's platform choice).
  double t_myri = 0, t_eth = 0;
  {
    Network::Config cfg;
    cfg.mode = Mode::kSim;
    cfg.link = net::myrinet();
    Network net(cfg);
    net.add_node();
    net.add_node();
    net.add_site(0, "server");
    net.add_site(1, "client");
    net.submit_network_source(kDriverProgram);
    t_myri = net.run().virtual_time_us;
  }
  {
    Network::Config cfg;
    cfg.mode = Mode::kSim;
    cfg.link = net::fast_ethernet();
    Network net(cfg);
    net.add_node();
    net.add_node();
    net.add_site(0, "server");
    net.add_site(1, "client");
    net.submit_network_source(kDriverProgram);
    t_eth = net.run().virtual_time_us;
  }
  EXPECT_GT(t_eth, t_myri);
}

TEST(Core, BudgetExhaustionReported) {
  Network::Config cfg;
  cfg.max_instructions = 10'000;
  Network net(cfg);
  net.add_node();
  net.add_site(0, "main");
  net.submit_source("main", "def Loop(n) = Loop[n + 1] in Loop[0]");
  auto res = net.run();
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_FALSE(res.quiescent);
}

// ---------------------------------------------------------------------
// Marshalling round trips
// ---------------------------------------------------------------------

TEST(Marshal, ScalarRoundTrip) {
  vm::Machine a("a", 0, 0), b("b", 1, 0);
  Writer w;
  marshal_value(a, vm::Value::make_int(-7), w);
  marshal_value(a, vm::Value::make_bool(true), w);
  marshal_value(a, vm::Value::make_float(2.5), w);
  marshal_value(a, vm::Value::make_str(a.intern_string("hi")), w);
  Reader r(w.data());
  EXPECT_EQ(unmarshal_value(b, r).i, -7);
  EXPECT_TRUE(unmarshal_value(b, r).b);
  EXPECT_EQ(unmarshal_value(b, r).f, 2.5);
  auto s = unmarshal_value(b, r);
  EXPECT_EQ(b.str(s.idx), "hi");
  EXPECT_TRUE(r.done());
}

TEST(Marshal, ChannelBecomesNetRefAndLocalises) {
  vm::Machine a("a", 0, 0), b("b", 1, 0);
  const std::uint32_t ch = a.new_channel();
  Writer w;
  marshal_value(a, vm::Value::make_chan(ch), w);
  // At b: a foreign netref.
  Reader r1(w.data());
  auto at_b = unmarshal_value(b, r1);
  ASSERT_EQ(at_b.tag, vm::Value::Tag::kNetRef);
  EXPECT_EQ(b.netref(at_b.idx).node, 0u);
  // Send it back: it must localise to the same channel at a.
  Writer w2;
  marshal_value(b, at_b, w2);
  Reader r2(w2.data());
  auto home = unmarshal_value(a, r2);
  ASSERT_EQ(home.tag, vm::Value::Tag::kChan);
  EXPECT_EQ(home.idx, ch);
}

TEST(Marshal, ExportTableIsIdempotent) {
  vm::Machine a("a", 0, 0);
  const std::uint32_t ch = a.new_channel();
  EXPECT_EQ(a.export_chan(ch), a.export_chan(ch))
      << "re-export must reuse the HeapId";
}

TEST(Marshal, ForgedHeapIdRejected) {
  vm::Machine a("a", 0, 0);
  EXPECT_THROW(a.resolve_exported_chan(424242), DecodeError);
}

}  // namespace
}  // namespace dityco::core
