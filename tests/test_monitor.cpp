// TyCOmon: the per-network monitoring daemon. Covers the HTTP server in
// isolation (routing, 404/405, keep-alive, pipelining, the worker pool,
// lifecycle) and the Network-level endpoints — including concurrent
// persistent-connection scrapers raced against a threaded run, which is
// the whole point of the live telemetry plane (TSan-checked in CI).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/network.hpp"
#include "net/tcp.hpp"
#include "obs/fleet.hpp"
#include "obs/http.hpp"
#include "obs/trace.hpp"

namespace dityco {
namespace {

/// Minimal loopback HTTP client: send `request` verbatim, read to EOF.
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

/// Body of an HTTP response (everything after the blank line).
std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

/// Persistent-connection client: request every path down ONE HTTP/1.1
/// keep-alive connection (pipelined when asked: all requests written
/// before any response is read) and return the response bodies, framed
/// by Content-Length. An empty result slot means the server hung up.
std::vector<std::string> http_keepalive(std::uint16_t port,
                                        const std::vector<std::string>& paths,
                                        bool pipeline = false) {
  std::vector<std::string> out(paths.size());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return out;
  }
  auto send_req = [fd](const std::string& path) {
    const std::string req = "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
    std::size_t off = 0;
    while (off < req.size()) {
      const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  };
  std::string buf;
  char chunk[4096];
  auto read_response = [&]() -> std::string {
    std::size_t head_end;
    while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return {};
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string head = buf.substr(0, head_end + 4);
    std::size_t len = 0;
    const auto cl = head.find("Content-Length:");
    if (cl != std::string::npos)
      len = std::strtoul(head.c_str() + cl + 15, nullptr, 10);
    while (buf.size() < head_end + 4 + len) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return {};
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    std::string body = buf.substr(head_end + 4, len);
    buf.erase(0, head_end + 4 + len);
    return body;
  };
  if (pipeline) {
    for (const auto& p : paths) send_req(p);
    for (std::size_t i = 0; i < paths.size(); ++i) out[i] = read_response();
  } else {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      send_req(paths[i]);
      out[i] = read_response();
    }
  }
  ::close(fd);
  return out;
}

// ---------------------------------------------------------------------
// MonitorServer in isolation
// ---------------------------------------------------------------------

TEST(MonitorServer, ServesRoutesAndRejectsUnknownOnes) {
  obs::MonitorServer srv;
  srv.route("/ping", [] {
    obs::MonitorServer::Response r;
    r.body = "pong";
    return r;
  });
  srv.route("/teapot", [] {
    obs::MonitorServer::Response r;
    r.status = 404;
    r.body = "short and stout";
    return r;
  });
  const std::uint16_t port = srv.start(0);
  ASSERT_NE(port, 0u) << "ephemeral bind must succeed";
  EXPECT_TRUE(srv.running());
  EXPECT_EQ(srv.port(), port);

  const std::string ok = http_get(port, "/ping");
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos) << ok;
  EXPECT_EQ(body_of(ok), "pong");
  EXPECT_NE(ok.find("Content-Length: 4"), std::string::npos);

  // Query strings are stripped before routing.
  EXPECT_EQ(body_of(http_get(port, "/ping?x=1")), "pong");

  // A handler controls its own status line.
  EXPECT_NE(http_get(port, "/teapot").find("HTTP/1.1 404"),
            std::string::npos);

  // Unknown path: 404 listing the routes that do exist.
  const std::string miss = http_get(port, "/nope");
  EXPECT_NE(miss.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(miss.find("/ping"), std::string::npos);

  // Non-GET: 405.
  EXPECT_NE(http_request(port, "POST /ping HTTP/1.0\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);

  EXPECT_GE(srv.requests(), 5u);
  srv.stop();
  EXPECT_FALSE(srv.running());
  srv.stop();  // idempotent
}

TEST(MonitorServer, HandlesSequentialClients) {
  obs::MonitorServer srv;
  int hits = 0;
  srv.route("/n", [&hits] {
    obs::MonitorServer::Response r;
    r.body = std::to_string(++hits);
    return r;
  });
  const std::uint16_t port = srv.start(0);
  ASSERT_NE(port, 0u);
  for (int i = 1; i <= 5; ++i)
    EXPECT_EQ(body_of(http_get(port, "/n")), std::to_string(i));
  srv.stop();
}

TEST(MonitorServer, KeepAliveReusesOneConnection) {
  obs::MonitorServer srv;
  int hits = 0;
  srv.route("/n", [&hits] {
    obs::MonitorServer::Response r;
    r.body = std::to_string(++hits);
    return r;
  });
  const std::uint16_t port = srv.start(0);
  ASSERT_NE(port, 0u);
  const auto bodies = http_keepalive(port, {"/n", "/n", "/n"});
  EXPECT_EQ(bodies, (std::vector<std::string>{"1", "2", "3"}));
  // Three requests, one TCP connection: that is what keep-alive buys.
  EXPECT_EQ(srv.connections(), 1u);
  EXPECT_EQ(srv.requests(), 3u);
  srv.stop();
}

TEST(MonitorServer, PipelinedRequestsAnswerInOrder) {
  obs::MonitorServer srv;
  int hits = 0;
  srv.route("/n", [&hits] {
    obs::MonitorServer::Response r;
    r.body = std::to_string(++hits);
    return r;
  });
  const std::uint16_t port = srv.start(0);
  ASSERT_NE(port, 0u);
  const auto bodies = http_keepalive(port, {"/n", "/n"}, /*pipeline=*/true);
  EXPECT_EQ(bodies, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(srv.connections(), 1u);
  srv.stop();
}

TEST(MonitorServer, Http10ClosesUnlessAskedToStay) {
  obs::MonitorServer srv;
  srv.route("/p", [] {
    obs::MonitorServer::Response r;
    r.body = "pong";
    return r;
  });
  const std::uint16_t port = srv.start(0);
  ASSERT_NE(port, 0u);
  // Plain HTTP/1.0: exactly one response, then EOF (http_request reads
  // to EOF, so a non-closing server would stall it into the timeout).
  const std::string one = http_request(port, "GET /p HTTP/1.0\r\n\r\n");
  EXPECT_NE(one.find("Connection: close"), std::string::npos) << one;
  EXPECT_EQ(body_of(one), "pong");
  // HTTP/1.1 + Connection: close is honoured too.
  const std::string bye = http_request(
      port, "GET /p HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(bye.find("Connection: close"), std::string::npos) << bye;
  srv.stop();
}

TEST(MonitorServer, SlowScraperDoesNotBlockOthers) {
  obs::MonitorServer srv;
  srv.route("/slow", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    obs::MonitorServer::Response r;
    r.body = "slow";
    return r;
  });
  srv.route("/fast", [] {
    obs::MonitorServer::Response r;
    r.body = "fast";
    return r;
  });
  const std::uint16_t port = srv.start(0);
  ASSERT_NE(port, 0u);
  std::thread slow([&] { EXPECT_EQ(body_of(http_get(port, "/slow")), "slow"); });
  // Give the slow request time to reach its handler and park a worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(body_of(http_get(port, "/fast")), "fast");
  const auto fast_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  slow.join();
  // The pool (default 4 workers) must answer /fast while /slow is still
  // sleeping; a single-threaded server would serialise them.
  EXPECT_LT(fast_ms, 300) << "a slow scraper blocked the fast one";
  srv.stop();
}

// ---------------------------------------------------------------------
// Network endpoints
// ---------------------------------------------------------------------

core::Network rpc_net(core::Network::Config cfg, int calls) {
  core::Network net(cfg);
  net.add_node();
  net.add_site(0, "server");
  net.add_node();
  net.add_site(1, "client");
  net.submit_source("server",
                    "export new svc in "
                    "def Serve(self) = self?{ val(x, r) = (r![x + 1] | "
                    "Serve[self]) } in Serve[svc]");
  net.submit_source("client",
                    "import svc from server in "
                    "def Loop(i, acc) = if i == 0 then print[\"done\", acc] "
                    "else let v = svc![acc] in Loop[i - 1, v] "
                    "in Loop[" + std::to_string(calls) + ", 0]");
  return net;
}

TEST(Monitor, EndpointsAnswerAtRest) {
  auto net = rpc_net({}, 4);
  net.enable_tracing(1 << 12);
  // Promote everything (slow_us well under any real latency) so /flight
  // has content; profile at a tight period so /profile has samples.
  obs::FlightPolicy fp;
  fp.slow_us = 0.001;
  net.enable_flight(fp);
  net.enable_profiling(16);
  const std::uint16_t port = net.start_monitor(0);
  ASSERT_NE(port, 0u);
  EXPECT_EQ(net.monitor_port(), port);
  ASSERT_TRUE(net.run().quiescent);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("site_msgs_shipped{site=\"client\"}"),
            std::string::npos);
  // At rest the scrape includes the non-live-safe collectors too.
  EXPECT_NE(metrics.find("vm_runnable"), std::string::npos) << metrics;

  const std::string json = body_of(http_get(port, "/metrics.json"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);

  const std::string health = body_of(http_get(port, "/healthz"));
  EXPECT_NE(health.find("\"outcome\":\"quiescent\""), std::string::npos)
      << health;
  EXPECT_NE(health.find("\"running\":false"), std::string::npos);
  EXPECT_NE(health.find("\"name\":\"client\""), std::string::npos);

  const std::string trace = body_of(http_get(port, "/trace"));
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

  const std::string flight = body_of(http_get(port, "/flight"));
  EXPECT_NE(flight.find("\"traceEvents\""), std::string::npos);
  // Every mobility completion in this run beat the threshold, so the
  // flight buffer cannot be empty: at least one SHIPM hop survived.
  EXPECT_NE(flight.find("SHIPM"), std::string::npos) << flight;

  const std::string profile = body_of(http_get(port, "/profile"));
  EXPECT_NE(profile.find(';'), std::string::npos) << profile;
  // Folded stacks name the user-level definition, not just opcodes.
  EXPECT_NE(profile.find("Loop"), std::string::npos) << profile;

  net.stop_monitor();
  EXPECT_EQ(net.monitor_port(), 0u);
}

// The SLO plane behind /slo (and tycosh :slo): the ledger tracks every
// RPC's departure and completion, the document carries real e2e
// percentiles, and a sub-threshold run stays in the ok state with the
// violating-trace path never firing.
TEST(Monitor, SloEndpointServesLedgerAndBurnState) {
  auto net = rpc_net({}, 8);
  net.enable_flight();
  net.enable_slo();
  ASSERT_TRUE(net.slo_enabled());
  const std::uint16_t port = net.start_monitor(0);
  ASSERT_NE(port, 0u);
  ASSERT_TRUE(net.run().quiescent);

  const std::string doc = body_of(http_get(port, "/slo"));
  EXPECT_NE(doc.find("\"schema\":\"dityco-slo-v1\""), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"state\":\"ok\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"burn\""), std::string::npos);
  EXPECT_NE(doc.find("\"stages\""), std::string::npos);
  // 8 calls + the initial import round-trip all completed through the
  // ledger; nothing is left in flight and nothing violated a 5ms
  // objective on loopback.
  const auto& plane = net.slo();
  EXPECT_GE(plane.completed(), 8u);
  EXPECT_EQ(plane.inflight(), 0u);
  EXPECT_EQ(plane.violations(), 0u);
  EXPECT_GE(plane.e2e_snapshot(obs::SloPlane::Op::kMsg).count, 8u);

  // The metrics exposition carries the plane's counters and gauges.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("slo_requests_completed"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("slo_state 0"), std::string::npos) << metrics;
  net.stop_monitor();
}

// A hostile objective (0ns threshold) must drive the burn-rate state
// machine to page and promote the offending trace ids into /flight —
// the alert path the slo smoke exercises across real processes.
TEST(Monitor, SloViolationsPageAndLandInFlight) {
  auto net = rpc_net({}, 8);
  net.enable_flight();
  obs::SloPlane::Config cfg;
  cfg.objective.threshold_ns = 0;  // every completion violates
  cfg.objective.short_window_s = 5;
  cfg.objective.long_window_s = 10;
  net.enable_slo(cfg);
  ASSERT_TRUE(net.run().quiescent);

  const auto& plane = net.slo();
  EXPECT_GE(plane.violations(), 8u);
  EXPECT_EQ(plane.state(), obs::SloState::kPage);
  EXPECT_GE(plane.transitions_total(), 1u);
  const std::string doc = net.slo_json();
  EXPECT_NE(doc.find("\"state\":\"page\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"transitions\":[{"), std::string::npos) << doc;
  // The flight recorder holds the promoted slow traces.
  const std::string flight = net.flight_json();
  EXPECT_NE(flight.find("SHIPM"), std::string::npos) << flight;
}

TEST(Monitor, HealthJsonTracksRunState) {
  auto net = rpc_net({}, 2);
  const std::string before = net.health_json();
  EXPECT_NE(before.find("\"outcome\":\"never_ran\""), std::string::npos)
      << before;
  ASSERT_TRUE(net.run().quiescent);
  const std::string after = net.health_json();
  EXPECT_NE(after.find("\"outcome\":\"quiescent\""), std::string::npos);
  EXPECT_NE(after.find("\"mode\":\"sequential\""), std::string::npos)
      << after;
}

TEST(Monitor, ScrapeRacesThreadedRun) {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kThreaded;
  auto net = rpc_net(cfg, 2000);
  net.enable_tracing(1 << 12);
  obs::FlightPolicy fp;
  fp.slow_pctl = 0.99;
  net.enable_flight(fp);
  net.enable_profiling(64);
  const std::uint16_t port = net.start_monitor(0);
  ASSERT_NE(port, 0u);

  core::Network::Result res;
  std::thread runner([&] { res = net.run(); });
  // Two concurrent persistent-connection scrapers hammer every endpoint
  // while the two executor threads and the daemon pumps are live; the
  // live scrape path must stay off their plain fields and the profiler/
  // flight reads off the executors' single-writer cells (TSan enforces
  // this in CI).
  auto scrape = [port] {
    for (int i = 0; i < 10; ++i) {
      const auto bodies = http_keepalive(
          port, {"/metrics", "/metrics.json", "/healthz", "/trace",
                 "/flight", "/profile"});
      for (const auto& b : bodies) EXPECT_FALSE(b.empty());
    }
  };
  std::thread scraper1(scrape), scraper2(scrape);
  scraper1.join();
  scraper2.join();
  runner.join();
  EXPECT_TRUE(res.quiescent);

  // Post-run the counters have converged to the final values.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("site_msgs_shipped{site=\"client\"}"),
            std::string::npos);
  const std::string health = body_of(http_get(port, "/healthz"));
  EXPECT_NE(health.find("\"outcome\":\"quiescent\""), std::string::npos);
}

TEST(Monitor, StartTwiceKeepsFirstServer) {
  auto net = rpc_net({}, 1);
  const std::uint16_t a = net.start_monitor(0);
  ASSERT_NE(a, 0u);
  const std::uint16_t b = net.start_monitor(0);
  EXPECT_EQ(a, b) << "second start_monitor returns the live server's port";
}

// ---------------------------------------------------------------------
// /peers, gossiped monitor ports and fleet-wide federation
// ---------------------------------------------------------------------

/// A one-node multiprocess Network (the tycod shape) with tracing and
/// TyCOmon up, its TCP transport bound. Port 0 = ephemeral listen.
struct FleetNode {
  explicit FleetNode(std::uint32_t self, const std::string& join = "") {
    core::Network::Config cfg;
    cfg.mode = core::Network::Mode::kThreaded;
    cfg.transport = core::Network::TransportKind::kTcp;
    cfg.tcp.multiprocess = true;
    cfg.tcp.self = self;
    if (!join.empty()) cfg.tcp.peers[0] = join;
    net = std::make_unique<core::Network>(cfg);
    net->add_node();
    net->enable_tracing(1 << 12);
    monitor = net->start_monitor(0);
    tcp = net->tcp_transport();
  }
  std::unique_ptr<core::Network> net;
  std::uint16_t monitor = 0;
  net::TcpTransport* tcp = nullptr;
};

bool wait_for(const std::function<bool()>& pred, int ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(Fleet, PeersEndpointGossipsMonitorPortsAndHealthzShowsTransport) {
  // Two tycod-shaped networks in one process, joined over real loopback
  // sockets. The hello/kPeers frames carry each side's TyCOmon port, so
  // either monitor's /peers names the other's.
  FleetNode n0(0);
  ASSERT_NE(n0.monitor, 0u);
  FleetNode n1(1, "127.0.0.1:" + std::to_string(n0.tcp->port()));
  ASSERT_NE(n1.monitor, 0u);

  // Node 0 learns node 1's monitor port from its hello.
  ASSERT_TRUE(wait_for([&] {
    const std::string body = body_of(http_get(n0.monitor, "/peers"));
    return body.find("\"monitor\":" + std::to_string(n1.monitor)) !=
           std::string::npos;
  })) << body_of(http_get(n0.monitor, "/peers"));

  const std::string peers0 = body_of(http_get(n0.monitor, "/peers"));
  EXPECT_NE(peers0.find("\"self\":{\"node\":0"), std::string::npos) << peers0;
  EXPECT_NE(peers0.find("\"node\":1"), std::string::npos);
  EXPECT_NE(peers0.find("\"state\":\"connected\""), std::string::npos)
      << peers0;
  EXPECT_NE(peers0.find("\"phi\":"), std::string::npos);
  EXPECT_NE(peers0.find("\"queue_bytes\":"), std::string::npos);
  EXPECT_NE(peers0.find("\"reconnects\":"), std::string::npos);

  // /healthz gained the per-peer transport block.
  const std::string health = body_of(http_get(n0.monitor, "/healthz"));
  EXPECT_NE(health.find("\"peers\":["), std::string::npos) << health;
  EXPECT_NE(health.find("\"last_heard_age_ms\":"), std::string::npos);

  // discover() walks the gossip from one seed URL to the whole fleet.
  const auto eps = obs::fleet::discover(
      "http://127.0.0.1:" + std::to_string(n0.monitor));
  ASSERT_EQ(eps.size(), 2u) << "seed + gossiped peer";
  EXPECT_EQ(eps[0].node, 0u);
  EXPECT_EQ(eps[1].node, 1u);
  EXPECT_EQ(eps[1].monitor, n1.monitor);
}

TEST(Fleet, FederatedScrapeMergesTracesAndLabelsMetrics) {
  namespace fleet = obs::fleet;
  FleetNode n0(0);
  FleetNode n1(1, "127.0.0.1:" + std::to_string(n0.tcp->port()));
  ASSERT_TRUE(wait_for([&] { return n1.tcp->stats().connects.load() > 0; }));

  // One traced daemon packet crosses the socket: v2 header, sampled bit
  // set, a fresh id. The send span lands in n1's transport ring; the
  // recv span lands in n0's when the packet is popped.
  const std::uint64_t id = obs::next_trace_id();
  net::Packet p;
  p.src_node = 1;
  p.dst_node = 0;
  p.bytes.push_back(0x01 | 0x80 | 0x40);
  p.bytes.resize(13);
  std::memcpy(p.bytes.data() + 5, &id, sizeof id);
  n1.tcp->send(std::move(p), 0);
  net::Packet got;
  ASSERT_TRUE(wait_for([&] { return n0.tcp->recv(0, got, 0); }));

  // Scrape both /trace docs and stitch them: the merged timeline must
  // hold both processes and connect the send and recv spans of `id`
  // with one cross-process flow.
  const std::string doc0 = body_of(http_get(n0.monitor, "/trace"));
  const std::string doc1 = body_of(http_get(n1.monitor, "/trace"));
  const fleet::MergedTrace merged = fleet::merge_traces({doc0, doc1});
  EXPECT_EQ(merged.nodes, 2u);
  EXPECT_EQ(merged.anchored, 2u);
  std::set<std::uint32_t> pids;
  for (const auto& e : merged.events)
    if (e.trace_id == id) pids.insert(e.pid);
  EXPECT_EQ(pids, (std::set<std::uint32_t>{0u, 1u})) << merged.json;
  // The regenerated flow chain for the id is in the merged document.
  EXPECT_NE(merged.json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(merged.json.find("\"ph\":\"f\""), std::string::npos);

  // Federated Prometheus view: every sample line gains a node label.
  const std::string fed = fleet::federate_metrics(
      {{0, body_of(http_get(n0.monitor, "/metrics"))},
       {1, body_of(http_get(n1.monitor, "/metrics"))}});
  EXPECT_NE(fed.find("node=\"0\""), std::string::npos);
  EXPECT_NE(fed.find("node=\"1\""), std::string::npos);
  // The transport's path telemetry is in there, per node and per peer.
  EXPECT_NE(fed.find("tcp_peer_phi_milli"), std::string::npos) << fed;
  const std::string fedj = fleet::federate_metrics_json(
      {{0, body_of(http_get(n0.monitor, "/metrics.json"))},
       {1, body_of(http_get(n1.monitor, "/metrics.json"))}});
  EXPECT_NE(fedj.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(fedj.find("\"counters\""), std::string::npos);
}

// ---------------------------------------------------------------------
// /gc, /names and the credit audit plane
// ---------------------------------------------------------------------

TEST(Monitor, GcAndNamesEndpointsAnswerAtRest) {
  namespace fleet = obs::fleet;
  auto net = rpc_net({}, 3);
  const std::uint16_t port = net.start_monitor(0);
  ASSERT_NE(port, 0u);
  ASSERT_TRUE(net.run().quiescent);

  // /gc: at rest the snapshot is rebuilt fresh and every export entry's
  // ledger adds up (minted = returned + released + outstanding).
  const std::string gc_body = body_of(http_get(port, "/gc"));
  fleet::Json gc;
  ASSERT_TRUE(fleet::parse_json(gc_body, gc)) << gc_body;
  ASSERT_NE(gc.find("running"), nullptr);
  EXPECT_FALSE(gc.find("running")->boolean);
  EXPECT_TRUE(gc.find("fresh")->boolean);
  const fleet::Json* sites = gc.find("sites");
  ASSERT_NE(sites, nullptr);
  ASSERT_EQ(sites->items.size(), 2u) << gc_body;
  bool saw_entry = false;
  for (const fleet::Json& site : sites->items) {
    const fleet::Json* exports = site.find("exports");
    ASSERT_NE(exports, nullptr) << gc_body;
    for (const fleet::Json& e : exports->items) {
      saw_entry = true;
      EXPECT_EQ(e.u64_or("minted", 0),
                e.u64_or("returned", 0) + e.u64_or("released", 0) +
                    e.u64_or("outstanding", 0))
          << gc_body;
    }
  }
  EXPECT_TRUE(saw_entry) << "the exported service left no ledger: "
                         << gc_body;

  // /names: the central service lists both registered sites and the
  // exported id with its retained credit share.
  const std::string names_body = body_of(http_get(port, "/names"));
  fleet::Json names;
  ASSERT_TRUE(fleet::parse_json(names_body, names)) << names_body;
  const fleet::Json* services = names.find("services");
  ASSERT_NE(services, nullptr);
  ASSERT_EQ(services->items.size(), 1u) << names_body;
  const fleet::Json& svc = services->items[0];
  EXPECT_EQ(svc.str_or("scope"), "central");
  EXPECT_EQ(svc.find("sites")->items.size(), 2u) << names_body;
  bool saw_id = false;
  for (const fleet::Json& id : svc.find("ids")->items)
    if (id.str_or("name") == "svc") {
      saw_id = true;
      EXPECT_EQ(id.u64_or("owner_node", 99), 0u);
      EXPECT_TRUE(id.find("gc")->boolean) << names_body;
    }
  EXPECT_TRUE(saw_id) << names_body;

  // The two documents join into a balanced audit: every minted credit
  // is covered by import balances plus name-service credit.
  const fleet::AuditReport rep = fleet::audit({gc}, {names}, {0, 1});
  EXPECT_TRUE(rep.balanced) << rep.to_text();
  EXPECT_TRUE(rep.verifiable) << rep.to_text();
  EXPECT_GE(rep.entries, 1u);
  EXPECT_EQ(rep.lag, 0u);
}

TEST(Monitor, GcAndNamesScrapesRaceThreadedRun) {
  // Concurrent persistent-connection /gc + /names scrapes while the
  // executor threads run: the endpoints must serve published snapshots
  // (or stale markers) without touching live site state — TSan enforces
  // the discipline in CI.
  namespace fleet = obs::fleet;
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kThreaded;
  auto net = rpc_net(cfg, 2000);
  const std::uint16_t port = net.start_monitor(0);
  ASSERT_NE(port, 0u);

  core::Network::Result res;
  std::thread runner([&] { res = net.run(); });
  auto scrape = [port] {
    for (int i = 0; i < 10; ++i) {
      const auto bodies =
          http_keepalive(port, {"/gc", "/names", "/gc", "/names"});
      for (const auto& b : bodies) {
        EXPECT_FALSE(b.empty());
        fleet::Json doc;
        EXPECT_TRUE(fleet::parse_json(b, doc)) << b;
      }
    }
  };
  std::thread scraper1(scrape), scraper2(scrape);
  scraper1.join();
  scraper2.join();
  runner.join();
  EXPECT_TRUE(res.quiescent);

  // Post-run the fresh at-rest documents audit clean.
  fleet::Json gc, names;
  ASSERT_TRUE(fleet::parse_json(body_of(http_get(port, "/gc")), gc));
  ASSERT_TRUE(fleet::parse_json(body_of(http_get(port, "/names")), names));
  const fleet::AuditReport rep = fleet::audit({gc}, {names}, {0, 1});
  EXPECT_TRUE(rep.balanced) << rep.to_text();
}

TEST(Fleet, IdleTcpMeshAuditsToZeroImbalance) {
  // Two nodes over the loopback-socket mesh run an RPC exchange and go
  // idle; the network's own self-audit must find every minted credit
  // accounted for — zero lag, zero residual — and bump the audit
  // counter it exports.
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kThreaded;
  cfg.transport = core::Network::TransportKind::kTcp;
  auto net = rpc_net(cfg, 4);
  ASSERT_TRUE(net.run().quiescent);

  const auto rep = net.self_audit();
  EXPECT_TRUE(rep.balanced) << rep.to_text();
  EXPECT_TRUE(rep.verifiable) << rep.to_text();
  EXPECT_GE(rep.entries, 1u);
  EXPECT_EQ(rep.lag, 0u);
  EXPECT_EQ(rep.outstanding, rep.held) << rep.to_text();
  EXPECT_TRUE(rep.offenders.empty());
  EXPECT_TRUE(rep.orphan_imports.empty());
  EXPECT_TRUE(rep.ns_mismatches.empty());
  EXPECT_NE(net.metrics().expose_text().find("gc_audits 1"),
            std::string::npos);
}

}  // namespace
}  // namespace dityco
