// Workload SLO plane (observability, story 3): tail latency as a
// first-class, alertable signal.
//
// Three pieces, smallest first:
//
//   * SloHistogram — a log-linear (HDR-style) latency histogram over
//     nanoseconds. Values below 32ns land in exact unit buckets; above
//     that each power of two splits into 32 linear sub-buckets, so the
//     relative quantile error is bounded by half a sub-bucket width
//     (<= ~1.6%) from sub-microsecond to centuries. Recording is a
//     single relaxed atomic increment (safe from any thread, no lock);
//     snapshots are plain structs that merge associatively, so per-node
//     histograms can be stitched into one fleet view.
//
//   * Request ledger — keyed on the propagated v2 trace id, one record
//     per in-flight mobility operation (SHIPM/SHIPO/FETCH). Sites feed
//     on_depart/on_complete (the same hook points as the flight
//     recorder) and the TCP transport feeds on_tcp_send/on_tcp_recv, so
//     a completed request decomposes into stages:
//       enqueue  depart -> tcp-send   (local queueing + marshalling)
//       remote   tcp-send -> tcp-recv (wire + remote processing)
//       reply    tcp-recv -> handled  (local delivery of the reply)
//       execute  tcp-recv -> handled on the SERVING node (a request
//                that arrived over the wire and was handled here; this
//                is the server-side view of a client's "remote" stage)
//     e2e latency is kept per operation kind. Loopback/in-proc requests
//     simply have no tcp stages — e2e still records.
//
//   * Objective + burn rate — a configurable objective (latency
//     threshold + error budget) evaluated over two sliding windows
//     (default 30s/300s) of per-second buckets. burn = bad_fraction /
//     budget; the state machine is ok -> warn -> page with both windows
//     required to burn (the standard multi-window alert: the short
//     window gives speed, the long window gives evidence). State
//     transitions are timestamped and kept for /slo; every transition
//     also bumps a counter so Prometheus sees flaps. Objective-violating
//     trace ids are promoted into the flight recorder (Reason::kSlow),
//     so /flight holds the offending timeline.
//
// Time base: every entry point takes an explicit now_ns on the caller's
// clock — virtual time under the sim driver (deterministic), wall time
// elsewhere, a fake clock in tests. The plane never reads a clock.
//
// Thread safety: histogram recording is lock-free; the ledger, wheel
// and transition log share one mutex (per-remote-operation, off the
// instruction hot path, same discipline as FlightRecorder).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dityco::obs {

class FlightRecorder;

/// Log-linear latency histogram over uint64 nanoseconds.
class SloHistogram {
 public:
  static constexpr unsigned kSubBits = 5;           // 32 sub-buckets
  static constexpr unsigned kSub = 1u << kSubBits;  // per power of two
  // Exponents 5..63 each contribute kSub buckets after the 32 exact
  // unit buckets: idx = (e - 4) * 32 + sub, max (63-4)*32+31 = 1919.
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSub;

  static std::size_t index_of(std::uint64_t ns) {
    if (ns < kSub) return static_cast<std::size_t>(ns);
    const unsigned e = static_cast<unsigned>(std::bit_width(ns)) - 1;
    const auto sub =
        static_cast<std::size_t>((ns >> (e - kSubBits)) & (kSub - 1));
    return static_cast<std::size_t>(e - (kSubBits - 1)) * kSub + sub;
  }
  /// Smallest value mapping to bucket `idx`.
  static std::uint64_t bucket_low(std::size_t idx) {
    if (idx < 2 * kSub) return idx;  // exact through e = kSubBits
    const unsigned e = static_cast<unsigned>(idx / kSub) + (kSubBits - 1);
    const std::uint64_t sub = idx % kSub;
    return (std::uint64_t{1} << e) | (sub << (e - kSubBits));
  }
  /// Width of bucket `idx` (1 for the exact range).
  static std::uint64_t bucket_width(std::size_t idx) {
    if (idx < 2 * kSub) return 1;
    const unsigned e = static_cast<unsigned>(idx / kSub) + (kSubBits - 1);
    return std::uint64_t{1} << (e - kSubBits);
  }

  /// Mergeable point-in-time copy; plain data, no atomics.
  struct Snapshot {
    std::vector<std::uint64_t> counts;  // kBuckets entries (or empty)
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t min_ns = 0;

    bool empty() const { return count == 0; }
    double mean_ns() const {
      return count ? static_cast<double>(sum_ns) / static_cast<double>(count)
                   : 0.0;
    }
    /// Value at quantile q in [0,1]; midpoint of the covering bucket,
    /// clamped into [min_ns, max_ns] so p100 is exact.
    std::uint64_t quantile_ns(double q) const;
    double quantile_us(double q) const {
      return static_cast<double>(quantile_ns(q)) / 1e3;
    }
    /// Pointwise sum (associative and commutative).
    Snapshot& merge(const Snapshot& other);
    /// {"count":..,"p50_us":..,...} for /slo and tool output.
    std::string json() const;
  };

  void record(std::uint64_t ns);
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
};

/// A latency objective plus the burn-rate alert shape around it.
struct SloObjective {
  /// "p99 < 5ms": a request slower than this is BAD (burns budget).
  std::uint64_t threshold_ns = 5'000'000;
  /// Error budget: the tolerated bad fraction (0.001 = 99.9% of
  /// requests within threshold). burn = bad_fraction / budget.
  double budget = 0.001;
  std::uint32_t short_window_s = 30;
  std::uint32_t long_window_s = 300;
  /// Both windows must burn at or above these multiples of budget.
  double warn_burn = 1.0;
  double page_burn = 6.0;
};

enum class SloState : std::uint8_t { kOk = 0, kWarn = 1, kPage = 2 };
const char* slo_state_name(SloState s);

/// Per-site request ledger + objective evaluation. One per Network
/// (shared by all its sites, like the FlightRecorder).
class SloPlane {
 public:
  enum class Op : std::uint8_t { kMsg = 0, kObj = 1, kFetch = 2 };
  enum class Stage : std::uint8_t {
    kEnqueue = 0,
    kRemote = 1,
    kReply = 2,
    kExecute = 3,
  };
  static constexpr std::size_t kOps = 3;
  static constexpr std::size_t kStages = 4;
  static const char* op_name(Op op);
  static const char* stage_name(Stage s);

  struct Config {
    SloObjective objective;
    /// Ledger cap: beyond this many in-flight records new departures
    /// are dropped from latency tracking (never from execution).
    std::size_t max_inflight = 65536;
    /// Records older than this are swept as expired (a request whose
    /// completion carries a different trace id, or never came back).
    std::uint64_t expire_ns = 30'000'000'000ull;
  };

  void configure(const Config& cfg);
  Config config() const;
  /// Violating trace ids are promoted here (may be null).
  void set_flight(FlightRecorder* flight);

  /// A traced SHIPM/SHIPO/FETCH left a local site at now_ns.
  void on_depart(std::uint64_t trace_id, Op op, std::uint64_t now_ns);
  /// The transport framed this trace id onto a socket.
  void on_tcp_send(std::uint64_t trace_id, std::uint64_t now_ns);
  /// The transport surfaced this trace id from a socket.
  void on_tcp_recv(std::uint64_t trace_id, std::uint64_t now_ns);
  /// The matching arrival/reply was handled at now_ns. Returns true if
  /// the request violated the objective.
  bool on_complete(std::uint64_t trace_id, std::uint64_t now_ns);
  /// A request that originated on ANOTHER node was served here (e.g.
  /// the kFetchReq side): closes only a server-side record (one opened
  /// by on_tcp_recv) into the execute stage. A record with a local
  /// departure is left alone — its completion is the reply, not the
  /// serve (the two coincide in a single-process network where client
  /// and server share this plane).
  bool on_served(std::uint64_t trace_id, std::uint64_t now_ns);
  /// Direct path for clients that measure e2e themselves (tycoload):
  /// record a finished request without ledger bookkeeping. A nonzero
  /// trace_id is promoted to flight on violation.
  bool record_value(Op op, std::uint64_t e2e_ns, std::uint64_t now_ns,
                    std::uint64_t trace_id = 0);

  struct Window {
    double burn = 0;  // bad_fraction / budget over the window
    std::uint64_t bad = 0;
    std::uint64_t total = 0;
  };
  struct BurnView {
    SloState state = SloState::kOk;
    Window short_w, long_w;
  };
  /// Pure read of the windows at now_ns (no state transition).
  BurnView burn(std::uint64_t now_ns) const;
  /// Recompute state at now_ns, recording a transition if it changed.
  /// Called internally on every completion; call explicitly to let a
  /// quiet period decay warn/page back to ok.
  SloState evaluate(std::uint64_t now_ns);
  SloState state() const;

  struct Transition {
    std::uint64_t ts_ns = 0;
    SloState from = SloState::kOk;
    SloState to = SloState::kOk;
  };
  std::vector<Transition> transitions() const;

  SloHistogram::Snapshot e2e_snapshot(Op op) const {
    return e2e_[static_cast<std::size_t>(op)].snapshot();
  }
  SloHistogram::Snapshot stage_snapshot(Stage s) const {
    return stage_[static_cast<std::size_t>(s)].snapshot();
  }

  // Counters (under the mutex; scrape-rate reads).
  std::uint64_t tracked() const;
  std::uint64_t completed() const;
  std::uint64_t executed() const;
  std::uint64_t violations() const;
  std::uint64_t expired() const;
  std::uint64_t dropped() const;
  std::uint64_t transitions_total() const;
  std::size_t inflight() const;

  /// The full /slo document. Sweeps expired records and re-evaluates
  /// the state first, so a quiet fleet decays to ok.
  std::string json(std::uint64_t now_ns);

 private:
  struct Rec {
    Op op = Op::kMsg;
    std::uint64_t depart_ns = 0;
    std::uint64_t send_ns = 0;
    std::uint64_t recv_ns = 0;
  };
  struct Sec {  // one second of objective outcomes
    std::uint64_t sec = ~std::uint64_t{0};
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
  };
  static constexpr std::size_t kWheel = 512;  // covers long_window_s

  void wheel_record_locked(bool bad, std::uint64_t now_ns);
  Window window_locked(std::uint32_t window_s, std::uint64_t now_ns) const;
  SloState evaluate_locked(std::uint64_t now_ns);
  bool judge_locked(std::uint64_t lat_ns, std::uint64_t trace_id,
                    std::uint64_t now_ns);
  void sweep_locked(std::uint64_t now_ns);

  mutable std::mutex mu_;
  Config cfg_;
  FlightRecorder* flight_ = nullptr;
  std::unordered_map<std::uint64_t, Rec> ledger_;
  std::array<Sec, kWheel> wheel_{};
  SloState state_ = SloState::kOk;
  std::vector<Transition> transitions_;
  std::uint64_t tracked_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t transitions_total_ = 0;
  std::array<SloHistogram, kOps> e2e_;
  std::array<SloHistogram, kStages> stage_;
};

}  // namespace dityco::obs
