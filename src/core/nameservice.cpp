#include "core/nameservice.hpp"

#include <algorithm>

#include "core/wire.hpp"

namespace dityco::core {

namespace {
constexpr std::uint32_t kNsDstSite = 0xffffffffu;
// Releaser site id the name service uses in its RELs (it is not a site;
// the id only needs to be unique per releasing node).
constexpr std::uint32_t kNsReleaserSite = 0xfffffffeu;
}

void NameService::register_site(const std::string& name, std::uint32_t node,
                                std::uint32_t site) {
  sites_[name] = SiteInfo{node, site};
  ++mutations_;
}

std::optional<NameService::SiteInfo> NameService::lookup_site(
    const std::string& name) const {
  auto it = sites_.find(name);
  if (it == sites_.end()) return std::nullopt;
  return it->second;
}

void NameService::reply_to(const Waiter& w, Entry& e, bool ok,
                           std::vector<net::Packet>& replies) {
  // A credit-bearing binding hands half of its held balance to each
  // importer (share 0 once starved: the importer gets a weak handle).
  const bool gc = e.gc && ok;
  std::uint64_t share = 0;
  if (gc) {
    share = e.credit / 2;
    e.credit -= share;
    if (share > 0) ++mutations_;
  }
  Writer out;
  write_header(out, MsgType::kNsReply, w.site, w.trace_id, w.sampled, gc);
  out.u64(w.token);
  out.boolean(ok);
  write_netref(out, e.ref);
  out.str(e.type_sig);
  if (gc) out.u64(share);
  net::Packet p;
  p.src_node = home_node_;
  p.dst_node = w.node;
  p.bytes = out.take();
  replies.push_back(std::move(p));
  ++stats_.replies;
  if (lease_tracking_ && ok &&
      std::find(e.lease_holders.begin(), e.lease_holders.end(), w.node) ==
          e.lease_holders.end())
    e.lease_holders.push_back(w.node);
  if (share > 0 && w.node != e.ref.node) {
    // CREDIT-MOVED: the owner minted this credit against the name
    // service (unattributed); tell it the share now lives at the
    // importer's node so a failure write-off there can forgive it.
    net::Packet cm;
    cm.src_node = home_node_;
    cm.dst_node = e.ref.node;
    cm.bytes = make_credit_moved(e.ref, w.node, share);
    replies.push_back(std::move(cm));
    ++stats_.credit_moves;
  }
}

void NameService::release_entry(const Entry& e, std::vector<net::Packet>& out) {
  if (!e.gc || e.credit == 0) return;
  std::uint64_t& cum = released_cum_[e.ref];
  cum += e.credit;
  ++mutations_;
  net::Packet p;
  p.src_node = home_node_;
  p.dst_node = e.ref.node;
  p.bytes = make_release(e.ref, home_node_, kNsReleaserSite, cum);
  out.push_back(std::move(p));
  ++stats_.releases;
}

void NameService::push_invalidations(const Key& key, Entry& e,
                                     std::vector<net::Packet>& out) {
  if (e.lease_holders.empty()) return;
  const auto bytes = make_ns_invalidate(key.first, key.second);
  for (const std::uint32_t holder : e.lease_holders) {
    net::Packet p;
    p.src_node = home_node_;
    p.dst_node = holder;
    p.bytes = bytes;
    out.push_back(std::move(p));
    ++stats_.invalidations;
  }
  e.lease_holders.clear();
}

void NameService::register_id(const std::string& site, const std::string& name,
                              const vm::NetRef& ref,
                              const std::string& type_sig,
                              std::vector<net::Packet>& replies,
                              std::uint64_t credit) {
  ++stats_.exports;
  const Key key{site, name};
  std::vector<std::uint32_t> holders;
  if (auto old = ids_.find(key); old != ids_.end()) {
    release_entry(old->second, replies);  // overwritten binding drains
    // A rebind to a *different* referent stales every outstanding
    // lease; re-registering the same referent (replication re-sends)
    // leaves caches valid, so their holders carry over.
    if (old->second.ref != ref)
      push_invalidations(key, old->second, replies);
    else
      holders = std::move(old->second.lease_holders);
  }
  ids_[key] = Entry{ref, type_sig, credit, credit > 0, std::move(holders)};
  ++mutations_;
  auto it = waiting_.find(key);
  if (it == waiting_.end()) return;
  for (const Waiter& w : it->second)
    reply_to(w, ids_[key], w.kind == ref.kind, replies);
  parked_now_.fetch_sub(static_cast<std::int64_t>(it->second.size()),
                        std::memory_order_relaxed);
  waiting_.erase(it);
}

void NameService::handle_export(Reader& r, std::vector<net::Packet>& replies,
                                std::uint64_t /*trace_id*/, bool /*sampled*/,
                                bool gc, bool keep_credit) {
  const std::string site = r.str();
  const std::string name = r.str();
  const vm::NetRef ref = read_netref(r);
  const std::string sig = r.str();
  const std::uint64_t credit = gc ? r.u64() : 0;
  // Broadcast copies at non-origin replicas must not hold the credit:
  // exactly one holder per minted unit (the origin replica keeps it).
  register_id(site, name, ref, sig, replies, keep_credit ? credit : 0);
}

void NameService::handle_unregister(Reader& r,
                                    std::vector<net::Packet>& replies) {
  ++stats_.unregisters;
  const std::string site = r.str();
  const std::string name = r.str();
  auto it = ids_.find({site, name});
  if (it == ids_.end()) return;  // already dropped (duplicate unregister)
  release_entry(it->second, replies);
  push_invalidations({site, name}, it->second, replies);
  ids_.erase(it);
  ++mutations_;
}

void NameService::handle_lookup(Reader& r, std::vector<net::Packet>& replies,
                                std::uint64_t trace_id, bool sampled) {
  ++stats_.lookups;
  const std::string site = r.str();
  const std::string name = r.str();
  Waiter w;
  w.kind = static_cast<vm::NetRef::Kind>(r.u8());
  w.node = r.u32();
  w.site = r.u32();
  w.token = r.u64();
  w.trace_id = trace_id;
  w.sampled = sampled;
  const Key key{site, name};
  auto it = ids_.find(key);
  if (it != ids_.end()) {
    reply_to(w, it->second, w.kind == it->second.ref.kind, replies);
    return;
  }
  // Not exported yet: park until it is (blocking import).
  waiting_[key].push_back(w);
  ++stats_.parked_total;
  ++mutations_;
  parked_now_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<vm::NetRef> NameService::lookup_id(const std::string& site,
                                                 const std::string& name) const {
  auto it = ids_.find({site, name});
  if (it == ids_.end()) return std::nullopt;
  return it->second.ref;
}

std::size_t NameService::parked() const {
  std::size_t n = 0;
  for (const auto& [k, v] : waiting_) n += v.size();
  return n;
}

std::size_t NameService::evict_node(std::uint32_t node,
                                    std::vector<net::Packet>* out) {
  std::size_t dropped = 0;
  // SiteTable: the dead node's sites are gone; lookups must stop
  // resolving to them.
  for (auto it = sites_.begin(); it != sites_.end();) {
    if (it->second.node == node) {
      it = sites_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  // IdTable: bindings whose referent lived on the dead node are dead
  // references. The credit the service holds for them is NOT released —
  // there is no owner left to receive a REL; survivors write the
  // balance off through their own PEER-DOWN handling.
  for (auto it = ids_.begin(); it != ids_.end();) {
    if (it->second.ref.node == node) {
      if (out != nullptr) push_invalidations(it->first, it->second, *out);
      it = ids_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  // Parked lookups from the dead node would pin their keys forever (the
  // requester can never consume a reply).
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    auto& ws = it->second;
    const std::size_t before = ws.size();
    ws.erase(std::remove_if(ws.begin(), ws.end(),
                            [node](const Waiter& w) { return w.node == node; }),
             ws.end());
    const std::size_t removed = before - ws.size();
    if (removed > 0) {
      dropped += removed;
      parked_now_.fetch_sub(static_cast<std::int64_t>(removed),
                            std::memory_order_relaxed);
    }
    if (ws.empty())
      it = waiting_.erase(it);
    else
      ++it;
  }
  if (dropped > 0) {
    stats_.evictions += dropped;
    ++mutations_;
  }
  return dropped;
}

std::vector<NameService::HandoffRecord> NameService::handoff_records() const {
  std::vector<HandoffRecord> out;
  out.reserve(ids_.size());
  for (const auto& [key, e] : ids_)
    out.push_back({key.first, key.second, e.ref, e.type_sig});
  return out;
}

NameService::Snapshot NameService::snapshot() const {
  Snapshot s;
  s.home_node = home_node_;
  s.sites.reserve(sites_.size());
  for (const auto& [name, info] : sites_)
    s.sites.push_back({name, info.node, info.site});
  s.ids.reserve(ids_.size());
  for (const auto& [key, e] : ids_) {
    Snapshot::IdRow row;
    row.site = key.first;
    row.name = key.second;
    row.ref = e.ref;
    row.type_sig = e.type_sig;
    row.credit = e.credit;
    row.gc = e.gc;
    if (auto it = waiting_.find(key); it != waiting_.end())
      row.waiters = it->second.size();
    s.ids.push_back(std::move(row));
  }
  for (const auto& [ref, cum] : released_cum_)
    if (cum > 0) s.releases.push_back({ref, cum});
  s.parked = parked();
  return s;
}

void NameService::publish_snapshot() {
  if (mutations_ == published_mutations_) return;
  published_mutations_ = mutations_;
  auto snap = std::make_shared<const Snapshot>(snapshot());
  std::lock_guard<std::mutex> lk(snap_mu_);
  snap_ = std::move(snap);
}

std::shared_ptr<const NameService::Snapshot> NameService::last_snapshot()
    const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return snap_;
}

void NameService::register_metrics(obs::Registry& registry,
                                   const std::string& label) {
  metrics_reg_ = registry.add_collector([this, label](obs::Collector& c) {
    const std::string l = "{ns=\"" + label + "\"}";
    c.counter("ns_exports" + l, stats_.exports);
    c.counter("ns_lookups" + l, stats_.lookups);
    c.counter("ns_replies" + l, stats_.replies);
    c.counter("ns_parked_total" + l, stats_.parked_total);
    c.counter("ns_unregisters" + l, stats_.unregisters);
    c.counter("ns_releases" + l, stats_.releases);
    c.counter("ns_credit_moves" + l, stats_.credit_moves);
    c.counter("ns_evictions" + l, stats_.evictions);
    c.counter("ns_invalidations_pushed" + l, stats_.invalidations);
    c.gauge("ns_parked" + l, parked_now_.load(std::memory_order_relaxed));
  });
}

std::vector<std::uint8_t> NameService::make_export(
    std::uint32_t /*dst_site_unused*/, const std::string& site,
    const std::string& name, const vm::NetRef& ref,
    const std::string& type_sig, std::uint64_t trace_id, bool sampled,
    std::uint64_t credit) {
  Writer w;
  write_header(w, MsgType::kNsExport, kNsDstSite, trace_id, sampled,
               /*gc=*/credit > 0);
  w.str(site);
  w.str(name);
  write_netref(w, ref);
  w.str(type_sig);
  if (credit > 0) w.u64(credit);
  return w.take();
}

std::vector<std::uint8_t> NameService::make_unregister(
    const std::string& site, const std::string& name) {
  Writer w;
  write_header(w, MsgType::kNsUnregister, kNsDstSite);
  w.str(site);
  w.str(name);
  return w.take();
}

std::vector<std::uint8_t> NameService::make_lookup(
    const std::string& site, const std::string& name, vm::NetRef::Kind kind,
    std::uint32_t req_node, std::uint32_t req_site, std::uint64_t token,
    std::uint64_t trace_id, bool sampled) {
  Writer w;
  write_header(w, MsgType::kNsLookup, kNsDstSite, trace_id, sampled);
  w.str(site);
  w.str(name);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(req_node);
  w.u32(req_site);
  w.u64(token);
  return w.take();
}

}  // namespace dityco::core
