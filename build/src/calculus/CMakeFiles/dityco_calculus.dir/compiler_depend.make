# Empty compiler generated dependencies file for dityco_calculus.
# This may be replaced when dependencies are built.
