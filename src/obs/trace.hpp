// Causal event tracing (observability layer, part 2 of 3).
//
// Each site (and each node daemon) owns a TraceRing: a fixed-capacity,
// single-producer ring buffer of typed events stamped with a
// steady_clock timestamp, the recording site, and a *trace id*. Trace
// ids are allocated at the departure side of a mobility operation
// (SHIPM/SHIPO/FETCH/NS traffic) and propagated through the wire format
// (core/wire.hpp, v2 header), so one logical operation can be followed
// across sites and nodes: departure, daemon hops, service handling and
// arrival all carry the same id. obs/export.hpp merges the rings into a
// Chrome trace-event / Perfetto timeline with flow arrows along each id.
//
// Rings are default-off: a disabled ring's record() is a single branch,
// so tracing costs nothing unless enabled. record() must only be called
// by the ring's owning thread (the site executor or the node daemon);
// snapshot() is intended for after quiescence — concurrent snapshots see
// a consistent prefix but may tear the slot currently being written.
#pragma once

#include <cstdint>
#include <atomic>
#include <vector>

namespace dityco::obs {

enum class EventType : std::uint8_t {
  kComm = 1,      // local COMM reduction (message met object)
  kInst,          // local INST reduction (class instantiation)
  kShipMsgOut,    // SHIPM departure            arg = packet bytes
  kShipMsgIn,     // SHIPM arrival              arg = packet bytes
  kShipObjOut,    // SHIPO departure            arg = packet bytes
  kShipObjIn,     // SHIPO arrival              arg = packet bytes
  kFetchReq,      // FETCH request issued       arg = packet bytes
  kFetchHit,      // dynamic-link cache hit (no wire traffic)
  kFetchServed,   // FETCH request answered     arg = reply bytes
  kFetchReply,    // FETCH reply linked         arg = round-trip ns
  kNsExport,      // name-service export (site issue / node service)
  kNsLookup,      // name-service lookup (site issue / node service)
  kNsReply,       // name-service reply arrival
  kPacketSend,    // daemon moved a packet out  arg = bytes
  kPacketRecv,    // daemon received a packet   arg = bytes
  kSliceBegin,    // run-slice started
  kSliceEnd,      // run-slice finished         arg = instructions executed
};

const char* event_name(EventType t);

/// Sentinel "site" id used by a node daemon's ring (a daemon is not a
/// site; exporters render it as its own thread line).
constexpr std::uint32_t kDaemonSite = 0xffffffffu;

struct TraceEvent {
  EventType type = EventType::kComm;
  std::uint32_t node = 0;
  std::uint32_t site = 0;
  std::uint64_t trace_id = 0;  // 0 = purely local, no cross-site flow
  std::uint64_t arg = 0;
  std::uint64_t ts_ns = 0;     // steady_clock, process-wide comparable
};

/// Fresh non-zero trace id (process-global).
std::uint64_t next_trace_id();

/// steady_clock now, in nanoseconds.
std::uint64_t trace_now_ns();

class TraceRing {
 public:
  TraceRing() = default;
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Allocate `capacity` slots (rounded up to a power of two) and start
  /// recording. The origin (node, site) stamps every event.
  void enable(std::size_t capacity, std::uint32_t node, std::uint32_t site);
  bool enabled() const { return mask_ != 0; }

  void record(EventType t, std::uint64_t trace_id, std::uint64_t arg = 0) {
    if (mask_ == 0) return;
    record_at(trace_now_ns(), t, trace_id, arg);
  }
  /// Record with a caller-captured timestamp (e.g. a slice's begin time).
  void record_at(std::uint64_t ts_ns, EventType t, std::uint64_t trace_id,
                 std::uint64_t arg = 0);

  /// Events still in the ring, oldest first. Non-destructive.
  std::vector<TraceEvent> snapshot() const;
  /// Total events ever recorded (snapshot() returns at most `capacity`
  /// of them; the difference is how many the ring overwrote).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped() const {
    const std::uint64_t h = recorded();
    return h > slots_.size() ? h - slots_.size() : 0;
  }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_ = 0;  // capacity - 1; 0 = disabled
  std::uint32_t node_ = 0, site_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace dityco::obs
