# Empty dependencies file for dityco_support.
# This may be replaced when dependencies are built.
