// TyCOmon: the monitoring daemon's scrape server (tentpole of the live
// telemetry plane).
//
// A deliberately small, dependency-free HTTP/1.1 server shaped for
// production scraping: one acceptor thread feeds a fixed pool of worker
// threads (so one slow or stalled scraper cannot block /healthz for the
// others), each worker answers GETs from a fixed route table over a
// keep-alive connection (HTTP/1.1 persistent by default, HTTP/1.0 and
// `Connection: close` honoured, a per-connection request cap and a 2s
// idle timeout bound resource use). No TLS, no request bodies.
//
// Binding defaults to 127.0.0.1; an explicit non-loopback bind address
// (e.g. "0.0.0.0" for off-host Prometheus) is opt-in and prints a
// plain-text warning to stderr — the endpoints expose program-level
// telemetry with no authentication.
//
// Handlers run on worker threads, so anything they touch must be safe
// to read while the network executes (see obs::Registry's live_safe
// collectors and TraceRing::snapshot()) AND safe to run from multiple
// workers at once.
//
// core::Network wires a MonitorServer to /metrics, /metrics.json,
// /trace, /flight, /profile and /healthz via Network::start_monitor().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dityco::obs {

class MonitorServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  /// Invoked on a worker thread for each matching GET; must be safe to
  /// call from several workers concurrently.
  using Handler = std::function<Response()>;

  MonitorServer() = default;
  ~MonitorServer() { stop(); }
  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Register a handler for an exact path (query strings are stripped
  /// before matching). Call before start().
  void route(std::string path, Handler h);

  /// Bind `bind_addr`:`port` (0 picks an ephemeral port) and serve on
  /// background threads. Returns the bound port, or 0 on failure.
  /// Non-loopback addresses print a security warning to stderr.
  std::uint16_t start(std::uint16_t port,
                      const std::string& bind_addr = "127.0.0.1",
                      int workers = 4);
  /// Stop serving and join all threads. Idempotent.
  void stop();

  bool running() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  /// Requests answered so far (any status).
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Connections accepted so far.
  std::uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  // Keep-alive bounds: a connection is closed after this many requests,
  // and the accept queue sheds load beyond this many waiting sockets.
  static constexpr int kMaxRequestsPerConn = 1000;
  static constexpr std::size_t kMaxPending = 128;

  void accept_loop();
  void worker_loop();
  void handle_connection(int client);

  std::map<std::string, Handler> routes_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex q_mu_;
  std::condition_variable q_cv_;
  std::deque<int> pending_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> connections_{0};
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace dityco::obs
