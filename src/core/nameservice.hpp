// The Network Name Service (paper, section 5 "NETWORKS").
//
// Two tables, exactly as in the paper:
//   SiteTable: SiteName -> (SiteId, IpAddress)         [here: (node, site)]
//   IdTable:   SiteName x IdName -> HeapId             [plus kind + type]
// The service is centralised and reachable only through daemon packets
// (it is hosted by one node's TyCOd); distribution of the service itself
// is listed as future work in the paper.
//
// Imports of identifiers that have not been exported yet are *parked*
// here and answered as soon as the export arrives — this is what makes
// `import` a blocking construct without busy-waiting.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "support/bytes.hpp"
#include "vm/value.hpp"

namespace dityco::core {

class NameService {
 public:
  struct SiteInfo {
    std::uint32_t node = 0;
    std::uint32_t site = 0;
  };

  // SoloCounter: the service runs on one thread (a node daemon or the
  // sequential driver) but TyCOmon scrapes these live from its own.
  struct Stats {
    obs::SoloCounter exports;
    obs::SoloCounter lookups;
    obs::SoloCounter replies;
    obs::SoloCounter parked_total;
    obs::SoloCounter unregisters;  // IdTable bindings dropped
    obs::SoloCounter releases;     // REL frames sent for held credit
    obs::SoloCounter credit_moves; // CREDIT-MOVED notices sent to owners
    obs::SoloCounter evictions;    // entries dropped for dead nodes
    obs::SoloCounter invalidations; // NS-INVALIDATE frames pushed to leasers
  };

  explicit NameService(std::uint32_t home_node = 0) : home_node_(home_node) {}

  std::uint32_t home_node() const { return home_node_; }

  // -- SiteTable (populated at site creation; "all sites know its
  //    location in advance") --
  void register_site(const std::string& name, std::uint32_t node,
                     std::uint32_t site);
  std::optional<SiteInfo> lookup_site(const std::string& name) const;

  // -- IdTable, via packets --

  /// Handle a kNsExport payload (Reader positioned after the header).
  /// `trace_id` is the causal id carried by the request packet; replies
  /// triggered by this export reuse the *waiter's* lookup id (and its
  /// sampling decision). `gc` is the packet header's credit flag; with
  /// `keep_credit` false (a broadcast copy at a non-origin replica) the
  /// carried credit is ignored — the origin replica holds those units.
  void handle_export(Reader& r, std::vector<net::Packet>& replies,
                     std::uint64_t trace_id = 0, bool sampled = true,
                     bool gc = false, bool keep_credit = true);
  /// Handle a kNsLookup payload; replies immediately if the identifier is
  /// known, parks the request otherwise. An immediate or deferred reply
  /// carries `trace_id` (with its `sampled` bit), closing the lookup's
  /// causal chain.
  void handle_lookup(Reader& r, std::vector<net::Packet>& replies,
                     std::uint64_t trace_id = 0, bool sampled = true);

  /// Handle a kNsUnregister payload: drop the binding and REL any credit
  /// the service still holds for it back to the owner.
  void handle_unregister(Reader& r, std::vector<net::Packet>& replies);

  /// Direct registration (used by tests and the TyCOsh bootstrap). With
  /// credit > 0 the service becomes a credit holder for the entry;
  /// overwriting a credit-bearing binding releases its balance.
  void register_id(const std::string& site, const std::string& name,
                   const vm::NetRef& ref, const std::string& type_sig,
                   std::vector<net::Packet>& replies,
                   std::uint64_t credit = 0);

  std::optional<vm::NetRef> lookup_id(const std::string& site,
                                      const std::string& name) const;

  std::size_t parked() const;
  /// IdTable size (leak checks: zero after the final GC epoch).
  std::size_t id_count() const { return ids_.size(); }

  /// Failure cleanup: drop every registration owned by a dead node —
  /// its SiteTable rows, IdTable bindings whose referent lived there
  /// (held credit is written off by the owner's survivors, not RELed:
  /// the owner no longer exists to receive one), and parked lookups
  /// from it. With `out` set, lease invalidations for the dropped
  /// bindings are pushed there. Returns entries dropped.
  std::size_t evict_node(std::uint32_t node,
                         std::vector<net::Packet>* out = nullptr);
  const Stats& stats() const { return stats_; }

  /// With lease tracking on, replies record which nodes hold a lease on
  /// each binding, and rebind / unregister / evict push kNsInvalidate
  /// frames to them.
  void set_lease_tracking(bool on) { lease_tracking_ = on; }

  /// Everything a shard primary needs to re-replicate its slice of the
  /// directory after a failover (the copies travel as weak kNsExport
  /// frames — the credit stays on this instance).
  struct HandoffRecord {
    std::string site, name;
    vm::NetRef ref;
    std::string type_sig;
  };
  std::vector<HandoffRecord> handoff_records() const;

  /// Publish this service's counters into `registry` under `ns_*` names,
  /// labelled {ns="<label>"} (central service vs. per-node replicas).
  void register_metrics(obs::Registry& registry, const std::string& label);

  /// Consistent copy of both tables with ownership and credit — the
  /// name-service half of the audit plane (TyCOmon /names).
  struct Snapshot {
    struct SiteRow {
      std::string name;
      std::uint32_t node = 0, site = 0;
    };
    struct IdRow {
      std::string site, name;
      vm::NetRef ref;
      std::string type_sig;
      std::uint64_t credit = 0;  // GC credit the service holds
      bool gc = false;
      std::size_t waiters = 0;   // parked lookups for this key
    };
    struct Rel {
      vm::NetRef ref;
      std::uint64_t cum = 0;     // service-side cumulative REL ledger
    };
    std::uint32_t home_node = 0;
    std::vector<SiteRow> sites;
    std::vector<IdRow> ids;
    std::vector<Rel> releases;
    std::size_t parked = 0;
  };
  /// Build a fresh snapshot. Owner thread only (the daemon routing NS
  /// packets), or any thread while the network is at rest.
  Snapshot snapshot() const;
  /// Owner thread: publish a snapshot for concurrent readers. Cheap when
  /// nothing changed since the last publish (a dirty counter gates the
  /// rebuild), so the daemon can call it on every idle transition.
  void publish_snapshot();
  /// Last published snapshot (any thread; null until first publish).
  std::shared_ptr<const Snapshot> last_snapshot() const;

  // -- payload builders (used by sites) --
  static std::vector<std::uint8_t> make_export(
      std::uint32_t dst_site_unused, const std::string& site,
      const std::string& name, const vm::NetRef& ref,
      const std::string& type_sig, std::uint64_t trace_id = 0,
      bool sampled = true, std::uint64_t credit = 0);
  static std::vector<std::uint8_t> make_unregister(const std::string& site,
                                                   const std::string& name);
  static std::vector<std::uint8_t> make_lookup(
      const std::string& site, const std::string& name, vm::NetRef::Kind kind,
      std::uint32_t req_node, std::uint32_t req_site, std::uint64_t token,
      std::uint64_t trace_id = 0, bool sampled = true);

 private:
  struct Entry {
    vm::NetRef ref;
    std::string type_sig;
    std::uint64_t credit = 0;  // GC credit the service holds for the ref
    bool gc = false;           // binding participates in distributed GC
    // Nodes that imported this binding while lease caching was on; the
    // push set for invalidations (cleared once pushed).
    std::vector<std::uint32_t> lease_holders;
  };
  struct Waiter {
    std::uint32_t node = 0;
    std::uint32_t site = 0;
    std::uint64_t token = 0;
    vm::NetRef::Kind kind = vm::NetRef::Kind::kChan;
    std::uint64_t trace_id = 0;  // causal id of the originating lookup
    bool sampled = true;         // its sampling decision, for the reply
  };
  using Key = std::pair<std::string, std::string>;

  void reply_to(const Waiter& w, Entry& e, bool ok,
                std::vector<net::Packet>& replies);
  /// REL the entry's remaining held credit back to its owner.
  void release_entry(const Entry& e, std::vector<net::Packet>& out);
  /// Push kNsInvalidate to every lease holder of `e` and clear the set.
  void push_invalidations(const Key& key, Entry& e,
                          std::vector<net::Packet>& out);

  std::uint32_t home_node_;
  bool lease_tracking_ = false;
  std::map<std::string, SiteInfo> sites_;
  std::map<Key, Entry> ids_;
  std::map<Key, std::vector<Waiter>> waiting_;
  // Cumulative released credit per reference (the service's REL ledger;
  // never pruned — cumulative totals must only grow).
  std::map<vm::NetRef, std::uint64_t> released_cum_;
  Stats stats_;
  // parked() walks waiting_, which races with the daemon; this mirror
  // gauge is what a live scrape reads instead.
  std::atomic<std::int64_t> parked_now_{0};
  obs::Registry::Registration metrics_reg_;
  // Table-mutation count (owner thread) vs. the count at the last
  // publish: publish_snapshot() rebuilds only when they differ.
  std::uint64_t mutations_ = 0;
  std::uint64_t published_mutations_ = ~0ull;
  mutable std::mutex snap_mu_;
  std::shared_ptr<const Snapshot> snap_;
};

}  // namespace dityco::core
