// Runtime values of the TyCO virtual machine. A value is a small tagged
// word: builtin data (int/bool/float), an index into the site's string
// heap, a local heap reference (channel), a class closure, or a *network
// reference* — the paper's hardware-independent triple
// (HeapId, SiteId, IpAddress) pointing into another site's heap.
#pragma once

#include <cstdint>
#include <string>

namespace dityco::vm {

/// Network reference (section 5, "Local vs Network References").
/// `node` stands in for the IP address; `site` identifies the site within
/// the node; `heap_id` is the export-table key in the owning site. `kind`
/// distinguishes references to names (channels) from references to class
/// code (fetchable definition blocks).
struct NetRef {
  enum class Kind : std::uint8_t { kChan = 0, kClass = 1 };
  Kind kind = Kind::kChan;
  std::uint32_t node = 0;
  std::uint32_t site = 0;
  std::uint64_t heap_id = 0;

  bool operator==(const NetRef&) const = default;

  /// True when the reference points into the heap of the given site —
  /// i.e. that site is the owner holding the export-table entry (and,
  /// under distributed GC, the credit ledger) for this reference.
  bool owned_by(std::uint32_t n, std::uint32_t s) const {
    return node == n && site == s;
  }
};

/// Credit minted per marshalling of an owned reference (distributed GC,
/// see DESIGN.md §GC). Large enough that halving on every forward hop
/// keeps handles strong through 32 generations of splits.
inline constexpr std::uint64_t kMintCredit = 1ull << 32;

struct Value {
  enum class Tag : std::uint8_t {
    kInt,
    kBool,
    kFloat,
    kStr,     // index into the site string heap
    kChan,    // index into the site channel heap
    kClass,   // index into the site class-closure table
    kNetRef,  // index into the site network-reference table
  };

  Tag tag = Tag::kInt;
  union {
    std::int64_t i;
    double f;
    bool b;
    std::uint32_t idx;
  };

  static Value make_int(std::int64_t v) {
    Value x;
    x.tag = Tag::kInt;
    x.i = v;
    return x;
  }
  static Value make_bool(bool v) {
    Value x;
    x.tag = Tag::kBool;
    x.b = v;
    return x;
  }
  static Value make_float(double v) {
    Value x;
    x.tag = Tag::kFloat;
    x.f = v;
    return x;
  }
  static Value make_str(std::uint32_t heap_idx) {
    Value x;
    x.tag = Tag::kStr;
    x.idx = heap_idx;
    return x;
  }
  static Value make_chan(std::uint32_t heap_idx) {
    Value x;
    x.tag = Tag::kChan;
    x.idx = heap_idx;
    return x;
  }
  static Value make_class(std::uint32_t idx) {
    Value x;
    x.tag = Tag::kClass;
    x.idx = idx;
    return x;
  }
  static Value make_netref(std::uint32_t idx) {
    Value x;
    x.tag = Tag::kNetRef;
    x.idx = idx;
    return x;
  }
};

const char* tag_name(Value::Tag t);

}  // namespace dityco::vm
