// Observability layer: metrics registry semantics, trace-ring behaviour,
// trace-id propagation through the wire format, and end-to-end causal
// tracing on a 2-node simulated cluster.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "calculus/reducer.hpp"
#include "compiler/parser.hpp"
#include "core/network.hpp"
#include "core/node.hpp"
#include "core/wire.hpp"
#include "net/transport.hpp"
#include "obs/flight.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dityco {
namespace {

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(Metrics, CounterSemantics) {
  obs::Counter c;
  ++c;
  c += 4;
  c.inc();
  EXPECT_EQ(c, 6u);
  obs::Counter copy = c;  // a copy snapshots the value
  ++c;
  EXPECT_EQ(copy, 6u);
  EXPECT_EQ(c, 7u);
}

TEST(Metrics, GaugeSemantics) {
  obs::Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Metrics, HistogramBuckets) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(5.0);    // <= 10
  h.observe(50.0);   // <= 100
  h.observe(500.0);  // +inf
  h.observe(10.0);   // boundary lands in its own bucket (inclusive)
  auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.total, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 565.5);
}

TEST(Metrics, RegistryOwnedAndCollected) {
  obs::Registry reg;
  ++reg.counter("owned_total");
  reg.gauge("owned_depth").set(3);
  std::uint64_t live = 42;
  auto token = reg.add_collector([&](obs::Collector& c) {
    c.counter("collected_total", live);
  });
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("owned_total"), 1u);
  EXPECT_EQ(snap.counters.at("collected_total"), 42u);
  EXPECT_EQ(snap.gauges.at("owned_depth"), 3);

  // RAII: dropping the token removes the collector.
  token.reset();
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters.count("collected_total"), 0u);

  const std::string text = reg.expose_text();
  EXPECT_NE(text.find("owned_total 1"), std::string::npos);
  const std::string json = reg.expose_json();
  EXPECT_NE(json.find("\"owned_total\":1"), std::string::npos);
}

TEST(Metrics, SameNameCollectorsSum) {
  obs::Registry reg;
  auto t1 = reg.add_collector(
      [](obs::Collector& c) { c.counter("shared_total", 2); });
  auto t2 = reg.add_collector(
      [](obs::Collector& c) { c.counter("shared_total", 5); });
  EXPECT_EQ(reg.snapshot().counters.at("shared_total"), 7u);
}

TEST(Metrics, SoloCounterSingleWriterSemantics) {
  obs::SoloCounter c;
  ++c;
  c += 4;
  c.inc();
  EXPECT_EQ(c, 6u);
  obs::SoloCounter copy = c;
  ++c;
  EXPECT_EQ(copy, 6u);
  EXPECT_EQ(c, 7u);
}

TEST(Metrics, LiveOnlySkipsNonLiveSafeCollectors) {
  obs::Registry reg;
  auto live = reg.add_collector(
      [](obs::Collector& c) { c.counter("live_total", 1); });
  auto rest = reg.add_collector(
      [](obs::Collector& c) { c.counter("rest_total", 1); },
      /*live_safe=*/false);
  auto snap = reg.snapshot(/*live_only=*/true);
  EXPECT_EQ(snap.counters.count("live_total"), 1u);
  EXPECT_EQ(snap.counters.count("rest_total"), 0u)
      << "non-live-safe collectors must not run during a live scrape";
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters.count("rest_total"), 1u);
  EXPECT_EQ(reg.expose_text(/*live_only=*/true).find("rest_total"),
            std::string::npos);
  EXPECT_NE(reg.expose_text().find("rest_total"), std::string::npos);
}

TEST(Metrics, HistogramExposition) {
  obs::Registry reg;
  reg.histogram("lat_us", {1.0, 10.0}).observe(3.0);
  const std::string text = reg.expose_text();
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------

TEST(TraceRing, DisabledRecordIsNoop) {
  obs::TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  ring.record(obs::EventType::kComm, 1);  // must not crash
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.recorded(), 0u);
}

TEST(TraceRing, WrapsKeepingNewest) {
  obs::TraceRing ring;
  ring.enable(8, /*node=*/1, /*site=*/2);
  for (std::uint64_t i = 0; i < 20; ++i)
    ring.record(obs::EventType::kComm, /*trace_id=*/0, /*arg=*/i);
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 12u + i) << "oldest-first, newest retained";
    EXPECT_EQ(events[i].node, 1u);
    EXPECT_EQ(events[i].site, 2u);
  }
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  obs::TraceRing ring;
  ring.enable(5, 0, 0);
  for (int i = 0; i < 8; ++i) ring.record(obs::EventType::kInst, 0);
  EXPECT_EQ(ring.snapshot().size(), 8u) << "5 rounds up to 8 slots";
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, FreshTraceIdsAreUniqueAndNonZero) {
  const std::uint64_t a = obs::next_trace_id();
  const std::uint64_t b = obs::next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------

TEST(Sampling, DeterministicAndRoughlyOneInN) {
  int kept = 0;
  for (std::uint64_t id = 1; id <= 4096; ++id) {
    const bool a = obs::trace_id_sampled(id, 8, 42);
    EXPECT_EQ(a, obs::trace_id_sampled(id, 8, 42))
        << "same (id, every, seed) must always agree";
    kept += a ? 1 : 0;
  }
  // 1-in-8 of 4096 ids is 512 in expectation; allow a generous band.
  EXPECT_GT(kept, 256);
  EXPECT_LT(kept, 1024);
  // every <= 1 keeps everything.
  EXPECT_TRUE(obs::trace_id_sampled(7, 1, 0));
  EXPECT_TRUE(obs::trace_id_sampled(7, 0, 9));
  // The seed reshuffles the kept set.
  bool differs = false;
  for (std::uint64_t id = 1; id <= 256 && !differs; ++id)
    differs = obs::trace_id_sampled(id, 8, 1) !=
              obs::trace_id_sampled(id, 8, 2);
  EXPECT_TRUE(differs);
}

TEST(Sampling, RingCountsSampledAndUnsampledDecisions) {
  obs::TraceRing ring;
  ring.enable(16, 0, 0);
  ring.set_sampling(4, 7);
  std::uint64_t kept = 0;
  for (int i = 0; i < 200; ++i)
    if (ring.sample(obs::next_trace_id())) ++kept;
  EXPECT_EQ(ring.sampled(), kept);
  EXPECT_EQ(ring.unsampled(), 200u - kept);
  EXPECT_GT(ring.unsampled(), 0u) << "1-in-4 must skip some of 200 ids";
  EXPECT_GT(ring.sampled(), 0u);
}

// ---------------------------------------------------------------------
// Wire format: v2 header with trace ids, v1 backward compatibility
// ---------------------------------------------------------------------

TEST(WireTrace, HeaderRoundTripWithTraceId) {
  Writer w;
  core::write_header(w, core::MsgType::kShipObj, 7, 0xdeadbeefull);
  w.u64(123);
  auto bytes = w.take();
  net::Packet p;
  p.bytes = bytes;
  // Routing helpers must see through the trace flag.
  EXPECT_EQ(core::packet_dst_site(p), 7u);
  EXPECT_EQ(core::packet_type(bytes), core::MsgType::kShipObj);
  EXPECT_EQ(core::packet_trace_id(bytes), 0xdeadbeefull);

  Reader r(bytes);
  const core::PacketHeader h = core::read_header(r);
  EXPECT_EQ(h.type, core::MsgType::kShipObj);
  EXPECT_EQ(h.dst_site, 7u);
  EXPECT_EQ(h.trace_id, 0xdeadbeefull);
  EXPECT_EQ(r.u64(), 123u) << "payload follows the header";
}

TEST(WireTrace, UntracedHeaderIsByteIdenticalToV1) {
  Writer v2;
  core::write_header(v2, core::MsgType::kShipMsg, 3, /*trace_id=*/0);
  Writer v1;
  v1.u8(static_cast<std::uint8_t>(core::MsgType::kShipMsg));
  v1.u32(3);
  EXPECT_EQ(v2.take(), v1.take());
}

TEST(WireTrace, OldFormatPacketStillDecodes) {
  // A v1 frame written by hand (no flag, no trace id).
  Writer w;
  w.u8(static_cast<std::uint8_t>(core::MsgType::kFetchReq));
  w.u32(9);
  auto bytes = w.take();
  Reader r(bytes);
  const core::PacketHeader h = core::read_header(r);
  EXPECT_EQ(h.type, core::MsgType::kFetchReq);
  EXPECT_EQ(h.dst_site, 9u);
  EXPECT_EQ(h.trace_id, 0u);
  EXPECT_EQ(core::packet_trace_id(bytes), 0u);
}

TEST(WireTrace, SampledBitRoundTrip) {
  // Sampled v2 frame (the default).
  Writer ws;
  core::write_header(ws, core::MsgType::kShipMsg, 4, 0xabcdull,
                     /*sampled=*/true);
  auto sb = ws.take();
  EXPECT_TRUE(core::packet_sampled(sb));
  Reader rs(sb);
  const core::PacketHeader hs = core::read_header(rs);
  EXPECT_TRUE(hs.sampled);
  EXPECT_EQ(hs.trace_id, 0xabcdull);

  // Unsampled v2 frame: the id is still carried (causality survives) but
  // the bit tells every hop to skip recording.
  Writer wu;
  core::write_header(wu, core::MsgType::kShipMsg, 4, 0xabcdull,
                     /*sampled=*/false);
  auto ub = wu.take();
  EXPECT_FALSE(core::packet_sampled(ub));
  EXPECT_EQ(core::packet_type(ub), core::MsgType::kShipMsg)
      << "routing helpers see through both flag bits";
  EXPECT_EQ(core::packet_trace_id(ub), 0xabcdull);
  Reader ru(ub);
  const core::PacketHeader hu = core::read_header(ru);
  EXPECT_FALSE(hu.sampled);
  EXPECT_EQ(hu.trace_id, 0xabcdull);
  EXPECT_EQ(hu.dst_site, 4u);

  // v1 frames carry no decision; they decode as sampled so an untraced
  // peer never suppresses recording.
  Writer v1;
  v1.u8(static_cast<std::uint8_t>(core::MsgType::kShipMsg));
  v1.u32(4);
  auto vb = v1.take();
  EXPECT_TRUE(core::packet_sampled(vb));
  Reader rv(vb);
  EXPECT_TRUE(core::read_header(rv).sampled);
}

TEST(WireTrace, UnknownTypeRejected) {
  Writer w;
  w.u8(0x7f);  // not a MsgType even with the flag masked off
  w.u32(0);
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_THROW(core::read_header(r), DecodeError);
}

// ---------------------------------------------------------------------
// End-to-end: causal tracing across a 2-node simulated cluster
// ---------------------------------------------------------------------

core::Network::Config sim_cfg() {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kSim;
  return cfg;
}

core::Network two_node_net(core::Network::Config cfg) {
  core::Network net(cfg);
  net.add_node();
  net.add_site(0, "server");
  net.add_node();
  net.add_site(1, "client");
  return net;
}

/// All events of `type` across every collected thread trace.
std::vector<obs::TraceEvent> events_of(
    const std::vector<obs::ThreadTrace>& traces, obs::EventType type) {
  std::vector<obs::TraceEvent> out;
  for (const auto& t : traces)
    for (const auto& e : t.events)
      if (e.type == type) out.push_back(e);
  return out;
}

/// Assert every departure of `out_t` has an arrival of `in_t` with the
/// same non-zero trace id on a different site.
void expect_matched(const std::vector<obs::ThreadTrace>& traces,
                    obs::EventType out_t, obs::EventType in_t) {
  const auto outs = events_of(traces, out_t);
  const auto ins = events_of(traces, in_t);
  ASSERT_FALSE(outs.empty()) << obs::event_name(out_t);
  for (const auto& o : outs) {
    EXPECT_NE(o.trace_id, 0u);
    bool matched = false;
    for (const auto& i : ins)
      if (i.trace_id == o.trace_id &&
          (i.node != o.node || i.site != o.site))
        matched = true;
    EXPECT_TRUE(matched) << obs::event_name(out_t) << " trace id "
                         << o.trace_id << " has no matching "
                         << obs::event_name(in_t);
  }
}

TEST(EndToEnd, ShipMsgDeparturesMatchArrivals) {
  auto net = two_node_net(sim_cfg());
  net.enable_tracing(1 << 12);
  net.submit_source("server",
                    "export new svc in "
                    "def Serve(self) = self?{ val(x, r) = (r![x + 1] | "
                    "Serve[self]) } in Serve[svc]");
  net.submit_source("client",
                    "import svc from server in "
                    "def Loop(i, acc) = if i == 0 then print[\"done\", acc] "
                    "else let v = svc![acc] in Loop[i - 1, v] "
                    "in Loop[4, 0]");
  auto res = net.run();
  ASSERT_TRUE(res.quiescent) << "run must quiesce";

  const auto traces = net.collect_traces();
  expect_matched(traces, obs::EventType::kShipMsgOut,
                 obs::EventType::kShipMsgIn);
  // The import's NS lookup and its reply share one causal id.
  const auto lookups = events_of(traces, obs::EventType::kNsLookup);
  const auto replies = events_of(traces, obs::EventType::kNsReply);
  ASSERT_FALSE(lookups.empty());
  bool closed = false;
  for (const auto& l : lookups)
    for (const auto& r : replies)
      if (l.trace_id != 0 && l.trace_id == r.trace_id) closed = true;
  EXPECT_TRUE(closed) << "NS lookup -> reply chain must share a trace id";
}

TEST(EndToEnd, ShipObjAndFetchChains) {
  auto net = two_node_net(sim_cfg());
  net.enable_tracing(1 << 12);
  // The applet server of section 4, fetch style: the client instantiates
  // a remote class -> FETCH req/served/reply; the reply ships code.
  net.submit_source("server",
                    "export def Applet(out) = out![1 + 2] in 0");
  net.submit_source("client",
                    "import Applet from server in "
                    "new p (Applet[p] | p?(v) = print[v])");
  auto res = net.run();
  ASSERT_TRUE(res.quiescent);

  const auto traces = net.collect_traces();
  const auto reqs = events_of(traces, obs::EventType::kFetchReq);
  const auto served = events_of(traces, obs::EventType::kFetchServed);
  const auto linked = events_of(traces, obs::EventType::kFetchReply);
  ASSERT_EQ(reqs.size(), 1u);
  ASSERT_EQ(served.size(), 1u);
  ASSERT_EQ(linked.size(), 1u);
  EXPECT_NE(reqs[0].trace_id, 0u);
  EXPECT_EQ(reqs[0].trace_id, served[0].trace_id)
      << "the FETCH reply reuses the request's causal id";
  EXPECT_EQ(reqs[0].trace_id, linked[0].trace_id);
}

TEST(EndToEnd, ShipObjMatched) {
  auto net = two_node_net(sim_cfg());
  net.enable_tracing(1 << 12);
  // Code-shipping style: the server ships an object closure per request.
  net.submit_source("server",
                    "def Srv(self) = self?{ get(p) = ((p?(r) = r![7]) | "
                    "Srv[self]) } in export new srv in Srv[srv]");
  net.submit_source("client",
                    "import srv from server in "
                    "new p (srv!get[p] | let v = p![] in print[v])");
  auto res = net.run();
  ASSERT_TRUE(res.quiescent);
  expect_matched(net.collect_traces(), obs::EventType::kShipObjOut,
                 obs::EventType::kShipObjIn);
}

TEST(EndToEnd, SamplingGatesMobilityEventsButKeepsLocalOnes) {
  auto net = two_node_net(sim_cfg());
  // 1-in-2^20: with a few dozen allocated ids, essentially everything is
  // skipped (each id samples with probability ~1e-6).
  net.enable_tracing(1 << 12, /*sample_every=*/1 << 20, /*sample_seed=*/7);
  net.submit_source("server",
                    "export new svc in "
                    "def Serve(self) = self?{ val(x, r) = (r![x + 1] | "
                    "Serve[self]) } in Serve[svc]");
  net.submit_source("client",
                    "import svc from server in "
                    "def Loop(i, acc) = if i == 0 then print[\"done\", acc] "
                    "else let v = svc![acc] in Loop[i - 1, v] "
                    "in Loop[20, 0]");
  ASSERT_TRUE(net.run().quiescent);

  const auto traces = net.collect_traces();
  // Local reductions carry trace id 0 and are never sampled away.
  EXPECT_FALSE(events_of(traces, obs::EventType::kComm).empty());

  // Nearly every SHIPM skipped recording, so the ring holds fewer
  // departures than the mobility counter says were shipped...
  const auto outs = events_of(traces, obs::EventType::kShipMsgOut);
  const std::uint64_t shipped =
      net.find_site("client")->mobility().msgs_shipped.value();
  EXPECT_GE(shipped, 20u);
  EXPECT_LT(static_cast<std::uint64_t>(outs.size()), shipped);

  // ...and the decision counters account for every allocated id.
  const auto snap = net.metrics().snapshot();
  EXPECT_GT(snap.counters.at("site_trace_unsampled{site=\"client\"}"), 0u);
  const std::uint64_t decided =
      snap.counters.at("site_trace_sampled{site=\"client\"}") +
      snap.counters.at("site_trace_unsampled{site=\"client\"}");
  EXPECT_GE(decided, shipped) << "every departure allocates and decides";

  // Any departure that *was* recorded must still match an arrival: the
  // decision travels on the wire, so hops agree.
  const auto ins = events_of(traces, obs::EventType::kShipMsgIn);
  for (const auto& o : outs) {
    bool matched = false;
    for (const auto& i : ins)
      if (i.trace_id == o.trace_id && i.site != o.site) matched = true;
    EXPECT_TRUE(matched);
  }
}

TEST(EndToEnd, SimTraceTimestampsAreVirtual) {
  auto net = two_node_net(sim_cfg());
  net.enable_tracing(1 << 12);
  net.submit_source("server",
                    "export new svc in "
                    "def Serve(self) = self?{ val(x, r) = (r![x + 1] | "
                    "Serve[self]) } in Serve[svc]");
  net.submit_source("client",
                    "import svc from server in "
                    "def Loop(i, acc) = if i == 0 then print[\"done\", acc] "
                    "else let v = svc![acc] in Loop[i - 1, v] "
                    "in Loop[4, 0]");
  auto res = net.run();
  ASSERT_TRUE(res.quiescent);
  ASSERT_GT(res.virtual_time_us, 0.0);

  // Every timestamp sits inside the simulated makespan — steady_clock
  // stamps (nanoseconds since boot) would be orders of magnitude larger.
  const auto makespan_ns =
      static_cast<std::uint64_t>(res.virtual_time_us * 1000.0) + 1;
  std::size_t seen = 0;
  for (const auto& t : net.collect_traces())
    for (const auto& e : t.events) {
      EXPECT_LE(e.ts_ns, makespan_ns)
          << obs::event_name(e.type) << " stamped past the virtual makespan";
      ++seen;
    }
  EXPECT_GT(seen, 0u);
}

TEST(EndToEnd, FetchRoundTripIsAsyncSpanInTraceJson) {
  auto net = two_node_net(sim_cfg());
  net.enable_tracing(1 << 12);
  net.submit_source("server",
                    "export def Applet(out) = out![1 + 2] in 0");
  net.submit_source("client",
                    "import Applet from server in "
                    "new p (Applet[p] | p?(v) = print[v])");
  ASSERT_TRUE(net.run().quiescent);

  const std::string json = net.trace_json();
  // The FETCH request/reply pair renders as a Chrome async span keyed by
  // its trace id, so the round trip reads as one bar in Perfetto.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"FETCH\""), std::string::npos);
}

TEST(EndToEnd, TraceJsonIsWellFormedChromeTrace) {
  auto net = two_node_net(sim_cfg());
  net.enable_tracing(1 << 12);
  net.submit_source("server",
                    "export new svc in "
                    "def Serve(self) = self?{ val(x, r) = (r![x + 1] | "
                    "Serve[self]) } in Serve[svc]");
  net.submit_source("client",
                    "import svc from server in let v = svc![1] in print[v]");
  ASSERT_TRUE(net.run().quiescent);

  const std::string json = net.trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Cross-site flows: at least one start and one finish arrow.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Run slices appear as duration events.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

TEST(EndToEnd, MetricsRegistryAggregatesAllComponents) {
  auto net = two_node_net(sim_cfg());
  net.submit_source("server",
                    "export new svc in "
                    "def Serve(self) = self?{ val(x, r) = (r![x + 1] | "
                    "Serve[self]) } in Serve[svc]");
  net.submit_source("client",
                    "import svc from server in let v = svc![5] in print[v]");
  ASSERT_TRUE(net.run().quiescent);

  const auto snap = net.metrics().snapshot();
  EXPECT_GT(snap.counters.at("vm_instructions{site=\"client\"}"), 0u);
  EXPECT_GT(snap.counters.at("vm_instructions{site=\"server\"}"), 0u);
  EXPECT_EQ(snap.counters.at("site_msgs_shipped{site=\"client\"}"),
            net.find_site("client")->mobility().msgs_shipped.value());
  EXPECT_EQ(snap.counters.at("ns_lookups{ns=\"central\"}"), 1u);
  EXPECT_EQ(snap.counters.at("ns_replies{ns=\"central\"}"), 1u);
  // Untraced run: no events, no drops.
  EXPECT_EQ(snap.counters.at("site_trace_events{site=\"client\"}"), 0u);

  const std::string text = net.metrics().expose_text();
  EXPECT_NE(text.find("site_packet_bytes_bucket{site=\"client\",le="),
            std::string::npos)
      << "histogram labels merge with the site label:\n" << text;
}

TEST(EndToEnd, ReducerRegistersCalcMetrics) {
  obs::Registry reg;
  calc::Reducer red;
  red.register_metrics(reg);
  red.add_program("main", comp::parse_program(
                              "new c (c![] | c?() = print[\"hi\"])"));
  auto res = red.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(reg.snapshot().counters.at("calc_comm_reductions"), 1u);
}

TEST(EndToEnd, ThreadedModeStatsReadableWhileRunning) {
  // The race-fix satellite: mobility counters and errors() must be safe
  // to read while the threaded driver is executing (TSan-checked in CI).
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kThreaded;
  auto net = two_node_net(cfg);
  net.submit_source("server",
                    "export new svc in "
                    "def Serve(self) = self?{ val(x, r) = (r![x + 1] | "
                    "Serve[self]) } in Serve[svc]");
  net.submit_source("client",
                    "import svc from server in "
                    "def Loop(i, acc) = if i == 0 then print[\"done\", acc] "
                    "else let v = svc![acc] in Loop[i - 1, v] "
                    "in Loop[50, 0]");

  std::atomic<bool> stop{false};
  std::uint64_t observed = 0;
  std::thread reader([&] {
    while (!stop.load()) {
      for (const char* name : {"server", "client"}) {
        const auto& mob = net.find_site(name)->mobility();
        observed += mob.msgs_shipped + mob.msgs_received;
        observed += net.find_site(name)->errors().size();
      }
    }
  });
  auto res = net.run();
  stop.store(true);
  reader.join();
  EXPECT_TRUE(res.quiescent);
  EXPECT_GE(net.find_site("client")->mobility().msgs_shipped.value(), 50u);
  (void)observed;
}

// ---------------------------------------------------------------------
// Flight recorder: tail-based trace retention
// ---------------------------------------------------------------------

TEST(Flight, PromoteHarvestsEventsFromAttachedRings) {
  obs::TraceRing a, b;
  a.enable(64, 0, 0);
  b.enable(64, 1, 0);
  a.record(obs::EventType::kFetchReq, 42, 7);
  b.record(obs::EventType::kFetchServed, 42, 7);
  b.record(obs::EventType::kShipMsgIn, 43, 1);  // unrelated id
  a.record(obs::EventType::kFetchReply, 42, 7);

  obs::FlightRecorder fr;
  fr.attach_ring(&a);
  fr.attach_ring(&a);  // idempotent
  fr.attach_ring(&b);
  ASSERT_TRUE(fr.promote(42, obs::FlightRecorder::Reason::kError));
  const auto entries = fr.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].trace_id, 42u);
  EXPECT_EQ(entries[0].reason, obs::FlightRecorder::Reason::kError);
  ASSERT_EQ(entries[0].events.size(), 3u) << "both rings, only id 42";
  // Sorted by timestamp across rings.
  for (std::size_t i = 1; i < entries[0].events.size(); ++i)
    EXPECT_LE(entries[0].events[i - 1].ts_ns, entries[0].events[i].ts_ns);
  EXPECT_EQ(fr.promoted_count(obs::FlightRecorder::Reason::kError), 1u);
}

TEST(Flight, AbsoluteLatencyThresholdDecidesPromotion) {
  obs::TraceRing ring;
  ring.enable(64, 0, 0);
  obs::FlightRecorder fr;
  obs::FlightPolicy p;
  p.slow_us = 100.0;
  fr.configure(p);
  fr.attach_ring(&ring);

  fr.on_depart(1, 1'000);
  EXPECT_FALSE(fr.on_complete(1, 50'000)) << "49us < 100us: fast";
  fr.on_depart(2, 1'000);
  EXPECT_TRUE(fr.on_complete(2, 201'000)) << "200us >= 100us: slow";
  EXPECT_EQ(fr.completions(), 2u);
  EXPECT_EQ(fr.promoted_count(obs::FlightRecorder::Reason::kSlow), 1u);
  const auto entries = fr.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].latency_us, 200.0);
}

TEST(Flight, PercentilePolicyKeepsTheTail) {
  obs::FlightRecorder fr;
  obs::FlightPolicy p;
  p.slow_pctl = 0.5;
  p.pctl_min_samples = 4;
  fr.configure(p);
  // Below min samples nothing fires, however slow.
  fr.on_depart(1, 0);
  EXPECT_FALSE(fr.on_complete(1, 1'000'000'000));
  // Build a distribution of ~2us completions...
  for (std::uint64_t id = 2; id < 100; ++id) {
    fr.on_depart(id, 0);
    fr.on_complete(id, 2'000);
  }
  // ...then a 1s outlier must land beyond the median bucket bound.
  fr.on_depart(1000, 0);
  EXPECT_TRUE(fr.on_complete(1000, 1'000'000'000'000ull));
  // And a typical completion still must not.
  fr.on_depart(1001, 0);
  EXPECT_FALSE(fr.on_complete(1001, 2'000));
}

TEST(Flight, BufferCapsDedupsAndCountsEvictions) {
  obs::FlightRecorder fr;
  obs::FlightPolicy p;
  p.max_traces = 2;
  fr.configure(p);
  using R = obs::FlightRecorder::Reason;
  EXPECT_TRUE(fr.promote(1, R::kError));
  EXPECT_FALSE(fr.promote(1, R::kError)) << "already promoted";
  EXPECT_EQ(fr.duplicates(), 1u);
  EXPECT_TRUE(fr.promote(2, R::kStarved));
  EXPECT_TRUE(fr.promote(3, R::kRelAnomaly));
  EXPECT_EQ(fr.evicted(), 1u);
  const auto entries = fr.snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].trace_id, 2u) << "oldest evicted first";
  EXPECT_EQ(entries[1].trace_id, 3u);
}

/// The acceptance scenario: under the sim driver with 1-in-64 head
/// sampling, one artificially slow FETCH (extra virtual latency injected
/// on its reply packet) must land in /flight with EVERY hop of its trace
/// id — deterministically, whatever its sampling bit says — while a
/// fast control run promotes nothing.
core::Network fetch_net() {
  auto net = two_node_net(sim_cfg());
  net.submit_source("server",
                    "export def Applet(out) = out![1 + 2] in 0");
  net.submit_source("client",
                    "import Applet from server in "
                    "new p (Applet[p] | p?(v) = print[v])");
  return net;
}

TEST(Flight, SlowFetchIsPromotedWithEveryHopDeterministically) {
  auto net = fetch_net();
  net.enable_tracing(1 << 12, /*sample_every=*/64, /*sample_seed=*/7);
  obs::FlightPolicy p;
  p.slow_us = 10'000.0;  // 10ms: far above any unperturbed sim latency
  net.enable_flight(p);
  // +50ms of virtual wire time on the FETCH reply only.
  auto& sim = dynamic_cast<net::SimTransport&>(net.transport());
  sim.set_extra_cost([](const net::Packet& pkt) {
    return core::packet_type(pkt.bytes) == core::MsgType::kFetchRep
               ? 50'000.0
               : 0.0;
  });
  ASSERT_TRUE(net.run().quiescent);

  const auto entries = net.flight().snapshot();
  ASSERT_EQ(entries.size(), 1u) << "exactly the slow FETCH is promoted";
  const auto& e = entries[0];
  EXPECT_EQ(e.reason, obs::FlightRecorder::Reason::kSlow);
  EXPECT_GE(e.latency_us, 50'000.0);
  // Every hop of the operation: request issued at the client, request
  // packet through both daemons, served at the server, reply packet
  // through both daemons, reply linked at the client.
  auto has = [&](obs::EventType t) {
    for (const auto& ev : e.events)
      if (ev.type == t && ev.trace_id == e.trace_id) return true;
    return false;
  };
  EXPECT_TRUE(has(obs::EventType::kFetchReq));
  EXPECT_TRUE(has(obs::EventType::kFetchServed));
  EXPECT_TRUE(has(obs::EventType::kFetchReply));
  EXPECT_TRUE(has(obs::EventType::kPacketSend)) << "daemon hops harvested";
  // /flight renders as Chrome trace JSON with the server-side hop.
  const std::string json = net.flight_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("FETCH-served"), std::string::npos) << json;
}

TEST(Flight, FastFetchIsNeverPromoted) {
  auto net = fetch_net();
  net.enable_tracing(1 << 12, /*sample_every=*/64, /*sample_seed=*/7);
  obs::FlightPolicy p;
  p.slow_us = 10'000.0;
  net.enable_flight(p);
  ASSERT_TRUE(net.run().quiescent);
  EXPECT_GE(net.flight().completions(), 1u) << "the FETCH completed";
  EXPECT_TRUE(net.flight().snapshot().empty())
      << "an unperturbed sim FETCH is microseconds, never 10ms";
}

TEST(Flight, TraceEndpointKeepsItsSampledViewUnderRecordAll) {
  auto net = fetch_net();
  const std::uint64_t every = 64, seed = 7;
  net.enable_tracing(1 << 12, every, seed);
  net.enable_flight({});
  ASSERT_TRUE(net.run().quiescent);
  // The rings ran in record-all mode (so the flight recorder could
  // harvest any id), but /trace must still honour 1-in-64 sampling.
  for (const auto& tt : net.collect_traces())
    for (const auto& ev : tt.events)
      if (ev.trace_id != 0)
        EXPECT_TRUE(obs::trace_id_sampled(ev.trace_id, every, seed))
            << "unsampled id " << ev.trace_id << " leaked into /trace";
}

// ---------------------------------------------------------------------
// Profiler sanity at the network level
// ---------------------------------------------------------------------

TEST(Profiler, FoldedStacksNameUserDefinitions) {
  core::Network net{{}};
  net.add_node();
  net.add_site(0, "main");
  net.enable_profiling(/*period=*/8);
  net.submit_source("main",
                    "def Spin(i) = if i == 0 then print[\"done\"] else "
                    "Spin[i - 1] in Spin[500]");
  ASSERT_TRUE(net.run().quiescent);
  const std::string folded = net.profile_folded();
  ASSERT_FALSE(folded.empty());
  // site;definition;opcode count — with the definition's source name.
  EXPECT_NE(folded.find("main;"), std::string::npos) << folded;
  EXPECT_NE(folded.find(";Spin;"), std::string::npos) << folded;
}

}  // namespace
}  // namespace dityco
