file(REMOVE_RECURSE
  "libdityco_net.a"
)
