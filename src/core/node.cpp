#include "core/node.hpp"

#include <cstring>

#include "ns/cache.hpp"
#include "ns/shard.hpp"

namespace dityco::core {

std::uint32_t packet_dst_site(const net::Packet& p) {
  if (p.bytes.size() < 5) throw DecodeError("short packet");
  std::uint32_t v;
  std::memcpy(&v, p.bytes.data() + 1, sizeof v);
  return v;
}

bool packet_is_ns(const net::Packet& p) {
  if (p.bytes.empty()) throw DecodeError("empty packet");
  // packet_type masks the trace-flag bit, so v2 (traced) frames route the
  // same as v1.
  const MsgType t = packet_type(p.bytes);
  return t == MsgType::kNsExport || t == MsgType::kNsLookup ||
         t == MsgType::kNsUnregister || t == MsgType::kNsInvalidate;
}

void Node::enable_local_ns(std::uint32_t n_nodes) {
  replica_ = std::make_unique<NameService>(id_);
  // The replica inherits this node's site registrations lazily: sites are
  // re-registered by the Network when it distributes the service.
  ns_ = replica_.get();
  broadcast_nodes_ = n_nodes;
  for (auto& s : sites_) s->set_ns_node(id_);
}

void Node::enable_sharded_ns(ns::ShardRouter* router, ns::LeaseCache* cache,
                             bool lease_tracking) {
  replica_ = std::make_unique<NameService>(id_);
  ns_ = replica_.get();
  router_ = router;
  ns_cache_ = cache;
  ns_->set_lease_tracking(lease_tracking);
  for (auto& s : sites_) {
    s->set_ns_node(id_);  // fallback only; per-key routing via the router
    s->set_ns_router(router);
    s->set_lease_cache(cache);
  }
}

Site& Node::add_site(const std::string& name) {
  const auto site_id = static_cast<std::uint32_t>(sites_.size());
  sites_.push_back(
      std::make_unique<Site>(name, id_, site_id, ns_->home_node()));
  ns_->register_site(name, id_, site_id);
  Site& s = *sites_.back();
  if (router_ != nullptr) {
    s.set_ns_router(router_);
    s.set_lease_cache(ns_cache_);
  }
  if (metrics_) s.register_metrics(*metrics_);
  if (trace_capacity_ > 0) {
    s.enable_tracing(trace_capacity_);
    s.set_trace_sampling(sample_every_, sample_seed_);
  }
  if (flight_ != nullptr) {
    s.set_flight(flight_);
    s.trace_ring().set_record_all(true);
  }
  if (slo_ != nullptr) s.set_slo(slo_);
  if (prof_period_ > 0) s.machine().enable_profiling(prof_period_);
  return s;
}

void Node::set_slo(obs::SloPlane* slo) {
  slo_ = slo;
  for (auto& s : sites_) s->set_slo(slo);
}

void Node::set_flight(obs::FlightRecorder* f) {
  flight_ = f;
  ring_.set_record_all(f != nullptr);
  if (f != nullptr) f->attach_ring(&ring_);
  for (auto& s : sites_) {
    s->set_flight(f);
    s->trace_ring().set_record_all(f != nullptr);
  }
}

void Node::enable_profiling(std::uint64_t period) {
  prof_period_ = period;
  for (auto& s : sites_) s->machine().enable_profiling(period);
}

void Node::enable_tracing(std::size_t capacity, std::uint64_t sample_every,
                          std::uint64_t sample_seed) {
  trace_capacity_ = capacity;
  sample_every_ = sample_every;
  sample_seed_ = sample_seed;
  ring_.enable(capacity, id_, obs::kDaemonSite);
  ring_.set_sampling(sample_every, sample_seed);
  for (auto& s : sites_) {
    if (!s->trace_ring().enabled()) s->enable_tracing(capacity);
    s->set_trace_sampling(sample_every, sample_seed);
  }
}

void Node::route(net::Packet p, net::Transport& t, double now_us) {
  if (packet_is_ns(p)) {
    // This node hosts a name service (the central one, a replica when the
    // service is distributed, or a shard slice when it is sharded).
    Reader r(p.bytes);
    const PacketHeader h = read_header(r);
    if (h.type == MsgType::kNsInvalidate) {
      // Lease invalidation pushed by a shard primary: drop the cached
      // binding so the next import re-resolves authoritatively.
      const NsInvalidate inv = read_ns_invalidate(r);
      if (ns_cache_ != nullptr) ns_cache_->invalidate(inv.site, inv.name);
      return;
    }
    // Sharded mode: the key's rendezvous owners decide this packet's
    // fate. Every NS frame leads with the key (site str, name str), so a
    // second reader peeks it without disturbing `r`.
    bool keep_credit = broadcast_nodes_ == 0 || p.src_node == id_;
    if (router_ != nullptr) {
      Reader peek(p.bytes);
      read_header(peek);
      const std::string ksite = peek.str();
      const std::string kname = peek.str();
      const auto owners = router_->owners_of(ksite, kname);
      if (h.type == MsgType::kNsLookup) {
        if (owners.primary != id_ && owners.primary != ns::ShardRouter::kNoNode) {
          // Not ours: forward to the owning shard. The reply goes
          // straight to the requester carried in the payload.
          net::Packet fwd;
          fwd.src_node = id_;
          fwd.dst_node = owners.primary;
          fwd.bytes = std::move(p.bytes);
          t.send(std::move(fwd), now_us);
          return;
        }
      } else {
        const bool primary_here = owners.primary == id_;
        const bool replica_here = owners.replica == id_;
        if (!primary_here && !replica_here) {
          // Stale client map or in-flight handoff: bounce to the
          // current primary, which re-replicates as needed.
          net::Packet fwd;
          fwd.src_node = id_;
          fwd.dst_node = owners.primary;
          fwd.bytes = std::move(p.bytes);
          if (owners.primary != ns::ShardRouter::kNoNode)
            t.send(std::move(fwd), now_us);
          return;
        }
        if (primary_here && owners.replica != ns::ShardRouter::kNoNode &&
            owners.replica != id_ && !router_->is_dead(owners.replica)) {
          // Primary replicates byte-identically to its follower; the
          // follower classifies itself as replica and keeps no credit.
          net::Packet copy;
          copy.src_node = id_;
          copy.dst_node = owners.replica;
          copy.bytes = p.bytes;
          t.send(std::move(copy), now_us);
        }
        // Exactly one credit holder per minted unit: the primary.
        keep_credit = primary_here;
      }
    }
    std::vector<net::Packet> replies;
    if (h.type == MsgType::kNsExport || h.type == MsgType::kNsUnregister) {
      if (ring_.should_record(h.sampled))
        ring_.record(obs::EventType::kNsExport, h.trace_id, p.bytes.size());
      // Replicated mode: exports (and unregisters) originating here
      // propagate to every other replica (which releases their parked
      // lookups / drops their copies of the binding).
      if (broadcast_nodes_ > 0 && p.src_node == id_) {
        for (std::uint32_t n = 0; n < broadcast_nodes_; ++n) {
          if (n == id_) continue;
          net::Packet copy;
          copy.src_node = id_;
          copy.dst_node = n;
          copy.bytes = p.bytes;
          t.send(std::move(copy), now_us);
        }
      }
      if (h.type == MsgType::kNsExport)
        // Only the origin replica / shard primary keeps the GC credit
        // the export carries: one holder per minted unit.
        ns_->handle_export(r, replies, h.trace_id, h.sampled, h.gc,
                           keep_credit);
      else
        ns_->handle_unregister(r, replies);
    } else {
      if (ring_.should_record(h.sampled))
        ring_.record(obs::EventType::kNsLookup, h.trace_id, p.bytes.size());
      ns_->handle_lookup(r, replies, h.trace_id, h.sampled);
    }
    for (auto& rep : replies) {
      if (rep.dst_node == id_)
        route(std::move(rep), t, now_us);
      else
        t.send(std::move(rep), now_us);
    }
    return;
  }
  if (packet_type(p.bytes) == MsgType::kPeerDown) {
    // A synthetic death notice injected by the transport's failure
    // detector: every site on this node writes off the dead holder's
    // export credit, and the name service (central or replica) drops
    // the dead node's registrations so lookups stop resolving to it.
    Reader r(p.bytes);
    read_header(r);
    const std::uint32_t dead = read_peer_down(r);
    if (router_ != nullptr)
      ns_handle_dead(dead, t, now_us);
    else if (ns_->home_node() == id_)
      ns_->evict_node(dead);
    for (auto& s : sites_) s->push_incoming(p.bytes, p.src_node);
    return;
  }
  const std::uint32_t dst_site = packet_dst_site(p);
  if (dst_site >= sites_.size()) throw DecodeError("packet to unknown site");
  sites_[dst_site]->push_incoming(std::move(p.bytes), p.src_node);
}

void Node::ns_handle_dead(std::uint32_t dead, net::Transport& t,
                          double now_us) {
  // Confirmed death (our own failure detector, not gossip): shrink the
  // shard map, drop the dead node's bindings from our slice, and push
  // lease invalidations for them.
  router_->note_dead(dead);
  std::vector<net::Packet> out;
  ns_->evict_node(dead, &out);
  // Handoff: bindings we held as a follower of the dead primary are
  // promoted implicitly — the map already points at us — and everything
  // we now serve as primary gets re-replicated to its new follower.
  ns_reshard(t, now_us);
  if (ns_cache_ != nullptr) ns_cache_->invalidate_node(dead);
  for (auto& o : out) {
    if (o.dst_node == id_)
      route(std::move(o), t, now_us);
    else
      t.send(std::move(o), now_us);
  }
}

void Node::ns_reshard(net::Transport& t, double now_us) {
  // Weak copies only (credit=0): the credit a primary holds never
  // travels on the repair path — a promoted follower serves bindings
  // weakly and the original exporter's write-off of the dead primary
  // squares the ledger (DESIGN.md, GC invariants).
  for (const auto& rec : ns_->handoff_records()) {
    const auto owners = router_->owners_of(rec.site, rec.name);
    if (owners.primary != id_) continue;
    const std::uint32_t rep = owners.replica;
    if (rep == ns::ShardRouter::kNoNode || rep == id_ || router_->is_dead(rep))
      continue;
    net::Packet copy;
    copy.src_node = id_;
    copy.dst_node = rep;
    copy.bytes = NameService::make_export(0, rec.site, rec.name, rec.ref,
                                          rec.type_sig, 0, true, /*credit=*/0);
    t.send(std::move(copy), now_us);
  }
}

void Node::ns_merge_dead(const std::vector<std::uint32_t>& dead,
                         net::Transport& t, double now_us) {
  if (router_ == nullptr) return;
  std::vector<std::uint32_t> others;
  for (std::uint32_t d : dead)
    if (d != id_) others.push_back(d);
  if (!router_->merge_dead(others)) return;
  ns_reshard(t, now_us);
}

std::size_t Node::pump_site_outgoing(net::Transport& t, std::size_t site_idx,
                                     double now_us) {
  std::size_t moved = 0;
  net::Packet p;
  while (sites_.at(site_idx)->pop_outgoing(p)) {
    ++moved;
    if (p.dst_node == id_ && (!packet_is_ns(p) || ns_->home_node() == id_)) {
      if (!packet_is_ns(p)) ++local_deliveries_;
      route(std::move(p), t, now_us);  // shared-memory fast path
    } else {
      if (ring_.enabled() && ring_.should_record(packet_sampled(p.bytes)))
        ring_.record(obs::EventType::kPacketSend, packet_trace_id(p.bytes),
                     p.bytes.size());
      t.send(std::move(p), now_us);
    }
  }
  return moved;
}

std::size_t Node::pump_outgoing(net::Transport& t, double now_us) {
  std::size_t moved = 0;
  for (std::size_t i = 0; i < sites_.size(); ++i)
    moved += pump_site_outgoing(t, i, now_us);
  return moved;
}

std::size_t Node::pump_incoming(net::Transport& t, double now_us) {
  std::size_t moved = 0;
  net::Packet p;
  while (t.recv(id_, p, now_us)) {
    ++moved;
    if (ring_.enabled() && ring_.should_record(packet_sampled(p.bytes)))
      ring_.record(obs::EventType::kPacketRecv, packet_trace_id(p.bytes),
                   p.bytes.size());
    route(std::move(p), t, now_us);
  }
  return moved;
}

}  // namespace dityco::core
