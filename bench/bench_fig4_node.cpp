// E4 (Figure 4): the node architecture — a pool of sites, the TyCOd
// communication daemon and the TyCOi user-interface daemon, all threads
// in one process. Wall-clock micro-benchmarks of that machinery:
//
//   * TyCOi: program-submission lifecycle (parse -> typecheck -> compile
//     -> load into a fresh site);
//   * TyCOd: daemon forwarding throughput (site outgoing queue ->
//     transport -> remote incoming queue);
//   * site pool: throughput of S concurrent sites on one node under the
//     threaded driver (the paper's dual-processor SMP motivation).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace dityco;

const char* kProgram =
    "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
    "write(u) = Cell[self, u] } in "
    "new x (Cell[x, 9] | new z (x!read[z] | z?(w) = print[w]))";

void BM_SubmitLifecycle(benchmark::State& state) {
  const bool typecheck = state.range(0) != 0;
  for (auto _ : state) {
    core::Network::Config cfg;
    cfg.typecheck = typecheck;
    core::Network net(cfg);
    net.add_node();
    net.add_site(0, "main");
    net.submit_source("main", kProgram);
    benchmark::DoNotOptimize(net.find_site("main"));
  }
  state.SetLabel(typecheck ? "with typecheck" : "compile only");
}
BENCHMARK(BM_SubmitLifecycle)->Arg(0)->Arg(1);

/// Daemon forwarding: one site floods another on a different node; the
/// pumps (TyCOd) move every packet through the transport.
void BM_DaemonForwarding(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  std::uint64_t packets = 0;
  for (auto _ : state) {
    core::Network net;
    net.add_node();
    net.add_site(0, "server");
    net.add_node();
    net.add_site(1, "client");
    net.submit_source("server",
                      "export new sink in "
                      "def S(self) = self?{ val(v) = S[self] } in S[sink]");
    net.submit_source("client",
                      "import sink from server in "
                      "def Flood(i) = if i == 0 then 0 else (sink![i] | "
                      "Flood[i - 1]) in Flood[" + std::to_string(msgs) + "]");
    auto res = net.run();
    packets += res.packets;
  }
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DaemonForwarding)->Arg(2000);

/// Site pool scaling on one node (threaded driver): S sites each run an
/// independent compute loop; real threads share the machine's cores.
void BM_SitePoolThreaded(benchmark::State& state) {
  const int sites = static_cast<int>(state.range(0));
  const int work = 60000;
  for (auto _ : state) {
    core::Network::Config cfg;
    cfg.mode = core::Network::Mode::kThreaded;
    core::Network net(cfg);
    net.add_node();
    for (int s = 0; s < sites; ++s)
      net.add_site(0, "w" + std::to_string(s));
    for (int s = 0; s < sites; ++s)
      net.submit_source("w" + std::to_string(s),
                        dityco::benchutil::spin_src(work / sites));
    auto res = net.run();
    if (!res.quiescent) state.SkipWithError("did not quiesce");
  }
  state.SetItemsProcessed(state.iterations() * work);
}
BENCHMARK(BM_SitePoolThreaded)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
