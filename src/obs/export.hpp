// Chrome trace-event / Perfetto export (observability layer, part 3 of 3).
//
// Merges per-site and per-node TraceRing snapshots into one JSON timeline
// in the Chrome trace-event format (load it in chrome://tracing or
// https://ui.perfetto.dev). Mapping:
//
//   * pid  = node id (one "process" per cluster node),
//   * tid  = a thread line per site (and one for the node daemon),
//   * run-slices  -> "B"/"E" duration events,
//   * everything else -> "i" instant events,
//   * events sharing a non-zero trace id -> an "s"/"t"/"f" flow chain,
//     which Perfetto draws as arrows following a SHIPM/SHIPO/FETCH/NS
//     operation across sites.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dityco::obs {

/// One thread line of the merged timeline.
struct ThreadTrace {
  std::string name;        // e.g. "site client" or "daemon"
  std::uint32_t pid = 0;   // node id
  std::uint32_t tid = 0;   // line within the node
  std::vector<TraceEvent> events;
};

/// Clock anchor for cross-process stitching. Trace timestamps are
/// steady_clock, which is meaningless across OS processes; the anchor
/// pairs "steady now" with "wall now" *at export time*, letting an
/// aggregator (obs/fleet.hpp, tools/tycotop) rebase every node's events
/// onto the shared wall clock:
///   wall_us(event) = wall_now_us - (steady_now_ns - event_ts_ns)/1000.
/// Exported as "otherData" next to ts_base_ns (the subtracted base), so
/// a document alone still carries everything needed for the rebase.
struct ExportMeta {
  bool has_anchor = false;
  std::uint32_t node = 0;          // this process's node id
  std::uint64_t steady_now_ns = 0; // trace_now_ns() at export
  std::uint64_t wall_now_us = 0;   // system_clock at the same instant
};

/// Render the merged timeline as a Chrome trace-event JSON document.
std::string chrome_trace_json(const std::vector<ThreadTrace>& traces);
/// Same, with a clock anchor in "otherData" for fleet-level stitching.
std::string chrome_trace_json(const std::vector<ThreadTrace>& traces,
                              const ExportMeta& meta);

}  // namespace dityco::obs
