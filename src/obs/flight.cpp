#include "obs/flight.hpp"

#include <algorithm>

namespace dityco::obs {

const char* FlightRecorder::reason_name(Reason r) {
  switch (r) {
    case Reason::kSlow: return "slow";
    case Reason::kError: return "error";
    case Reason::kStarved: return "starved";
    case Reason::kRelAnomaly: return "rel-anomaly";
    case Reason::kNetwork: return "network";
  }
  return "?";
}

void FlightRecorder::configure(const FlightPolicy& p) {
  std::lock_guard<std::mutex> lk(mu_);
  policy_ = p;
}

FlightPolicy FlightRecorder::policy() const {
  std::lock_guard<std::mutex> lk(mu_);
  return policy_;
}

void FlightRecorder::attach_ring(const TraceRing* ring) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const RingIndex& ri : rings_)
    if (ri.ring == ring) return;
  RingIndex ri;
  ri.ring = ring;
  rings_.push_back(std::move(ri));
}

void FlightRecorder::on_depart(std::uint64_t trace_id, std::uint64_t ts_ns) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (depart_ns_.size() >= policy_.max_inflight) return;
  depart_ns_.emplace(trace_id, ts_ns);
}

bool FlightRecorder::on_complete(std::uint64_t trace_id,
                                 std::uint64_t ts_ns) {
  if (trace_id == 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = depart_ns_.find(trace_id);
  if (it == depart_ns_.end()) return false;
  const std::uint64_t departed = it->second;
  depart_ns_.erase(it);
  const double latency_us =
      ts_ns >= departed ? static_cast<double>(ts_ns - departed) / 1e3 : 0;
  latency_us_.observe(latency_us);
  ++completions_;
  bool slow = policy_.slow_us > 0 && latency_us >= policy_.slow_us;
  if (!slow && policy_.slow_pctl > 0) {
    const double thr = pctl_threshold_locked();
    slow = thr > 0 && latency_us >= thr;
  }
  if (!slow) return false;
  return promote_locked(trace_id, Reason::kSlow, latency_us);
}

bool FlightRecorder::promote(std::uint64_t trace_id, Reason reason,
                             double latency_us) {
  if (trace_id == 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  return promote_locked(trace_id, reason, latency_us);
}

double FlightRecorder::pctl_threshold_locked() const {
  const Histogram::Snapshot s = latency_us_.snapshot();
  if (s.total < policy_.pctl_min_samples) return 0;
  const double want = policy_.slow_pctl * static_cast<double>(s.total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < s.bounds.size(); ++i) {
    cum += s.counts[i];
    if (static_cast<double>(cum) >= want) return s.bounds[i];
  }
  // Percentile lands in the +inf bucket: only the largest finite bound
  // can act as the threshold.
  return s.bounds.empty() ? 0 : s.bounds.back();
}

bool FlightRecorder::promote_locked(std::uint64_t trace_id, Reason reason,
                                    double latency_us) {
  if (promoted_ids_.count(trace_id)) {
    ++duplicates_;
    return false;
  }
  Entry e;
  e.trace_id = trace_id;
  e.reason = reason;
  e.latency_us = latency_us;
  for (RingIndex& ri : rings_) {
    // Lazy per-ring index: rebuild only when the producer has recorded
    // past the last build. recorded() is read before snapshot(), so a
    // concurrent producer at worst leaves the index one build behind —
    // the next promotion rebuilds again.
    const std::uint64_t head = ri.ring->recorded();
    if (head != ri.built_head) {
      ri.by_id.clear();
      for (TraceEvent& ev : ri.ring->snapshot())
        if (ev.trace_id != 0) ri.by_id[ev.trace_id].push_back(ev);
      ri.built_head = head;
      ++index_rebuilds_;
    }
    const auto it = ri.by_id.find(trace_id);
    if (it != ri.by_id.end())
      e.events.insert(e.events.end(), it->second.begin(), it->second.end());
  }
  std::stable_sort(e.events.begin(), e.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  promoted_ids_.insert(trace_id);
  buffer_.push_back(std::move(e));
  while (buffer_.size() > policy_.max_traces) {
    buffer_.pop_front();
    ++evicted_;
  }
  switch (reason) {
    case Reason::kSlow: ++promoted_slow_; break;
    case Reason::kError: ++promoted_error_; break;
    case Reason::kStarved: ++promoted_starved_; break;
    case Reason::kRelAnomaly: ++promoted_rel_; break;
    case Reason::kNetwork: ++promoted_network_; break;
  }
  return true;
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {buffer_.begin(), buffer_.end()};
}

std::uint64_t FlightRecorder::promoted_count(Reason r) const {
  switch (r) {
    case Reason::kSlow: return promoted_slow_.value();
    case Reason::kError: return promoted_error_.value();
    case Reason::kStarved: return promoted_starved_.value();
    case Reason::kRelAnomaly: return promoted_rel_.value();
    case Reason::kNetwork: return promoted_network_.value();
  }
  return 0;
}

}  // namespace dityco::obs
