// A token ring across N nodes: each site exports a `slot` channel,
// imports its right neighbour's, and forwards an incrementing token K
// times around the ring. A classic message-passing topology exercising
// SHIPM on every hop, here used to compare the Myrinet and Fast-Ethernet
// cluster models of the paper's testbed (fig. 1).
//
// Run:   ./build/examples/ring [sites] [laps] [--trace out.json]
//                              [--monitor port]
//
// With --trace, the sequential run records causal trace events and
// writes a Chrome trace-event / Perfetto timeline: each SHIPM hop shows
// as a flow arrow from the sending to the receiving station. With
// --monitor, TyCOmon serves /metrics, /metrics.json, /trace and
// /healthz on 127.0.0.1 during the sequential run (port 0 picks an
// ephemeral port, printed on startup).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/network.hpp"

namespace {

dityco::core::Network build_ring(int n, int laps,
                                 dityco::core::Network::Config cfg) {
  using dityco::core::Network;
  Network net(cfg);
  for (int i = 0; i < n; ++i) {
    net.add_node();
    net.add_site(static_cast<std::size_t>(i), "s" + std::to_string(i));
  }
  const int total_hops = n * laps;
  for (int i = 0; i < n; ++i) {
    const std::string me = "s" + std::to_string(i);
    const std::string next = "s" + std::to_string((i + 1) % n);
    // Each station: receive the token on my exported slot, retire it or
    // forward to the right neighbour's slot (the import inside the method
    // body shadows my own `slot`, which is only reachable via `self`
    // there). Station 0 injects the token.
    const std::string src =
        "export new slot in "
        "def Station(self) = self?{ tok(v) = "
        "((if v >= " + std::to_string(total_hops) +
        " then print[\"token retired at hop\", v] "
        "else (import slot from " + next + " in slot!tok[v + 1])) "
        "| Station[self]) } "
        "in (Station[slot]" +
        std::string(i == 0
                        ? " | import slot from " + next + " in slot!tok[1]"
                        : "") +
        ")";
    net.submit_source(me, src);
  }
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool monitor = false;
  int monitor_port = 0;
  int pos_args[2] = {4, 5};  // the paper's 4 nodes, 5 laps
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace" && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::string(argv[i]) == "--monitor" && i + 1 < argc) {
      monitor = true;
      monitor_port = std::atoi(argv[++i]);
    } else if (npos < 2)
      pos_args[npos++] = std::atoi(argv[i]);
  }
  const int n = pos_args[0];
  const int laps = pos_args[1];

  using dityco::core::Network;

  // Functional run (sequential driver).
  {
    Network::Config cfg;
    auto net = build_ring(n, laps, cfg);
    if (!trace_path.empty() || monitor) net.enable_tracing();
    if (monitor) {
      const std::uint16_t port =
          net.start_monitor(static_cast<std::uint16_t>(monitor_port));
      if (port == 0)
        std::cerr << "ring: cannot start TyCOmon on port " << monitor_port
                  << "\n";
      else
        std::cout << "tycomon listening on http://127.0.0.1:" << port
                  << std::endl;
    }
    auto res = net.run();
    std::cout << "--- ring of " << n << " sites, " << laps << " laps ---\n";
    for (int i = 0; i < n; ++i)
      for (const auto& line : net.output("s" + std::to_string(i)))
        std::cout << "[s" << i << "] " << line << "\n";
    std::cout << "packets: " << res.packets << " quiescent: " << std::boolalpha
              << res.quiescent << "\n\n";
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      out << net.trace_json();
      std::cout << "trace written to " << trace_path << "\n\n";
    }
  }

  // Virtual-time runs on both cluster models.
  for (bool myri : {true, false}) {
    Network::Config cfg;
    cfg.mode = Network::Mode::kSim;
    cfg.link = myri ? dityco::net::myrinet() : dityco::net::fast_ethernet();
    auto net = build_ring(n, laps, cfg);
    auto res = net.run();
    std::cout << (myri ? "Myrinet      " : "FastEthernet ") << "ring time: "
              << res.virtual_time_us << " us for " << n * laps << " hops ("
              << res.virtual_time_us / (n * laps) << " us/hop)\n";
  }
  return 0;
}
