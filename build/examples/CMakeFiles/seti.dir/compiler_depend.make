# Empty compiler generated dependencies file for seti.
# This may be replaced when dependencies are built.
