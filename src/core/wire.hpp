// Wire protocol between communication daemons (TyCOd), and the
// marshalling of values across node boundaries.
//
// Marshalling implements the paper's two-step identifier translation
// (section 5, "Mapping between Local and Network References"):
//   step 1 (sender):  local heap references -> network references via the
//                     export table (registering on first export); all
//                     other values pass through;
//   step 2 (receiver): network references that point into the receiving
//                     site's heap -> local references via its export
//                     table; all others are interned as foreign netrefs.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.hpp"
#include "vm/machine.hpp"

namespace dityco::core {

/// Packet types exchanged between daemons.
enum class MsgType : std::uint8_t {
  kShipMsg = 1,    // SHIPM: remote method invocation
  kShipObj = 2,    // SHIPO: object migration (carries a code closure)
  kFetchReq = 3,   // FETCH: request for class code
  kFetchRep = 4,   // FETCH reply: code closure + captured environment
  kNsExport = 5,   // register an exported identifier with the name service
  kNsLookup = 6,   // import: look up an exported identifier
  kNsReply = 7,    // name-service answer (sent once the name exists)
};

/// Marshal one value leaving `m` (sender side, step 1).
void marshal_value(vm::Machine& m, const vm::Value& v, Writer& w);
void marshal_values(vm::Machine& m, const std::vector<vm::Value>& vs,
                    Writer& w);

/// Unmarshal one value arriving at `m` (receiver side, step 2).
vm::Value unmarshal_value(vm::Machine& m, Reader& r);
std::vector<vm::Value> unmarshal_values(vm::Machine& m, Reader& r);

void write_netref(Writer& w, const vm::NetRef& r);
vm::NetRef read_netref(Reader& r);

/// Serialise a segment closure (root first).
void write_closure(Writer& w, const std::vector<vm::Segment>& segs);
/// Read a closure into a guid-keyed pool plus the root guid.
std::map<vm::SegmentGuid, vm::Segment> read_closure(Reader& r,
                                                    vm::SegmentGuid& root);

}  // namespace dityco::core
