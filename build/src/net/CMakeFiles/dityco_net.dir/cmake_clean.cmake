file(REMOVE_RECURSE
  "CMakeFiles/dityco_net.dir/transport.cpp.o"
  "CMakeFiles/dityco_net.dir/transport.cpp.o.d"
  "libdityco_net.a"
  "libdityco_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dityco_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
