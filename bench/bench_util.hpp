// Shared helpers for the experiment harness: topology builders, workload
// generators and table printing. Each bench binary regenerates one
// figure/claim of the paper (see DESIGN.md section 5 and EXPERIMENTS.md).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"

namespace dityco::benchutil {

/// Every mobility operation's e2e latency from a network's SLO plane,
/// merged across SHIPM/SHIPO/FETCH — the per-op sample set behind
/// BenchJson::section_hist. Empty when the plane is off or the
/// workload never left a site.
inline obs::SloHistogram::Snapshot slo_e2e_all(core::Network& net) {
  if (!net.slo_enabled()) return {};
  obs::SloHistogram::Snapshot s =
      net.slo().e2e_snapshot(obs::SloPlane::Op::kMsg);
  s.merge(net.slo().e2e_snapshot(obs::SloPlane::Op::kObj));
  s.merge(net.slo().e2e_snapshot(obs::SloPlane::Op::kFetch));
  return s;
}

/// Build a network with `nodes` nodes and `sites_per_node` sites each,
/// named s<node>_<k>.
inline core::Network make_cluster(int nodes, int sites_per_node,
                                  core::Network::Config cfg) {
  core::Network net(cfg);
  for (int n = 0; n < nodes; ++n) {
    net.add_node();
    for (int s = 0; s < sites_per_node; ++s)
      net.add_site(static_cast<std::size_t>(n),
                   "s" + std::to_string(n) + "_" + std::to_string(s));
  }
  return net;
}

inline core::Network::Config sim_config(const net::LinkModel& link,
                                        double instr_per_us = 100.0) {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kSim;
  cfg.link = link;
  cfg.instr_per_us = instr_per_us;
  return cfg;
}

/// Wall-clock config: the threaded driver over a real transport —
/// kInProc shared-memory queues or a kTcp loopback socket mesh (one
/// TcpTransport per node in this process; docs/NETWORKING.md). Unlike
/// sim_config the numbers are wall time, so runs are only comparable
/// against each other on the same machine.
inline core::Network::Config wall_config(
    core::Network::TransportKind transport) {
  core::Network::Config cfg;
  cfg.mode = core::Network::Mode::kThreaded;
  cfg.transport = transport;
  return cfg;
}

/// Run `net` to quiescence and return elapsed wall-clock microseconds.
inline double run_wall_us(core::Network& net, core::Network::Result* out =
                                                  nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  auto res = net.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (out) *out = res;
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

inline const char* transport_name(core::Network::TransportKind t) {
  return t == core::Network::TransportKind::kTcp ? "loopback TCP"
                                                 : "in-proc";
}

/// A server program answering `val(x, reply)` with x+1, forever.
inline std::string echo_server_src() {
  return "export new svc in "
         "def Serve(self) = self?{ val(x, r) = (r![x + 1] | Serve[self]) } "
         "in Serve[svc]";
}

/// A client performing `n` chained RPCs against `server`'s svc.
inline std::string chained_rpc_client_src(const std::string& server, int n) {
  return "import svc from " + server +
         " in def Loop(i, acc) = if i == 0 then print[\"done\", acc] "
         "else let v = svc![acc] in Loop[i - 1, v] "
         "in Loop[" + std::to_string(n) + ", 0]";
}

/// A client running `threads` independent RPC loops of `n` calls each —
/// the latency-hiding workload (many small threads per site).
inline std::string fanout_rpc_client_src(const std::string& server,
                                         int threads, int n) {
  std::string src = "import svc from " + server +
                    " in def Loop(i, acc) = if i == 0 then print[\"t\", acc] "
                    "else let v = svc![acc] in Loop[i - 1, v] in (";
  for (int t = 0; t < threads; ++t) {
    if (t) src += " | ";
    src += "Loop[" + std::to_string(n) + ", " + std::to_string(t * 1000) +
           "]";
  }
  return src + ")";
}

/// Pure local compute: a recursion burning roughly `iters` reductions.
inline std::string spin_src(int iters) {
  return "def Spin(i) = if i == 0 then 0 else Spin[i - 1] in Spin[" +
         std::to_string(iters) + "]";
}

/// Markdown-style table row printing.
inline void row(const std::vector<std::string>& cells) {
  std::string line = "|";
  for (const auto& c : cells) line += " " + c + " |";
  std::puts(line.c_str());
}

inline std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

inline std::string fmt_int(std::uint64_t v) { return std::to_string(v); }

inline void header(const std::string& title,
                   const std::vector<std::string>& cols) {
  std::printf("\n### %s\n", title.c_str());
  row(cols);
  std::vector<std::string> dashes(cols.size(), "---");
  row(dashes);
}

/// `--metrics-json <path>` support: collects one metrics snapshot per
/// measured configuration and writes them all as a JSON array on
/// destruction. Benches call `record()` after each run; with no
/// `--metrics-json` flag everything is a no-op.
class MetricsJsonEmitter {
 public:
  MetricsJsonEmitter(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--metrics-json") path_ = argv[i + 1];
  }
  ~MetricsJsonEmitter() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out << "  {\"label\": \"" << obs::json_escape(entries_[i].first)
          << "\",\n   \"metrics\": " << entries_[i].second << "}";
      if (i + 1 < entries_.size()) out << ",";
      out << "\n";
    }
    out << "]\n";
  }

  bool enabled() const { return !path_.empty(); }

  /// Capture the network's registry under `label` (call after run()).
  void record(const std::string& label, core::Network& net) {
    if (path_.empty()) return;
    entries_.emplace_back(label, net.metrics().expose_json());
  }

 private:
  std::string path_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// `--bench-json <path>` support: the versioned bench result schema
/// (schema_version 2, one document per bench binary). Each measured
/// section records a STABLE name, its measurement unit ("virtual_us"
/// for simulated time, "wall_us" for wall clock), the operation count
/// per run and the raw per-run durations; the emitter derives
/// throughput (msgs_per_sec) and per-operation p50/p99 latency.
/// Sections are compared across commits BY NAME — rename one only with
/// an EXPERIMENTS.md note mapping old to new ("bench schema v2" there
/// records the v1 -> v2 renames). tools/bench_baseline.sh assembles the
/// per-binary documents into the committed BENCH_*.json baseline.
/// Without the flag everything is a no-op.
class BenchJson {
 public:
  BenchJson(std::string bench, int argc, char** argv)
      : bench_(std::move(bench)) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--bench-json") path_ = argv[i + 1];
  }
  ~BenchJson() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    out << "{\n  \"schema\": \"dityco-bench-v2\",\n"
        << "  \"schema_version\": 2,\n"
        << "  \"bench\": \"" << bench_ << "\",\n  \"sections\": [\n";
    for (std::size_t i = 0; i < sections_.size(); ++i)
      out << sections_[i] << (i + 1 < sections_.size() ? ",\n" : "\n");
    out << "  ]\n}\n";
  }

  bool enabled() const { return !path_.empty(); }

  /// One measured section: `run_us` holds one duration per repetition
  /// of a workload of `ops_per_run` operations. Percentiles are over
  /// the per-operation latencies run_us[i] / ops_per_run (a single
  /// deterministic sim run yields p50 == p99 == the mean, by design).
  void section(const std::string& name, const std::string& unit,
               double ops_per_run, std::vector<double> run_us) {
    if (path_.empty() || run_us.empty() || ops_per_run <= 0) return;
    std::vector<double> per_op;
    double total = 0;
    per_op.reserve(run_us.size());
    for (double us : run_us) {
      total += us;
      per_op.push_back(us / ops_per_run);
    }
    std::sort(per_op.begin(), per_op.end());
    const auto pct = [&](double q) {
      const auto idx =
          static_cast<std::size_t>(q * static_cast<double>(per_op.size()));
      return per_op[std::min(idx, per_op.size() - 1)];
    };
    const double ops = ops_per_run * static_cast<double>(run_us.size());
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"unit\": \"%s\", \"ops_per_run\": %.0f,"
        " \"runs\": %zu, \"total_us\": %.2f, \"msgs_per_sec\": %.1f,"
        " \"p50_us\": %.3f, \"p99_us\": %.3f}",
        name.c_str(), unit.c_str(), ops_per_run, run_us.size(), total,
        total > 0 ? ops / (total / 1e6) : 0.0, pct(0.50), pct(0.99));
    sections_.emplace_back(buf);
  }

  /// One measured section whose per-operation latency distribution comes
  /// from an SLO-plane histogram (every mobility operation's e2e latency)
  /// instead of being synthesized from run totals. This is what fixes the
  /// p50 == p99 collapse for single-run sim sections: the histogram holds
  /// one sample per operation, so the tail is real.
  void section_hist(const std::string& name, const std::string& unit,
                    const obs::SloHistogram::Snapshot& s, double total_us) {
    if (path_.empty() || s.count == 0) return;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"unit\": \"%s\", \"ops_per_run\": %llu,"
        " \"runs\": 1, \"total_us\": %.2f, \"msgs_per_sec\": %.1f,"
        " \"p50_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f,"
        " \"max_us\": %.3f}",
        name.c_str(), unit.c_str(),
        static_cast<unsigned long long>(s.count), total_us,
        total_us > 0 ? static_cast<double>(s.count) / (total_us / 1e6) : 0.0,
        s.quantile_us(0.50), s.quantile_us(0.99), s.quantile_us(0.999),
        static_cast<double>(s.max_ns) / 1e3);
    sections_.emplace_back(buf);
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::string> sections_;
};

/// `--monitor <port>` support: attach TyCOmon to each measured network so
/// a long sweep can be watched live (`curl localhost:<port>/metrics`).
/// With port 0 an ephemeral port is chosen per network and printed to
/// stderr; without the flag attach() is a no-op.
class MonitorFlag {
 public:
  MonitorFlag(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--monitor") {
        enabled_ = true;
        port_ = std::atoi(argv[i + 1]);
      }
  }

  bool enabled() const { return enabled_; }

  /// Start TyCOmon on `net` (call after the topology is built, before
  /// run()). Enables tracing so /trace has content.
  void attach(core::Network& net) {
    if (!enabled_) return;
    if (!net.tracing_enabled()) net.enable_tracing();
    const std::uint16_t p =
        net.start_monitor(static_cast<std::uint16_t>(port_));
    if (p == 0)
      std::fprintf(stderr, "monitor: cannot bind port %d\n", port_);
    else
      std::fprintf(stderr, "monitor: http://127.0.0.1:%u\n", p);
  }

 private:
  bool enabled_ = false;
  int port_ = 0;
};

/// `--profile` / `--flight` support: switch the sampled VM profiler
/// and/or tail-based trace retention on for every measured network.
/// After each run the profiler's folded stacks (`--profile`) and the
/// flight buffer's promotion counters (`--flight`) go to stderr, so the
/// measured stdout tables stay byte-identical. Without the flags
/// everything is a no-op — the "observability off" bench baseline.
class ObsFlags {
 public:
  ObsFlags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--profile") profile_ = true;
      if (arg == "--flight") flight_ = true;
      if (arg == "--flight-slow-us" && i + 1 < argc) {
        flight_ = true;
        slow_us_ = std::atof(argv[i + 1]);
      }
    }
  }

  bool profile() const { return profile_; }
  bool flight() const { return flight_; }

  /// Call after the topology is built, before run().
  void attach(core::Network& net) {
    if (profile_) net.enable_profiling(1024);
    if (flight_) {
      obs::FlightPolicy fp;
      // Default: keep the slowest ~1% of mobility completions; an
      // explicit --flight-slow-us threshold overrides the percentile.
      if (slow_us_ > 0)
        fp.slow_us = slow_us_;
      else
        fp.slow_pctl = 0.99;
      net.enable_flight(fp);
    }
  }

  /// Call after run(); `label` names the measured configuration.
  void report(const std::string& label, core::Network& net) {
    if (profile_) {
      std::fprintf(stderr, "-- profile [%s] --\n%s", label.c_str(),
                   net.profile_folded().c_str());
    }
    if (flight_) {
      using R = obs::FlightRecorder::Reason;
      auto& f = net.flight();
      std::fprintf(stderr,
                   "-- flight [%s] promoted slow=%llu error=%llu "
                   "starved=%llu rel=%llu of %llu completions --\n",
                   label.c_str(),
                   static_cast<unsigned long long>(f.promoted_count(R::kSlow)),
                   static_cast<unsigned long long>(
                       f.promoted_count(R::kError)),
                   static_cast<unsigned long long>(
                       f.promoted_count(R::kStarved)),
                   static_cast<unsigned long long>(
                       f.promoted_count(R::kRelAnomaly)),
                   static_cast<unsigned long long>(f.completions()));
    }
  }

 private:
  bool profile_ = false;
  bool flight_ = false;
  double slow_us_ = 0;
};

}  // namespace dityco::benchutil
