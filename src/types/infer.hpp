// Damas-Milner type inference for DiTyCO programs (one site's program at
// a time). Produces, besides the well-typedness verdict:
//   * a signature for every exported identifier (registered with the name
//     service by the runtime), and
//   * a *requirement* signature for every import (what this program needs
//     the remote identifier to support),
// which together realise the paper's combined static/dynamic checking
// scheme for remote interactions (section 7).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "calculus/ast.hpp"
#include "types/type.hpp"

namespace dityco::types {

struct ImportReq {
  std::string site;
  std::string name;
  bool is_class = false;
  std::string signature;  // required interface, canonical form
};

struct InferResult {
  /// Exported identifier -> canonical signature.
  std::map<std::string, std::string> exports;
  std::vector<ImportReq> imports;
};

/// Infer types for a program; throws TypeError on ill-typed programs.
InferResult infer(const calc::ProcPtr& p);

/// Statically check a whole network file: every import must be
/// compatible with a matching export somewhere in the network. Returns
/// human-readable problems (empty when well typed). Throws TypeError if
/// any single program is ill-typed.
std::vector<std::string> check_network(
    const std::vector<std::pair<std::string, calc::ProcPtr>>& programs);

}  // namespace dityco::types
