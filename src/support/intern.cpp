#include "support/intern.hpp"

namespace dityco {

Interner::Id Interner::intern(std::string_view s) {
  auto it = map_.find(std::string(s));
  if (it != map_.end()) return it->second;
  const Id id = static_cast<Id>(names_.size());
  names_.emplace_back(s);
  map_.emplace(names_.back(), id);
  return id;
}

bool Interner::find(std::string_view s, Id& out) const {
  auto it = map_.find(std::string(s));
  if (it == map_.end()) return false;
  out = it->second;
  return true;
}

}  // namespace dityco
