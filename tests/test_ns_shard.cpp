// Tests for the decentralized (sharded) name service — src/ns plus its
// core integration: the rendezvous shard map's determinism and minimal-
// movement property, the lease cache's hit/expiry/invalidation and
// retroactive stale accounting, per-key routing of register/lookup/
// unregister to the owning shard, follower replication, lease-cache
// serving on repeat imports, invalidation pushes on rebind, and
// GC-clean teardown with sharding enabled.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "ns/cache.hpp"
#include "ns/shard.hpp"

namespace dityco {
namespace {

using core::Network;

// -- ShardRouter ------------------------------------------------------

TEST(ShardRouter, DeterministicAndSpread) {
  ns::ShardRouter a(8), b(8);
  std::set<std::uint32_t> primaries;
  for (int i = 0; i < 200; ++i) {
    const std::string name = "k" + std::to_string(i);
    const auto oa = a.owners_of("s", name);
    const auto ob = b.owners_of("s", name);
    EXPECT_EQ(oa.primary, ob.primary);
    EXPECT_EQ(oa.replica, ob.replica);
    EXPECT_LT(oa.primary, 8u);
    EXPECT_LT(oa.replica, 8u);
    EXPECT_NE(oa.primary, oa.replica);
    primaries.insert(oa.primary);
  }
  // 200 keys over 8 shards: every shard owns some.
  EXPECT_EQ(primaries.size(), 8u);
}

TEST(ShardRouter, NoReplicasRequested) {
  ns::ShardRouter r(4, /*replicas=*/0);
  EXPECT_EQ(r.owners_of("s", "k").replica, ns::ShardRouter::kNoNode);
  EXPECT_NE(r.owners_of("s", "k").primary, ns::ShardRouter::kNoNode);
}

TEST(ShardRouter, DeathMovesOnlyTheDeadNodesKeys) {
  ns::ShardRouter before(8), after(8);
  ASSERT_TRUE(after.note_dead(3));
  EXPECT_FALSE(after.note_dead(3));  // idempotent
  EXPECT_EQ(after.epoch(), 1u);
  for (int i = 0; i < 300; ++i) {
    const std::string name = "key" + std::to_string(i);
    const auto old = before.owners_of("s", name);
    const auto now = after.owners_of("s", name);
    EXPECT_NE(now.primary, 3u);
    EXPECT_NE(now.replica, 3u);
    if (old.primary != 3u) {
      // HRW: removal of another member never moves this key's primary.
      EXPECT_EQ(now.primary, old.primary);
    } else {
      // The dead primary's keys promote to their old replica.
      EXPECT_EQ(now.primary, old.replica);
    }
  }
}

TEST(ShardRouter, MergeDeadIsAdvisoryButMovesTheMap) {
  ns::ShardRouter r(4);
  const std::uint64_t g0 = r.generation();
  EXPECT_TRUE(r.merge_dead({2}));
  EXPECT_FALSE(r.merge_dead({2}));
  EXPECT_TRUE(r.is_dead(2));
  EXPECT_GT(r.generation(), g0);
  EXPECT_EQ(r.dead(), std::vector<std::uint32_t>{2});
}

// -- LeaseCache -------------------------------------------------------

vm::NetRef ref_on(std::uint32_t node, std::uint64_t heap_id) {
  vm::NetRef r;
  r.node = node;
  r.site = 0;
  r.heap_id = heap_id;
  return r;
}

TEST(LeaseCache, HitWithinLeaseMissAfter) {
  ns::LeaseCache c(/*lease_ns=*/1000);
  vm::NetRef out;
  std::string sig;
  EXPECT_FALSE(c.lookup("s", "p", vm::NetRef::Kind::kChan, 0, out, sig));
  c.store("s", "p", ref_on(2, 7), "sig", /*now_ns=*/100);
  EXPECT_TRUE(c.lookup("s", "p", vm::NetRef::Kind::kChan, 500, out, sig));
  EXPECT_EQ(out.node, 2u);
  EXPECT_EQ(sig, "sig");
  // Expired at now >= expires.
  EXPECT_FALSE(c.lookup("s", "p", vm::NetRef::Kind::kChan, 1100, out, sig));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(LeaseCache, KindMismatchIsAMiss) {
  ns::LeaseCache c(1000);
  c.store("s", "p", ref_on(1, 1), "sig", 0);
  vm::NetRef out;
  std::string sig;
  EXPECT_FALSE(c.lookup("s", "p", vm::NetRef::Kind::kClass, 10, out, sig));
}

TEST(LeaseCache, InvalidationDropsEntry) {
  ns::LeaseCache c(1000);
  c.store("s", "p", ref_on(1, 1), "", 0);
  c.store("s", "q", ref_on(2, 2), "", 0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.invalidate("s", "p"), 1u);
  EXPECT_EQ(c.invalidate("s", "p"), 0u);
  EXPECT_EQ(c.invalidate_node(2), 1u);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.invalidations(), 1u);
  EXPECT_EQ(c.evictions(), 2u);
}

TEST(LeaseCache, StaleHitsAccountedRetroactively) {
  ns::LeaseCache c(1000);
  vm::NetRef out;
  std::string sig;
  c.store("s", "p", ref_on(1, 1), "", 0);
  // Three hits served off this lease...
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(c.lookup("s", "p", vm::NetRef::Kind::kChan, 10 + i, out, sig));
  // ...then the authoritative store reveals the binding changed: those
  // hits are counted stale after the fact.
  c.store("s", "p", ref_on(1, 99), "", 500);
  EXPECT_EQ(c.stale_served(), 3u);
  // A same-ref refresh does not count its hits stale.
  EXPECT_TRUE(c.lookup("s", "p", vm::NetRef::Kind::kChan, 600, out, sig));
  c.store("s", "p", ref_on(1, 99), "", 700);
  EXPECT_EQ(c.stale_served(), 3u);
}

// -- Sharded end-to-end ----------------------------------------------

Network shard_net(Network::Mode mode = Network::Mode::kSequential,
                  std::uint64_t lease_ms = 0) {
  Network::Config cfg;
  cfg.mode = mode;
  cfg.ns_shards = 4;
  cfg.ns_replicas = 1;
  cfg.ns_lease_ms = lease_ms;
  Network net(cfg);
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  return net;
}

TEST(NsShard, RpcWorks) {
  auto net = shard_net();
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"});
  ASSERT_NE(net.ns_router(), nullptr);
  // The binding lives on exactly one primary (credit holder) and one
  // follower (weak copy).
  const std::uint32_t prim = net.ns_router()->primary_of("server", "p");
  const std::uint32_t repl = net.ns_router()->replica_of("server", "p");
  EXPECT_TRUE(
      net.nodes()[prim]->name_service().lookup_id("server", "p").has_value());
  EXPECT_TRUE(
      net.nodes()[repl]->name_service().lookup_id("server", "p").has_value());
  for (const auto& n : net.nodes()) {
    if (n->id() == prim || n->id() == repl) continue;
    EXPECT_FALSE(n->name_service().lookup_id("server", "p").has_value());
  }
}

TEST(NsShard, LookupBeforeExportParksAtOwningShard) {
  auto net = shard_net();
  net.submit_source("client",
                    "import p from server in let z = p![1] in print[z]");
  auto r1 = net.run();
  EXPECT_TRUE(r1.stalled);
  net.submit_source("server",
                    "export new p in p?{ val(x, rep) = rep![x + 1] }");
  auto r2 = net.run();
  EXPECT_TRUE(r2.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"2"});
}

TEST(NsShard, ThreadedDriverWorks) {
  auto net = shard_net(Network::Mode::kThreaded);
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"});
}

TEST(NsShard, SimDriverQuiesces) {
  auto net = shard_net(Network::Mode::kSim);
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"42"});
  EXPECT_GT(res.virtual_time_us, 0.0);
}

TEST(NsShard, GcDrainsEveryShardSlice) {
  auto net = shard_net();
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = rep![x * 2] } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  EXPECT_TRUE(net.run().quiescent);
  auto rep = net.collect_garbage();
  EXPECT_EQ(rep.ns_ids, 0u);        // primaries and follower copies
  EXPECT_EQ(rep.exports_live, 0u);
  EXPECT_EQ(rep.netrefs_live, 0u);
  // Audit over the shard scopes balances.
  EXPECT_TRUE(net.self_audit().balanced);
}

TEST(NsShard, RepeatImportServedFromLeaseCache) {
  auto net = shard_net(Network::Mode::kSequential, /*lease_ms=*/60'000);
  net.add_site(1, "client2");  // same node as "client": shares its cache
  net.submit_network_source(
      "site server { export new p in p?{ val(x, rep) = (rep![x * 2] | "
      "p?{ val(y, r2) = r2![y * 2] }) } }\n"
      "site client { import p from server in let z = p![21] in print[z] }");
  EXPECT_TRUE(net.run().quiescent);
  ASSERT_NE(net.lease_cache(1), nullptr);
  EXPECT_EQ(net.lease_cache(1)->hits(), 0u);
  EXPECT_GE(net.lease_cache(1)->misses(), 1u);
  EXPECT_EQ(net.lease_cache(1)->size(), 1u);
  // Second import of the same binding from the same node: no wire
  // lookup, the cache answers.
  net.submit_source("client2",
                    "import p from server in let z = p![5] in print[z]");
  EXPECT_TRUE(net.run().quiescent);
  EXPECT_EQ(net.output("client2"), std::vector<std::string>{"10"});
  EXPECT_EQ(net.lease_cache(1)->hits(), 1u);
}

TEST(NsShard, RebindPushesInvalidationToLeaseHolders) {
  auto net = shard_net(Network::Mode::kSequential, /*lease_ms=*/60'000);
  net.submit_network_source(
      "site server { export new p in 0 }\n"
      "site client { import p from server in 0 }");
  EXPECT_TRUE(net.run().quiescent);
  ASSERT_NE(net.lease_cache(1), nullptr);
  ASSERT_EQ(net.lease_cache(1)->size(), 1u);
  // Rebinding the name to a fresh channel must invalidate the client
  // node's cached entry.
  net.submit_source("server", "export new p in 0");
  EXPECT_TRUE(net.run().quiescent);
  EXPECT_EQ(net.lease_cache(1)->size(), 0u);
  EXPECT_GE(net.lease_cache(1)->invalidations(), 1u);
}

TEST(NsShard, NamesJsonReportsShardingAndCaches) {
  auto net = shard_net(Network::Mode::kSequential, /*lease_ms=*/60'000);
  net.submit_network_source(
      "site server { export new p in 0 }\n"
      "site client { import p from server in 0 }");
  EXPECT_TRUE(net.run().quiescent);
  const std::string j = net.names_json();
  EXPECT_NE(j.find("\"sharding\""), std::string::npos);
  EXPECT_NE(j.find("\"shards\":4"), std::string::npos);
  EXPECT_NE(j.find("\"caches\""), std::string::npos);
  EXPECT_NE(j.find("shard0"), std::string::npos);
}

}  // namespace
}  // namespace dityco
