// Distributed GC for network references (DESIGN.md §GC): credit-based
// reference counting over the wire protocol, proven by leak checks.
//
// The acceptance bar: after representative workloads — a token ring over
// imported names, class fetching, object shipping — every site's export
// table and the name service's IdTable are empty once the final GC epoch
// (Network::collect_garbage) runs, and heaps return to their baselines.
// Machine-level tests pin the REL protocol's idempotence (duplicates,
// reorders, stale releases) and the credit-split starvation path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/network.hpp"
#include "core/wire.hpp"
#include "net/transport.hpp"
#include "obs/fleet.hpp"
#include "vm/machine.hpp"

namespace dityco::core {
namespace {

// ---------------------------------------------------------------------
// Network-level leak checks
// ---------------------------------------------------------------------

/// Three sites on three nodes passing a token around a ring of imported
/// names. Exercises export/import via the name service plus SHIPM credit
/// transfer in both directions; r0 prints the token after two hops.
void build_ring(Network& net) {
  net.add_node();
  net.add_node();
  net.add_node();
  net.add_site(0, "r0");
  net.add_site(1, "r1");
  net.add_site(2, "r2");
  net.submit_source(
      "r0", "export new c0 in import c1 from r1 in (c1![0] | c0?(v) = print[v])");
  net.submit_source("r1",
                    "export new c1 in import c2 from r2 in c1?(v) = c2![v + 1]");
  net.submit_source("r2",
                    "export new c2 in import c0 from r0 in c2?(v) = c0![v + 1]");
}

void expect_all_empty(Network& net, const Network::GcReport& rep) {
  EXPECT_EQ(rep.exports_live, 0u) << "export-table entries leaked";
  EXPECT_EQ(rep.netrefs_live, 0u) << "netref slots leaked";
  EXPECT_EQ(rep.ns_ids, 0u) << "IdTable bindings leaked";
  for (const auto& n : net.nodes())
    for (const auto& s : n->sites()) {
      EXPECT_EQ(s->machine().live_exports(), 0u) << s->name();
      EXPECT_EQ(s->machine().exports_outstanding(), 0u) << s->name();
      EXPECT_EQ(s->machine().live_channels(), 0u) << s->name();
    }
}

TEST(Gc, RingDrainsToEmpty) {
  Network net;
  build_ring(net);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("r0"), std::vector<std::string>{"2"});
  auto rep = net.collect_garbage();
  EXPECT_GE(rep.rounds, 1u);
  expect_all_empty(net, rep);
  // Every site reclaimed its own exported name's entry.
  for (const auto& n : net.nodes())
    for (const auto& s : n->sites())
      EXPECT_GE(s->machine().gc_stats().exports_reclaimed, 1u) << s->name();
}

TEST(Gc, FetchMobilityDrainsToEmpty) {
  // Class code fetching (FETCH/instof) with the dynamic-link cache: the
  // cached class value and its keying netref are pinned during the run
  // and dropped by the final epoch.
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_network_source(
      "site server { export def A(out) = out![1] in 0 }\n"
      "site client { import A from server in "
      "new p (A[p] | p?(a) = (print[a] | A[p] | p?(b) = print[b])) }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), (std::vector<std::string>{"1", "1"}));
  EXPECT_EQ(net.find_site("client")->mobility().fetch_cache_hits, 1u);
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, ShipObjectDrainsToEmpty) {
  // SHIPO: the object (with its marshalled environment) migrates to the
  // imported name and reduces there.
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_network_source(
      "site server { export new x in x![10] }\n"
      "site client { import x from server in x?(v) = print[v + 1] }");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("server"), std::vector<std::string>{"11"});
  EXPECT_EQ(net.find_site("client")->mobility().objs_shipped, 1u);
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, ReplyChannelReclaimedDuringRun) {
  // The classic RPC leak: the client marshals a fresh reply channel per
  // call, creating an export-table entry the pre-GC runtime could never
  // drop. With credit GC the server's collection releases the carried
  // credit as soon as its handle dies, and the entry drains *during the
  // run* — no final epoch needed.
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server", "export new p in p?{ val(x, r) = r![x * 2] }");
  net.submit_source("client",
                    "import p from server in let z = p![5] in print[z]");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("client"), std::vector<std::string>{"10"});
  Site& client = *net.find_site("client");
  Site& server = *net.find_site("server");
  EXPECT_EQ(client.machine().live_exports(), 0u)
      << "reply-channel entry must auto-reclaim at quiescence";
  EXPECT_EQ(client.machine().gc_stats().exports_reclaimed, 1u);
  EXPECT_EQ(server.machine().live_netrefs(), 0u);
  EXPECT_GE(server.mobility().gc_rel_sent, 1u);
  EXPECT_GE(client.mobility().gc_rel_received, 1u);
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, ThreadedRingDrainsToEmpty) {
  Network::Config cfg;
  cfg.mode = Network::Mode::kThreaded;
  cfg.timeout_ms = 5000;
  Network net(cfg);
  build_ring(net);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_TRUE(net.all_errors().empty());
  EXPECT_EQ(net.output("r0"), std::vector<std::string>{"2"});
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, SimRingDrainsToEmpty) {
  // The sim driver defers GC entirely (virtual-time results must not pay
  // for collection passes); the final epoch drives the timed transport
  // with a far-future clock and still drains everything.
  Network::Config cfg;
  cfg.mode = Network::Mode::kSim;
  Network net(cfg);
  build_ring(net);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_GT(res.virtual_time_us, 0.0);
  EXPECT_EQ(net.output("r0"), std::vector<std::string>{"2"});
  std::size_t live = 0;
  for (const auto& n : net.nodes())
    for (const auto& s : n->sites()) live += s->machine().live_exports();
  EXPECT_GT(live, 0u) << "sim mode must not collect mid-run";
  expect_all_empty(net, net.collect_garbage());
}

TEST(Gc, DisabledGcKeepsLegacyBehaviour) {
  // cfg.gc = false: no credit on the wire, entries live forever, and
  // collect_garbage is a no-op report.
  Network::Config cfg;
  cfg.gc = false;
  Network net(cfg);
  build_ring(net);
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(net.output("r0"), std::vector<std::string>{"2"});
  std::size_t live = 0;
  for (const auto& n : net.nodes())
    for (const auto& s : n->sites()) live += s->machine().live_exports();
  EXPECT_GE(live, 3u);
  auto rep = net.collect_garbage();
  EXPECT_EQ(rep.rounds, 0u);
}

TEST(Gc, MetricsExposed) {
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  net.submit_source("server", "export new p in p?{ val(x, r) = r![x] }");
  net.submit_source("client", "import p from server in let z = p![1] in 0");
  auto res = net.run();
  EXPECT_TRUE(res.quiescent);
  net.collect_garbage();
  const std::string text = net.metrics().expose_text();
  EXPECT_NE(text.find("site_exports_live{site=\"server\"}"), std::string::npos);
  EXPECT_NE(text.find("site_gc_reclaimed_total{site=\"client\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ns_unregisters{ns=\"central\"}"), std::string::npos);
}

// ---------------------------------------------------------------------
// Machine-level REL protocol semantics
// ---------------------------------------------------------------------

using vm::Machine;
using vm::NetRef;
using vm::Value;

/// Marshal a local channel out of `owner` (minting credit) and intern
/// the resulting reference at `holder`; returns the netref Value.
Value ship_chan(Machine& owner, std::uint32_t chan, Machine& holder) {
  Writer w;
  marshal_value(owner, Value::make_chan(chan), w, /*gc=*/true);
  const auto bytes = w.take();
  Reader r(bytes);
  return unmarshal_value(holder, r, /*gc=*/true);
}

TEST(GcProtocol, ReleaseDrainsAndReclaims) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  const Value v = ship_chan(owner, ch, peer);
  ASSERT_EQ(v.tag, Value::Tag::kNetRef);
  EXPECT_EQ(owner.live_exports(), 1u);
  EXPECT_EQ(owner.exports_outstanding(), peer.netref_credit_total());

  peer.gc();  // no roots: the handle dies, its balance joins the ledger
  auto rels = peer.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  const auto [ref, cum] = rels[0];
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, peer.node_id(),
                                peer.site_id(), cum),
            Machine::ReleaseResult::kReclaimed);
  EXPECT_EQ(owner.live_exports(), 0u);
  owner.gc();
  EXPECT_EQ(owner.live_channels(), 0u);
}

TEST(GcProtocol, DuplicateReleaseIsStale) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  ship_chan(owner, ch, peer);
  peer.gc();
  const auto rels = peer.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  const auto [ref, cum] = rels[0];
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum),
            Machine::ReleaseResult::kReclaimed);
  // The duplicate targets a reclaimed entry (heap ids are never reused):
  // stale, harmless.
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum),
            Machine::ReleaseResult::kStale);
  EXPECT_GE(owner.gc_stats().rel_stale, 1u);
}

TEST(GcProtocol, ReorderedReleasesMaxMerge) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  // Two marshals of the same channel: minted twice against one entry.
  ship_chan(owner, ch, peer);
  peer.gc();
  const auto first = peer.take_pending_releases();
  ASSERT_EQ(first.size(), 1u);
  const auto [ref, cum1] = first[0];

  ship_chan(owner, ch, peer);  // second handle, same heap id
  peer.gc();
  const auto second = peer.take_pending_releases();
  ASSERT_EQ(second.size(), 1u);
  const auto cum2 = second[0].second;
  ASSERT_GT(cum2, cum1) << "cumulative totals only grow";

  // Deliver newest-first; the older total must be recognised as stale
  // and must not resurrect outstanding credit.
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum2),
            Machine::ReleaseResult::kReclaimed);
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum1),
            Machine::ReleaseResult::kStale);
  EXPECT_EQ(owner.live_exports(), 0u);
}

TEST(GcProtocol, PartialReleaseDoesNotReclaim) {
  Machine owner("owner", 0, 0);
  Machine a("a", 1, 0);
  Machine b("b", 2, 0);
  const std::uint32_t ch = owner.new_channel();
  ship_chan(owner, ch, a);
  ship_chan(owner, ch, b);  // two holders, minted twice
  a.gc();
  const auto rels = a.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  const auto [ref, cum] = rels[0];
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, cum),
            Machine::ReleaseResult::kApplied);
  EXPECT_EQ(owner.live_exports(), 1u) << "b still holds credit";
  EXPECT_EQ(owner.exports_outstanding(), b.netref_credit_total());
}

TEST(GcProtocol, LegacyEntriesAreNeverReclaimed) {
  // export_chan without credit (a non-GC peer's view): minted == 0
  // marks the entry immortal, preserving pre-GC semantics.
  Machine owner("owner", 0, 0);
  const std::uint32_t ch = owner.new_channel();
  const std::uint64_t id = owner.export_chan(ch);
  // Releases and returns against it are recorded but can never drain a
  // zero mint: the entry survives arbitrary credit traffic.
  EXPECT_EQ(owner.apply_release(NetRef::Kind::kChan, id, 1, 0, 1ull << 40),
            Machine::ReleaseResult::kApplied);
  owner.return_export_credit(NetRef::Kind::kChan, id, 1ull << 40);
  EXPECT_EQ(owner.live_exports(), 1u);
  EXPECT_EQ(owner.exports_outstanding(), 0u);
}

TEST(GcProtocol, NameServicePinBlocksReclaim) {
  Machine owner("owner", 0, 0);
  Machine peer("peer", 1, 0);
  const std::uint32_t ch = owner.new_channel();
  const Value v = ship_chan(owner, ch, peer);
  const NetRef ref = peer.netref(v.idx);
  owner.pin_name(ref);
  peer.gc();
  const auto rels = peer.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(owner.apply_release(ref.kind, ref.heap_id, 1, 0, rels[0].second),
            Machine::ReleaseResult::kApplied)
      << "fully drained but pinned: no reclaim";
  EXPECT_EQ(owner.live_exports(), 1u);
  owner.unpin_name(ref);
  EXPECT_EQ(owner.live_exports(), 0u) << "unpin completes the reclaim";
}

TEST(GcProtocol, ForwardingSplitsCreditAndStarves) {
  Machine owner("owner", 0, 0);
  Machine a("a", 1, 0);
  Machine b("b", 2, 0);
  const std::uint32_t ch = owner.new_channel();
  const Value va = ship_chan(owner, ch, a);

  // Forward a -> b: half the balance travels.
  Writer w;
  marshal_value(a, va, w, /*gc=*/true);
  const auto bytes = w.take();
  Reader r(bytes);
  unmarshal_value(b, r, /*gc=*/true);
  EXPECT_EQ(a.netref_credit_total(), vm::kMintCredit / 2);
  EXPECT_EQ(b.netref_credit_total(), vm::kMintCredit / 2);
  EXPECT_EQ(owner.exports_outstanding(),
            a.netref_credit_total() + b.netref_credit_total());

  // Starvation: a balance of 1 cannot split — the copy ships weak
  // (credit 0) and the starvation counter records the safe leak.
  Machine c("c", 3, 0);
  const std::uint32_t idx =
      c.intern_netref_credit(NetRef{NetRef::Kind::kChan, 0, 0, 999}, 1);
  EXPECT_EQ(c.split_netref_credit(idx), 0u);
  EXPECT_EQ(c.gc_stats().credit_starved, 1u);
}

TEST(GcProtocol, HeapSlotsAreReused) {
  Machine m("m", 0, 0);
  const std::uint32_t a = m.new_channel();
  const std::uint32_t b = m.new_channel();
  EXPECT_EQ(m.live_channels(), 2u);
  m.gc();  // both unreachable
  EXPECT_EQ(m.live_channels(), 0u);
  const std::uint32_t c = m.new_channel();
  EXPECT_TRUE(c == a || c == b) << "freed slots are recycled";
  EXPECT_EQ(m.live_channels(), 1u);
}

// ---------------------------------------------------------------------
// GC snapshots and the credit audit plane
// ---------------------------------------------------------------------

TEST(GcSnapshot, LedgersMirrorTheExportTable) {
  // One channel shipped to two holders, one of which releases: the
  // snapshot must expose the full per-entry ledger — mint/return/release
  // totals, the applied releaser slot under its (node<<32)|site key —
  // plus the holder's import balance and the releaser's cumulative
  // ledger, which outlives the handle.
  Machine owner("owner", 0, 0);
  Machine a("a", 1, 0);
  Machine b("b", 2, 1);
  const std::uint32_t ch = owner.new_channel();
  ship_chan(owner, ch, a);
  ship_chan(owner, ch, b);
  a.gc();
  const auto rels = a.take_pending_releases();
  ASSERT_EQ(rels.size(), 1u);
  const auto [ref, cum] = rels[0];
  ASSERT_EQ(owner.apply_release(ref.kind, ref.heap_id, a.node_id(),
                                a.site_id(), cum),
            Machine::ReleaseResult::kApplied);

  const auto snap = owner.gc_snapshot();
  EXPECT_EQ(snap.node, 0u);
  ASSERT_EQ(snap.exports.size(), 1u);
  const auto& e = snap.exports[0];
  EXPECT_EQ(e.heap_id, ref.heap_id);
  EXPECT_EQ(e.minted, 2 * vm::kMintCredit);
  EXPECT_EQ(e.released, cum);
  EXPECT_EQ(e.minted, e.returned + e.released + e.outstanding);
  EXPECT_EQ(e.outstanding, b.netref_credit_total());
  ASSERT_EQ(e.releasers.size(), 1u);
  EXPECT_EQ(e.releasers[0].first, (std::uint64_t{1} << 32) | 0u);
  EXPECT_EQ(e.releasers[0].second, cum);
  EXPECT_EQ(snap.outstanding, e.outstanding);
  EXPECT_GT(e.touched_ns, 0u);

  const auto held = b.gc_snapshot();
  ASSERT_EQ(held.imports.size(), 1u);
  EXPECT_EQ(held.imports[0].credit, e.outstanding);
  EXPECT_EQ(held.held, e.outstanding);
  const auto released = a.gc_snapshot();
  ASSERT_EQ(released.releases.size(), 1u);
  EXPECT_EQ(released.releases[0].cum, cum);
  EXPECT_EQ(released.held, 0u);
}

TEST(GcAudit, DroppedRelIsFlaggedThenHealed) {
  // A REL frame the wire loses shows up in the fleet audit as lag on the
  // owner's entry — the releaser's cumulative ledger declares more than
  // the owner's applied slot — and an at-rest cumulative retransmission
  // (Network::heal_releases) clears it. Resend timer deliberately off so
  // the imbalance persists until healed explicitly.
  Network net;
  net.add_node();
  net.add_node();
  net.add_site(0, "server");
  net.add_site(1, "client");
  auto& tr = dynamic_cast<net::InProcTransport&>(net.transport());
  auto first = std::make_shared<std::atomic<bool>>(true);
  tr.set_drop_filter([first](const net::Packet& p) {
    return packet_type(p.bytes) == MsgType::kRelease && first->exchange(false);
  });
  net.submit_source("server",
                    "def S(self) = self?{ val(x, r) = (r![x] | S[self]) } in "
                    "export new p in S[p]");
  net.submit_source("client",
                    "import p from server in new a (p![7, a] | a?(v) = 0)");
  ASSERT_TRUE(net.run().quiescent);
  ASSERT_TRUE(net.all_errors().empty());
  net.collect_garbage();
  ASSERT_GE(tr.dropped(), 1u) << "the fault fired";

  namespace fleet = obs::fleet;
  auto audit = [&net] {
    fleet::Json gc, names;
    EXPECT_TRUE(fleet::parse_json(net.gc_json(), gc));
    EXPECT_TRUE(fleet::parse_json(net.names_json(), names));
    return fleet::audit({gc}, {names}, {0, 1});
  };

  const fleet::AuditReport broken = audit();
  EXPECT_FALSE(broken.balanced) << broken.to_text();
  EXPECT_GT(broken.lag, 0u);
  ASSERT_GE(broken.offenders.size(), 1u);
  EXPECT_EQ(broken.offenders[0].why, "rel_lost");
  // Whichever REL went first — the server's for the client's reply
  // channel, or the client's for the service — the lag pins its owner.
  EXPECT_LE(broken.offenders[0].owner_node, 1u);
  EXPECT_GT(broken.offenders[0].lag, 0u);

  // Heal: retransmit every cumulative REL at rest and drain; the
  // idempotent max-merge at the owner absorbs the replay.
  EXPECT_GT(net.heal_releases(), 0u);
  const fleet::AuditReport healed = audit();
  EXPECT_TRUE(healed.balanced) << healed.to_text();
  EXPECT_EQ(healed.lag, 0u);
  EXPECT_EQ(net.collect_garbage().exports_live, 0u);
}

}  // namespace
}  // namespace dityco::core
