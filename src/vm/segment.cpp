#include "vm/segment.hpp"

namespace dityco::vm {

int op_arity(Op op) {
  switch (op) {
    case Op::kHalt:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe:
    case Op::kAndB:
    case Op::kOrB:
    case Op::kConcat:
    case Op::kNeg:
    case Op::kNot:
      return 0;
    case Op::kPushFloat:
    case Op::kPushStr:
    case Op::kPushBool:
    case Op::kLoad:
    case Op::kStore:
    case Op::kJmp:
    case Op::kJmpIfFalse:
    case Op::kNewChan:
    case Op::kInstOf:
    case Op::kLoadSibling:
    case Op::kPrint:
      return 1;
    case Op::kPushInt:
    case Op::kGlobal:
    case Op::kTrMsg:
    case Op::kTrObj:
    case Op::kFork:
    case Op::kExportName:
    case Op::kExportClass:
      return 2;
    case Op::kImportName:
    case Op::kImportClass:
      return 3;
    case Op::kMkBlock:
      return 4;
  }
  return 0;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kHalt: return "halt";
    case Op::kPushInt: return "pushi";
    case Op::kPushFloat: return "pushf";
    case Op::kPushStr: return "pushs";
    case Op::kPushBool: return "pushb";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kAndB: return "and";
    case Op::kOrB: return "or";
    case Op::kConcat: return "concat";
    case Op::kNeg: return "neg";
    case Op::kNot: return "not";
    case Op::kJmp: return "jmp";
    case Op::kJmpIfFalse: return "jmpf";
    case Op::kNewChan: return "newc";
    case Op::kGlobal: return "global";
    case Op::kTrMsg: return "trmsg";
    case Op::kTrObj: return "trobj";
    case Op::kInstOf: return "instof";
    case Op::kFork: return "fork";
    case Op::kMkBlock: return "mkblock";
    case Op::kLoadSibling: return "loadsib";
    case Op::kPrint: return "print";
    case Op::kExportName: return "exportn";
    case Op::kExportClass: return "exportc";
    case Op::kImportName: return "importn";
    case Op::kImportClass: return "importc";
  }
  return "?";
}

void Segment::serialize(Writer& w) const {
  w.u32(guid.node);
  w.u32(guid.site);
  w.u32(guid.index);
  w.u32(static_cast<std::uint32_t>(code.size()));
  for (std::uint32_t c : code) w.u32(c);
  w.u32(static_cast<std::uint32_t>(labels.size()));
  for (const auto& s : labels) w.str(s);
  w.u32(static_cast<std::uint32_t>(strings.size()));
  for (const auto& s : strings) w.str(s);
  w.u32(static_cast<std::uint32_t>(floats.size()));
  for (double f : floats) w.f64(f);
  w.u32(static_cast<std::uint32_t>(deps.size()));
  for (const auto& d : deps) {
    w.u32(d.node);
    w.u32(d.site);
    w.u32(d.index);
  }
}

Segment Segment::deserialize(Reader& r) {
  Segment s;
  s.guid.node = r.u32();
  s.guid.site = r.u32();
  s.guid.index = r.u32();
  const std::uint32_t ncode = r.u32();
  s.code.reserve(ncode);
  for (std::uint32_t i = 0; i < ncode; ++i) s.code.push_back(r.u32());
  const std::uint32_t nlab = r.u32();
  for (std::uint32_t i = 0; i < nlab; ++i) s.labels.push_back(r.str());
  const std::uint32_t nstr = r.u32();
  for (std::uint32_t i = 0; i < nstr; ++i) s.strings.push_back(r.str());
  const std::uint32_t nflt = r.u32();
  for (std::uint32_t i = 0; i < nflt; ++i) s.floats.push_back(r.f64());
  const std::uint32_t ndep = r.u32();
  for (std::uint32_t i = 0; i < ndep; ++i) {
    SegmentGuid g;
    g.node = r.u32();
    g.site = r.u32();
    g.index = r.u32();
    s.deps.push_back(g);
  }
  return s;
}

std::size_t Program::byte_size() const {
  std::size_t n = 0;
  for (const auto& s : segments) {
    n += s.code.size() * sizeof(std::uint32_t);
    for (const auto& l : s.labels) n += l.size() + 4;
    for (const auto& c : s.strings) n += c.size() + 4;
    n += s.floats.size() * sizeof(double);
    n += s.deps.size() * sizeof(SegmentGuid);
  }
  return n;
}

}  // namespace dityco::vm
