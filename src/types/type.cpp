#include "types/type.hpp"

#include <atomic>
#include <cctype>
#include <set>
#include <sstream>

namespace dityco::types {

namespace {
std::atomic<std::uint64_t> next_var_id{1};
}

TypePtr t_var() {
  auto t = std::make_shared<Type>();
  t->k = Type::K::kVar;
  t->id = next_var_id.fetch_add(1);
  return t;
}

namespace {
TypePtr scalar(Type::K k) {
  auto t = std::make_shared<Type>();
  t->k = k;
  return t;
}
}  // namespace

TypePtr t_int() { return scalar(Type::K::kInt); }
TypePtr t_bool() { return scalar(Type::K::kBool); }
TypePtr t_float() { return scalar(Type::K::kFloat); }
TypePtr t_string() { return scalar(Type::K::kString); }

TypePtr t_chan(TypePtr row) {
  auto t = scalar(Type::K::kChan);
  t->row = std::move(row);
  return t;
}

TypePtr t_row_empty() { return scalar(Type::K::kRowEmpty); }

TypePtr t_row_cons(std::string label, std::vector<TypePtr> payload,
                   TypePtr tail) {
  auto t = scalar(Type::K::kRowCons);
  t->label = std::move(label);
  t->payload = std::move(payload);
  t->tail = std::move(tail);
  return t;
}

TypePtr t_params(std::vector<TypePtr> params) {
  auto t = scalar(Type::K::kParams);
  t->params = std::move(params);
  return t;
}

TypePtr prune(const TypePtr& t) {
  TypePtr cur = t;
  while (cur->k == Type::K::kVar && cur->link) cur = cur->link;
  // Path compression.
  if (cur != t && t->link != cur) {
    TypePtr walk = t;
    while (walk->k == Type::K::kVar && walk->link) {
      TypePtr next = walk->link;
      walk->link = cur;
      walk = next;
    }
  }
  return cur;
}

namespace {

bool occurs(const TypePtr& v, const TypePtr& t0) {
  TypePtr t = prune(t0);
  if (t == v) return true;
  switch (t->k) {
    case Type::K::kChan:
      return occurs(v, t->row);
    case Type::K::kRowCons: {
      for (const auto& p : t->payload)
        if (occurs(v, p)) return true;
      return occurs(v, t->tail);
    }
    case Type::K::kParams: {
      for (const auto& p : t->params)
        if (occurs(v, p)) return true;
      return false;
    }
    default:
      return false;
  }
}

void bind_var(const TypePtr& v, const TypePtr& t) {
  if (occurs(v, t))
    throw TypeError("cannot construct infinite (recursive) type");
  if (v->numeric) {
    TypePtr r = prune(t);
    if (r->k == Type::K::kVar) {
      r->numeric = true;
    } else if (r->k != Type::K::kInt && r->k != Type::K::kFloat) {
      throw TypeError("arithmetic on a non-numeric type");
    }
  }
  v->link = t;
}

/// Expose `label` (with `arity` arguments) in `row`; returns its payload
/// and the remainder of the row. Extends open rows on demand.
std::pair<std::vector<TypePtr>, TypePtr> rewrite_row(const TypePtr& row0,
                                                     const std::string& label,
                                                     std::size_t arity) {
  TypePtr row = prune(row0);
  switch (row->k) {
    case Type::K::kRowCons: {
      if (row->label == label) return {row->payload, row->tail};
      auto [payload, rest] = rewrite_row(row->tail, label, arity);
      return {payload, t_row_cons(row->label, row->payload, rest)};
    }
    case Type::K::kVar: {
      std::vector<TypePtr> payload;
      payload.reserve(arity);
      for (std::size_t i = 0; i < arity; ++i) payload.push_back(t_var());
      TypePtr rest = t_var();
      bind_var(row, t_row_cons(label, payload, rest));
      return {payload, rest};
    }
    case Type::K::kRowEmpty:
      throw TypeError("method '" + label + "' is not in the channel's interface");
    default:
      throw TypeError("malformed row");
  }
}

const char* kind_name(Type::K k) {
  switch (k) {
    case Type::K::kVar: return "variable";
    case Type::K::kInt: return "int";
    case Type::K::kBool: return "bool";
    case Type::K::kFloat: return "float";
    case Type::K::kString: return "str";
    case Type::K::kChan: return "channel";
    case Type::K::kRowEmpty:
    case Type::K::kRowCons: return "row";
    case Type::K::kParams: return "class";
  }
  return "?";
}

}  // namespace

void unify(const TypePtr& a0, const TypePtr& b0) {
  TypePtr a = prune(a0), b = prune(b0);
  if (a == b) return;
  if (a->k == Type::K::kVar) {
    bind_var(a, b);
    return;
  }
  if (b->k == Type::K::kVar) {
    bind_var(b, a);
    return;
  }
  if (a->k == Type::K::kInt || a->k == Type::K::kBool ||
      a->k == Type::K::kFloat || a->k == Type::K::kString) {
    if (a->k != b->k)
      throw TypeError(std::string(kind_name(a->k)) + " vs " +
                      kind_name(b->k));
    return;
  }
  if (a->k == Type::K::kChan) {
    if (b->k != Type::K::kChan)
      throw TypeError(std::string("channel vs ") + kind_name(b->k));
    unify(a->row, b->row);
    return;
  }
  if (a->k == Type::K::kRowEmpty) {
    if (b->k == Type::K::kRowEmpty) return;
    if (b->k == Type::K::kRowCons)
      throw TypeError("method '" + b->label +
                      "' is not in the channel's interface");
    throw TypeError("row vs " + std::string(kind_name(b->k)));
  }
  if (a->k == Type::K::kRowCons) {
    if (b->k == Type::K::kRowEmpty)
      throw TypeError("method '" + a->label +
                      "' is not in the channel's interface");
    if (b->k != Type::K::kRowCons)
      throw TypeError("row vs " + std::string(kind_name(b->k)));
    auto [payload, rest] = rewrite_row(b, a->label, a->payload.size());
    if (payload.size() != a->payload.size())
      throw TypeError("method '" + a->label + "' used with " +
                      std::to_string(a->payload.size()) + " and " +
                      std::to_string(payload.size()) + " arguments");
    for (std::size_t i = 0; i < payload.size(); ++i)
      unify(a->payload[i], payload[i]);
    unify(a->tail, rest);
    return;
  }
  if (a->k == Type::K::kParams) {
    if (b->k != Type::K::kParams)
      throw TypeError(std::string("class vs ") + kind_name(b->k));
    if (a->params.size() != b->params.size())
      throw TypeError("class instantiated with " +
                      std::to_string(b->params.size()) + " arguments, has " +
                      std::to_string(a->params.size()) + " parameters");
    for (std::size_t i = 0; i < a->params.size(); ++i)
      unify(a->params[i], b->params[i]);
    return;
  }
  throw TypeError("incompatible types");
}

void default_numerics(const TypePtr& t0) {
  TypePtr t = prune(t0);
  switch (t->k) {
    case Type::K::kVar:
      if (t->numeric) t->link = t_int();
      return;
    case Type::K::kChan:
      default_numerics(t->row);
      return;
    case Type::K::kRowCons:
      for (const auto& p : t->payload) default_numerics(p);
      default_numerics(t->tail);
      return;
    case Type::K::kParams:
      for (const auto& p : t->params) default_numerics(p);
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------
// Canonical printing
// ---------------------------------------------------------------------

namespace {

struct Printer {
  std::map<std::uint64_t, std::size_t> names;

  std::string var_name(const TypePtr& v) {
    auto [it, inserted] = names.try_emplace(v->id, names.size());
    std::string base = "%" + std::to_string(it->second);
    return base;
  }

  /// Collect a row into sorted label entries plus its tail variable.
  void print(std::ostream& os, const TypePtr& t0) {
    TypePtr t = prune(t0);
    switch (t->k) {
      case Type::K::kVar:
        os << var_name(t);
        return;
      case Type::K::kInt: os << "int"; return;
      case Type::K::kBool: os << "bool"; return;
      case Type::K::kFloat: os << "float"; return;
      case Type::K::kString: os << "str"; return;
      case Type::K::kChan: {
        std::map<std::string, std::vector<TypePtr>> entries;
        TypePtr row = prune(t->row);
        while (row->k == Type::K::kRowCons) {
          entries[row->label] = row->payload;
          row = prune(row->tail);
        }
        os << "^{";
        bool first = true;
        for (const auto& [l, payload] : entries) {
          if (!first) os << ",";
          first = false;
          os << l << "[";
          for (std::size_t i = 0; i < payload.size(); ++i) {
            if (i) os << ",";
            print(os, payload[i]);
          }
          os << "]";
        }
        if (row->k == Type::K::kVar) os << "|" << var_name(row);
        os << "}";
        return;
      }
      case Type::K::kParams: {
        os << "cls(";
        for (std::size_t i = 0; i < t->params.size(); ++i) {
          if (i) os << ",";
          print(os, t->params[i]);
        }
        os << ")";
        return;
      }
      default:
        os << "?";
        return;
    }
  }
};

/// Signature parser.
struct SigParser {
  std::string_view s;
  std::size_t i = 0;
  std::map<std::string, TypePtr> vars;

  char peek() const { return i < s.size() ? s[i] : '\0'; }
  void expect(char c) {
    if (peek() != c) throw TypeError("bad signature near index " +
                                     std::to_string(i));
    ++i;
  }
  bool accept(char c) {
    if (peek() == c) {
      ++i;
      return true;
    }
    return false;
  }

  std::string ident() {
    std::size_t start = i;
    while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                            s[i] == '_'))
      ++i;
    if (start == i) throw TypeError("bad signature: identifier expected");
    return std::string(s.substr(start, i - start));
  }

  TypePtr var(const std::string& name) {
    auto [it, inserted] = vars.try_emplace(name, nullptr);
    if (inserted) it->second = t_var();
    return it->second;
  }

  TypePtr type() {
    if (accept('%')) return var("%" + ident());
    if (accept('^')) {
      expect('{');
      std::vector<std::pair<std::string, std::vector<TypePtr>>> entries;
      while (peek() != '}' && peek() != '|') {
        std::string label = ident();
        expect('[');
        std::vector<TypePtr> payload;
        while (peek() != ']') {
          payload.push_back(type());
          if (peek() != ']') expect(',');
        }
        expect(']');
        entries.emplace_back(std::move(label), std::move(payload));
        if (peek() != '}' && peek() != '|') expect(',');
      }
      TypePtr tail = t_row_empty();
      if (accept('|')) {
        expect('%');
        tail = var("%" + ident());
      }
      expect('}');
      TypePtr row = tail;
      for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        row = t_row_cons(it->first, it->second, row);
      return t_chan(row);
    }
    std::string word = ident();
    if (word == "int") return t_int();
    if (word == "bool") return t_bool();
    if (word == "float") return t_float();
    if (word == "str") return t_string();
    if (word == "cls") {
      expect('(');
      std::vector<TypePtr> params;
      while (peek() != ')') {
        params.push_back(type());
        if (peek() != ')') expect(',');
      }
      expect(')');
      return t_params(std::move(params));
    }
    throw TypeError("bad signature token: " + word);
  }
};

}  // namespace

std::string to_signature(const TypePtr& t) {
  std::ostringstream os;
  Printer p;
  p.print(os, t);
  return os.str();
}

TypePtr parse_signature(const std::string& sig) {
  SigParser p{sig, 0, {}};
  TypePtr t = p.type();
  if (p.i != sig.size()) throw TypeError("trailing garbage in signature");
  return t;
}

bool compatible(const std::string& required, const std::string& provided) {
  try {
    unify(parse_signature(required), parse_signature(provided));
    return true;
  } catch (const TypeError&) {
    return false;
  }
}

}  // namespace dityco::types
