# Empty dependencies file for dityco_vm.
# This may be replaced when dependencies are built.
