// TyCOmon: the monitoring daemon's scrape server (tentpole of the live
// telemetry plane).
//
// A deliberately small, dependency-free HTTP/1.0 server: one background
// thread accepts loopback TCP connections, answers a single GET per
// connection from a fixed route table, and closes. That is exactly the
// shape Prometheus-style scraping needs, and nothing more — no
// keep-alive, no TLS, no request bodies. Handlers run on the server
// thread, so anything they touch must be safe to read while the network
// executes (see obs::Registry's live_safe collectors and
// TraceRing::snapshot()).
//
// core::Network wires a MonitorServer to /metrics, /metrics.json,
// /trace and /healthz via Network::start_monitor().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace dityco::obs {

class MonitorServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  /// Invoked on the server thread for each matching GET.
  using Handler = std::function<Response()>;

  MonitorServer() = default;
  ~MonitorServer() { stop(); }
  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Register a handler for an exact path (query strings are stripped
  /// before matching). Call before start().
  void route(std::string path, Handler h);

  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port) and serve on a
  /// background thread. Returns the bound port, or 0 on failure.
  std::uint16_t start(std::uint16_t port);
  /// Stop serving and join the thread. Idempotent.
  void stop();

  bool running() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  /// Requests answered so far (any status).
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve();
  void handle_client(int client);

  std::map<std::string, Handler> routes_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace dityco::obs
