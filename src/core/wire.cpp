#include "core/wire.hpp"

#include <cstring>

namespace dityco::core {

namespace {

enum class WireTag : std::uint8_t {
  kInt = 1,
  kBool,
  kFloat,
  kStr,
  kNetRef,
};

}  // namespace

namespace {

constexpr std::uint8_t kHeaderFlags = kTraceFlag | kSampledFlag | kGcFlag;

}  // namespace

void write_header(Writer& w, MsgType t, std::uint32_t dst_site,
                  std::uint64_t trace_id, bool sampled, bool gc) {
  std::uint8_t b = static_cast<std::uint8_t>(t);
  if (gc) b |= kGcFlag;
  if (trace_id == 0) {
    w.u8(b);
    w.u32(dst_site);
    return;
  }
  b |= kTraceFlag;
  if (sampled) b |= kSampledFlag;
  w.u8(b);
  w.u32(dst_site);
  w.u64(trace_id);
}

PacketHeader read_header(Reader& r) {
  const std::uint8_t b = r.u8();
  const std::uint8_t type = b & static_cast<std::uint8_t>(~kHeaderFlags);
  if (type < static_cast<std::uint8_t>(MsgType::kShipMsg) ||
      type > static_cast<std::uint8_t>(MsgType::kNsInvalidate))
    throw DecodeError("unknown packet type");
  PacketHeader h;
  h.type = static_cast<MsgType>(type);
  h.dst_site = r.u32();
  if (b & kTraceFlag) {
    h.trace_id = r.u64();
    h.sampled = (b & kSampledFlag) != 0;
  }
  h.gc = (b & kGcFlag) != 0;
  return h;
}

MsgType packet_type(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) throw DecodeError("empty packet");
  return static_cast<MsgType>(bytes[0] &
                              static_cast<std::uint8_t>(~kHeaderFlags));
}

std::uint64_t packet_trace_id(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) throw DecodeError("empty packet");
  if (!(bytes[0] & kTraceFlag)) return 0;
  if (bytes.size() < 13) throw DecodeError("short v2 packet");
  std::uint64_t id;
  std::memcpy(&id, bytes.data() + 5, sizeof id);
  return id;
}

bool packet_sampled(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) throw DecodeError("empty packet");
  if (!(bytes[0] & kTraceFlag)) return true;  // v1: pre-sampling behaviour
  return (bytes[0] & kSampledFlag) != 0;
}

void write_netref(Writer& w, const vm::NetRef& r) {
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.u32(r.node);
  w.u32(r.site);
  w.u64(r.heap_id);
}

vm::NetRef read_netref(Reader& r) {
  vm::NetRef out;
  const std::uint8_t k = r.u8();
  if (k > 1) throw DecodeError("bad netref kind");
  out.kind = static_cast<vm::NetRef::Kind>(k);
  out.node = r.u32();
  out.site = r.u32();
  out.heap_id = r.u64();
  return out;
}

void marshal_value(vm::Machine& m, const vm::Value& v, Writer& w, bool gc) {
  using Tag = vm::Value::Tag;
  switch (v.tag) {
    case Tag::kInt:
      w.u8(static_cast<std::uint8_t>(WireTag::kInt));
      w.i64(v.i);
      return;
    case Tag::kBool:
      w.u8(static_cast<std::uint8_t>(WireTag::kBool));
      w.boolean(v.b);
      return;
    case Tag::kFloat:
      w.u8(static_cast<std::uint8_t>(WireTag::kFloat));
      w.f64(v.f);
      return;
    case Tag::kStr:
      w.u8(static_cast<std::uint8_t>(WireTag::kStr));
      w.str(m.str(v.idx));
      return;
    case Tag::kChan: {
      // Step 1: a local name leaving the site becomes a network reference.
      w.u8(static_cast<std::uint8_t>(WireTag::kNetRef));
      if (gc) {
        const auto [id, credit] = m.export_chan_credit(v.idx);
        write_netref(w, vm::NetRef{vm::NetRef::Kind::kChan, m.node_id(),
                                   m.site_id(), id});
        w.u64(credit);
      } else {
        write_netref(w, vm::NetRef{vm::NetRef::Kind::kChan, m.node_id(),
                                   m.site_id(), m.export_chan(v.idx)});
      }
      return;
    }
    case Tag::kClass: {
      w.u8(static_cast<std::uint8_t>(WireTag::kNetRef));
      if (gc) {
        const auto [id, credit] = m.export_class_credit(v);
        write_netref(w, vm::NetRef{vm::NetRef::Kind::kClass, m.node_id(),
                                   m.site_id(), id});
        w.u64(credit);
      } else {
        write_netref(w, vm::NetRef{vm::NetRef::Kind::kClass, m.node_id(),
                                   m.site_id(), m.export_class_value(v)});
      }
      return;
    }
    case Tag::kNetRef:
      // Already a network reference: passes through untouched (with gc,
      // half of the local credit balance travels with it).
      w.u8(static_cast<std::uint8_t>(WireTag::kNetRef));
      write_netref(w, m.netref(v.idx));
      if (gc) w.u64(m.split_netref_credit(v.idx));
      return;
  }
  throw DecodeError("unmarshallable value tag");
}

void marshal_values(vm::Machine& m, const std::vector<vm::Value>& vs,
                    Writer& w, bool gc) {
  w.u32(static_cast<std::uint32_t>(vs.size()));
  for (const auto& v : vs) marshal_value(m, v, w, gc);
}

vm::Value unmarshal_value(vm::Machine& m, Reader& r, bool gc) {
  switch (static_cast<WireTag>(r.u8())) {
    case WireTag::kInt:
      return vm::Value::make_int(r.i64());
    case WireTag::kBool:
      return vm::Value::make_bool(r.boolean());
    case WireTag::kFloat:
      return vm::Value::make_float(r.f64());
    case WireTag::kStr:
      return vm::Value::make_str(m.intern_string(r.str()));
    case WireTag::kNetRef: {
      const vm::NetRef ref = read_netref(r);
      const std::uint64_t credit = gc ? r.u64() : 0;
      // Step 2: references into this site's heap become local again (the
      // credit they carried comes home to the export entry).
      if (ref.owned_by(m.node_id(), m.site_id())) {
        const vm::Value v = ref.kind == vm::NetRef::Kind::kChan
                                ? m.resolve_exported_chan(ref.heap_id)
                                : m.resolve_exported_class(ref.heap_id);
        if (credit != 0) m.return_export_credit(ref.kind, ref.heap_id, credit);
        return v;
      }
      return vm::Value::make_netref(m.intern_netref_credit(ref, credit));
    }
  }
  throw DecodeError("bad wire tag");
}

std::vector<vm::Value> unmarshal_values(vm::Machine& m, Reader& r, bool gc) {
  const std::uint32_t n = r.u32();
  std::vector<vm::Value> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(unmarshal_value(m, r, gc));
  return out;
}

std::vector<std::uint8_t> make_release(const vm::NetRef& ref,
                                       std::uint32_t rel_node,
                                       std::uint32_t rel_site,
                                       std::uint64_t cum,
                                       std::uint64_t trace_id,
                                       bool sampled) {
  Writer w;
  write_header(w, MsgType::kRelease, ref.site, trace_id, sampled,
               /*gc=*/true);
  write_netref(w, ref);
  w.u32(rel_node);
  w.u32(rel_site);
  w.u64(cum);
  return w.take();
}

namespace {
// PEER-DOWN is node-wide, not addressed to any site; the broadcast
// sentinel keeps it clear of every real dst_site.
constexpr std::uint32_t kBroadcastSite = 0xffffffffu;
}  // namespace

std::vector<std::uint8_t> make_peer_down(std::uint32_t dead_node) {
  Writer w;
  write_header(w, MsgType::kPeerDown, kBroadcastSite);
  w.u32(dead_node);
  return w.take();
}

std::uint32_t read_peer_down(Reader& r) { return r.u32(); }

std::vector<std::uint8_t> make_credit_moved(const vm::NetRef& ref,
                                            std::uint32_t to_node,
                                            std::uint64_t amount) {
  Writer w;
  write_header(w, MsgType::kCreditMoved, ref.site, /*trace_id=*/0,
               /*sampled=*/true, /*gc=*/true);
  write_netref(w, ref);
  w.u32(to_node);
  w.u64(amount);
  return w.take();
}

CreditMoved read_credit_moved(Reader& r) {
  CreditMoved out;
  out.ref = read_netref(r);
  out.to_node = r.u32();
  out.amount = r.u64();
  return out;
}

std::vector<std::uint8_t> make_ns_invalidate(const std::string& site,
                                             const std::string& name) {
  Writer w;
  write_header(w, MsgType::kNsInvalidate, kBroadcastSite);
  w.str(site);
  w.str(name);
  return w.take();
}

NsInvalidate read_ns_invalidate(Reader& r) {
  NsInvalidate out;
  out.site = r.str();
  out.name = r.str();
  return out;
}

void write_closure(Writer& w, const std::vector<vm::Segment>& segs) {
  w.u32(static_cast<std::uint32_t>(segs.size()));
  for (const auto& s : segs) s.serialize(w);
}

std::map<vm::SegmentGuid, vm::Segment> read_closure(Reader& r,
                                                    vm::SegmentGuid& root) {
  const std::uint32_t n = r.u32();
  if (n == 0) throw DecodeError("empty code closure");
  std::map<vm::SegmentGuid, vm::Segment> pool;
  bool first = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    vm::Segment s = vm::Segment::deserialize(r);
    if (first) {
      root = s.guid;
      first = false;
    }
    pool.emplace(s.guid, std::move(s));
  }
  return pool;
}

}  // namespace dityco::core
