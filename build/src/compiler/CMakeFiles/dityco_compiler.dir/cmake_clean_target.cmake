file(REMOVE_RECURSE
  "libdityco_compiler.a"
)
