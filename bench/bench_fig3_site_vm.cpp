// E3 (Figure 3): the site architecture — an extended TyCO virtual
// machine. Micro-benchmarks of the structures the figure depicts:
// run-queue scheduling (context switches), heap channels (reduction of
// messages against objects), instantiation, fork rate and builtin
// expression evaluation. Wall-clock, via google-benchmark.
#include <benchmark/benchmark.h>

#include "compiler/codegen.hpp"
#include "vm/machine.hpp"

namespace {

using dityco::comp::compile_source;
using dityco::vm::Machine;

/// COMMUNICATION reductions: a self-recharging cell bombarded with reads.
void BM_CommReduction(benchmark::State& state) {
  const int reads = static_cast<int>(state.range(0));
  std::string src =
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]) } "
      "and Drain(z, i) = if i == 0 then 0 else z?(w) = Drain[z, i - 1] "
      "and Pump(x, z, i) = if i == 0 then 0 else (x!read[z] | Pump[x, z, i - 1]) "
      "in new x, z (Cell[x, 1] | Pump[x, z, " + std::to_string(reads) +
      "] | Drain[z, " + std::to_string(reads) + "])";
  const auto prog = compile_source(src);
  std::uint64_t reductions = 0;
  for (auto _ : state) {
    Machine m("bench");
    m.spawn_program(prog);
    m.run(UINT64_MAX);
    reductions += m.stats().comm_reductions;
    if (!m.errors().empty()) state.SkipWithError(m.errors()[0].c_str());
  }
  state.counters["comm/s"] = benchmark::Counter(
      static_cast<double>(reductions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CommReduction)->Arg(1000)->Arg(10000);

/// INSTANTIATION reductions: tail-recursive class spinning.
void BM_Instantiation(benchmark::State& state) {
  const auto prog = compile_source(
      "def Spin(i) = if i == 0 then 0 else Spin[i - 1] in Spin[" +
      std::to_string(state.range(0)) + "]");
  std::uint64_t insts = 0;
  for (auto _ : state) {
    Machine m("bench");
    m.spawn_program(prog);
    m.run(UINT64_MAX);
    insts += m.stats().inst_reductions;
  }
  state.counters["inst/s"] = benchmark::Counter(
      static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Instantiation)->Arg(1000)->Arg(100000);

/// Run-queue churn: wide fan-out of tiny threads ("a few tens of
/// byte-code instructions per thread").
void BM_ForkFanout(benchmark::State& state) {
  const auto prog = compile_source(
      "def Fan(i) = if i == 0 then 0 else (print[\"\"] | Fan[i - 1]) in "
      "Fan[" + std::to_string(state.range(0)) + "]");
  std::uint64_t forks = 0;
  for (auto _ : state) {
    Machine m("bench");
    m.spawn_program(prog);
    m.run(UINT64_MAX);
    forks += m.stats().forks + m.stats().frames_run;
  }
  state.counters["threads/s"] = benchmark::Counter(
      static_cast<double>(forks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ForkFanout)->Arg(10000);

/// Heap churn: channel allocation.
void BM_ChannelAllocation(benchmark::State& state) {
  const auto prog = compile_source(
      "def A(i) = if i == 0 then 0 else new c A[i - 1] in A[" +
      std::to_string(state.range(0)) + "]");
  for (auto _ : state) {
    Machine m("bench");
    m.spawn_program(prog);
    benchmark::DoNotOptimize(m.run(UINT64_MAX));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelAllocation)->Arg(10000);

/// Builtin expression stack: arithmetic-heavy loop.
void BM_ExpressionOps(benchmark::State& state) {
  const auto prog = compile_source(
      "def A(i, acc) = if i == 0 then print[acc] "
      "else A[i - 1, (acc * 3 + i) % 1000000] in A[" +
      std::to_string(state.range(0)) + ", 1]");
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    Machine m("bench");
    m.spawn_program(prog);
    instrs += m.run(UINT64_MAX);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExpressionOps)->Arg(100000);

/// Program-area work: compile + load + link of a mid-sized program.
void BM_LoadAndLink(benchmark::State& state) {
  const auto prog = compile_source(
      "def Cell(self, v) = self?{ read(r) = (r![v] | Cell[self, v]), "
      "write(u) = Cell[self, u] } in "
      "new a, b, c (Cell[a, 1] | Cell[b, true] | Cell[c, \"s\"])");
  for (auto _ : state) {
    Machine m("bench");
    benchmark::DoNotOptimize(m.load_program(prog));
  }
}
BENCHMARK(BM_LoadAndLink);

/// Preemption overhead: same workload under different slice sizes (the
/// "fast context switches" knob).
void BM_SliceOverhead(benchmark::State& state) {
  const auto prog = compile_source(
      "def Spin(i) = if i == 0 then 0 else Spin[i - 1] in Spin[20000]");
  const auto slice = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Machine m("bench");
    m.spawn_program(prog);
    while (!m.idle()) m.run(slice);
  }
}
BENCHMARK(BM_SliceOverhead)->Arg(16)->Arg(256)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
