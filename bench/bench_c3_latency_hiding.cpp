// C3: "we use the concurrency in our model to effectively hide the
// existing communication latency by performing fast context switches
// between local threads" (sections 1, 5, 7).
//
// Workload: one client site runs T independent RPC loops (threads)
// against a remote echo server; total work is fixed (T * N = const), so
// a perfect machine finishes in the same virtual time regardless of T.
// With T = 1 every RPC's round-trip latency is exposed; as T grows the
// VM overlaps waiting threads with runnable ones.
//
// Expected shape: total time falls steeply as T grows and then flattens
// once the latency is fully hidden; the knee arrives at larger T for
// FastEthernet (more latency to hide) and the T=1 / T=max ratio is far
// larger on FastEthernet than on Myrinet.
#include "bench_util.hpp"

using namespace dityco;
using namespace dityco::benchutil;

namespace {

double run_fanout(const net::LinkModel& link, int threads, int total_rpcs) {
  auto net = core::Network(sim_config(link));
  net.add_node();
  net.add_site(0, "server");
  net.add_node();
  net.add_site(1, "client");
  net.submit_source("server", echo_server_src());
  net.submit_source("client",
                    fanout_rpc_client_src("server", threads,
                                          total_rpcs / threads));
  auto res = net.run();
  if (!res.quiescent) std::printf("WARNING: not quiescent (T=%d)\n", threads);
  return res.virtual_time_us;
}

}  // namespace

int main() {
  const int total_rpcs = 512;
  const int thread_counts[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

  for (bool myri : {true, false}) {
    const auto link = myri ? net::myrinet() : net::fast_ethernet();
    header(std::string("C3: latency hiding, ") +
               (myri ? "Myrinet" : "FastEthernet") +
               " (512 RPCs total, fixed work)",
           {"threads/site", "virtual us", "RPC/ms", "speedup vs T=1"});
    double t1 = 0;
    for (int t : thread_counts) {
      const double vt = run_fanout(link, t, total_rpcs);
      if (t == 1) t1 = vt;
      row({fmt_int(static_cast<std::uint64_t>(t)), fmt(vt),
           fmt(total_rpcs * 1000.0 / vt), fmt(t1 / vt)});
    }
  }
  std::printf(
      "\nshape check: speedup grows with T then saturates; the saturated\n"
      "speedup is larger for FastEthernet (more latency to hide).\n");
  return 0;
}
