// Reference reducer: a direct, single-threaded implementation of the
// paper's operational semantics over networks of located processes
// (rules COMM, INST, LOC, SHIPM, SHIPO, FETCH plus the structural rules,
// section 3). It is deliberately a tree walker over the AST:
//   * it serves as the executable specification against which the
//     bytecode VM is differentially tested, and
//   * it is the baseline interpreter for bench C1 ("compact and
//     efficient" bytecode claim).
//
// Determinism: threads are scheduled FIFO from a single run queue and
// channel queues are FIFO, so a given network reduces deterministically.
//
// Approximation: exported names are given the lexeme-keyed identity
// Chan{site, x}, so a free occurrence of the same lexeme at the exporting
// site aliases the export, and re-exporting a name rebinds the same
// channel. The byte-code runtime is stricter (an export is a restricted
// channel; free names are separate site globals), faithful to the formal
// `new`. Programs that import what was exported behave identically under
// both; avoid mixing an export with a same-named free name.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "calculus/ast.hpp"
#include "obs/metrics.hpp"

namespace dityco::calc {

/// Concrete channel identity: a name x allocated at site s. `new` creates
/// fresh uids; exported/free names use their source lexeme directly.
struct Chan {
  std::string site;
  std::string uid;
  auto operator<=>(const Chan&) const = default;
};

/// Runtime value of the reference machine.
using RVal = std::variant<std::int64_t, bool, double, std::string, Chan>;

/// Formats an RVal the way `print` renders it. Channels print as the
/// opaque token "#chan" so output is comparable with the VM's.
std::string rval_display(const RVal& v);

class Reducer {
 public:
  struct Config {
    std::uint64_t max_steps = 10'000'000;  // admin + reduction steps
  };

  struct Counters {
    std::uint64_t comm = 0;   // COMMUNICATION reductions
    std::uint64_t inst = 0;   // INSTANTIATION reductions
    std::uint64_t shipm = 0;  // SHIPM: messages that crossed sites
    std::uint64_t shipo = 0;  // SHIPO: objects that crossed sites
    std::uint64_t fetch = 0;  // FETCH: class closures first linked remotely
    std::uint64_t admin = 0;  // structural/administrative steps
  };

  struct Result {
    bool quiescent = false;   // run queue drained, nothing parked
    bool stalled = false;     // drained but imports wait on missing exports
    bool budget_exhausted = false;
    std::uint64_t pending_messages = 0;  // unconsumed messages at channels
    std::uint64_t pending_objects = 0;   // unconsumed objects at channels
    Counters counters;
    std::vector<std::string> errors;  // runtime errors (dropped threads)
  };

  Reducer() = default;
  explicit Reducer(Config cfg) : cfg_(cfg) {}

  /// Submit a program for execution at `site` (the TyCOsh of the paper).
  void add_program(const std::string& site, ProcPtr p);

  /// Run to quiescence (or stall / step budget). May be called again after
  /// adding more programs.
  Result run();

  /// Lines printed at `site`, in order.
  const std::vector<std::string>& output(const std::string& site) const;

  /// All sites that produced output or ran programs.
  std::vector<std::string> sites() const;

  /// Debug view: one line per channel holding pending messages/objects
  /// ("site.uid: Nmsg/Mobj msg-labels..."). Channel uids carry their
  /// source lexeme, which makes leftover-work reports readable.
  std::vector<std::string> pending_description() const;

  /// Publish the reduction counters into a metrics registry under
  /// `calc_*` names (the reducer spans sites, so no site label). The
  /// registration dies with the reducer.
  void register_metrics(obs::Registry& registry);

 private:
  struct ClassClosure;
  struct Env;
  using EnvPtr = std::shared_ptr<Env>;
  using ClassPtr = std::shared_ptr<ClassClosure>;

  /// Class-variable binding: a local closure or a located reference to a
  /// class exported elsewhere (resolved at instantiation time = FETCH).
  struct RemoteClass {
    std::string site, name;
  };
  using ClassBinding = std::variant<ClassPtr, RemoteClass>;

  struct ClassClosure {
    std::string def_site;
    std::string name;
    std::vector<std::string> params;
    ProcPtr body;
    EnvPtr env;  // environment of the enclosing def (cyclic for recursion)
  };

  struct Env {
    EnvPtr parent;
    std::map<std::string, RVal> vars;
    std::map<std::string, ClassBinding> classes;
  };

  struct Thread {
    std::string site;
    ProcPtr proc;
    EnvPtr env;
  };

  struct PendingMsg {
    std::string label;
    std::vector<RVal> args;
  };
  struct PendingObj {
    std::string origin_site;  // site the object was launched from (SHIPO)
    std::vector<Abstraction> methods;
    EnvPtr env;
  };
  struct Channel {
    std::deque<PendingMsg> msgs;
    std::deque<PendingObj> objs;
  };

  struct EvalError {
    std::string what;
  };

  void step(Thread t);
  RVal eval(const Expr& e, const EnvPtr& env, const std::string& site);
  Chan resolve_chan(const NameRef& r, const EnvPtr& env,
                    const std::string& site);
  RVal resolve_val(const NameRef& r, const EnvPtr& env,
                   const std::string& site);
  void try_reduce(const Chan& c);
  void spawn(Thread t) { queue_.push_back(std::move(t)); }
  void park_on_class(const std::string& site, const std::string& name,
                     Thread t);
  void release_class_waiters(const std::string& site, const std::string& name);

  Config cfg_{};
  Counters counters_;
  std::deque<Thread> queue_;
  std::map<Chan, Channel> chans_;
  std::map<std::pair<std::string, std::string>, ClassPtr> exported_classes_;
  std::map<std::pair<std::string, std::string>, std::deque<Thread>>
      class_waiters_;
  /// Dynamic-link cache, keyed by (site, definition-block identity): the
  /// paper downloads the whole block D on first use ("we opt to download D
  /// instead of just the definition for X in it") and links it once, so a
  /// FETCH is counted only on the first instantiation from that block.
  std::set<std::pair<std::string, const Env*>> linked_;
  std::map<std::string, std::vector<std::string>> outputs_;
  std::vector<std::string> errors_;
  obs::Registry::Registration metrics_reg_;
};

}  // namespace dityco::calc
