#include "obs/fleet.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <tuple>

#include "obs/metrics.hpp"  // json_escape

namespace dityco::obs::fleet {

// -- tiny JSON reader ---------------------------------------------------

double Json::num() const { return std::strtod(raw.c_str(), nullptr); }

std::uint64_t Json::u64() const {
  return std::strtoull(raw.c_str(), nullptr, 10);
}

const Json* Json::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

double Json::num_or(const std::string& key, double def) const {
  const Json* v = find(key);
  return v && v->kind == Kind::kNumber ? v->num() : def;
}

std::uint64_t Json::u64_or(const std::string& key, std::uint64_t def) const {
  const Json* v = find(key);
  return v && v->kind == Kind::kNumber ? v->u64() : def;
}

std::string Json::str_or(const std::string& key,
                         const std::string& def) const {
  const Json* v = find(key);
  return v && v->kind == Kind::kString ? v->raw : def;
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  int depth = 0;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool literal(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, s, n) != 0)
      return false;
    p += n;
    return true;
  }

  bool string(std::string& out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (p + 1 >= end) return false;
        ++p;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Pass \uXXXX through literally: nothing we scrape emits
            // unicode escapes for content we interpret.
            if (end - p < 5) return false;
            out += "\\u";
            out.append(p + 1, 4);
            p += 4;
            break;
          }
          default: return false;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool value(Json& out) {
    if (++depth > 64) return false;  // stack guard for hostile input
    skip_ws();
    if (p >= end) return false;
    bool ok = false;
    if (*p == '{') {
      ++p;
      out.kind = Json::Kind::kObject;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          std::string key;
          skip_ws();
          if (!string(key)) break;
          skip_ws();
          if (p >= end || *p != ':') break;
          ++p;
          Json v;
          if (!value(v)) break;
          out.fields.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      out.kind = Json::Kind::kArray;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          Json v;
          if (!value(v)) break;
          out.items.push_back(std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '"') {
      out.kind = Json::Kind::kString;
      ok = string(out.raw);
    } else if (literal("true")) {
      out.kind = Json::Kind::kBool;
      out.boolean = true;
      ok = true;
    } else if (literal("false")) {
      out.kind = Json::Kind::kBool;
      out.boolean = false;
      ok = true;
    } else if (literal("null")) {
      out.kind = Json::Kind::kNull;
      ok = true;
    } else {
      const char* start = p;
      if (p < end && (*p == '-' || *p == '+')) ++p;
      while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                         *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                         *p == '+'))
        ++p;
      if (p > start) {
        out.kind = Json::Kind::kNumber;
        out.raw.assign(start, p);
        ok = true;
      }
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool parse_json(const std::string& text, Json& out) {
  Parser ps{text.data(), text.data() + text.size()};
  if (!ps.value(out)) return false;
  ps.skip_ws();
  return ps.p == ps.end;
}

// -- HTTP ---------------------------------------------------------------

bool parse_url(const std::string& url, std::string& host,
               std::uint16_t& port) {
  std::string rest = url;
  const std::string scheme = "http://";
  if (rest.rfind(scheme, 0) == 0) rest = rest.substr(scheme.size());
  const auto slash = rest.find('/');
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size())
    return false;
  host = rest.substr(0, colon);
  char* endp = nullptr;
  const long v = std::strtol(rest.c_str() + colon + 1, &endp, 10);
  if (endp == nullptr || *endp != '\0' || v <= 0 || v > 65535) return false;
  port = static_cast<std::uint16_t>(v);
  return true;
}

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return "";
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return "";
  }
  std::string resp;
  char buf[16384];
  for (;;) {
    pollfd pf{fd, POLLIN, 0};
    const int rc = ::poll(&pf, 1, timeout_ms);
    if (rc <= 0) break;  // timeout or error: return what we have
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (resp.compare(0, 5, "HTTP/") != 0) return "";
  // Require a 2xx status.
  const auto sp = resp.find(' ');
  if (sp == std::string::npos || sp + 1 >= resp.size() ||
      resp[sp + 1] != '2')
    return "";
  const auto hdr_end = resp.find("\r\n\r\n");
  return hdr_end == std::string::npos ? "" : resp.substr(hdr_end + 4);
}

// -- discovery ------------------------------------------------------------

namespace {

std::string host_of(const std::string& hostport, const std::string& fallback) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0) return fallback;
  return hostport.substr(0, colon);
}

}  // namespace

std::vector<NodeEndpoint> discover(const std::string& seed_url,
                                   std::vector<std::uint32_t>* unmonitored) {
  std::vector<NodeEndpoint> out;
  std::string host;
  std::uint16_t port = 0;
  if (!parse_url(seed_url, host, port)) return out;

  // (host, monitor-port) pairs queued for a /peers probe.
  std::vector<std::pair<std::string, std::uint16_t>> todo{{host, port}};
  std::set<std::pair<std::string, std::uint16_t>> seen{{host, port}};
  std::set<std::uint32_t> known_nodes;
  std::set<std::uint32_t> no_monitor;

  while (!todo.empty()) {
    const auto [h, p] = todo.back();
    todo.pop_back();
    const std::string body = http_get(h, p, "/peers");
    if (body.empty()) continue;
    Json doc;
    if (!parse_json(body, doc)) continue;

    if (const Json* self = doc.find("self")) {
      const auto node = static_cast<std::uint32_t>(self->u64_or("node", 0));
      if (known_nodes.insert(node).second) {
        NodeEndpoint ep;
        ep.node = node;
        ep.host = h;
        ep.monitor = p;
        ep.hostport = self->str_or("hostport");
        out.push_back(std::move(ep));
      }
    }
    const Json* peers = doc.find("peers");
    if (!peers || peers->kind != Json::Kind::kArray) continue;
    for (const Json& peer : peers->items) {
      const auto mport =
          static_cast<std::uint16_t>(peer.u64_or("monitor", 0));
      if (mport == 0) {
        // Monitor-less peer (or its port has not gossiped yet): part of
        // the fleet, just not scrapeable — record, don't fail.
        no_monitor.insert(static_cast<std::uint32_t>(peer.u64_or("node", 0)));
        continue;
      }
      // The peer's monitor listens where its transport does; fall back
      // to the probed host for peers whose address is not yet gossiped.
      const std::string mhost = host_of(peer.str_or("hostport"), h);
      if (seen.insert({mhost, mport}).second) todo.push_back({mhost, mport});
    }
  }
  if (unmonitored != nullptr) {
    unmonitored->clear();
    for (std::uint32_t n : no_monitor)
      if (!known_nodes.count(n)) unmonitored->push_back(n);
  }
  return out;
}

// -- stitching ------------------------------------------------------------

namespace {

std::string fmt_ts(double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

}  // namespace

MergedTrace merge_traces(const std::vector<std::string>& docs) {
  MergedTrace merged;

  struct Meta {
    std::uint32_t pid;
    std::string kind;  // "process_name" | "thread_name"
    std::string name;
    bool has_tid = false;
    std::uint32_t tid = 0;
  };
  std::vector<Meta> metas;
  std::set<std::pair<std::uint32_t, std::uint64_t>> meta_seen;

  for (const std::string& text : docs) {
    Json doc;
    if (!parse_json(text, doc)) continue;
    const Json* events = doc.find("traceEvents");
    if (!events || events->kind != Json::Kind::kArray) continue;
    ++merged.nodes;

    // Clock anchor: the wall time of local ts 0 (see the file header of
    // fleet.hpp). Unanchored documents keep their local base.
    double offset_us = 0;
    if (const Json* other = doc.find("otherData")) {
      const std::uint64_t steady = other->u64_or("steady_now_ns", 0);
      const std::uint64_t base = other->u64_or("ts_base_ns", 0);
      const std::uint64_t wall = other->u64_or("wall_now_us", 0);
      if (steady != 0 && wall != 0 && steady >= base) {
        offset_us = static_cast<double>(wall) -
                    static_cast<double>(steady - base) / 1000.0;
        ++merged.anchored;
      }
    }

    for (const Json& e : events->items) {
      const std::string ph = e.str_or("ph");
      const auto pid = static_cast<std::uint32_t>(e.u64_or("pid", 0));
      const auto tid = static_cast<std::uint32_t>(e.u64_or("tid", 0));
      if (ph == "M") {
        // Dedup metadata across documents (every node names its own
        // pid; a re-scrape must not emit it twice).
        const std::uint64_t key =
            (static_cast<std::uint64_t>(tid) << 1) |
            (e.str_or("name") == "process_name" ? 0u : 1u);
        if (!meta_seen.insert({pid, key}).second) continue;
        Meta m;
        m.pid = pid;
        m.kind = e.str_or("name");
        if (const Json* args = e.find("args")) m.name = args->str_or("name");
        m.has_tid = e.find("tid") != nullptr;
        m.tid = tid;
        metas.push_back(std::move(m));
        continue;
      }
      if (ph == "s" || ph == "t" || ph == "f") continue;  // regenerated
      FleetEvent fe;
      fe.ph = ph;
      fe.name = e.str_or("name");
      fe.cat = e.str_or("cat");
      fe.pid = pid;
      fe.tid = tid;
      fe.ts_us = offset_us + e.num_or("ts", 0);
      fe.trace_id = e.u64_or("id", 0);  // async b/e spans
      if (const Json* args = e.find("args")) {
        if (fe.trace_id == 0) fe.trace_id = args->u64_or("trace_id", 0);
        fe.arg = args->u64_or("arg", args->u64_or("instructions", 0));
      }
      merged.events.push_back(std::move(fe));
    }
  }

  // Rebase the fleet axis to its earliest event.
  double base = 0;
  bool have_base = false;
  for (const FleetEvent& e : merged.events)
    if (!have_base || e.ts_us < base) {
      base = e.ts_us;
      have_base = true;
    }
  for (FleetEvent& e : merged.events) e.ts_us -= base;

  // Re-emit one Chrome trace document.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };
  for (const Meta& m : metas) {
    std::string obj = "{\"ph\":\"M\",\"name\":\"" + json_escape(m.kind) +
                      "\",\"pid\":" + std::to_string(m.pid);
    if (m.has_tid) obj += ",\"tid\":" + std::to_string(m.tid);
    obj += ",\"args\":{\"name\":\"" + json_escape(m.name) + "\"}}";
    emit(obj);
  }
  struct FlowPoint {
    double ts_us;
    std::uint32_t pid, tid;
  };
  std::map<std::uint64_t, std::vector<FlowPoint>> flows;
  for (const FleetEvent& e : merged.events) {
    const std::string pidtid = "\"pid\":" + std::to_string(e.pid) +
                               ",\"tid\":" + std::to_string(e.tid);
    const std::string ts = fmt_ts(e.ts_us);
    if (e.ph == "B") {
      emit("{\"ph\":\"B\",\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"" + json_escape(e.cat) + "\"," + pidtid +
           ",\"ts\":" + ts + "}");
    } else if (e.ph == "E") {
      emit("{\"ph\":\"E\"," + pidtid + ",\"ts\":" + ts +
           ",\"args\":{\"instructions\":" + std::to_string(e.arg) + "}}");
    } else if (e.ph == "b" || e.ph == "e") {
      emit("{\"ph\":\"" + e.ph + "\",\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"" + json_escape(e.cat) +
           "\",\"id\":" + std::to_string(e.trace_id) + "," + pidtid +
           ",\"ts\":" + ts + ",\"args\":{\"arg\":" + std::to_string(e.arg) +
           "}}");
    } else {
      emit("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"" + json_escape(e.cat) + "\"," + pidtid +
           ",\"ts\":" + ts + ",\"args\":{\"arg\":" + std::to_string(e.arg) +
           ",\"trace_id\":" + std::to_string(e.trace_id) + "}}");
    }
    if (e.trace_id != 0)
      flows[e.trace_id].push_back(FlowPoint{e.ts_us, e.pid, e.tid});
  }
  for (auto& [id, points] : flows) {
    if (points.size() < 2) continue;
    std::stable_sort(points.begin(), points.end(),
                     [](const FlowPoint& a, const FlowPoint& b) {
                       return a.ts_us < b.ts_us;
                     });
    for (std::size_t i = 0; i < points.size(); ++i) {
      const FlowPoint& p = points[i];
      const char* ph = i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
      std::string obj = "{\"ph\":\"";
      obj += ph;
      obj += "\",\"name\":\"flow\",\"cat\":\"mobility\",\"id\":" +
             std::to_string(id) + ",\"pid\":" + std::to_string(p.pid) +
             ",\"tid\":" + std::to_string(p.tid) +
             ",\"ts\":" + fmt_ts(p.ts_us);
      if (ph[0] == 'f') obj += ",\"bp\":\"e\"";
      obj += "}";
      emit(obj);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  merged.json = std::move(out);
  return merged;
}

std::string federate_metrics(
    const std::vector<std::pair<std::uint32_t, std::string>>& texts) {
  std::string out;
  for (const auto& [node, body] : texts) {
    const std::string label = "node=\"" + std::to_string(node) + "\"";
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      std::string line = body.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.empty() || line[0] == '#') {
        out += line;
        out += '\n';
        continue;
      }
      const auto brace = line.find('{');
      const auto space = line.find(' ');
      if (brace != std::string::npos &&
          (space == std::string::npos || brace < space)) {
        line.insert(brace + 1, label + ",");
      } else if (space != std::string::npos) {
        line.insert(space, "{" + label + "}");
      }
      out += line;
      out += '\n';
    }
  }
  return out;
}

// -- credit audit ---------------------------------------------------------

namespace {

// Owner identity of one export-table entry across the fleet.
using OwnerKey = std::tuple<std::uint32_t, std::uint32_t, int, std::uint64_t>;
// Releaser identity: the (node, site) a cumulative REL ledger belongs to.
using Releaser = std::pair<std::uint32_t, std::uint32_t>;

// The name service RELs under this pseudo-site id (core/nameservice.cpp).
constexpr std::uint32_t kNsReleaserSite = 0xfffffffeu;

std::string key_str(const OwnerKey& k) {
  return std::string(std::get<2>(k) == 1 ? "class " : "chan ") +
         std::to_string(std::get<0>(k)) + "/" + std::to_string(std::get<1>(k)) +
         "#" + std::to_string(std::get<3>(k));
}

}  // namespace

AuditReport audit(const std::vector<Json>& gc_docs,
                  const std::vector<Json>& names_docs,
                  const std::vector<std::uint32_t>& expected_nodes) {
  AuditReport rep;

  struct Entry {
    std::uint64_t minted = 0, returned = 0, released = 0, outstanding = 0;
    std::uint64_t pins = 0, trace = 0;
    double age_ms = 0;
    std::map<Releaser, std::uint64_t> applied;  // owner-side REL slots
    std::vector<std::uint32_t> debt_nodes;      // advisory holder set
    std::uint64_t held = 0, lag = 0;
    std::string ns_name;
  };
  std::map<OwnerKey, Entry> entries;
  // Releaser-side declared cumulative REL ledgers (max-merged: the wire
  // protocol is idempotent under the same rule).
  std::map<std::pair<OwnerKey, Releaser>, std::uint64_t> declared;
  struct Import {
    OwnerKey key;
    std::uint32_t at_node = 0;
    std::string at_site;
    std::uint64_t credit = 0;
  };
  std::vector<Import> imports;

  std::set<std::uint32_t> scraped;      // nodes with >= 1 fresh site doc
  std::set<std::uint32_t> stale_nodes;  // nodes with a stale site doc

  auto owner_key = [](const Json& o) {
    return OwnerKey{static_cast<std::uint32_t>(o.u64_or("owner_node", 0)),
                    static_cast<std::uint32_t>(o.u64_or("owner_site", 0)),
                    static_cast<int>(o.u64_or("kind", 0)),
                    o.u64_or("id", 0)};
  };

  for (const Json& doc : gc_docs) {
    const Json* sites = doc.find("sites");
    if (!sites || sites->kind != Json::Kind::kArray) continue;
    ++rep.nodes;
    for (const Json& s : sites->items) {
      const auto node = static_cast<std::uint32_t>(s.u64_or("node", 0));
      const auto site = static_cast<std::uint32_t>(s.u64_or("site", 0));
      if (const Json* st = s.find("stale");
          st && st->kind == Json::Kind::kBool && st->boolean) {
        stale_nodes.insert(node);
        rep.gaps.push_back("node " + std::to_string(node) + " site \"" +
                           s.str_or("name") + "\": stale snapshot");
        continue;
      }
      scraped.insert(node);
      ++rep.sites;
      if (const Json* exp = s.find("exports");
          exp && exp->kind == Json::Kind::kArray) {
        for (const Json& e : exp->items) {
          const OwnerKey key{node, site,
                             static_cast<int>(e.u64_or("kind", 0)),
                             e.u64_or("id", 0)};
          Entry& en = entries[key];
          en.minted = e.u64_or("minted", 0);
          en.returned = e.u64_or("returned", 0);
          en.released = e.u64_or("released", 0);
          en.outstanding = e.u64_or("outstanding", 0);
          en.pins = e.u64_or("pins", 0);
          en.trace = e.u64_or("trace", 0);
          en.age_ms = e.num_or("age_ms", 0);
          if (const Json* rel = e.find("releasers");
              rel && rel->kind == Json::Kind::kArray)
            for (const Json& r : rel->items)
              if (r.kind == Json::Kind::kArray && r.items.size() == 3)
                en.applied[{static_cast<std::uint32_t>(r.items[0].u64()),
                            static_cast<std::uint32_t>(r.items[1].u64())}] =
                    r.items[2].u64();
          if (const Json* d = e.find("debt");
              d && d->kind == Json::Kind::kArray)
            for (const Json& r : d->items)
              if (r.kind == Json::Kind::kArray && r.items.size() == 2)
                en.debt_nodes.push_back(
                    static_cast<std::uint32_t>(r.items[0].u64()));
        }
      }
      if (const Json* imp = s.find("imports");
          imp && imp->kind == Json::Kind::kArray) {
        for (const Json& i : imp->items) {
          Import im;
          im.key = owner_key(i);
          im.at_node = node;
          im.at_site = s.str_or("name");
          im.credit = i.u64_or("credit", 0);
          imports.push_back(std::move(im));
        }
      }
      if (const Json* rel = s.find("releases");
          rel && rel->kind == Json::Kind::kArray) {
        for (const Json& r : rel->items) {
          auto& cum = declared[{owner_key(r), Releaser{node, site}}];
          cum = std::max(cum, r.u64_or("cum", 0));
        }
      }
    }
  }

  // Name-service half: credit the service still holds joins `held`; its
  // REL ledger joins the declared set under the NS pseudo-releaser.
  bool ns_complete = true;
  struct NsHold {
    OwnerKey key;
    std::string label;
    std::uint64_t credit = 0;
  };
  std::vector<NsHold> ns_holds;
  for (const Json& doc : names_docs) {
    const Json* svcs = doc.find("services");
    if (!svcs || svcs->kind != Json::Kind::kArray) continue;
    for (const Json& svc : svcs->items) {
      const auto home =
          static_cast<std::uint32_t>(svc.u64_or("home_node", 0));
      if (const Json* st = svc.find("stale");
          st && st->kind == Json::Kind::kBool && st->boolean) {
        ns_complete = false;
        rep.gaps.push_back("name service @ node " + std::to_string(home) +
                           ": stale snapshot");
        continue;
      }
      if (const Json* ids = svc.find("ids");
          ids && ids->kind == Json::Kind::kArray) {
        for (const Json& row : ids->items) {
          const Json* gc = row.find("gc");
          if (!gc || gc->kind != Json::Kind::kBool || !gc->boolean) continue;
          NsHold h;
          h.key = owner_key(row);
          h.label = row.str_or("site") + "/" + row.str_or("name");
          h.credit = row.u64_or("credit", 0);
          if (auto it = entries.find(h.key); it != entries.end())
            it->second.ns_name = h.label;
          ns_holds.push_back(std::move(h));
        }
      }
      if (const Json* rel = svc.find("releases");
          rel && rel->kind == Json::Kind::kArray) {
        for (const Json& r : rel->items) {
          auto& cum =
              declared[{owner_key(r), Releaser{home, kNsReleaserSite}}];
          cum = std::max(cum, r.u64_or("cum", 0));
        }
      }
    }
  }
  if (names_docs.empty()) ns_complete = false;

  // Completeness of the scrape: every expected node present and fresh.
  bool fleet_complete = stale_nodes.empty();
  for (std::uint32_t n : expected_nodes)
    if (!scraped.count(n)) {
      fleet_complete = false;
      rep.gaps.push_back("node " + std::to_string(n) +
                         ": expected but not scraped");
    }

  // Join the holder sides into the owner entries.
  for (const Import& im : imports) {
    auto it = entries.find(im.key);
    if (it != entries.end()) {
      it->second.held += im.credit;
    } else if (im.credit > 0 && scraped.count(std::get<0>(im.key))) {
      // The owner was scraped and has no such entry: an entry reclaimed
      // while credit for it was still out, or a corrupted ledger.
      rep.orphan_imports.push_back(
          im.at_site + "@node" + std::to_string(im.at_node) + " holds " +
          std::to_string(im.credit) + " credit for missing " +
          key_str(im.key));
    }
  }
  for (const NsHold& h : ns_holds) {
    auto it = entries.find(h.key);
    if (it != entries.end()) {
      it->second.held += h.credit;
    } else if (h.credit > 0 && scraped.count(std::get<0>(h.key))) {
      rep.ns_mismatches.push_back("name service holds " +
                                  std::to_string(h.credit) + " credit for \"" +
                                  h.label + "\" but owner " + key_str(h.key) +
                                  " has no entry");
    }
  }
  for (const auto& [joined, cum] : declared) {
    auto it = entries.find(joined.first);
    if (it == entries.end()) continue;  // reclaimed: ledger outlives entry
    const auto slot = it->second.applied.find(joined.second);
    const std::uint64_t applied =
        slot == it->second.applied.end() ? 0 : slot->second;
    if (cum > applied) it->second.lag += cum - applied;
  }

  // Verdicts.
  for (auto& [key, en] : entries) {
    if (en.minted == 0) continue;  // legacy immortal entry: no ledger
    ++rep.entries;
    rep.outstanding += en.outstanding;
    rep.held += en.held;
    rep.lag += en.lag;
    bool entry_verifiable = fleet_complete && (en.pins == 0 || ns_complete);
    for (std::uint32_t dn : en.debt_nodes)
      if (!scraped.count(dn)) entry_verifiable = false;
    const std::int64_t residual = static_cast<std::int64_t>(en.outstanding) -
                                  static_cast<std::int64_t>(en.held) -
                                  static_cast<std::int64_t>(en.lag);
    const char* why = nullptr;
    if (en.lag > 0)
      why = "rel_lost";
    else if (residual < 0)
      why = "over_release";
    else if (residual > 0 && entry_verifiable)
      why = "leak";
    else if (residual > 0)
      rep.verifiable = false;  // positive residual we cannot confirm
    if (why == nullptr) continue;
    AuditOffender off;
    off.owner_node = std::get<0>(key);
    off.owner_site = std::get<1>(key);
    off.kind = std::get<2>(key);
    off.heap_id = std::get<3>(key);
    off.ns_name = en.ns_name;
    off.minted = en.minted;
    off.outstanding = en.outstanding;
    off.held = en.held;
    off.lag = en.lag;
    off.residual = residual;
    off.age_ms = en.age_ms;
    off.trace = en.trace;
    off.why = why;
    rep.offenders.push_back(std::move(off));
  }
  std::stable_sort(rep.offenders.begin(), rep.offenders.end(),
                   [](const AuditOffender& a, const AuditOffender& b) {
                     const auto sev = [](const AuditOffender& o) {
                       return o.lag + static_cast<std::uint64_t>(
                                          o.residual < 0 ? -o.residual
                                                         : o.residual);
                     };
                     return sev(a) > sev(b);
                   });
  if (!rep.gaps.empty()) rep.verifiable = false;
  rep.balanced = rep.offenders.empty() && rep.orphan_imports.empty() &&
                 rep.ns_mismatches.empty();
  return rep;
}

namespace {

std::string str_array(const std::vector<std::string>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(v[i]) + "\"";
  }
  return out + "]";
}

}  // namespace

std::string AuditReport::to_json() const {
  std::string out = "{\"balanced\":";
  out += balanced ? "true" : "false";
  out += ",\"verifiable\":";
  out += verifiable ? "true" : "false";
  out += ",\"nodes\":" + std::to_string(nodes);
  out += ",\"sites\":" + std::to_string(sites);
  out += ",\"entries\":" + std::to_string(entries);
  out += ",\"outstanding\":" + std::to_string(outstanding);
  out += ",\"held\":" + std::to_string(held);
  out += ",\"lag\":" + std::to_string(lag);
  out += ",\"offenders\":[";
  for (std::size_t i = 0; i < offenders.size(); ++i) {
    const AuditOffender& o = offenders[i];
    if (i) out += ",";
    out += "{\"why\":\"" + o.why + "\"";
    out += ",\"owner_node\":" + std::to_string(o.owner_node);
    out += ",\"owner_site\":" + std::to_string(o.owner_site);
    out += ",\"kind\":" + std::to_string(o.kind);
    out += ",\"id\":" + std::to_string(o.heap_id);
    if (!o.ns_name.empty())
      out += ",\"name\":\"" + json_escape(o.ns_name) + "\"";
    out += ",\"minted\":" + std::to_string(o.minted);
    out += ",\"outstanding\":" + std::to_string(o.outstanding);
    out += ",\"held\":" + std::to_string(o.held);
    out += ",\"lag\":" + std::to_string(o.lag);
    out += ",\"residual\":" + std::to_string(o.residual);
    out += ",\"age_ms\":" + fmt_ts(o.age_ms);
    out += ",\"trace\":" + std::to_string(o.trace);
    out += "}";
  }
  out += "],\"orphan_imports\":" + str_array(orphan_imports);
  out += ",\"ns_mismatches\":" + str_array(ns_mismatches);
  out += ",\"gaps\":" + str_array(gaps);
  out += "}";
  return out;
}

std::string AuditReport::to_text() const {
  std::string out = "credit audit: ";
  out += balanced ? "BALANCED" : "IMBALANCED";
  if (!verifiable) out += " (unverifiable)";
  out += " — " + std::to_string(entries) + " entries, " +
         std::to_string(sites) + " sites, " + std::to_string(nodes) +
         " nodes\n";
  out += "  outstanding " + std::to_string(outstanding) + " = held " +
         std::to_string(held) + " + lag " + std::to_string(lag) +
         " + residual " +
         std::to_string(static_cast<std::int64_t>(outstanding) -
                        static_cast<std::int64_t>(held) -
                        static_cast<std::int64_t>(lag)) +
         "\n";
  for (const AuditOffender& o : offenders) {
    out += "  [" + o.why + "] " +
           key_str({o.owner_node, o.owner_site, o.kind, o.heap_id});
    if (!o.ns_name.empty()) out += " (\"" + o.ns_name + "\")";
    out += " minted=" + std::to_string(o.minted) +
           " outstanding=" + std::to_string(o.outstanding) +
           " held=" + std::to_string(o.held) +
           " lag=" + std::to_string(o.lag) +
           " residual=" + std::to_string(o.residual) + " age=" +
           fmt_ts(o.age_ms) + "ms trace=" + std::to_string(o.trace) + "\n";
  }
  for (const std::string& s : orphan_imports)
    out += "  [orphan_import] " + s + "\n";
  for (const std::string& s : ns_mismatches)
    out += "  [ns_mismatch] " + s + "\n";
  for (const std::string& s : gaps) out += "  [gap] " + s + "\n";
  return out;
}

std::string federate_metrics_json(
    const std::vector<std::pair<std::uint32_t, std::string>>& docs) {
  std::string out = "{\"nodes\":[";
  bool first = true;
  for (const auto& [node, body] : docs) {
    if (!first) out += ",";
    first = false;
    out += "{\"node\":" + std::to_string(node) + ",\"metrics\":";
    out += body.empty() ? "null" : body;
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace dityco::obs::fleet
